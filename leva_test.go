package leva_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	leva "repro"
)

// buildMiniDB writes two joinable CSVs and loads them through the
// public API.
func buildMiniDB(t *testing.T) *leva.Database {
	t.Helper()
	dir := t.TempDir()
	orders := "order_id,customer,amount,label\n"
	customers := "customer,segment\n"
	for i := 0; i < 60; i++ {
		seg := "retail"
		label := "small"
		if i%2 == 0 {
			seg = "wholesale"
			label = "big"
		}
		orders += fmt.Sprintf("o%03d,c%02d,%d.5,%s\n", i, i%20, 10+i%7, label)
		if i < 20 {
			customers += fmt.Sprintf("c%02d,%s\n", i, seg)
		}
	}
	// Make segment predictive of label through the customer key.
	if err := os.WriteFile(filepath.Join(dir, "orders.csv"), []byte(orders), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "customers.csv"), []byte(customers), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := leva.ReadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := buildMiniDB(t)
	if db.Table("orders") == nil || db.Table("customers") == nil {
		t.Fatal("CSV tables missing")
	}

	cfg := leva.DefaultConfig()
	cfg.Dim = 16
	cfg.Seed = 1
	data, err := leva.PrepareClassification(leva.Task{
		DB: db, BaseTable: "orders", Target: "label", Seed: 1,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if data.NumClasses != 2 {
		t.Fatalf("classes = %d", data.NumClasses)
	}
	rf := &leva.RandomForest{NumTrees: 30, Seed: 1}
	rf.Fit(data.XTrain, data.YClassTrain)
	acc := leva.Accuracy(rf.Predict(data.XTest), data.YClassTest)
	// customer -> segment fully determines the label; the embedding
	// must carry enough of it to beat coin flipping clearly.
	if acc < 0.7 {
		t.Errorf("public-API accuracy = %v", acc)
	}
}

func TestPublicBuildAndFeaturize(t *testing.T) {
	db := buildMiniDB(t)
	cfg := leva.DefaultConfig()
	cfg.Dim = 8
	cfg.Method = leva.MethodMF
	res, err := leva.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Featurize(db.Table("orders"), "orders", []string{"label"},
		func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 60 || len(x[0]) != 16 { // row+value default doubles dim
		t.Fatalf("featurized shape %dx%d", len(x), len(x[0]))
	}
	if res.Embedding.Len() == 0 || res.Graph.NumEdges() == 0 {
		t.Error("empty embedding or graph")
	}
}

func TestPublicBundleAndAutoTune(t *testing.T) {
	db := buildMiniDB(t)
	cfg := leva.DefaultConfig()
	cfg.Dim = 8
	cfg.Method = leva.MethodMF
	res, err := leva.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	back, err := leva.LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Embedding.Dim != 8 {
		t.Errorf("bundle dim = %d", back.Embedding.Dim)
	}

	tuned, err := leva.AutoTune(leva.Task{
		DB: db, BaseTable: "orders", Target: "label", Seed: 2,
	}, cfg, leva.AutoTuneOptions{BinCandidates: []int{20}, DimCandidates: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Dim != 8 {
		t.Errorf("tuned dim = %d", tuned.Dim)
	}
}

func TestPublicRegression(t *testing.T) {
	// Regression path through the public API: target = amount.
	db := buildMiniDB(t)
	cfg := leva.DefaultConfig()
	cfg.Dim = 8
	cfg.Method = leva.MethodMF
	data, err := leva.PrepareRegression(leva.Task{
		DB: db, BaseTable: "orders", Target: "amount", Seed: 3,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lin := &leva.LinearRegression{}
	lin.FitRegression(data.XTrain, data.YRegTrain)
	mae := leva.MAE(lin.PredictRegression(data.XTest), data.YRegTest)
	if mae < 0 {
		t.Errorf("mae = %v", mae)
	}
	if r := leva.R2(data.YRegTrain, data.YRegTrain); r != 1 {
		t.Errorf("R2 identity = %v", r)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := leva.DefaultConfig()
	if cfg.Dim != 100 {
		t.Errorf("default dim = %d, want 100", cfg.Dim)
	}
	if cfg.Method != leva.MethodAuto {
		t.Errorf("default method = %s", cfg.Method)
	}
	if cfg.Featurization != leva.RowPlusValue {
		t.Errorf("default featurization = %v", cfg.Featurization)
	}
}
