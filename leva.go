// Package leva is the public API of this Leva reproduction: an
// end-to-end system that boosts machine learning over relational data
// by building a relational embedding (Zhao & Castro Fernandez, SIGMOD
// 2022).
//
// Given a collection of tables with no key or join-path information,
// Leva textifies the data, represents it as a graph of row and value
// nodes, refines the graph with attribute voting, embeds it (randomized
// SVD matrix factorization or random walks + SGNS), and featurizes the
// base table with the resulting vectors:
//
//	db, _ := leva.ReadCSVDir("data/")
//	res, _ := leva.Build(db, leva.DefaultConfig())
//	x, _ := res.Featurize(db.Table("orders"), "orders", []string{"label"},
//	        func(i int) int { return i })
//
// For supervised tasks the one-call helpers split, embed (excluding
// test rows and the target column), and featurize:
//
//	data, _ := leva.PrepareClassification(leva.Task{
//	        DB: db, BaseTable: "orders", Target: "label",
//	}, leva.DefaultConfig())
//
// A built Result can be saved as a deployment bundle (Result.SaveBundle)
// and served online by the levad daemon (cmd/levad, internal/serve),
// which answers featurization requests over HTTP against the loaded
// embedding — see docs/SERVING.md.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results.
package leva

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/textify"
)

// Re-exported data-model types.
type (
	// Database is a named collection of tables.
	Database = dataset.Database
	// Table is a named collection of equal-length columns.
	Table = dataset.Table
	// Column is a named vector of values.
	Column = dataset.Column
	// Value is one relational cell.
	Value = dataset.Value

	// Config collects the pipeline parameters of paper Table 2.
	Config = core.Config
	// Task describes a supervised problem over a database.
	Task = core.Task
	// Result is a built relational embedding plus deployment state.
	Result = core.Result
	// SupervisedData is a featurized train/test split.
	SupervisedData = core.SupervisedData
	// Embedding maps tokens and rows to vectors.
	Embedding = embed.Embedding

	// Method selects the embedding construction algorithm.
	Method = embed.Method
	// FeaturizationMode selects Row or Row+Value deployment.
	FeaturizationMode = core.FeaturizationMode

	// TextifyOptions configures column typing and binning.
	TextifyOptions = textify.Options
	// GraphOptions configures graph construction and refinement.
	GraphOptions = graph.Options
	// MFOptions and RWOptions tune the two embedding methods.
	MFOptions = embed.MFOptions
	RWOptions = embed.RWOptions
)

// Embedding method selectors.
const (
	// MethodAuto picks MF when the estimated memory fits the
	// configured budget and RW otherwise (paper Section 4.2).
	MethodAuto = embed.MethodAuto
	// MethodMF is randomized-SVD matrix factorization.
	MethodMF = embed.MethodMF
	// MethodRW is random walks plus skip-gram negative sampling.
	MethodRW = embed.MethodRW
)

// Featurization modes (paper Section 4.4).
const (
	// RowPlusValue concatenates row-node and mean value-node vectors.
	RowPlusValue = core.RowPlusValue
	// RowOnly uses the row-node vector alone.
	RowOnly = core.RowOnly
)

// NewDatabase builds a database from tables.
func NewDatabase(tables ...*Table) *Database { return dataset.NewDatabase(tables...) }

// NewTable creates an empty table with the given column names.
func NewTable(name string, cols ...string) *Table { return dataset.NewTable(name, cols...) }

// Cell constructors.
var (
	// Null is the absent value.
	Null = dataset.Null
	// String wraps a string cell.
	String = dataset.String
	// Number wraps a float cell.
	Number = dataset.Number
	// Int wraps an integer cell.
	Int = dataset.Int
)

// ReadCSVDir loads every *.csv in dir into a Database (table names are
// the file names without extension).
func ReadCSVDir(dir string) (*Database, error) { return dataset.ReadCSVDir(dir) }

// DefaultConfig returns the paper's default parameters (Table 2):
// 50 histogram bins, kurtosis-chosen histogram type, theta_range 50%,
// theta_min 5%, weighted graph, embedding size 100, Row+Value
// featurization, automatic method selection.
func DefaultConfig() Config {
	return Config{Dim: 100, Method: MethodAuto, Featurization: RowPlusValue}
}

// Build runs textification, graph construction/refinement and embedding
// construction over db. Exclude test rows and target columns first, or
// use PrepareClassification / PrepareRegression which do it for you.
func Build(db *Database, cfg Config) (*Result, error) {
	return core.BuildEmbedding(db, cfg)
}

// PrepareClassification splits the base table, builds the embedding on
// the training portion (the target column and test rows never reach the
// pipeline), and featurizes both splits.
func PrepareClassification(task Task, cfg Config) (*SupervisedData, error) {
	return core.PrepareClassification(task, cfg)
}

// PrepareRegression is PrepareClassification for numeric targets.
func PrepareRegression(task Task, cfg Config) (*SupervisedData, error) {
	return core.PrepareRegression(task, cfg)
}

// BundleFormatVersion is the on-disk format written by
// Result.SaveBundle. LoadBundle reads every version up to the current
// one and rejects newer or unrecognized versions with a clear error.
const BundleFormatVersion = core.BundleFormatVersion

// LoadBundle restores a deployment saved with Result.SaveBundle: the
// fitted tokenizer, the embedding, and the deployment config, ready to
// featurize new rows without retraining. The returned Result exposes
// both the batch path (Featurize) and the single-row serving path
// (FeaturizeRow, used by internal/serve and the levad daemon — see
// docs/SERVING.md).
func LoadBundle(dir string) (*Result, error) { return core.LoadBundle(dir) }

// LoadBundleWarn is LoadBundle with a hook for non-fatal conditions:
// warn is called (when non-nil) with a human-readable message for
// recoverable states such as a legacy-format bundle, one predating
// integrity manifests, or a crash-interrupted save that was rolled back
// to its previous complete version. Corruption — checksum mismatches,
// truncated or missing files — is always a hard error naming the
// offending file.
func LoadBundleWarn(dir string, warn func(msg string)) (*Result, error) {
	return core.LoadBundleWarn(dir, warn)
}

// LoadOptions tunes LoadBundleOpts: a warning hook and an optional
// mmap fast path for binary bundles.
type LoadOptions = core.LoadOptions

// LoadBundleOpts is LoadBundle with explicit options. With MMap set
// (and a supporting platform), the bundle's payload is memory-mapped
// instead of read, so a reload costs page-table setup plus the
// integrity hash rather than a full copy of the vectors.
func LoadBundleOpts(dir string, opts LoadOptions) (*Result, error) {
	return core.LoadBundleOpts(dir, opts)
}

// BundleInfo describes a saved bundle without loading it for serving.
type BundleInfo = core.BundleInfo

// ReadBundleInfo inspects the bundle at dir: format version, dimension,
// entity count, fitted column order, section sizes, build provenance.
func ReadBundleInfo(dir string) (*BundleInfo, error) {
	return core.ReadBundleInfo(dir)
}

// AutoTuneOptions bounds the automatic configuration search.
type AutoTuneOptions = core.AutoTuneOptions

// AutoTune searches bin count and embedding dimension on a validation
// split carved from the training rows and returns the base config with
// the winners filled in (paper Section 4.4's hyper-parameter strategy).
func AutoTune(task Task, base Config, opts AutoTuneOptions) (Config, error) {
	return core.AutoTune(task, base, opts)
}
