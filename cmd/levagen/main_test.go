package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestGenerateAllDatasets(t *testing.T) {
	for _, name := range []string{"student", "genes", "kraken", "ftp", "financial", "restbase", "bio"} {
		spec, err := generate(name, 0.02, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.DB.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := generate("bogus", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestWriteCSVDirRoundTrip(t *testing.T) {
	spec, err := generate("student", 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "out")
	if err := writeCSVDir(spec.DB, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files = %d", len(entries))
	}
	back, err := dataset.ReadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalRows() != spec.DB.TotalRows() {
		t.Errorf("rows %d != %d", back.TotalRows(), spec.DB.TotalRows())
	}
}
