package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestGenerateAllDatasets(t *testing.T) {
	for _, name := range []string{"student", "genes", "kraken", "ftp", "financial", "restbase", "bio"} {
		spec, err := generate(name, 0.02, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.DB.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := generate("bogus", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestWriteCSVDirRoundTrip(t *testing.T) {
	spec, err := generate("student", 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	files, err := encodeCSVDir(spec.DB)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "out")
	if err := writeFiles(dir, files); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files = %d", len(entries))
	}
	back, err := dataset.ReadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalRows() != spec.DB.TotalRows() {
		t.Errorf("rows %d != %d", back.TotalRows(), spec.DB.TotalRows())
	}
}

// TestRunCached proves a cached generation writes byte-identical CSVs
// without regenerating, and that a different seed misses.
func TestRunCached(t *testing.T) {
	tmp := t.TempDir()
	cacheDir := filepath.Join(tmp, "cache")
	out1 := filepath.Join(tmp, "out1")
	out2 := filepath.Join(tmp, "out2")

	if err := run("student", 0.02, 5, out1, cacheDir); err != nil {
		t.Fatal(err)
	}
	if err := run("student", 0.02, 5, out2, cacheDir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSVs written")
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(out1, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(out2, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: cached generation differs from fresh", e.Name())
		}
	}

	// Re-running over an up-to-date directory leaves mtimes untouched
	// (identical files are skipped).
	before, err := os.Stat(filepath.Join(out1, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if err := run("student", 0.02, 5, out1, cacheDir); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(out1, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Error("identical cached file was rewritten")
	}

	// A different seed is a different fingerprint: fresh generation.
	out3 := filepath.Join(tmp, "out3")
	if err := run("student", 0.02, 6, out3, cacheDir); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(out1, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(out3, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("different seed produced identical CSV (suspicious cache hit)")
	}
}
