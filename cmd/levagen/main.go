// Command levagen materializes the synthetic evaluation datasets as CSV
// directories, so the leva CLI (and anything else) can consume them:
//
//	levagen -dataset genes -scale 0.2 -out ./genes_csv
//	leva train -data ./genes_csv -base genes -target localization
//
// Datasets: student, genes, kraken, ftp, financial, restbase, bio.
//
// With -cache DIR, generated CSVs are kept in a content-addressed cache
// keyed by (dataset, scale, seed); re-running the same generation
// serves the files from the cache without regenerating, and files
// already on disk with identical bytes are left untouched.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/fingerprint"
	"repro/internal/synth"
)

// genFPDomain fingerprints one generation request; generators are
// seed-deterministic, so (dataset, scale, seed) fully determines the
// CSV bytes.
const genFPDomain = "leva/levagen/v1"

const genStage = "generate"

// genMeta is the cached summary printed on a hit.
type genMeta struct {
	Task      string `json:"task"`
	BaseTable string `json:"baseTable"`
	Target    string `json:"target"`
	Tables    int    `json:"tables"`
	Rows      int    `json:"rows"`
}

func main() {
	name := flag.String("dataset", "", "dataset to generate: student, genes, kraken, ftp, financial, restbase, bio")
	scale := flag.Float64("scale", 0.15, "scale factor (1.0 = paper-sized)")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "", "output directory (one CSV per table)")
	cache := flag.String("cache", "", "content-addressed cache directory for generated CSVs (off unless set)")
	noCache := flag.Bool("no-cache", false, "disable the generation cache")
	flag.Parse()
	if *name == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	cacheDir := *cache
	if *noCache {
		cacheDir = ""
	}
	if err := run(*name, *scale, *seed, *out, cacheDir); err != nil {
		fmt.Fprintln(os.Stderr, "levagen:", err)
		os.Exit(1)
	}
}

func run(name string, scale float64, seed int64, out, cacheDir string) error {
	var c *core.Cache
	var key string
	if cacheDir != "" {
		c = core.NewCache(cacheDir)
		key = fingerprint.Combine(genFPDomain, name,
			strconv.FormatFloat(scale, 'g', -1, 64), strconv.FormatInt(seed, 10))
		if files, ok := c.Load(genStage, key); ok {
			var meta genMeta
			if err := json.Unmarshal(files["meta.json"], &meta); err == nil {
				delete(files, "meta.json")
				if err := writeFiles(out, files); err != nil {
					return err
				}
				fmt.Printf("wrote %d tables (%d rows) to %s (cached)\n", meta.Tables, meta.Rows, out)
				fmt.Printf("task: %s of %s.%s\n", meta.Task, meta.BaseTable, meta.Target)
				return nil
			}
			// Undecodable meta: treat as a miss and regenerate.
		}
	}

	spec, err := generate(name, scale, seed)
	if err != nil {
		return err
	}
	files, err := encodeCSVDir(spec.DB)
	if err != nil {
		return err
	}
	if err := writeFiles(out, files); err != nil {
		return err
	}
	task := "regression"
	if spec.Classification {
		task = "classification"
	}
	if c != nil {
		meta, err := json.Marshal(genMeta{
			Task: task, BaseTable: spec.BaseTable, Target: spec.Target,
			Tables: len(spec.DB.Tables), Rows: spec.DB.TotalRows(),
		})
		if err == nil {
			files["meta.json"] = meta
			// Best effort: a failed cache write must not fail generation.
			if err := c.Store(genStage, key, files); err != nil {
				fmt.Fprintln(os.Stderr, "levagen: warning: cache write failed:", err)
			}
		}
	}
	fmt.Printf("wrote %d tables (%d rows) to %s\n", len(spec.DB.Tables), spec.DB.TotalRows(), out)
	fmt.Printf("task: %s of %s.%s\n", task, spec.BaseTable, spec.Target)
	return nil
}

func generate(name string, scale float64, seed int64) (*synth.Spec, error) {
	switch name {
	case "student":
		students := int(500 * scale / 0.15)
		return synth.Student(synth.StudentOptions{Students: students, Seed: seed}), nil
	case "genes":
		return synth.Genes(synth.GenesOptions{Scale: scale, Seed: seed}), nil
	case "kraken":
		return synth.Kraken(synth.KrakenOptions{Scale: scale, Seed: seed}), nil
	case "ftp":
		return synth.FTP(synth.FTPOptions{Scale: scale, Seed: seed}), nil
	case "financial":
		return synth.Financial(synth.FinancialOptions{Scale: scale, Seed: seed}), nil
	case "restbase":
		return synth.Restbase(synth.RestbaseOptions{Scale: scale, Seed: seed}), nil
	case "bio":
		return synth.Bio(synth.BioOptions{Scale: scale, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// encodeCSVDir renders every table to its CSV bytes, keyed by file name.
func encodeCSVDir(db *dataset.Database) (map[string][]byte, error) {
	files := make(map[string][]byte, len(db.Tables))
	for _, t := range db.Tables {
		var buf bytes.Buffer
		if err := dataset.WriteCSV(t, &buf); err != nil {
			return nil, fmt.Errorf("write %s: %w", t.Name, err)
		}
		files[t.Name+".csv"] = buf.Bytes()
	}
	return files, nil
}

// writeFiles publishes the CSVs into dir, atomically per file, skipping
// files whose on-disk bytes are already identical.
func writeFiles(dir string, files map[string][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		if existing, err := os.ReadFile(path); err == nil && bytes.Equal(existing, files[name]) {
			continue
		}
		// Atomic publish: a crash mid-generation leaves no half-written
		// CSV for a later `leva embed` run to silently train on.
		if err := durable.WriteFile(durable.OS(), path, files[name]); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
	}
	return nil
}
