// Command levagen materializes the synthetic evaluation datasets as CSV
// directories, so the leva CLI (and anything else) can consume them:
//
//	levagen -dataset genes -scale 0.2 -out ./genes_csv
//	leva train -data ./genes_csv -base genes -target localization
//
// Datasets: student, genes, kraken, ftp, financial, restbase, bio.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/synth"
)

func main() {
	name := flag.String("dataset", "", "dataset to generate: student, genes, kraken, ftp, financial, restbase, bio")
	scale := flag.Float64("scale", 0.15, "scale factor (1.0 = paper-sized)")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "", "output directory (one CSV per table)")
	flag.Parse()
	if *name == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := generate(*name, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "levagen:", err)
		os.Exit(1)
	}
	if err := writeCSVDir(spec.DB, *out); err != nil {
		fmt.Fprintln(os.Stderr, "levagen:", err)
		os.Exit(1)
	}
	task := "regression"
	if spec.Classification {
		task = "classification"
	}
	fmt.Printf("wrote %d tables (%d rows) to %s\n", len(spec.DB.Tables), spec.DB.TotalRows(), *out)
	fmt.Printf("task: %s of %s.%s\n", task, spec.BaseTable, spec.Target)
}

func generate(name string, scale float64, seed int64) (*synth.Spec, error) {
	switch name {
	case "student":
		students := int(500 * scale / 0.15)
		return synth.Student(synth.StudentOptions{Students: students, Seed: seed}), nil
	case "genes":
		return synth.Genes(synth.GenesOptions{Scale: scale, Seed: seed}), nil
	case "kraken":
		return synth.Kraken(synth.KrakenOptions{Scale: scale, Seed: seed}), nil
	case "ftp":
		return synth.FTP(synth.FTPOptions{Scale: scale, Seed: seed}), nil
	case "financial":
		return synth.Financial(synth.FinancialOptions{Scale: scale, Seed: seed}), nil
	case "restbase":
		return synth.Restbase(synth.RestbaseOptions{Scale: scale, Seed: seed}), nil
	case "bio":
		return synth.Bio(synth.BioOptions{Scale: scale, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func writeCSVDir(db *dataset.Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range db.Tables {
		var buf bytes.Buffer
		if err := dataset.WriteCSV(t, &buf); err != nil {
			return fmt.Errorf("write %s: %w", t.Name, err)
		}
		// Atomic publish: a crash mid-generation leaves no half-written
		// CSV for a later `leva embed` run to silently train on.
		if err := durable.WriteFile(durable.OS(), filepath.Join(dir, t.Name+".csv"), buf.Bytes()); err != nil {
			return fmt.Errorf("write %s: %w", t.Name, err)
		}
	}
	return nil
}
