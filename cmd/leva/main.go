// Command leva builds relational embeddings from a directory of CSV
// files and optionally trains a downstream model, exercising the whole
// pipeline from the shell:
//
//	leva embed -data ./csvs -out embedding.tsv -dim 100
//	leva train -data ./csvs -base orders -target churn
//
// The embed subcommand writes one line per embedded entity: the entity
// key (a token, or table:rowIdx for rows), a tab, and the
// space-separated vector.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	leva "repro"
	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "embed":
		err = runEmbed(os.Args[2:])
	case "train":
		err = runTrain(os.Args[2:])
	case "apply":
		err = runApply(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "neighbors":
		err = runNeighbors(os.Args[2:])
	case "bundle":
		err = runBundle(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leva:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  leva embed -data <csv dir> [-out emb.tsv] [-bundle dir] [-index dir] [-quantize] [-dim N] [-method auto|mf|rw] [-bins N] [-seed N] [-workers N] [-cache DIR | -no-cache] [-metrics-dump]
  leva train -data <csv dir> -base <table> -target <column> [-dim N] [-method ...] [-seed N] [-workers N] [-cache DIR | -no-cache] [-metrics-dump]
  leva apply -bundle <dir> -data <csv dir> -table <name> [-out features.tsv] [-exclude col1,col2]
  leva neighbors -index <dir> -token <entity> [-k N] [-ef N]
  leva bundle info <dir>
  leva bundle convert -in <dir> -out <dir> [-format binary|legacy]
  leva inspect -data <csv dir>`)
}

func pipelineFlags(fs *flag.FlagSet) (data *string, dim *int, method *string, bins *int, seed *int64, workers *int, cache *string, noCache *bool) {
	data = fs.String("data", "", "directory of CSV files (one table per file)")
	dim = fs.Int("dim", 100, "embedding dimension")
	method = fs.String("method", "auto", "embedding method: auto, mf, rw")
	bins = fs.Int("bins", 50, "numeric histogram bins")
	seed = fs.Int64("seed", 1, "random seed")
	workers = fs.Int("workers", 0, "pipeline worker goroutines (0 = all cores, 1 = sequential)")
	cache = fs.String("cache", "", "stage cache directory (default: .leva-cache inside -data)")
	noCache = fs.Bool("no-cache", false, "disable the stage cache and rebuild every stage")
	return
}

// metricsScope implements -metrics-dump: when enabled, the run carries
// an observability scope whose registry accumulates the pipeline
// metrics (see docs/OBSERVABILITY.md), rendered to stderr at the end in
// Prometheus text format. Stderr keeps -out/stdout data clean.
func metricsScope(dump bool) *obs.Scope {
	if !dump {
		return nil
	}
	return obs.NewScope()
}

func dumpMetrics(sc *obs.Scope) error {
	if sc == nil {
		return nil
	}
	fmt.Fprintln(os.Stderr, "--- metrics ---")
	return sc.Registry.WritePrometheus(os.Stderr)
}

// resolveCacheDir implements the -cache/-no-cache flag pair: caching is
// on by default, rooted next to the data it fingerprints.
func resolveCacheDir(data, cache string, noCache bool) string {
	switch {
	case noCache:
		return ""
	case cache != "":
		return cache
	default:
		return filepath.Join(data, ".leva-cache")
	}
}

func buildConfig(dim, bins int, method string, seed int64, workers int, cacheDir string) leva.Config {
	cfg := leva.DefaultConfig()
	cfg.Dim = dim
	cfg.Seed = seed
	cfg.Textify.BinCount = bins
	cfg.Method = leva.Method(method)
	cfg.Workers = workers
	cfg.CacheDir = cacheDir
	return cfg
}

// printCacheReport writes the per-stage hit/miss line of a cached build
// plus any decisions worth surfacing.
func printCacheReport(res *leva.Result) {
	c := res.Timings.Cache
	if c.Enabled {
		fmt.Printf("cache: textify=%s tables=%d/%d graph=%s embed=%s\n",
			c.Textify, c.TablesReused, c.TablesReused+c.TablesRebuilt, c.Graph, c.Embed)
		if c.StoreErrors > 0 {
			fmt.Fprintf(os.Stderr, "leva: warning: %d cache writes failed (build unaffected)\n", c.StoreErrors)
		}
	}
	if res.UnweightedFallback {
		fmt.Println("graph: fell back to unweighted (alias tables exceeded memory budget)")
	}
}

func runEmbed(args []string) error {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	data, dim, method, bins, seed, workers, cache, noCache := pipelineFlags(fs)
	out := fs.String("out", "embedding.tsv", "output TSV path")
	bundle := fs.String("bundle", "", "also save a reusable deployment bundle to this directory")
	index := fs.String("index", "", "also build and save an HNSW ANN index over the embedding to this directory (for levad -index)")
	quantize := fs.Bool("quantize", false, "attach int8-quantized vectors: the bundle gains a quant section (levad -quantize serves from it) and the -index build searches int8 with float re-ranking")
	dump := fs.Bool("metrics-dump", false, "print build metrics to stderr in Prometheus text format")
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("embed: -data is required")
	}

	db, err := leva.ReadCSVDir(*data)
	if err != nil {
		return err
	}
	sc := metricsScope(*dump)
	cfg := buildConfig(*dim, *bins, *method, *seed, *workers,
		resolveCacheDir(*data, *cache, *noCache))
	cfg.Obs = sc
	start := time.Now()
	res, err := leva.Build(db, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("built %s embedding: %d entities, dim %d, graph %d nodes / %d edges in %v\n",
		res.MethodUsed, res.Embedding.Len(), res.Embedding.Dim,
		res.Graph.NumNodes(), res.Graph.NumEdges(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("stage timings: textify %v, graph %v, embed %v\n",
		res.Timings.Textify.Round(time.Millisecond),
		res.Timings.GraphBuild.Round(time.Millisecond),
		res.Timings.Embed.Round(time.Millisecond))
	printCacheReport(res)

	var buf bytes.Buffer
	if err := res.Embedding.WriteTSV(&buf); err != nil {
		return err
	}
	if err := durable.WriteFile(durable.OS(), *out, buf.Bytes()); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	if *quantize {
		res.Quant = embed.Quantize(res.Embedding.Matrix())
		fmt.Printf("quantized: int8 arena %d bytes (float arena %d bytes)\n",
			res.Quant.Bytes(), 8*int64(res.Embedding.Len())*int64(res.Embedding.Dim))
	}
	if *bundle != "" {
		if err := res.SaveBundle(*bundle); err != nil {
			return err
		}
		fmt.Printf("saved deployment bundle to %s\n", *bundle)
	}
	if *index != "" {
		// The index derives from the embedding content, so it shares
		// the pipeline's stage cache: re-running embed with an
		// unchanged embedding serves the index from cache too.
		var annCache *core.Cache
		if cfg.CacheDir != "" {
			annCache = core.NewCache(cfg.CacheDir)
		}
		stage := &core.ANNStage{
			Embedding: res.Embedding,
			Opts:      ann.Options{Seed: *seed},
			Cache:     annCache,
			Quantize:  *quantize,
		}
		annStart := time.Now()
		ix, cached, err := stage.Run()
		if err != nil {
			return err
		}
		if err := ix.Save(*index); err != nil {
			return err
		}
		src := "built"
		if cached {
			src = "cached"
		}
		fmt.Printf("saved ANN index (%d vectors, %s in %v) to %s\n",
			ix.Len(), src, time.Since(annStart).Round(time.Millisecond), *index)
	}
	return dumpMetrics(sc)
}

// runNeighbors queries a saved ANN index from the shell: one line per
// neighbor, "token<tab>score", nearest first.
func runNeighbors(args []string) error {
	fs := flag.NewFlagSet("neighbors", flag.ExitOnError)
	index := fs.String("index", "", "ANN index directory (from embed -index)")
	token := fs.String("token", "", "entity to look up (a token, or table:rowIdx for rows)")
	k := fs.Int("k", 10, "neighbors to return")
	ef := fs.Int("ef", 0, "search beam width (0 = index default; larger = higher recall)")
	fs.Parse(args)
	if *index == "" || *token == "" {
		return fmt.Errorf("neighbors: -index and -token are required")
	}
	ix, err := ann.Load(*index)
	if err != nil {
		return err
	}
	results, err := ix.SearchName(*token, *k, *ef)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%s\t%g\n", r.Name, r.Score)
	}
	return nil
}

// runBundle dispatches the bundle maintenance subcommands: info
// (inspect a saved bundle without serving it) and convert (rewrite a
// bundle between the legacy JSON layout and the binary layout).
func runBundle(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("bundle: want a subcommand: info or convert")
	}
	switch args[0] {
	case "info":
		return runBundleInfo(args[1:])
	case "convert":
		return runBundleConvert(args[1:])
	default:
		return fmt.Errorf("bundle: unknown subcommand %q (want info or convert)", args[0])
	}
}

// runBundleInfo prints what a bundle holds: format version, integrity
// status, embedding shape, fitted column order per table, payload
// section sizes, and the provenance of the build that produced it.
func runBundleInfo(args []string) error {
	fs := flag.NewFlagSet("bundle info", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("bundle info: want exactly one bundle directory argument")
	}
	info, err := leva.ReadBundleInfo(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	}
	layout := "binary (bundle.bin)"
	if info.FormatVersion < leva.BundleFormatVersion {
		layout = "legacy JSON (config.json + textify.json + embedding.tsv)"
	}
	verified := "verified against MANIFEST.json"
	if !info.Verified {
		verified = "NO integrity manifest"
	}
	fmt.Printf("bundle %s\n", info.Dir)
	fmt.Printf("  format:        version %d, %s (%s)\n", info.FormatVersion, layout, verified)
	fmt.Printf("  embedding:     %d entities x %d dims (%s, %s featurization)\n",
		info.Entities, info.Dim, info.MethodUsed, info.Featurization)
	fmt.Printf("  payload:       %d bytes total (symbols %d, arena %d)\n",
		info.PayloadBytes, info.SymbolBytes, info.ArenaBytes)
	if info.QuantBytes > 0 {
		fmt.Printf("  quantized:     int8 section %d bytes (%.1fx smaller than the float arena)\n",
			info.QuantBytes, float64(info.ArenaBytes)/float64(info.QuantBytes))
	}
	if info.UnseenFallbackDims > 0 {
		fmt.Printf("  unseen fallback dims: %d\n", info.UnseenFallbackDims)
	}
	fmt.Printf("  columns:\n")
	for _, tc := range info.Columns {
		fmt.Printf("    %s: %s\n", tc.Table, strings.Join(tc.Columns, ", "))
	}
	if c := info.StageCache; c != nil && c.Enabled {
		fmt.Printf("  build cache:   textify=%s tables=%d/%d graph=%s embed=%s\n",
			c.Textify, c.TablesReused, c.TablesReused+c.TablesRebuilt, c.Graph, c.Embed)
	}
	if info.UnweightedFallback {
		fmt.Printf("  build note:    fell back to the unweighted graph (memory budget)\n")
	}
	return nil
}

// runBundleConvert rewrites a bundle into the requested layout — the
// migration tool between legacy JSON bundles and the binary format.
// Featurization is unchanged by conversion in either direction.
func runBundleConvert(args []string) error {
	fs := flag.NewFlagSet("bundle convert", flag.ExitOnError)
	in := fs.String("in", "", "source bundle directory")
	out := fs.String("out", "", "destination bundle directory (crash-safely replaced if it exists)")
	format := fs.String("format", "binary", "target layout: binary (current formatVersion) or legacy (version 3 JSON)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("bundle convert: -in and -out are required")
	}
	res, err := leva.LoadBundleWarn(*in, func(msg string) { fmt.Fprintln(os.Stderr, "leva: warning:", msg) })
	if err != nil {
		return err
	}
	switch *format {
	case "binary":
		err = res.SaveBundle(*out)
	case "legacy":
		err = res.SaveBundleLegacy(*out)
	default:
		return fmt.Errorf("bundle convert: unknown -format %q (want binary or legacy)", *format)
	}
	if err != nil {
		return err
	}
	info, err := leva.ReadBundleInfo(*out)
	if err != nil {
		return err
	}
	fmt.Printf("converted %s -> %s (format version %d, %d entities x %d dims, %d payload bytes)\n",
		*in, *out, info.FormatVersion, info.Entities, info.Dim, info.PayloadBytes)
	return nil
}

// runApply featurizes a table with a previously saved bundle and writes
// one TSV line per row: rowIdx, tab, space-separated features.
func runApply(args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	bundle := fs.String("bundle", "", "deployment bundle directory (from embed -bundle)")
	data := fs.String("data", "", "directory of CSV files")
	table := fs.String("table", "", "table to featurize")
	out := fs.String("out", "features.tsv", "output TSV path")
	exclude := fs.String("exclude", "", "comma-separated columns to exclude (e.g. the target)")
	fs.Parse(args)
	if *bundle == "" || *data == "" || *table == "" {
		return fmt.Errorf("apply: -bundle, -data and -table are required")
	}
	res, err := leva.LoadBundle(*bundle)
	if err != nil {
		return err
	}
	db, err := leva.ReadCSVDir(*data)
	if err != nil {
		return err
	}
	t := db.Table(*table)
	if t == nil {
		return fmt.Errorf("apply: no table %q (have %s)", *table, strings.Join(db.TableNames(), ", "))
	}
	var skip []string
	if *exclude != "" {
		skip = strings.Split(*exclude, ",")
	}
	// New data: rows are composed from value-node vectors.
	x, err := res.Featurize(t, *table, skip, func(int) int { return -1 })
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for i, row := range x {
		fmt.Fprintf(&buf, "%d\t", i)
		for j, v := range row {
			if j > 0 {
				buf.WriteByte(' ')
			}
			fmt.Fprintf(&buf, "%g", v)
		}
		buf.WriteByte('\n')
	}
	if err := durable.WriteFile(durable.OS(), *out, buf.Bytes()); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows x %d features to %s\n", len(x), len(x[0]), *out)
	return nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data, dim, method, bins, seed, workers, cache, noCache := pipelineFlags(fs)
	base := fs.String("base", "", "base table (holds the target column)")
	target := fs.String("target", "", "target column")
	dump := fs.Bool("metrics-dump", false, "print build metrics to stderr in Prometheus text format")
	fs.Parse(args)
	if *data == "" || *base == "" || *target == "" {
		return fmt.Errorf("train: -data, -base and -target are required")
	}

	db, err := leva.ReadCSVDir(*data)
	if err != nil {
		return err
	}
	bt := db.Table(*base)
	if bt == nil {
		return fmt.Errorf("train: no table %q (have %s)", *base, strings.Join(db.TableNames(), ", "))
	}
	col := bt.Column(*target)
	if col == nil {
		return fmt.Errorf("train: table %q has no column %q", *base, *target)
	}

	task := leva.Task{DB: db, BaseTable: *base, Target: *target, Seed: *seed}
	sc := metricsScope(*dump)
	cfg := buildConfig(*dim, *bins, *method, *seed, *workers,
		resolveCacheDir(*data, *cache, *noCache))
	cfg.Obs = sc

	// Numeric targets with many distinct values run as regression,
	// everything else as classification.
	if col.UniqueRatio() > 0.1 && numericColumn(col) {
		data, err := leva.PrepareRegression(task, cfg)
		if err != nil {
			return err
		}
		rf := &leva.RandomForest{NumTrees: 80, Seed: *seed}
		rf.FitRegression(data.XTrain, data.YRegTrain)
		mae := leva.MAE(rf.PredictRegression(data.XTest), data.YRegTest)
		fmt.Printf("regression (%s used): test MAE = %.4f over %d test rows\n",
			data.Result.MethodUsed, mae, len(data.XTest))
		return dumpMetrics(sc)
	}
	dataC, err := leva.PrepareClassification(task, cfg)
	if err != nil {
		return err
	}
	rf := &leva.RandomForest{NumTrees: 80, Seed: *seed}
	rf.Fit(dataC.XTrain, dataC.YClassTrain)
	acc := leva.Accuracy(rf.Predict(dataC.XTest), dataC.YClassTest)
	fmt.Printf("classification (%s used): test accuracy = %.4f (%d classes, %d test rows)\n",
		dataC.Result.MethodUsed, acc, dataC.NumClasses, len(dataC.XTest))
	return dumpMetrics(sc)
}

// runInspect profiles every table and column of a CSV directory.
func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	data := fs.String("data", "", "directory of CSV files")
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("inspect: -data is required")
	}
	db, err := leva.ReadCSVDir(*data)
	if err != nil {
		return err
	}
	db.Describe(os.Stdout)
	return nil
}

func numericColumn(c *leva.Column) bool {
	nonNull, numeric := 0, 0
	for _, v := range c.Values {
		if v.IsNull() {
			continue
		}
		nonNull++
		if _, ok := v.Float(); ok {
			numeric++
		}
	}
	return nonNull > 0 && numeric == nonNull
}
