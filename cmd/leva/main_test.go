package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	leva "repro"
)

// writeTestCSVs lays out a small joinable database on disk.
func writeTestCSVs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	orders := "order_id,customer,amount,label\n"
	customers := "customer,segment\n"
	for i := 0; i < 80; i++ {
		seg, label := "retail", "small"
		if i%2 == 0 {
			seg, label = "wholesale", "big"
		}
		orders += fmt.Sprintf("o%03d,c%02d,%d.5,%s\n", i, i%20, 10+i%7, label)
		if i < 20 {
			customers += fmt.Sprintf("c%02d,%s\n", i, seg)
		}
	}
	mustWrite(t, filepath.Join(dir, "orders.csv"), orders)
	mustWrite(t, filepath.Join(dir, "customers.csv"), customers)
	return dir
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunEmbedWritesTSV(t *testing.T) {
	dir := writeTestCSVs(t)
	out := filepath.Join(t.TempDir(), "emb.tsv")
	err := runEmbed([]string{"-data", dir, "-out", out, "-dim", "8", "-method", "mf"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 50 {
		t.Fatalf("embedding has %d lines", len(lines))
	}
	first := strings.SplitN(lines[0], "\t", 2)
	if len(first) != 2 || len(strings.Fields(first[1])) != 8 {
		t.Fatalf("malformed line %q", lines[0])
	}
}

func TestRunEmbedMissingFlags(t *testing.T) {
	if err := runEmbed(nil); err == nil {
		t.Error("missing -data accepted")
	}
}

func TestRunTrainClassification(t *testing.T) {
	dir := writeTestCSVs(t)
	err := runTrain([]string{"-data", dir, "-base", "orders", "-target", "label",
		"-dim", "8", "-method", "mf"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEmbedThenApplyBundle(t *testing.T) {
	dir := writeTestCSVs(t)
	bundle := filepath.Join(t.TempDir(), "bundle")
	out := filepath.Join(t.TempDir(), "emb.tsv")
	if err := runEmbed([]string{"-data", dir, "-out", out, "-bundle", bundle,
		"-dim", "8", "-method", "mf"}); err != nil {
		t.Fatal(err)
	}
	feats := filepath.Join(t.TempDir(), "features.tsv")
	if err := runApply([]string{"-bundle", bundle, "-data", dir,
		"-table", "orders", "-exclude", "label", "-out", feats}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(feats)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 80 {
		t.Fatalf("feature rows = %d, want 80", len(lines))
	}
	fields := strings.Fields(strings.SplitN(lines[0], "\t", 2)[1])
	if len(fields) != 16 { // row+value at dim 8
		t.Fatalf("feature width = %d, want 16", len(fields))
	}
}

// TestRunBundleInfoAndConvert drives the bundle maintenance commands
// end to end: embed -> info on the binary bundle -> convert to the
// legacy layout -> info again -> convert back -> apply must produce
// identical features from the twice-converted bundle.
func TestRunBundleInfoAndConvert(t *testing.T) {
	dir := writeTestCSVs(t)
	bundle := filepath.Join(t.TempDir(), "bundle")
	out := filepath.Join(t.TempDir(), "emb.tsv")
	if err := runEmbed([]string{"-data", dir, "-out", out, "-bundle", bundle,
		"-dim", "8", "-method", "mf"}); err != nil {
		t.Fatal(err)
	}

	text := captureStdout(t, func() {
		if err := runBundle([]string{"info", bundle}); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"version 5", "binary (bundle.bin)", "verified against", "orders:", "customers:"} {
		if !strings.Contains(text, want) {
			t.Errorf("bundle info output missing %q:\n%s", want, text)
		}
	}

	legacy := filepath.Join(t.TempDir(), "legacy")
	if err := runBundle([]string{"convert", "-in", bundle, "-out", legacy, "-format", "legacy"}); err != nil {
		t.Fatal(err)
	}
	text = captureStdout(t, func() {
		if err := runBundle([]string{"info", legacy}); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(text, "version 3") || !strings.Contains(text, "legacy JSON") {
		t.Errorf("legacy bundle info wrong:\n%s", text)
	}

	upgraded := filepath.Join(t.TempDir(), "upgraded")
	if err := runBundle([]string{"convert", "-in", legacy, "-out", upgraded, "-format", "binary"}); err != nil {
		t.Fatal(err)
	}

	// The twice-converted bundle must featurize byte-identically.
	want := applyFeatures(t, bundle, dir)
	got := applyFeatures(t, upgraded, dir)
	if want != got {
		t.Error("features changed across binary -> legacy -> binary conversion")
	}

	if err := runBundle([]string{"nonsense"}); err == nil {
		t.Error("unknown bundle subcommand accepted")
	}
	if err := runBundle(nil); err == nil {
		t.Error("bare bundle command accepted")
	}
	if err := runBundle([]string{"convert", "-in", bundle, "-out", legacy, "-format", "xml"}); err == nil {
		t.Error("unknown convert format accepted")
	}
}

func applyFeatures(t *testing.T, bundle, data string) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "features.tsv")
	if err := runApply([]string{"-bundle", bundle, "-data", data,
		"-table", "orders", "-exclude", "label", "-out", out}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunApplyErrors(t *testing.T) {
	if err := runApply(nil); err == nil {
		t.Error("missing flags accepted")
	}
	dir := writeTestCSVs(t)
	if err := runApply([]string{"-bundle", t.TempDir(), "-data", dir, "-table", "orders"}); err == nil {
		t.Error("empty bundle accepted")
	}
}

func TestRunTrainErrors(t *testing.T) {
	dir := writeTestCSVs(t)
	if err := runTrain([]string{"-data", dir, "-base", "nope", "-target", "x"}); err == nil {
		t.Error("unknown base accepted")
	}
	if err := runTrain([]string{"-data", dir, "-base", "orders", "-target", "nope"}); err == nil {
		t.Error("unknown target accepted")
	}
	if err := runTrain(nil); err == nil {
		t.Error("missing flags accepted")
	}
}

// TestRunEmbedCacheWarm runs embed twice against one cache directory
// and checks the warm output is byte-identical, plus -no-cache still
// works.
func TestRunEmbedCacheWarm(t *testing.T) {
	dir := writeTestCSVs(t)
	tmp := t.TempDir()
	cache := filepath.Join(tmp, "cache")
	cold := filepath.Join(tmp, "cold.tsv")
	warm := filepath.Join(tmp, "warm.tsv")
	args := []string{"-data", dir, "-dim", "8", "-method", "mf", "-cache", cache}
	if err := runEmbed(append([]string{"-out", cold}, args...)); err != nil {
		t.Fatal(err)
	}
	if err := runEmbed(append([]string{"-out", warm}, args...)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(cold)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("warm cached embed differs from cold embed")
	}
	if _, err := os.Stat(filepath.Join(cache, "embed")); err != nil {
		t.Errorf("cache has no embed stage entries: %v", err)
	}

	off := filepath.Join(tmp, "off.tsv")
	if err := runEmbed(append([]string{"-out", off, "-no-cache"}, args...)); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(off)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Fatal("-no-cache embed differs from cached embed")
	}
}

// TestResolveCacheDir pins the -cache/-no-cache resolution rules.
func TestResolveCacheDir(t *testing.T) {
	if got := resolveCacheDir("d", "", false); got != filepath.Join("d", ".leva-cache") {
		t.Errorf("default = %q", got)
	}
	if got := resolveCacheDir("d", "elsewhere", false); got != "elsewhere" {
		t.Errorf("explicit = %q", got)
	}
	if got := resolveCacheDir("d", "elsewhere", true); got != "" {
		t.Errorf("-no-cache = %q", got)
	}
}

// TestRunEmbedMetricsDump runs embed with -metrics-dump and requires
// the Prometheus rendering of the build registry on stderr, with the
// stage-duration histogram fed by the same spans Timings reports.
func TestRunEmbedMetricsDump(t *testing.T) {
	dir := writeTestCSVs(t)
	out := filepath.Join(t.TempDir(), "emb.tsv")

	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := runEmbed([]string{"-data", dir, "-out", out, "-dim", "8",
		"-method", "mf", "-no-cache", "-metrics-dump"})
	w.Close()
	os.Stderr = old
	captured, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	text := string(captured)
	for _, want := range []string{
		"# TYPE leva_build_stage_duration_seconds histogram",
		`leva_build_stage_duration_seconds_count{stage="embed"} 1`,
		"leva_builds_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("-metrics-dump output missing %q", want)
		}
	}
}

// TestRunEmbedQuantize: -quantize writes a bundle whose quant section
// round-trips through LoadBundle, reports itself in bundle info, and
// the -index build still answers neighbor queries.
func TestRunEmbedQuantize(t *testing.T) {
	dir := writeTestCSVs(t)
	bundle := filepath.Join(t.TempDir(), "bundle")
	index := filepath.Join(t.TempDir(), "index")
	out := filepath.Join(t.TempDir(), "emb.tsv")
	if err := runEmbed([]string{"-data", dir, "-out", out, "-bundle", bundle,
		"-index", index, "-quantize", "-dim", "8", "-method", "mf", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	res, err := leva.LoadBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quant == nil {
		t.Fatal("-quantize bundle loaded without a quant section")
	}
	if res.Quant.Rows != res.Embedding.Len() || res.Quant.Cols != res.Embedding.Dim {
		t.Fatalf("quant shape %dx%d, embedding %dx%d",
			res.Quant.Rows, res.Quant.Cols, res.Embedding.Len(), res.Embedding.Dim)
	}
	floatArena := int64(8 * res.Embedding.Len() * res.Embedding.Dim)
	if res.Quant.Bytes()*4 > floatArena {
		t.Errorf("quant arena %d bytes is not >=4x smaller than the float arena %d", res.Quant.Bytes(), floatArena)
	}

	text := captureStdout(t, func() {
		if err := runBundle([]string{"info", bundle}); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(text, "quantized:") {
		t.Errorf("bundle info does not report the quant section:\n%s", text)
	}

	// The saved index stays portable float; a neighbors query resolves.
	token := res.Embedding.Names()[0]
	text = captureStdout(t, func() {
		if err := runNeighbors([]string{"-index", index, "-token", token, "-k", "3"}); err != nil {
			t.Fatal(err)
		}
	})
	if len(strings.Split(strings.TrimSpace(text), "\n")) != 3 {
		t.Errorf("neighbors output:\n%s", text)
	}
}
