package main

import (
	"testing"

	"repro/internal/experiments"
)

// The CLI is a thin wrapper over experiments.Run; verify the registry
// contract it relies on.
func TestExperimentIDsNonEmpty(t *testing.T) {
	ids := experiments.IDs()
	if len(ids) < 14 {
		t.Fatalf("registry has %d experiments", len(ids))
	}
	for _, id := range ids {
		if id == "" || id == "all" {
			t.Errorf("invalid id %q", id)
		}
	}
}

func TestCheapExperimentsRunThroughRegistry(t *testing.T) {
	for _, id := range []string{"table4", "ext-valuenodes"} {
		res, err := experiments.Run(id, experiments.Options{Scale: 0.03, Seed: 1, Dim: 8})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.String() == "" {
			t.Errorf("%s: empty render", id)
		}
	}
}
