// Command levabench regenerates the paper's tables and figures on the
// synthetic workloads. Run one experiment by id, or "all":
//
//	levabench -exp fig4 -scale 0.15 -seed 42
//	levabench -exp all
//
// Scale 1.0 approximates the published dataset sizes; the default is
// sized for a small machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (one of: "+strings.Join(experiments.IDs(), ", ")+", all)")
	scale := flag.Float64("scale", 0, "dataset scale factor (default 0.15; 1.0 = paper-sized)")
	seed := flag.Int64("seed", 42, "random seed")
	dim := flag.Int("dim", 0, "embedding dimension (default 64)")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text tables")
	flag.Parse()

	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{Scale: *scale, Seed: *seed, Dim: *dim}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "levabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		took := time.Since(start).Round(time.Millisecond)
		if *asJSON {
			out, err := json.Marshal(map[string]any{
				"experiment": id,
				"tookMs":     took.Milliseconds(),
				"result":     res,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "levabench: %s: marshal: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			continue
		}
		fmt.Printf("== %s (took %v) ==\n%s\n", id, took, res)
	}
}
