package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/synth"
)

// TestDaemonEndToEnd drives the whole lifecycle in process: build and
// save a bundle, start the daemon on an ephemeral port, hit /healthz
// and /v1/featurize, verify the served features match offline
// featurization byte for byte, then deliver a real SIGTERM and require
// a clean drained exit.
func TestDaemonEndToEnd(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 9})
	res, err := core.BuildEmbedding(spec.DB, core.Config{Dim: 6, Seed: 9, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}

	readyFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{
			"-bundle", dir,
			"-addr", "127.0.0.1:0",
			"-ready-file", readyFile,
			"-quiet",
		})
	}()

	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if data, err := os.ReadFile(readyFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
	}
	if addr == "" {
		t.Fatal("daemon never wrote the ready file")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	base := spec.DB.Table(spec.BaseTable)
	want, err := res.Featurize(base.SelectRows([]int{0}), spec.BaseTable,
		[]string{spec.Target}, func(int) int { return -1 })
	if err != nil {
		t.Fatal(err)
	}
	row := map[string]any{}
	for _, c := range base.Columns {
		switch v := c.Values[0]; v.Kind {
		case 1: // KindString
			row[c.Name] = v.Str
		default:
			row[c.Name] = v.Num
		}
	}
	body, _ := json.Marshal(map[string]any{
		"table":   spec.BaseTable,
		"rows":    []any{row},
		"exclude": []string{spec.Target},
	})
	resp, err = http.Post("http://"+addr+"/v1/featurize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Features [][]float64 `json:"features"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("featurize: status %d", resp.StatusCode)
	}
	if len(out.Features) != 1 || len(out.Features[0]) != len(want[0]) {
		t.Fatalf("featurize shape: %d x %d, want 1 x %d", len(out.Features), len(out.Features[0]), len(want[0]))
	}
	for j := range want[0] {
		if out.Features[0][j] != want[0][j] {
			t.Fatalf("feature %d: served %v != offline %v", j, out.Features[0][j], want[0][j])
		}
	}

	// SIGTERM → graceful drain → clean exit. run installed its signal
	// handler before serving, so the test binary survives the signal.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s of SIGTERM")
	}
}

// TestDaemonHotReloadOnSIGHUP republishes the bundle directory in place
// (SaveBundle's atomic swap), delivers a real SIGHUP, and requires the
// daemon to serve the new embedding without restarting.
func TestDaemonHotReloadOnSIGHUP(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 9})
	resA, err := core.BuildEmbedding(spec.DB, core.Config{Dim: 6, Seed: 9, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := core.BuildEmbedding(spec.DB, core.Config{Dim: 6, Seed: 10, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := resA.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}

	readyFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{
			"-bundle", dir, "-addr", "127.0.0.1:0", "-ready-file", readyFile, "-quiet",
		})
	}()
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if data, err := os.ReadFile(readyFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
	}
	if addr == "" {
		t.Fatal("daemon never wrote the ready file")
	}

	featurize := func() []float64 {
		base := spec.DB.Table(spec.BaseTable)
		row := map[string]any{}
		for _, c := range base.Columns {
			switch v := c.Values[0]; v.Kind {
			case 1: // KindString
				row[c.Name] = v.Str
			default:
				row[c.Name] = v.Num
			}
		}
		body, _ := json.Marshal(map[string]any{
			"table": spec.BaseTable, "rows": []any{row}, "exclude": []string{spec.Target},
		})
		resp, err := http.Post("http://"+addr+"/v1/featurize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Features [][]float64 `json:"features"`
		}
		if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
			t.Fatalf("featurize: status %d", resp.StatusCode)
		}
		return out.Features[0]
	}
	offline := func(res *core.Result) []float64 {
		base := spec.DB.Table(spec.BaseTable)
		want, err := res.Featurize(base.SelectRows([]int{0}), spec.BaseTable,
			[]string{spec.Target}, func(int) int { return -1 })
		if err != nil {
			t.Fatal(err)
		}
		return want[0]
	}
	eq := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	if !eq(featurize(), offline(resA)) {
		t.Fatal("pre-reload serving does not match bundle A")
	}
	// Publish bundle B into the same directory (atomic directory swap),
	// then signal the running daemon.
	if err := resB.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	wantB := offline(resB)
	swapped := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if eq(featurize(), wantB) {
			swapped = true
			break
		}
	}
	if !swapped {
		t.Fatal("daemon never served bundle B after SIGHUP")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s of SIGTERM")
	}
}

// TestRunRefusesCorruptBundle flips one byte of the embedding file and
// requires startup to fail with an error naming it.
func TestRunRefusesCorruptBundle(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 20, Seed: 7})
	res, err := core.BuildEmbedding(spec.DB, core.Config{Dim: 4, Seed: 7, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bundle.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(context.Background(), []string{"-bundle", dir, "-addr", "127.0.0.1:0", "-quiet"})
	if err == nil {
		t.Fatal("daemon started on a corrupt bundle")
	}
	if !strings.Contains(err.Error(), "bundle.bin") {
		t.Errorf("startup error does not name the corrupt file: %v", err)
	}
}

func TestRunRejectsMissingBundle(t *testing.T) {
	if err := run(context.Background(), []string{}); err == nil {
		t.Error("run without -bundle succeeded")
	}
	if err := run(context.Background(), []string{"-bundle", filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Error("run with nonexistent bundle succeeded")
	}
}

// TestDaemonDebugEndpoints starts the daemon with -debug-addr and
// checks the second listener: /debug/vars returns the metric registry
// as JSON and the pprof index answers. The debug address is published
// to <ready-file>.debug before the main ready file appears.
func TestDaemonDebugEndpoints(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 20, Seed: 5})
	res, err := core.BuildEmbedding(spec.DB, core.Config{Dim: 4, Seed: 5, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}

	readyFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{
			"-bundle", dir,
			"-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
			"-ready-file", readyFile,
			"-quiet",
		})
	}()
	var addr, debugAddr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if data, err := os.ReadFile(readyFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
	}
	if addr == "" {
		t.Fatal("daemon never wrote the ready file")
	}
	if data, err := os.ReadFile(readyFile + ".debug"); err != nil {
		t.Fatalf("debug ready file: %v", err)
	} else {
		debugAddr = string(data)
	}

	resp, err := http.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"leva_bundle_generation", "leva_http_requests_total", "leva_go_goroutines"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	if gen, ok := vars["leva_bundle_generation"].(float64); !ok || gen != 1 {
		t.Errorf("leva_bundle_generation = %v, want 1", vars["leva_bundle_generation"])
	}

	resp, err = http.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", resp.StatusCode)
	}

	// The main listener serves Prometheus text now; spot-check one
	// family so the two exposition surfaces agree.
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "leva_bundle_generation 1") {
		t.Error("/metrics text exposition missing leva_bundle_generation 1")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s of SIGTERM")
	}
}

// TestDaemonQuantizedServing: -quantize serves /v1/neighbors from the
// int8 arena (healthz reports it) while /v1/featurize keeps answering
// from the float arena, and -quantize without -index is refused.
func TestDaemonQuantizedServing(t *testing.T) {
	if err := run(context.Background(), []string{"-bundle", t.TempDir(), "-quantize"}); err == nil ||
		!strings.Contains(err.Error(), "-index") {
		t.Fatalf("-quantize without -index: err = %v, want a refusal naming -index", err)
	}

	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 9})
	res, err := core.BuildEmbedding(spec.DB, core.Config{Dim: 6, Seed: 9, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	res.Quant = embed.Quantize(res.Embedding.Matrix())
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	ix, err := ann.Build(res.Embedding, ann.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	indexDir := t.TempDir()
	if err := ix.Save(indexDir); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	readyFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-bundle", dir, "-index", indexDir, "-quantize",
			"-addr", "127.0.0.1:0", "-ready-file", readyFile, "-quiet",
		})
	}()
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if data, err := os.ReadFile(readyFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
	}
	if addr == "" {
		t.Fatal("daemon never wrote the ready file")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["quantized"] != true {
		t.Errorf("healthz quantized = %v, want true", hz["quantized"])
	}
	if qb, ok := hz["quantBytes"].(float64); !ok || qb <= 0 {
		t.Errorf("healthz quantBytes = %v, want > 0", hz["quantBytes"])
	}

	token := res.Embedding.Names()[0]
	resp, err = http.Get("http://" + addr + "/v1/neighbors?token=" + token + "&k=3")
	if err != nil {
		t.Fatal(err)
	}
	var nb struct {
		Neighbors []struct {
			Token string  `json:"token"`
			Score float64 `json:"score"`
		} `json:"neighbors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&nb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(nb.Neighbors) != 3 {
		t.Fatalf("neighbors: status %d, %d results", resp.StatusCode, len(nb.Neighbors))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s of context cancel")
	}
}
