// Command levad is Leva's embedding-serving daemon: it loads a
// deployment bundle saved with `leva embed -bundle` (or
// Result.SaveBundle) and answers online featurization over HTTP, so a
// relational embedding built once can featurize rows for any number of
// downstream tasks without retraining.
//
//	levad -bundle ./bundle -addr :9090
//
// Endpoints:
//
//	POST /v1/featurize         rows in, dense feature vectors out
//	GET  /v1/embedding/{token}  one embedding vector
//	GET  /v1/neighbors          top-k ANN neighbors by token (with -index)
//	POST /v1/neighbors          top-k ANN neighbors by token or raw vector
//	GET  /healthz              liveness + degradation (per-breaker state)
//	GET  /metrics              Prometheus text (?format=json for JSON)
//	POST /admin/reload         hot-reload the bundle (and index) directory
//	GET  /admin/chaos          chaos-harness state (POST reconfigures;
//	                           503 unless started with -chaos)
//
// With -debug-addr, a second listener serves net/http/pprof under
// /debug/pprof/ and a JSON metric dump at /debug/vars — bind it to
// loopback in production.
//
// The daemon admits load through an adaptive AIMD limiter capped at
// -max-inflight (excess requests queue up to -queue for -queue-timeout,
// then shed with 429 + Retry-After), honors client deadlines sent as
// X-Leva-Deadline-Ms, circuit-breaks its dependencies (ANN searches
// degrade to exact brute-force scans marked "degraded":true; pass
// -no-fallback for 503s instead), times out individual requests at
// -request-timeout, logs one structured JSON record per request to
// stderr, and on SIGINT/SIGTERM stops accepting connections and drains
// in-flight requests for up to -drain-timeout before exiting. SIGHUP
// (or POST /admin/reload) re-reads the bundle directory and swaps it in
// without dropping in-flight requests; a bundle that fails validation
// is rejected and the current one keeps serving. -mmap memory-maps the
// bundle payload so loads and reloads cost page-table setup plus an
// integrity hash instead of copying every vector. -quantize answers
// neighbor searches from an int8-quantized arena (8x less memory
// traffic) with an exact float64 re-rank of the final beam;
// /v1/featurize is unaffected. -chaos arms seeded
// request-level fault injection for resilience drills. See
// docs/SERVING.md and docs/OPERATIONS.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	leva "repro"
	"repro/internal/ann"
	"repro/internal/resilience"
	"repro/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "levad:", err)
		os.Exit(1)
	}
}

// run is main minus the exit code, so tests can drive the full daemon
// lifecycle — including signal-triggered draining — in process.
func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("levad", flag.ContinueOnError)
	bundle := fs.String("bundle", "", "deployment bundle directory (required; from `leva embed -bundle`)")
	indexDir := fs.String("index", "", "ANN index directory (from `leva embed -index`); enables /v1/neighbors")
	addr := fs.String("addr", ":9090", "HTTP listen address (use 127.0.0.1:0 for an ephemeral port)")
	maxInFlight := fs.Int("max-inflight", 64, "adaptive concurrency ceiling: admitted requests before queueing and shedding 429s")
	queueLen := fs.Int("queue", 16, "requests allowed to wait for an admission slot (0 sheds immediately at the limit)")
	queueTimeout := fs.Duration("queue-timeout", 100*time.Millisecond, "max wait in the admission queue before shedding 429")
	depTimeout := fs.Duration("dep-timeout", 2*time.Second, "per-call budget for circuit-broken dependencies like the ANN index (0 disables)")
	breakerFailures := fs.Int("breaker-failures", 5, "consecutive dependency failures that trip its circuit breaker")
	breakerOpenFor := fs.Duration("breaker-open-for", 5*time.Second, "how long a tripped breaker rejects calls before probing recovery")
	chaosSpec := fs.String("chaos", "", "arm the chaos harness with a fault spec, e.g. 'seed=1;ann:err=0.3,lat=400ms' (targets: http, ann, rowcache; empty = no fault injection, ever)")
	noFallback := fs.Bool("no-fallback", false, "answer 503 instead of degraded brute-force neighbor scans when the ANN dependency is broken")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request handler budget (503 on expiry)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	cacheSize := fs.Int("cache", 4096, "LRU entries for fully-featurized rows (0 disables)")
	batchWindow := fs.Duration("batch-window", 0, "micro-batch gather window for concurrent lookups (0 disables)")
	batchMax := fs.Int("batch-max", 64, "max rows per micro-batch")
	workers := fs.Int("workers", 0, "featurization worker goroutines per batch (0 = all cores)")
	mmapBundle := fs.Bool("mmap", false, "memory-map the bundle payload instead of reading it (binary bundles on supporting platforms; reloads then cost page-table setup plus an integrity hash, not a vector copy)")
	quantize := fs.Bool("quantize", false, "search the ANN index on int8-quantized vectors with float64 re-ranking (needs -index; uses the bundle's quant section when present, else quantizes at startup)")
	readyFile := fs.String("ready-file", "", "write the bound address to this file once serving (for scripts; with -debug-addr, the debug address goes to <ready-file>.debug)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and /debug/vars on this separate address (disabled when empty; keep it private)")
	quiet := fs.Bool("quiet", false, "disable per-request logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bundle == "" {
		fs.Usage()
		return fmt.Errorf("-bundle is required")
	}
	if *quantize && *indexDir == "" {
		return fmt.Errorf("-quantize needs -index: only the ANN search path is quantized")
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	warn := func(msg string) { logger.Warn("bundle", slog.String("warning", msg)) }
	loadOpts := leva.LoadOptions{Warn: warn, MMap: *mmapBundle}
	res, err := leva.LoadBundleOpts(*bundle, loadOpts)
	if err != nil {
		return err
	}

	cfg := serve.Config{
		Addr:              *addr,
		MaxInFlight:       *maxInFlight,
		QueueLen:          *queueLen,
		QueueTimeout:      *queueTimeout,
		DependencyTimeout: *depTimeout,
		BreakerFailures:   *breakerFailures,
		BreakerOpenFor:    *breakerOpenFor,
		DisableFallback:   *noFallback,
		RequestTimeout:    *reqTimeout,
		CacheSize:         *cacheSize,
		BatchWindow:       *batchWindow,
		BatchMax:          *batchMax,
		Workers:           *workers,
	}
	if *cacheSize <= 0 {
		cfg.CacheSize = -1
	}
	if *reqTimeout <= 0 {
		cfg.RequestTimeout = -1
	}
	if *queueLen <= 0 {
		cfg.QueueLen = -1
	}
	if *depTimeout <= 0 {
		cfg.DependencyTimeout = -1
	}
	if *chaosSpec != "" {
		chaos, err := resilience.ParseSpec(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		cfg.Chaos = chaos
	}
	if !*quiet {
		cfg.Logger = logger
	}
	// Hot reload re-reads the same bundle directory, so a deployer can
	// atomically publish a new bundle in place (SaveBundle's rename
	// protocol) and SIGHUP the daemon without dropping a request.
	cfg.Loader = func() (*leva.Result, error) {
		return leva.LoadBundleOpts(*bundle, loadOpts)
	}
	if *indexDir != "" {
		ix, err := ann.Load(*indexDir)
		if err != nil {
			return fmt.Errorf("load ANN index: %w", err)
		}
		if ix.Dim() != res.Embedding.Dim {
			return fmt.Errorf("ANN index dim %d does not match bundle embedding dim %d (rebuild with leva embed -index)",
				ix.Dim(), res.Embedding.Dim)
		}
		if *quantize {
			// The bundle's quant section is adopted zero-copy when it
			// matches the index layout; otherwise the index quantizes
			// its own vectors. /v1/featurize stays on the float arena
			// either way.
			if err := ix.Quantize(res.Quant); err != nil {
				return fmt.Errorf("quantize ANN index: %w", err)
			}
		}
		cfg.Index = ix
		// The index reloads from the same directory alongside the
		// bundle, so one SIGHUP swaps both atomically (or neither).
		cfg.IndexLoader = func() (*ann.Index, error) {
			cand, err := ann.Load(*indexDir)
			if err != nil {
				return nil, err
			}
			if *quantize {
				// Self-quantize: the initial bundle's quant section may
				// not match a republished index, and re-deriving the
				// arena from the candidate's own vectors always does.
				if err := cand.Quantize(nil); err != nil {
					return nil, err
				}
			}
			return cand, nil
		}
	}
	srv := serve.New(res, cfg)
	bound, err := srv.Listen()
	if err != nil {
		return err
	}
	annVectors := 0
	quantized := false
	if cfg.Index != nil {
		annVectors = cfg.Index.Len()
		quantized = cfg.Index.Quantized()
	}
	logger.Info("serving",
		slog.String("bundle", *bundle),
		slog.String("addr", bound.String()),
		slog.Int("vectors", res.Embedding.Len()),
		slog.Int("dim", res.Embedding.Dim),
		slog.Int("annVectors", annVectors),
		slog.Bool("quantized", quantized),
		slog.String("method", string(res.MethodUsed)),
	)

	// The debug listener is a second, separately bindable address (so
	// production deployments can keep it on loopback while /metrics is
	// scraped remotely) carrying the profiling endpoints and a JSON dump
	// of the server's metric registry.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		go func() { _ = http.Serve(dln, debugMux(srv)) }()
		logger.Info("debug endpoints", slog.String("addr", dln.Addr().String()))
		if *readyFile != "" {
			if err := writeReadyFile(*readyFile+".debug", dln.Addr().String()); err != nil {
				return err
			}
		}
	}
	if *readyFile != "" {
		if err := writeReadyFile(*readyFile, bound.String()); err != nil {
			return err
		}
	}

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP triggers a zero-downtime reload of the bundle directory.
	// Reloads serialize inside the server, so a burst of signals runs
	// one at a time; a failed reload logs the reason and keeps the
	// current bundle serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				logger.Error("reload failed; keeping current bundle", slog.String("error", err.Error()))
			} else {
				logger.Info("reload complete", slog.String("bundle", *bundle))
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case err := <-errc:
		// Listener failure before any shutdown request.
		return err
	case <-sigCtx.Done():
		logger.Info("shutdown: draining in-flight requests", slog.Duration("budget", *drainTimeout))
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Info("shutdown: drained cleanly")
		return nil
	}
}

// debugMux carries the operator-only endpoints of -debug-addr: the
// standard pprof profile handlers and /debug/vars, a JSON rendering of
// every metric family the server's /metrics endpoint exposes (see
// docs/OBSERVABILITY.md).
func debugMux(srv *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(srv.Registry().Snapshot())
	})
	return mux
}

// writeReadyFile atomically publishes the bound address: readers polling
// the path never observe a partial write.
func writeReadyFile(path, addr string) error {
	tmp := filepath.Join(filepath.Dir(path), ".levad-ready.tmp")
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
