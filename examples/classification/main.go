// Classification example: the Genes-shaped workload from the paper's
// evaluation (predict protein localization). The predictive signal —
// functional annotations — lives in a table the base table has no
// declared relationship with; Leva recovers the link from shared gene
// identifiers and featurizes the base table accordingly.
//
// The example compares three training datasets for the same random
// forest: the base table alone, Leva MF features, and Leva RW features.
//
// Run with: go run ./examples/classification
package main

import (
	"fmt"
	"log"

	leva "repro"
	"repro/internal/synth"
)

func main() {
	// Generate the Genes-shaped dataset (3 tables, classification,
	// dirty missing markers, predominantly string columns).
	spec := synth.Genes(synth.GenesOptions{Scale: 0.25, Seed: 11})
	db := spec.DB
	fmt.Printf("database: %d tables, %d rows, %d attributes\n",
		len(db.Tables), db.TotalRows(), db.TotalAttributes())

	task := leva.Task{DB: db, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 11}

	// Base table only: the same pipeline restricted to the base table,
	// for a like-for-like comparison of what the aux tables add.
	baseTask := task
	baseTask.DB = leva.NewDatabase(db.Table(spec.BaseTable))
	run(baseTask, "base table only ", leva.MethodMF)

	run(task, "leva features MF", leva.MethodMF)
	run(task, "leva features RW", leva.MethodRW)
	fmt.Println("(higher is better; Leva pulls annotation signal into the base table)")
}

func run(task leva.Task, label string, method leva.Method) {
	cfg := leva.DefaultConfig()
	cfg.Dim = 64
	cfg.Seed = 11
	cfg.Method = method
	if method == leva.MethodRW {
		cfg.RW = leva.RWOptions{WalkLength: 40, WalksPerNode: 6, Epochs: 3}
	}
	data, err := leva.PrepareClassification(task, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rf := &leva.RandomForest{NumTrees: 60, Seed: 11}
	rf.Fit(data.XTrain, data.YClassTrain)
	acc := leva.Accuracy(rf.Predict(data.XTest), data.YClassTest)
	fmt.Printf("%s: accuracy %.3f (%d classes, %d train / %d test rows)\n",
		label, acc, data.NumClasses, len(data.XTrain), len(data.XTest))
}
