// Scalability example (paper Section 6.4): grow a dataset by a
// replication factor K and watch the two embedding methods diverge — MF
// runs an order of magnitude faster while RW allocates less, which is
// exactly the trade Leva's auto-selection arbitrates with its memory
// estimate.
//
// Run with: go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"time"

	leva "repro"
	"repro/internal/synth"
)

func main() {
	fmt.Println("K      rows   nodes   MF time     RW time     MF est.mem  RW est.mem")
	for _, k := range []int{1, 2, 4, 8} {
		db := synth.Scalability(synth.ScalabilityOptions{Replication: k, Seed: 9})

		mfDur, res := buildTimed(db, leva.MethodMF)
		rwDur, _ := buildTimed(db, leva.MethodRW)

		g := res.Graph
		fmt.Printf("%-5d  %-5d  %-6d  %-10v  %-10v  %-9s  %-9s\n",
			k, db.TotalRows(), g.NumNodes(),
			mfDur.Round(time.Millisecond), rwDur.Round(time.Millisecond),
			mb(g.EstimateMFMemoryBytes(64)), mb(g.EstimateRWMemoryBytes(40, 6)))
	}
	fmt.Println("\nauto-selection under a tight memory budget:")
	db := synth.Scalability(synth.ScalabilityOptions{Replication: 8, Seed: 9})
	cfg := leva.DefaultConfig()
	cfg.Dim = 64
	cfg.Method = leva.MethodAuto
	cfg.MemoryBudgetBytes = 1 << 20 // 1 MB: too small for MF's matrices
	cfg.RW = leva.RWOptions{WalkLength: 40, WalksPerNode: 4, Epochs: 2}
	res, err := leva.Build(db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget 1MB -> method used: %s\n", res.MethodUsed)
}

func buildTimed(db *leva.Database, method leva.Method) (time.Duration, *leva.Result) {
	cfg := leva.DefaultConfig()
	cfg.Dim = 64
	cfg.Method = method
	cfg.RW = leva.RWOptions{WalkLength: 40, WalksPerNode: 4, Epochs: 2}
	start := time.Now()
	res, err := leva.Build(db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return time.Since(start), res
}

func mb(b int64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}
