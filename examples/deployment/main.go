// Deployment example: the production loop around Leva. Auto-tune the
// configuration on a validation split, build the embedding, save the
// fitted pipeline as a bundle, reload it in a fresh "service", and
// featurize previously unseen rows — no retraining, no keys, no joins.
//
// Run with: go run ./examples/deployment
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	leva "repro"
	"repro/internal/synth"
)

func main() {
	spec := synth.FTP(synth.FTPOptions{Scale: 0.03, Seed: 31})
	task := leva.Task{DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 31}

	// 1. Auto-tune bin count and dimension on a validation split
	//    (paper Table 2's configuration strategy).
	base := leva.DefaultConfig()
	base.Dim = 48
	base.Seed = 31
	cfg, err := leva.AutoTune(task, base, leva.AutoTuneOptions{
		BinCandidates: []int{20, 50},
		DimCandidates: []int{32, 48},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-tuned: bins=%d dim=%d\n", cfg.Textify.BinCount, cfg.Dim)

	// 2. Build the embedding on the full training data (target
	//    excluded) and save the deployment bundle.
	embDB := task.DB.Without(task.BaseTable)
	embDB.Add(task.DB.Table(task.BaseTable).DropColumns(task.Target))
	cfg.Method = leva.MethodMF
	res, err := leva.Build(embDB, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dir := filepath.Join(os.TempDir(), "leva-bundle-demo")
	if err := res.SaveBundle(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved bundle to %s (%d vectors, %d-dim)\n", dir, res.Embedding.Len(), res.Embedding.Dim)

	// 3. A fresh process loads the bundle and featurizes new sessions
	//    it has never seen — composed from value-node vectors.
	service, err := leva.LoadBundle(dir)
	if err != nil {
		log.Fatal(err)
	}
	newRows := spec.DB.Table(spec.BaseTable).SelectRows([]int{0, 1, 2})
	x, err := service.Featurize(newRows, spec.BaseTable, []string{spec.Target},
		func(int) int { return -1 })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("featurized %d new rows into %d-dim vectors, first row norm %.3f\n",
		len(x), len(x[0]), norm(x[0]))
	fmt.Println("(same tokenizer, same vectors, zero retraining)")
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
