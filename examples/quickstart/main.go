// Quickstart: the paper's STUDENT example end to end.
//
// Three tables — Expenses (base), Order Info, Price Info — with the
// prediction target (total expenses) fully explained by order and price
// information that lives OUTSIDE the base table, and no foreign keys
// declared anywhere. Leva reconstructs the join structure from value
// overlap alone and featurizes the base table so a plain regressor can
// use the cross-table signal.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	leva "repro"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// Price Info: item -> price catalog.
	prices := leva.NewTable("price_info", "item", "prices")
	itemPrice := make([]float64, 30)
	for i := range itemPrice {
		itemPrice[i] = float64(5 + rng.Intn(120))
		prices.AppendRow(leva.String(fmt.Sprintf("item_%02d", i)), leva.Number(itemPrice[i]))
	}

	// Expenses (base) and Order Info. Note: no keys, no foreign keys.
	expenses := leva.NewTable("expenses", "name", "gender", "school_name", "total_expenses")
	orders := leva.NewTable("order_info", "name", "item")
	genders := []string{"female", "male"}
	for s := 0; s < 400; s++ {
		name := fmt.Sprintf("student_%03d", s)
		total := 0.0
		for k := 0; k < 2+rng.Intn(5); k++ {
			item := rng.Intn(len(itemPrice))
			total += itemPrice[item]
			orders.AppendRow(leva.String(name), leva.String(fmt.Sprintf("item_%02d", item)))
		}
		expenses.AppendRow(
			leva.String(name),
			leva.String(genders[rng.Intn(2)]),
			leva.String(fmt.Sprintf("school_%d", rng.Intn(8))),
			leva.Number(total),
		)
	}
	db := leva.NewDatabase(expenses, orders, prices)

	// One call: split, build the relational embedding on the training
	// rows (target column and test rows never reach the pipeline),
	// featurize both splits.
	cfg := leva.DefaultConfig()
	cfg.Dim = 64
	cfg.Seed = 7
	data, err := leva.PrepareRegression(leva.Task{
		DB: db, BaseTable: "expenses", Target: "total_expenses", Seed: 7,
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding: method=%s nodes=%d edges=%d dim=%d\n",
		data.Result.MethodUsed, data.Result.Graph.NumNodes(),
		data.Result.Graph.NumEdges(), data.Result.Embedding.Dim)

	// Train any off-the-shelf model on the featurized base table.
	rf := &leva.RandomForest{NumTrees: 60, Seed: 7}
	rf.FitRegression(data.XTrain, data.YRegTrain)
	pred := rf.PredictRegression(data.XTest)
	fmt.Printf("Leva features  : test MAE = %.2f\n", leva.MAE(pred, data.YRegTest))

	// Compare with the Base Table alone (gender + school only — the
	// only columns an analyst gets without solving the join problem).
	baseMAE := baseTableMAE(db, rng)
	fmt.Printf("Base table only: test MAE = %.2f\n", baseMAE)
	fmt.Println("(lower is better; Leva recovers order/price signal without any keys)")
}

// baseTableMAE trains the same model on naive base-table features.
func baseTableMAE(db *leva.Database, rng *rand.Rand) float64 {
	base := db.Table("expenses")
	n := base.NumRows()
	split := leva.TrainTestSplit(n, 0.2, 7)
	var x [][]float64
	var y []float64
	for i := 0; i < n; i++ {
		gender := 0.0
		if base.Cell(i, "gender").Str == "male" {
			gender = 1
		}
		school := float64(base.Cell(i, "school_name").Str[len("school_")] - '0')
		x = append(x, []float64{gender, school})
		y = append(y, base.Cell(i, "total_expenses").Num)
	}
	rf := &leva.RandomForest{NumTrees: 60, Seed: 7}
	sel := func(idx []int) ([][]float64, []float64) {
		var xs [][]float64
		var ys []float64
		for _, i := range idx {
			xs = append(xs, x[i])
			ys = append(ys, y[i])
		}
		return xs, ys
	}
	xTr, yTr := sel(split.Train)
	xTe, yTe := sel(split.Test)
	rf.FitRegression(xTr, yTr)
	return leva.MAE(rf.PredictRegression(xTe), yTe)
}
