// Regression example: the Bio-shaped workload (predict molecular
// bioactivity from atom- and bond-level structure stored in auxiliary
// tables). Demonstrates the Row-only vs Row+Value deployment choice and
// PCA dimension reduction from Section 4.4 of the paper.
//
// Run with: go run ./examples/regression
package main

import (
	"fmt"
	"log"

	leva "repro"
	"repro/internal/synth"
)

func main() {
	spec := synth.Bio(synth.BioOptions{Scale: 0.2, Seed: 23})
	fmt.Printf("database: %d tables, %d rows (regression target: %s.%s)\n",
		len(spec.DB.Tables), spec.DB.TotalRows(), spec.BaseTable, spec.Target)

	task := leva.Task{DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 23}

	for _, mode := range []leva.FeaturizationMode{leva.RowOnly, leva.RowPlusValue} {
		cfg := leva.DefaultConfig()
		cfg.Dim = 64
		cfg.Seed = 23
		cfg.Method = leva.MethodMF
		cfg.Featurization = mode
		data, err := leva.PrepareRegression(task, cfg)
		if err != nil {
			log.Fatal(err)
		}
		std := leva.FitStandardizer(data.XTrain)
		xTr, xTe := std.Transform(data.XTrain), std.Transform(data.XTest)
		en := &leva.ElasticNetRegression{Alpha: 0.01, L1Ratio: 0.5}
		en.FitRegression(xTr, data.YRegTrain)
		mae := leva.MAE(en.PredictRegression(xTe), data.YRegTest)
		fmt.Printf("featurization %-9s: ElasticNet test MAE = %.3f\n", mode, mae)
	}

	// Storage-constrained deployment: project the trained embedding to
	// fewer dimensions with PCA instead of retraining (Section 6.5.2).
	cfg := leva.DefaultConfig()
	cfg.Dim = 64
	cfg.Seed = 23
	cfg.Method = leva.MethodMF
	res, err := leva.Build(taskDB(task), cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []int{64, 32, 16} {
		reduced := res.Embedding.ReduceDim(k)
		fmt.Printf("embedding at %2d dims: %d vectors, %.1f KB\n",
			k, reduced.Len(), float64(reduced.Len()*k*8)/1024)
	}
	fmt.Println("(MAE: lower is better; PCA trades a little accuracy for storage)")
}

// taskDB assembles the embedding input the way PrepareRegression does:
// auxiliary tables plus the base table without its target column.
func taskDB(task leva.Task) *leva.Database {
	base := task.DB.Table(task.BaseTable)
	db := task.DB.Without(task.BaseTable)
	db.Add(base.DropColumns(task.Target))
	return db
}
