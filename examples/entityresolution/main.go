// Entity-resolution example (paper Section 6.7): Leva's relational
// embedding applied to a task it was not designed for. Two product
// catalogs describe overlapping entities under independent noise; both
// are embedded into one space and matches are predicted with
// threshold-gated mutual nearest neighbors.
//
// Run with: go run ./examples/entityresolution
package main

import (
	"fmt"
	"log"

	"repro/internal/er"
	"repro/internal/synth"
)

func main() {
	pair := synth.ER("demo_catalogs", synth.EROptions{
		Entities: 300, ExtraPerSide: 80, Noise: 0.3, Seed: 17,
	})
	fmt.Printf("catalog A: %d records, catalog B: %d records, %d true matches\n",
		pair.A.NumRows(), pair.B.NumRows(), len(pair.Matches))

	for _, method := range []er.Method{er.MethodLeva, er.MethodDeepER} {
		pred, err := er.MatchTables(pair.A, pair.B, method, er.Options{Dim: 64, Seed: 17})
		if err != nil {
			log.Fatal(err)
		}
		prec, rec, f1 := er.Score(pred, pair.Matches)
		fmt.Printf("%-8s: %3d predicted pairs, precision %.2f, recall %.2f, F1 %.2f\n",
			method, len(pred), prec, rec, f1)
	}
	fmt.Println("(Leva's embedding transfers to matching without any task-specific design)")
}
