// Benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation (each runs the corresponding experiment runner at
// a small scale and reports its wall clock), plus micro-benchmarks for
// the pipeline substrates. Regenerate any experiment at larger scale
// with cmd/levabench.
package leva_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/synth"
	"repro/internal/textify"
	"repro/internal/walk"
	"repro/internal/word2vec"
)

// benchScale keeps every experiment bench laptop-sized; levabench runs
// the same code at any scale.
const benchScale = 0.05

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{
			Scale: benchScale, Seed: 42, Dim: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.String() == "" {
			b.Fatal("empty result")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6bc(b *testing.B) { benchExperiment(b, "fig6bc") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { benchExperiment(b, "fig7c") }
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// Substrate micro-benchmarks.

func benchTokenized(b *testing.B) []*textify.TokenizedTable {
	b.Helper()
	spec := synth.Genes(synth.GenesOptions{Scale: 0.2, Seed: 1})
	model, err := textify.Fit(spec.DB, textify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tok, err := model.TransformAll(spec.DB)
	if err != nil {
		b.Fatal(err)
	}
	return tok
}

func BenchmarkTextify(b *testing.B) {
	spec := synth.Genes(synth.GenesOptions{Scale: 0.2, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := textify.Fit(spec.DB, textify.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.TransformAll(spec.DB); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphConstruction(b *testing.B) {
	tok := benchTokenized(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := graph.Build(tok, graph.Options{})
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkGraphPairwiseAblation quantifies the edge-count blowup the
// value-node construction avoids (DESIGN.md ablation).
func BenchmarkGraphPairwiseAblation(b *testing.B) {
	spec := synth.Genes(synth.GenesOptions{Scale: 0.05, Seed: 1})
	model, _ := textify.Fit(spec.DB, textify.Options{})
	tok, _ := model.TransformAll(spec.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.BuildPairwise(tok)
		b.ReportMetric(float64(g.NumEdges()), "edges")
	}
}

func BenchmarkEmbedMF(b *testing.B) {
	tok := benchTokenized(b)
	g, _ := graph.Build(tok, graph.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		embed.MF(g, embed.MFOptions{Dim: 64, Seed: 1})
	}
}

func BenchmarkWalkGeneration(b *testing.B) {
	tok := benchTokenized(b)
	g, _ := graph.Build(tok, graph.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		walk.Generate(g, walk.Options{WalkLength: 40, WalksPerNode: 4, Seed: 1})
	}
}

func BenchmarkSGNSTraining(b *testing.B) {
	tok := benchTokenized(b)
	g, _ := graph.Build(tok, graph.Options{})
	corpus := walk.Generate(g, walk.Options{WalkLength: 40, WalksPerNode: 4, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		word2vec.Train(corpus.Walks, g.NumNodes(), word2vec.Options{
			Dim: 64, Epochs: 1, Seed: 1, Subsample: -1,
		})
	}
}

func BenchmarkEndToEndPipeline(b *testing.B) {
	spec := synth.Student(synth.StudentOptions{Students: 300, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildEmbedding(spec.DB, core.Config{
			Dim: 32, Seed: 1, Method: embed.MethodMF,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineParallel measures the end-to-end embedding build
// (textify → graph → MF → featurize) at Workers=1 versus all cores.
// Run with -cpu to control GOMAXPROCS for the workers=max case, e.g.
//
//	go test -bench PipelineParallel -cpu 1,2,4
//
// On a single-core machine the two sub-benchmarks coincide; the
// parallel paths still run, they just collapse to one shard.
func BenchmarkPipelineParallel(b *testing.B) {
	spec := synth.Student(synth.StudentOptions{Students: 300, Seed: 1})
	base := spec.DB.Table(spec.BaseTable)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=max", 0}, // 0 resolves to GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.BuildEmbedding(spec.DB, core.Config{
					Dim: 32, Seed: 1, Method: embed.MethodMF, Workers: bc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Featurize(base, spec.BaseTable, []string{spec.Target},
					func(r int) int { return r }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalabilityPoint is the single-K kernel of Fig. 7a for quick
// regression tracking.
func BenchmarkScalabilityPoint(b *testing.B) {
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("K=%d/mf", k), func(b *testing.B) {
			db := synth.Scalability(synth.ScalabilityOptions{Replication: k, Seed: 1})
			model, _ := textify.Fit(db, textify.Options{})
			tok, _ := model.TransformAll(db)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, _ := graph.Build(tok, graph.Options{})
				embed.MF(g, embed.MFOptions{Dim: 32, Seed: 1})
			}
		})
	}
}

// BenchmarkPipelineIncremental measures the content-addressed stage
// cache: a cold build populates the cache, a warm no-op rebuild
// (identical inputs) loads all three stage artifacts instead of
// recomputing. The warm/cold ratio is the incremental-rebuild win.
func BenchmarkPipelineIncremental(b *testing.B) {
	spec := synth.Student(synth.StudentOptions{Students: 300, Seed: 1})
	cfg := core.Config{Dim: 32, Seed: 1, Method: embed.MethodMF}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg.CacheDir = b.TempDir() // empty cache every iteration
			b.StartTimer()
			if _, err := core.BuildEmbedding(spec.DB, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cfg.CacheDir = b.TempDir()
		if _, err := core.BuildEmbedding(spec.DB, cfg); err != nil {
			b.Fatal(err) // populate
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.BuildEmbedding(spec.DB, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Timings.Cache.Embed != core.StageCached {
				b.Fatal("warm build missed the cache")
			}
		}
	})
}
