package leva_test

import (
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLinkRe matches inline markdown links [text](target). Images and
// reference-style links are out of scope; relative file links are what
// rot when files move.
var mdLinkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks fails when any markdown file in the repo root
// or docs/ links to a relative path that does not exist. External
// (http/https/mailto) links and pure in-page #fragments are skipped —
// this lint is about file moves and renames, not the internet.
func TestDocsRelativeLinks(t *testing.T) {
	var docs []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, matches...)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown files found; lint is looking in the wrong directory")
	}

	for _, doc := range docs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLinkRe.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" { // pure in-page fragment
				continue
			}
			if unescaped, err := url.PathUnescape(target); err == nil {
				target = unescaped
			}
			resolved := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", doc, m[1], resolved)
			}
		}
	}
}
