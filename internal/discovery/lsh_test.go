package discovery

import (
	"fmt"
	"testing"
)

func TestLSHIndexFindsContainedColumn(t *testing.T) {
	// Query column is fully contained in "big" and disjoint from
	// "other"; decoy columns pad the index.
	var qv, bigv, otherv []string
	for i := 0; i < 200; i++ {
		qv = append(qv, fmt.Sprintf("s%03d", i))
		bigv = append(bigv, fmt.Sprintf("s%03d", i), fmt.Sprintf("extra%03d", i))
		otherv = append(otherv, fmt.Sprintf("zz%03d", i))
	}
	q := ProfileColumn("base", stringColumn("k", qv...))
	big := ProfileColumn("dim", stringColumn("id", bigv...))
	other := ProfileColumn("noise", stringColumn("x", otherv...))

	ix := NewLSHIndex(0.7)
	ix.Add(big)
	ix.Add(other)
	for d := 0; d < 30; d++ {
		var vals []string
		for i := 0; i < 50; i++ {
			vals = append(vals, fmt.Sprintf("d%d_%d", d, i))
		}
		ix.Add(ProfileColumn("decoy", stringColumn(fmt.Sprintf("c%d", d), vals...)))
	}
	ix.Build()
	if ix.Len() != 32 {
		t.Fatalf("indexed = %d", ix.Len())
	}

	hits := ix.Query(q)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	foundBig := false
	for _, h := range hits {
		if h.Table == "dim" {
			foundBig = true
		}
		if h.Table == "noise" {
			t.Error("disjoint column returned")
		}
	}
	if !foundBig {
		t.Error("contained column not found")
	}
}

func TestLSHIndexAgreesWithExhaustiveScan(t *testing.T) {
	// Whatever the exhaustive containment scan finds above the
	// threshold, the index must also find (modulo LSH recall, which
	// with 32 bands at containment ~1 is essentially certain).
	var qv []string
	for i := 0; i < 150; i++ {
		qv = append(qv, fmt.Sprintf("v%03d", i))
	}
	q := ProfileColumn("base", stringColumn("k", qv...))

	ix := NewLSHIndex(0.8)
	var exhaustive []string
	for c := 0; c < 20; c++ {
		var vals []string
		// Columns 0-4 fully contain the query; the rest are disjoint.
		if c < 5 {
			vals = append(vals, qv...)
			for i := 0; i < 20*c; i++ {
				vals = append(vals, fmt.Sprintf("pad%d_%d", c, i))
			}
		} else {
			for i := 0; i < 100; i++ {
				vals = append(vals, fmt.Sprintf("u%d_%d", c, i))
			}
		}
		p := ProfileColumn(fmt.Sprintf("t%d", c), stringColumn("col", vals...))
		ix.Add(p)
		if EstimateContainment(q, p) >= 0.8 {
			exhaustive = append(exhaustive, p.Table)
		}
	}
	ix.Build()
	hits := ix.Query(q)
	got := map[string]bool{}
	for _, h := range hits {
		got[h.Table] = true
	}
	for _, want := range exhaustive {
		if !got[want] {
			t.Errorf("index missed %s found by exhaustive scan", want)
		}
	}
}

func TestLSHQueryEmpty(t *testing.T) {
	ix := NewLSHIndex(0.8)
	ix.Build()
	if hits := ix.Query(Profile{}); hits != nil {
		t.Error("empty query returned hits")
	}
}
