// Package discovery is a small Aurum/Lazo-style data discovery system:
// MinHash sketches per column, coupled Jaccard/containment estimation,
// and automatic join-path search. It powers the paper's Disc baseline —
// the experiment showing that even with a discovery system, automatic
// join materialization stays below the hand-curated Full table, because
// discovered joins are single-hop and occasionally spurious.
package discovery

import (
	"hash/fnv"
	"sort"

	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/textify"
)

// Profile is a per-column sketch: a MinHash signature over the distinct
// normalized values plus exact cardinality and uniqueness statistics.
type Profile struct {
	Table       string
	Column      string
	Signature   []uint64
	Cardinality int
	UniqueRatio float64
	NumRows     int
}

// SketchSize is the number of MinHash permutations per signature.
const SketchSize = 128

// ProfileColumn sketches one column.
func ProfileColumn(table string, c *dataset.Column) Profile {
	distinct := make(map[string]struct{})
	for _, v := range c.Values {
		if v.IsNull() {
			continue
		}
		distinct[textify.NormalizeToken(v.Text())] = struct{}{}
	}
	sig := make([]uint64, SketchSize)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for s := range distinct {
		h := baseHash(s)
		for i := 0; i < SketchSize; i++ {
			// Cheap family of hash functions: affine transforms of
			// one 64-bit base hash, a standard MinHash trick.
			hv := h*salts[i%len(salts)] + uint64(i)*0x9e3779b97f4a7c15
			if hv < sig[i] {
				sig[i] = hv
			}
		}
	}
	return Profile{
		Table:       table,
		Column:      c.Name,
		Signature:   sig,
		Cardinality: len(distinct),
		UniqueRatio: c.UniqueRatio(),
		NumRows:     c.Len(),
	}
}

var salts = [...]uint64{
	0xff51afd7ed558ccd, 0xc4ceb9fe1a85ec53, 0x9e3779b97f4a7c15,
	0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0x2545f4914f6cdd1d,
	0xd6e8feb86659fd93, 0xa3aaacb9f9e3b7d1,
}

func baseHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ProfileDatabase sketches every column of every table.
func ProfileDatabase(db *dataset.Database) []Profile {
	var out []Profile
	for _, t := range db.Tables {
		for _, c := range t.Columns {
			out = append(out, ProfileColumn(t.Name, c))
		}
	}
	return out
}

// EstimateJaccard estimates |A∩B| / |A∪B| from two signatures.
func EstimateJaccard(a, b Profile) float64 {
	if len(a.Signature) != len(b.Signature) || len(a.Signature) == 0 {
		return 0
	}
	match := 0
	for i, v := range a.Signature {
		if v == b.Signature[i] {
			match++
		}
	}
	return float64(match) / float64(len(a.Signature))
}

// EstimateContainment estimates |A∩B| / |A| using the Lazo-style
// cardinality-coupled conversion from the Jaccard estimate.
func EstimateContainment(a, b Profile) float64 {
	if a.Cardinality == 0 {
		return 0
	}
	j := EstimateJaccard(a, b)
	inter := j / (1 + j) * float64(a.Cardinality+b.Cardinality)
	c := inter / float64(a.Cardinality)
	if c > 1 {
		c = 1
	}
	return c
}

// CandidateJoin is a discovered join from a base-table column to
// another table's column.
type CandidateJoin struct {
	BaseColumn  string
	Table       string
	Column      string
	Containment float64
}

// Options tunes the join search.
type Options struct {
	// ContainmentThreshold is the minimum estimated containment of the
	// base column in the candidate column. Default 0.8.
	ContainmentThreshold float64
	// MinCardinality filters out trivially small domains (for example
	// boolean flags) that would match everything. Default 3.
	MinCardinality int
	// MaxJoins caps how many discovered joins are materialized, best
	// first. Default 10.
	MaxJoins int
	// UseLSH forces the LSH-Ensemble index path. By default the index
	// kicks in automatically once the database has more than
	// LSHColumnThreshold columns, where the exhaustive pairwise scan
	// stops being cheap.
	UseLSH bool
}

// LSHColumnThreshold is the column count above which DiscoverJoins
// switches to the LSH index automatically.
const LSHColumnThreshold = 64

func (o Options) withDefaults() Options {
	if o.ContainmentThreshold <= 0 {
		o.ContainmentThreshold = 0.8
	}
	if o.MinCardinality <= 0 {
		o.MinCardinality = 3
	}
	if o.MaxJoins <= 0 {
		o.MaxJoins = 10
	}
	return o
}

// DiscoverJoins searches for candidate joins from baseName's columns to
// columns of other tables, ranked by containment. The search is purely
// syntactic: it can and does return spurious joins when unrelated
// columns share value domains, which is exactly the failure mode the
// Disc baseline exhibits in the paper.
func DiscoverJoins(db *dataset.Database, baseName string, opts Options) []CandidateJoin {
	opts = opts.withDefaults()
	base := db.Table(baseName)
	if base == nil {
		return nil
	}
	baseProfiles := make(map[string]Profile, base.NumCols())
	for _, c := range base.Columns {
		baseProfiles[c.Name] = ProfileColumn(baseName, c)
	}
	var cands []CandidateJoin
	if opts.UseLSH || db.TotalAttributes() > LSHColumnThreshold {
		ix := NewLSHIndex(opts.ContainmentThreshold)
		for _, t := range db.Tables {
			if t.Name == baseName {
				continue
			}
			for _, c := range t.Columns {
				p := ProfileColumn(t.Name, c)
				if p.Cardinality >= opts.MinCardinality {
					ix.Add(p)
				}
			}
		}
		ix.Build()
		// Iterate base columns in schema order, not map order, so the
		// candidate list (and the MaxJoins cut below) is deterministic.
		for _, bc := range base.Columns {
			bp := baseProfiles[bc.Name]
			if bp.Cardinality < opts.MinCardinality {
				continue
			}
			for _, hit := range ix.Query(bp) {
				cands = append(cands, CandidateJoin{
					BaseColumn:  bp.Column,
					Table:       hit.Table,
					Column:      hit.Column,
					Containment: EstimateContainment(bp, hit),
				})
			}
		}
	} else {
		for _, t := range db.Tables {
			if t.Name == baseName {
				continue
			}
			for _, c := range t.Columns {
				p := ProfileColumn(t.Name, c)
				if p.Cardinality < opts.MinCardinality {
					continue
				}
				for _, bc := range base.Columns {
					bp := baseProfiles[bc.Name]
					if bp.Cardinality < opts.MinCardinality {
						continue
					}
					cont := EstimateContainment(bp, p)
					if cont >= opts.ContainmentThreshold {
						cands = append(cands, CandidateJoin{
							BaseColumn:  bp.Column,
							Table:       t.Name,
							Column:      c.Name,
							Containment: cont,
						})
					}
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Containment != cands[j].Containment {
			return cands[i].Containment > cands[j].Containment
		}
		if cands[i].Table != cands[j].Table {
			return cands[i].Table < cands[j].Table
		}
		if cands[i].Column != cands[j].Column {
			return cands[i].Column < cands[j].Column
		}
		return cands[i].BaseColumn < cands[j].BaseColumn
	})
	if len(cands) > opts.MaxJoins {
		cands = cands[:opts.MaxJoins]
	}
	return cands
}

// Materialize left-joins every discovered candidate into the base table
// (single hop, 1:N aggregated) and returns the augmented table together
// with the joins used.
func Materialize(db *dataset.Database, baseName string, opts Options) (*dataset.Table, []CandidateJoin) {
	cands := DiscoverJoins(db, baseName, opts)
	base := db.Table(baseName)
	if base == nil {
		return nil, nil
	}
	out := base.Clone()
	for i, c := range cands {
		other := db.Table(c.Table)
		if other == nil {
			continue
		}
		prefix := c.Table + "#" + itoa(i)
		out = join.LeftJoinOn(out, c.BaseColumn, other, c.Column, prefix)
	}
	return out, cands
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
