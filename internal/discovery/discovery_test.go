package discovery

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func stringColumn(name string, vals ...string) *dataset.Column {
	c := &dataset.Column{Name: name}
	for _, v := range vals {
		c.Values = append(c.Values, dataset.String(v))
	}
	return c
}

func TestMinHashJaccardAccuracy(t *testing.T) {
	// Two sets with known overlap: |A|=|B|=200, |A∩B|=100 -> J = 1/3.
	var a, b []string
	for i := 0; i < 100; i++ {
		shared := fmt.Sprintf("s%03d", i)
		a = append(a, shared, fmt.Sprintf("a%03d", i))
		b = append(b, shared, fmt.Sprintf("b%03d", i))
	}
	pa := ProfileColumn("ta", stringColumn("x", a...))
	pb := ProfileColumn("tb", stringColumn("y", b...))
	j := EstimateJaccard(pa, pb)
	if math.Abs(j-1.0/3.0) > 0.12 {
		t.Errorf("Jaccard estimate %v, want ~0.333", j)
	}
	// Containment of A in B = 0.5.
	c := EstimateContainment(pa, pb)
	if math.Abs(c-0.5) > 0.15 {
		t.Errorf("containment estimate %v, want ~0.5", c)
	}
}

func TestMinHashIdenticalAndDisjoint(t *testing.T) {
	var xs []string
	for i := 0; i < 50; i++ {
		xs = append(xs, fmt.Sprintf("v%d", i))
	}
	p1 := ProfileColumn("a", stringColumn("c", xs...))
	p2 := ProfileColumn("b", stringColumn("d", xs...))
	if j := EstimateJaccard(p1, p2); j != 1 {
		t.Errorf("identical sets Jaccard = %v", j)
	}
	var ys []string
	for i := 0; i < 50; i++ {
		ys = append(ys, fmt.Sprintf("w%d", i))
	}
	p3 := ProfileColumn("c", stringColumn("e", ys...))
	if j := EstimateJaccard(p1, p3); j > 0.1 {
		t.Errorf("disjoint sets Jaccard = %v", j)
	}
}

func TestDiscoverJoinsFindsPlantedJoin(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 80, Seed: 2})
	cands := DiscoverJoins(spec.DB, "expenses", Options{})
	found := false
	for _, c := range cands {
		if c.BaseColumn == "name" && c.Table == "order_info" && c.Column == "name" {
			found = true
		}
	}
	if !found {
		t.Errorf("planted name join not discovered; got %+v", cands)
	}
}

func TestMaterializeAttachesColumns(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 60, Seed: 3})
	out, cands := Materialize(spec.DB, "expenses", Options{})
	if out == nil || len(cands) == 0 {
		t.Fatal("nothing materialized")
	}
	if out.NumRows() != 60 {
		t.Errorf("row count changed: %d", out.NumRows())
	}
	if out.NumCols() <= spec.DB.Table("expenses").NumCols() {
		t.Error("no columns attached")
	}
}

func TestProfileDatabaseCoversAllColumns(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 10, Seed: 4})
	profiles := ProfileDatabase(spec.DB)
	if len(profiles) != spec.DB.TotalAttributes() {
		t.Errorf("profiles = %d, want %d", len(profiles), spec.DB.TotalAttributes())
	}
}

func TestDiscoverJoinsLSHPathMatchesScan(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 80, Seed: 2})
	scan := DiscoverJoins(spec.DB, "expenses", Options{})
	lsh := DiscoverJoins(spec.DB, "expenses", Options{UseLSH: true})
	key := func(c CandidateJoin) string {
		return c.BaseColumn + "|" + c.Table + "|" + c.Column
	}
	scanSet := map[string]bool{}
	for _, c := range scan {
		scanSet[key(c)] = true
	}
	for _, c := range lsh {
		if !scanSet[key(c)] {
			t.Errorf("LSH found %v absent from scan", c)
		}
	}
	// The planted join must survive the LSH path too.
	found := false
	for _, c := range lsh {
		if c.BaseColumn == "name" && c.Table == "order_info" {
			found = true
		}
	}
	if !found {
		t.Error("LSH path lost the planted join")
	}
}

// Property: Jaccard estimates are symmetric and bounded.
func TestJaccardSymmetryProperty(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		var a, b []string
		for i := 0; i < 30; i++ {
			a = append(a, fmt.Sprintf("x%d", (int(seedA)+i*7)%40))
			b = append(b, fmt.Sprintf("x%d", (int(seedB)+i*3)%40))
		}
		pa := ProfileColumn("a", stringColumn("c", a...))
		pb := ProfileColumn("b", stringColumn("d", b...))
		j1, j2 := EstimateJaccard(pa, pb), EstimateJaccard(pb, pa)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDiscoverJoinsDeterministic guards against map-iteration order
// leaking into the candidate list: several base columns sharing a value
// domain tie on containment, and the MaxJoins cut must still pick the
// same candidates every run.
func TestDiscoverJoinsDeterministic(t *testing.T) {
	var vals []string
	for i := 0; i < 40; i++ {
		vals = append(vals, fmt.Sprintf("v%d", i))
	}
	base := &dataset.Table{Name: "base", Columns: []*dataset.Column{
		stringColumn("c1", vals...),
		stringColumn("c2", vals...),
		stringColumn("c3", vals...),
		stringColumn("c4", vals...),
	}}
	other := &dataset.Table{Name: "other", Columns: []*dataset.Column{
		stringColumn("k", vals...),
	}}
	db := dataset.NewDatabase(base, other)

	for _, lsh := range []bool{false, true} {
		opts := Options{MaxJoins: 2, UseLSH: lsh}
		ref := DiscoverJoins(db, "base", opts)
		if len(ref) != 2 {
			t.Fatalf("lsh=%v: expected MaxJoins cut to 2 candidates, got %d", lsh, len(ref))
		}
		for run := 0; run < 20; run++ {
			got := DiscoverJoins(db, "base", opts)
			if len(got) != len(ref) {
				t.Fatalf("lsh=%v run %d: %d candidates vs %d", lsh, run, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("lsh=%v run %d: candidate %d = %+v vs %+v", lsh, run, i, got[i], ref[i])
				}
			}
		}
	}
}
