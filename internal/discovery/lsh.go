package discovery

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// LSHIndex is an LSH-Ensemble-style index over column MinHash
// signatures (paper reference [42]): signatures are partitioned by set
// cardinality and each partition is banded so that high-containment
// candidates collide in at least one band. Querying is sublinear in the
// number of indexed columns, which is what makes discovery practical on
// databases with many tables; the exhaustive scan in DiscoverJoins stays
// as the small-database path.
type LSHIndex struct {
	bands     int
	rowsPer   int
	threshold float64
	// partitions group profiles by cardinality range; each has its
	// own band tables so the Jaccard-to-containment conversion stays
	// accurate within a partition.
	partitions []*lshPartition
	profiles   []Profile
}

type lshPartition struct {
	minCard, maxCard int
	// tables[band][bucketHash] -> profile indices
	tables []map[uint64][]int
}

// NewLSHIndex builds an index tuned for the given containment
// threshold. bands*rowsPer must not exceed SketchSize; 32 bands of 4
// rows works well for thresholds around 0.8.
func NewLSHIndex(threshold float64) *LSHIndex {
	if threshold <= 0 || threshold > 1 {
		threshold = 0.8
	}
	return &LSHIndex{bands: 32, rowsPer: 4, threshold: threshold}
}

// Add indexes a profile.
func (ix *LSHIndex) Add(p Profile) {
	ix.profiles = append(ix.profiles, p)
}

// Build finalizes the index: partitions by cardinality (powers of two)
// and fills the band tables.
func (ix *LSHIndex) Build() {
	byPartition := map[int][]int{}
	for i, p := range ix.profiles {
		byPartition[cardBucket(p.Cardinality)] = append(byPartition[cardBucket(p.Cardinality)], i)
	}
	buckets := make([]int, 0, len(byPartition))
	for b := range byPartition {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	ix.partitions = nil
	for _, b := range buckets {
		part := &lshPartition{
			minCard: 1 << b,
			maxCard: 1<<(b+1) - 1,
			tables:  make([]map[uint64][]int, ix.bands),
		}
		for band := range part.tables {
			part.tables[band] = map[uint64][]int{}
		}
		for _, pi := range byPartition[b] {
			sig := ix.profiles[pi].Signature
			for band := 0; band < ix.bands; band++ {
				h := bandHash(sig, band, ix.rowsPer)
				part.tables[band][h] = append(part.tables[band][h], pi)
			}
		}
		ix.partitions = append(ix.partitions, part)
	}
}

func cardBucket(card int) int {
	b := 0
	for card > 1 {
		card >>= 1
		b++
	}
	return b
}

func bandHash(sig []uint64, band, rowsPer int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for r := 0; r < rowsPer; r++ {
		idx := (band*rowsPer + r) % len(sig)
		binary.LittleEndian.PutUint64(buf[:], sig[idx])
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Query returns indexed profiles whose estimated containment of q
// reaches the index threshold, deduplicated and sorted by containment
// descending. Only partitions whose cardinality range could possibly
// clear the threshold are probed.
func (ix *LSHIndex) Query(q Profile) []Profile {
	if q.Cardinality == 0 {
		return nil
	}
	seen := map[int]bool{}
	var out []Profile
	for _, part := range ix.partitions {
		// Containment |Q∩C|/|Q| needs |C| >= threshold*|Q|; skip
		// partitions that are too small to qualify.
		if float64(part.maxCard) < ix.threshold*float64(q.Cardinality) {
			continue
		}
		for band := 0; band < ix.bands; band++ {
			h := bandHash(q.Signature, band, ix.rowsPer)
			for _, pi := range part.tables[band][h] {
				if seen[pi] {
					continue
				}
				seen[pi] = true
				cand := ix.profiles[pi]
				if EstimateContainment(q, cand) >= ix.threshold {
					out = append(out, cand)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci := EstimateContainment(q, out[i])
		cj := EstimateContainment(q, out[j])
		if ci != cj {
			return ci > cj
		}
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// Len returns the number of indexed profiles.
func (ix *LSHIndex) Len() int { return len(ix.profiles) }
