//go:build !linux

package durable

// MapSupported reports whether MapFile can memory-map on this platform.
const MapSupported = false

// MapFile is unavailable off linux; callers check MapSupported (or the
// returned ErrMapUnsupported) and fall back to os.ReadFile.
func MapFile(path string) ([]byte, error) {
	return nil, ErrMapUnsupported
}

// Unmap is a no-op off linux: MapFile never produces a mapping here,
// so there is nothing to release.
func Unmap(data []byte) error {
	return nil
}
