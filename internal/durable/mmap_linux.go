//go:build linux

package durable

import (
	"fmt"
	"os"
	"syscall"
)

// MapSupported reports whether MapFile can memory-map on this platform.
const MapSupported = true

// MapFile memory-maps path read-only and returns the file's bytes as a
// view over the mapping (no read, no copy — pages fault in on access).
// The mapping is page-aligned, so any 8-aligned offset within the file
// is 8-aligned in memory, which is what the bundle arena's zero-copy
// float64 view relies on.
//
// The mapping is intentionally never unmapped: callers hand out string
// and slice views into it with no lifetime tracking, and a clean
// file-backed read-only mapping costs address space, not resident
// memory, once the kernel evicts its pages. A serving process that hot
// reloads N times retains N mappings — bounded and observable, unlike
// a dangling view into an unmapped page, which is a SIGSEGV.
func MapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return []byte{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("durable: %s is %d bytes, too large to map", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("durable: mmap %s: %w", path, err)
	}
	return data, nil
}
