//go:build linux

package durable

import (
	"fmt"
	"os"
	"syscall"
)

// MapSupported reports whether MapFile can memory-map on this platform.
const MapSupported = true

// MapFile memory-maps path read-only and returns the file's bytes as a
// view over the mapping (no read, no copy — pages fault in on access).
// The mapping is page-aligned, so any 8-aligned offset within the file
// is 8-aligned in memory, which is what the bundle arena's zero-copy
// float64 view relies on.
//
// The caller owns the mapping's lifetime: pass the returned slice to
// Unmap once every view into it is unreachable. Serving code tracks
// this with the bundle generation refcount — a retired generation
// unmaps when its last in-flight request finishes; touching a view
// after that is a SIGSEGV, which is why the refcount, not a
// finalizer, is the release point.
func MapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return []byte{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("durable: %s is %d bytes, too large to map", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("durable: mmap %s: %w", path, err)
	}
	return data, nil
}

// Unmap releases a mapping returned by MapFile. data must be the exact
// slice MapFile returned (not a subslice); every view into it is
// invalid afterward. The zero-length mapping MapFile returns for an
// empty file is a no-op, as is nil.
func Unmap(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("durable: munmap: %w", err)
	}
	return nil
}
