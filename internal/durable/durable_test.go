package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicVisibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(OS(), path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content %q, want v1", got)
	}
	// Replacement is atomic: a failure mid-replace leaves the old bytes.
	ffs := NewFaultFS(OS())
	ffs.FailAt(OpWrite, 1)
	if err := WriteFile(ffs, path, []byte("v2")); err == nil {
		t.Fatal("injected write fault did not surface")
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("failed write corrupted the target: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after failed write")
	}
	if err := WriteFile(OS(), path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("content %q, want v2", got)
	}
}

func TestWriteFileChecksSyncAndClose(t *testing.T) {
	for _, op := range []Op{OpSync, OpClose, OpCreate, OpRename} {
		t.Run(string(op), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "out.txt")
			ffs := NewFaultFS(OS())
			ffs.FailAt(op, 1)
			err := WriteFile(ffs, path, []byte("data"))
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("fault on %s: err = %v, want ErrInjected", op, err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("target exists after failed %s", op)
			}
		})
	}
}

func TestShortWriteLeavesNoVisibleFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	ffs := NewFaultFS(OS())
	ffs.CrashAt(OpWrite, 1)
	ffs.ShortWrites()
	if err := WriteFile(ffs, path, []byte("hello world")); err == nil {
		t.Fatal("torn write did not surface")
	}
	// The tear hit only the temp file; the destination never appeared.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("destination visible despite torn write")
	}
}

// stage writes a complete directory with a manifest, the way a publish
// protocol would.
func stage(t *testing.T, fsys FS, dir string, files map[string]string) {
	t.Helper()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{FormatVersion: 1}
	for name, content := range files {
		if err := WriteFile(fsys, filepath.Join(dir, name), []byte(content)); err != nil {
			t.Fatal(err)
		}
		m.Add(name, []byte(content))
	}
	if err := WriteManifest(fsys, dir, m); err != nil {
		t.Fatal(err)
	}
}

func TestSwapDirPublishesAndReplaces(t *testing.T) {
	root := t.TempDir()
	final := filepath.Join(root, "artifact")

	staging := final + StagingSuffix
	stage(t, OS(), staging, map[string]string{"a.txt": "old"})
	if err := SwapDir(OS(), staging, final); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(final); err != nil {
		t.Fatalf("published dir fails verification: %v", err)
	}
	if got, _ := os.ReadFile(filepath.Join(final, "a.txt")); string(got) != "old" {
		t.Fatalf("content %q", got)
	}

	// Republish over the existing version.
	stage(t, OS(), staging, map[string]string{"a.txt": "new"})
	if err := SwapDir(OS(), staging, final); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(filepath.Join(final, "a.txt")); string(got) != "new" {
		t.Fatalf("content after replace %q, want new", got)
	}
	for _, leftover := range []string{staging, final + OldSuffix} {
		if _, err := os.Stat(leftover); !os.IsNotExist(err) {
			t.Errorf("leftover %s after clean swap", leftover)
		}
	}
}

func TestSwapDirCrashBetweenRenamesIsRecoverable(t *testing.T) {
	root := t.TempDir()
	final := filepath.Join(root, "artifact")
	staging := final + StagingSuffix

	stage(t, OS(), staging, map[string]string{"a.txt": "old"})
	if err := SwapDir(OS(), staging, final); err != nil {
		t.Fatal(err)
	}

	// Crash exactly between "move old aside" and "publish new": the
	// second rename of the swap dies.
	stage(t, OS(), staging, map[string]string{"a.txt": "new"})
	ffs := NewFaultFS(OS())
	ffs.CrashAt(OpRename, 2)
	if err := SwapDir(ffs, staging, final); err == nil {
		t.Fatal("crashed swap reported success")
	}
	if _, err := os.Stat(final); !os.IsNotExist(err) {
		t.Fatal("final dir exists mid-crash; expected the recovery window")
	}

	recovered, err := RecoverDir(OS(), final)
	if err != nil || !recovered {
		t.Fatalf("RecoverDir = %v, %v; want recovery", recovered, err)
	}
	if _, err := VerifyDir(final); err != nil {
		t.Fatalf("recovered dir fails verification: %v", err)
	}
	if got, _ := os.ReadFile(filepath.Join(final, "a.txt")); string(got) != "old" {
		t.Fatalf("recovered content %q, want the old version", got)
	}

	// Recovery is idempotent and a no-op on a healthy dir.
	if recovered, err := RecoverDir(OS(), final); err != nil || recovered {
		t.Fatalf("second RecoverDir = %v, %v; want no-op", recovered, err)
	}
}

func TestVerifyDirNamesTheBadFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "artifact")
	stage(t, OS(), dir, map[string]string{"payload.bin": "payload-bytes"})
	path := filepath.Join(dir, "payload.bin")

	t.Run("ok", func(t *testing.T) {
		if _, err := VerifyDir(dir); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		if err := os.WriteFile(path, []byte("payload-bytez"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := VerifyDir(dir)
		if err == nil || !strings.Contains(err.Error(), path) {
			t.Fatalf("corruption error does not name %s: %v", path, err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := os.WriteFile(path, []byte("pay"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := VerifyDir(dir)
		if err == nil || !strings.Contains(err.Error(), "truncated") || !strings.Contains(err.Error(), path) {
			t.Fatalf("truncation error does not name %s: %v", path, err)
		}
	})
	t.Run("missing", func(t *testing.T) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		_, err := VerifyDir(dir)
		if err == nil || !strings.Contains(err.Error(), "missing") {
			t.Fatalf("missing-file error: %v", err)
		}
	})
	t.Run("no-manifest", func(t *testing.T) {
		if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
			t.Fatal(err)
		}
		_, err := VerifyDir(dir)
		if !errors.Is(err, ErrNoManifest) {
			t.Fatalf("err = %v, want ErrNoManifest", err)
		}
	})
}

func TestFaultFSCrashModeFreezesTheDisk(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS())
	ffs.CrashAt(OpSync, 1)

	err := WriteFile(ffs, filepath.Join(dir, "a"), []byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// Everything after the crash fails, including cleanup.
	if err := ffs.RemoveAll(filepath.Join(dir, "a.tmp")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash RemoveAll = %v, want ErrCrashed", err)
	}
	// So the torn temp file is still there, exactly as at crash time.
	if _, err := os.Stat(filepath.Join(dir, "a.tmp")); err != nil {
		t.Errorf("crash-point state was mutated: %v", err)
	}
}

func TestFaultFSCountsDriveSweeps(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS())
	if err := WriteFile(ffs, filepath.Join(dir, "a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	counts := ffs.Counts()
	for _, op := range []Op{OpCreate, OpWrite, OpSync, OpClose, OpRename, OpSyncDir} {
		if counts[op] == 0 {
			t.Errorf("op %s not counted; a sweep would miss it", op)
		}
	}
	if ffs.Fired() {
		t.Error("pass-through FaultFS fired")
	}
}
