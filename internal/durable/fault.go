package durable

import (
	"errors"
	"os"
	"sync"
)

// Injection errors. ErrInjected is the fault itself; ErrCrashed is what
// every operation after a crash-mode fault returns, modeling a process
// that died at the fault point and never ran its cleanup code.
var (
	ErrInjected = errors.New("durable: injected fault")
	ErrCrashed  = errors.New("durable: filesystem crashed (simulated)")
)

// Op names one class of filesystem operation for fault targeting.
type Op string

const (
	OpCreate  Op = "create"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpClose   Op = "close"
	OpRename  Op = "rename"
	OpMkdir   Op = "mkdir"
	OpRemove  Op = "remove"
	OpSyncDir Op = "syncdir"
)

// Ops lists every injectable operation class, in the order a crash-point
// sweep should enumerate them.
var Ops = []Op{OpCreate, OpWrite, OpSync, OpClose, OpRename, OpMkdir, OpRemove, OpSyncDir}

// FaultFS wraps an FS and injects one fault at the Nth occurrence of a
// chosen operation class. Three knobs:
//
//   - FailAt(op, n): the nth op errors with ErrInjected; later
//     operations proceed normally (a transient error — the caller's
//     error path runs).
//   - CrashAt(op, n): the nth op errors, and every operation after it
//     returns ErrCrashed (a process death — no cleanup code gets to
//     touch the disk, so tests observe the exact crash-point state).
//   - ShortWrites(): paired with FailAt/CrashAt on OpWrite, the failing
//     write first writes half of its buffer through to the underlying
//     file — a torn write, not a clean failure.
//
// A FaultFS with no fault configured is a pass-through that counts
// operations; Counts() drives exhaustive crash-point sweeps.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	counts  map[Op]int
	failOp  Op
	failAt  int
	crash   bool
	short   bool
	fired   bool
	crashed bool
}

// NewFaultFS wraps inner (typically OS()) with fault injection.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, counts: make(map[Op]int)}
}

// FailAt makes the nth (1-based) operation of class op return
// ErrInjected, once.
func (f *FaultFS) FailAt(op Op, n int) { f.failOp, f.failAt, f.crash = op, n, false }

// CrashAt makes the nth (1-based) operation of class op return
// ErrInjected and every later operation return ErrCrashed.
func (f *FaultFS) CrashAt(op Op, n int) { f.failOp, f.failAt, f.crash = op, n, true }

// ShortWrites makes the injected OpWrite fault a torn write: half the
// buffer reaches the file before the error.
func (f *FaultFS) ShortWrites() { f.short = true }

// Counts reports how many operations of each class have been attempted
// (including the faulted one; excluding ops rejected by crash mode).
func (f *FaultFS) Counts() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Fired reports whether the configured fault has triggered.
func (f *FaultFS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// step accounts one operation and decides its fate: nil to proceed,
// ErrInjected at the fault point, ErrCrashed after a crash.
func (f *FaultFS) step(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.counts[op]++
	if op == f.failOp && f.counts[op] == f.failAt {
		f.fired = true
		if f.crash {
			f.crashed = true
		}
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.step(OpCreate); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.step(OpRename); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.step(OpMkdir); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) RemoveAll(path string) error {
	if err := f.step(OpRemove); err != nil {
		return err
	}
	return f.inner.RemoveAll(path)
}

// Stat is a read: it never faults (crash-point sweeps target writes),
// but it does respect crash mode so a "dead" process cannot observe the
// disk either.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) SyncDir(path string) error {
	if err := f.step(OpSyncDir); err != nil {
		return err
	}
	return f.inner.SyncDir(path)
}

// faultFile threads a file's Write/Sync/Close through the owning
// FaultFS's fault schedule.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.fs.step(OpWrite); err != nil {
		if err == ErrInjected && ff.fs.short && len(p) > 1 {
			// Torn write: half the buffer lands before the failure.
			n, werr := ff.inner.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.step(OpSync); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	if err := ff.fs.step(OpClose); err != nil {
		// The underlying descriptor still gets closed — a crashed
		// process's fds are closed by the kernel — but the caller sees
		// the injected error, as if close reported a deferred I/O
		// failure.
		ff.inner.Close()
		return err
	}
	return ff.inner.Close()
}
