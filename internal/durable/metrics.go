package durable

import (
	"time"

	"repro/internal/obs"
)

// Latency of the two syscalls that decide publish durability and
// tail latency: fsync (of the data file and of the parent directory)
// and rename. Package-level because the durability protocol is —
// every WriteFile/SwapDir/RecoverDir in the process reports here, and
// RegisterMetrics may attach the instruments to any number of
// registries. Timings are taken around the FS interface, so
// fault-injecting test filesystems are measured the same way the real
// disk is.
var (
	fsyncSeconds = obs.NewHistogramVec("leva_durable_fsync_seconds",
		"Latency of fsync calls issued by the durability protocol, by target (file or dir).",
		obs.FsyncBuckets, "target")
	renameSeconds = obs.NewHistogram("leva_durable_rename_seconds",
		"Latency of rename calls issued by the durability protocol.",
		obs.FsyncBuckets)
	publishesTotal = obs.NewCounterVec("leva_durable_publishes_total",
		"Completed durable publishes, by kind (file = WriteFile, dir = SwapDir, recover = RecoverDir restoration).",
		"kind")
	errorsTotal = obs.NewCounter("leva_durable_errors_total",
		"Durable operations (WriteFile/SwapDir/RecoverDir) that returned an error.")
)

// RegisterMetrics attaches the durability-layer metrics to r.
func RegisterMetrics(r *obs.Registry) {
	r.Register(fsyncSeconds, renameSeconds, publishesTotal, errorsTotal)
}

// timedSync fsyncs f, recording the latency under target="file".
func timedSync(f File) error {
	start := time.Now()
	err := f.Sync()
	fsyncSeconds.With("file").ObserveDuration(time.Since(start))
	return err
}

// timedSyncDir fsyncs a directory via fsys, recording the latency
// under target="dir".
func timedSyncDir(fsys FS, path string) error {
	start := time.Now()
	err := fsys.SyncDir(path)
	fsyncSeconds.With("dir").ObserveDuration(time.Since(start))
	return err
}

// timedRename renames via fsys, recording the latency.
func timedRename(fsys FS, oldpath, newpath string) error {
	start := time.Now()
	err := fsys.Rename(oldpath, newpath)
	renameSeconds.ObserveDuration(time.Since(start))
	return err
}
