package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the integrity record written alongside a published
// directory's payload files. Its presence marks the directory as
// complete: the publish protocol writes it last, so a directory that
// has a manifest has every payload file the manifest lists.
const ManifestName = "MANIFEST.json"

// ErrNoManifest reports a directory with no MANIFEST.json — either a
// legacy artifact from before integrity records existed, or a directory
// that was never a published artifact at all. Callers decide whether
// that is fatal.
var ErrNoManifest = errors.New("durable: no " + ManifestName)

// ManifestEntry records one payload file's identity.
type ManifestEntry struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// Manifest is the decoded MANIFEST.json: a format version plus one
// entry per payload file (the manifest itself is not listed).
type Manifest struct {
	FormatVersion int             `json:"formatVersion"`
	Files         []ManifestEntry `json:"files"`
}

// Add appends an entry computed from data under the given name.
func (m *Manifest) Add(name string, data []byte) {
	sum := sha256.Sum256(data)
	m.Files = append(m.Files, ManifestEntry{
		Name:   name,
		Size:   int64(len(data)),
		SHA256: hex.EncodeToString(sum[:]),
	})
}

// Entry returns the entry for name, or nil if the manifest has none.
func (m *Manifest) Entry(name string) *ManifestEntry {
	for i := range m.Files {
		if m.Files[i].Name == name {
			return &m.Files[i]
		}
	}
	return nil
}

// WriteManifest atomically writes m as dir/MANIFEST.json. Publish
// protocols call it after every payload file is durably in place.
func WriteManifest(fsys FS, dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: marshal manifest: %w", err)
	}
	return WriteFile(fsys, filepath.Join(dir, ManifestName), append(data, '\n'))
}

// ReadManifest parses dir/MANIFEST.json, returning ErrNoManifest when
// the file does not exist.
func ReadManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w in %s", ErrNoManifest, dir)
		}
		return nil, fmt.Errorf("durable: read %s: %w", path, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("durable: parse %s: %w (manifest corrupt; the artifact cannot be trusted)", path, err)
	}
	return &m, nil
}

// VerifyData checks already-read (or mapped) bytes against the
// manifest's record for name — the single-read verification path: a
// reader that must consume a payload file anyway hashes the bytes it
// already holds instead of having VerifyDir read the file a second
// time.
func (m *Manifest) VerifyData(name string, data []byte) error {
	e := m.Entry(name)
	if e == nil {
		return fmt.Errorf("durable: %s is not listed in %s", name, ManifestName)
	}
	if int64(len(data)) != e.Size {
		return fmt.Errorf("durable: %s is %d bytes but %s records %d (truncated or torn write)",
			name, len(data), ManifestName, e.Size)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != e.SHA256 {
		return fmt.Errorf("durable: %s fails its SHA-256 check against %s (file or manifest corrupt)",
			name, ManifestName)
	}
	return nil
}

// VerifyDir checks every file listed in dir's manifest against its
// recorded size and SHA-256 and returns the parsed manifest. Any
// mismatch comes back as an error naming the offending file, so a torn
// write or flipped bit is an actionable message, not garbage data
// downstream. Returns ErrNoManifest (wrapped) for legacy directories.
func VerifyDir(dir string) (*Manifest, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range m.Files {
		path := filepath.Join(dir, e.Name)
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("durable: %s is listed in %s but missing", path, ManifestName)
			}
			return nil, fmt.Errorf("durable: read %s: %w", path, err)
		}
		if int64(len(data)) != e.Size {
			return nil, fmt.Errorf("durable: %s is %d bytes but %s records %d (truncated or torn write)",
				path, len(data), ManifestName, e.Size)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != e.SHA256 {
			return nil, fmt.Errorf("durable: %s fails its SHA-256 check against %s (file or manifest corrupt)",
				path, ManifestName)
		}
	}
	return m, nil
}
