package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestDurableMetricsAccrue(t *testing.T) {
	r := obs.NewRegistry()
	RegisterMetrics(r)

	dir := t.TempDir()
	filesBefore := publishesTotal.With("file").Value()
	dirsBefore := publishesTotal.With("dir").Value()
	fsyncFileBefore := fsyncSeconds.With("file").Count()
	fsyncDirBefore := fsyncSeconds.With("dir").Count()
	renamesBefore := renameSeconds.Count()

	if err := WriteFile(OS(), filepath.Join(dir, "a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	staging := filepath.Join(dir, "bundle"+StagingSuffix)
	if err := os.MkdirAll(staging, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SwapDir(OS(), staging, filepath.Join(dir, "bundle")); err != nil {
		t.Fatal(err)
	}

	if got := publishesTotal.With("file").Value() - filesBefore; got != 1 {
		t.Errorf("file publishes delta = %v, want 1", got)
	}
	if got := publishesTotal.With("dir").Value() - dirsBefore; got != 1 {
		t.Errorf("dir publishes delta = %v, want 1", got)
	}
	if got := fsyncSeconds.With("file").Count() - fsyncFileBefore; got != 1 {
		t.Errorf("file fsync observations delta = %d, want 1", got)
	}
	// WriteFile syncs the parent dir once, SwapDir once more.
	if got := fsyncSeconds.With("dir").Count() - fsyncDirBefore; got != 2 {
		t.Errorf("dir fsync observations delta = %d, want 2", got)
	}
	// WriteFile renames once; SwapDir renames staging→final (no
	// move-aside: final did not yet exist).
	if got := renameSeconds.Count() - renamesBefore; got != 2 {
		t.Errorf("rename observations delta = %d, want 2", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"leva_durable_fsync_seconds",
		"leva_durable_rename_seconds",
		"leva_durable_publishes_total",
		"leva_durable_errors_total",
	} {
		if !strings.Contains(sb.String(), "# TYPE "+name+" ") {
			t.Errorf("registry missing %s:\n%s", name, sb.String())
		}
	}
}

func TestDurableErrorCounter(t *testing.T) {
	before := errorsTotal.Value()
	// Writing into a directory that doesn't exist fails at create time.
	err := WriteFile(OS(), filepath.Join(t.TempDir(), "no", "such", "dir", "f"), nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if got := errorsTotal.Value() - before; got != 1 {
		t.Errorf("errors delta = %v, want 1", got)
	}
}
