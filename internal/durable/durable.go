// Package durable provides crash-safe filesystem primitives for
// publishing artifacts that other processes depend on: atomic
// single-file writes (temp file + fsync + rename), atomic directory
// publication (stage a sibling directory, swap it in with one rename),
// and a MANIFEST.json integrity record (per-file SHA-256 and sizes) so
// torn writes and bit rot surface as named errors instead of silently
// corrupt data.
//
// All mutating operations go through the FS interface so tests can
// inject faults (error at the Nth write, short writes, torn renames,
// failed fsyncs — see FaultFS) and prove that every crash point leaves
// either the old complete artifact or the new complete artifact on
// disk, never a hybrid.
package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrMapUnsupported reports that MapFile is not implemented for this
// platform; callers fall back to a plain read (see MapSupported).
var ErrMapUnsupported = errors.New("durable: file mapping not supported on this platform")

// File is the writable handle durable code uses: plain writes plus the
// two calls that decide durability, Sync and Close. Both return errors
// that MUST be checked — a full disk often only surfaces at fsync or
// close time.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the mutating filesystem operations of a publish, so a
// fault-injecting implementation can stand in for the real disk.
type FS interface {
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm os.FileMode) error
	RemoveAll(path string) error
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making previously issued renames and
	// creates in it durable against power loss.
	SyncDir(path string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFile atomically replaces path with data: the bytes are written
// to a sibling temp file, fsynced, closed (both checked — a full disk
// often only reports there), renamed over path, and the parent
// directory is fsynced so the rename survives power loss. Readers of
// path see either the old content or the new content, never a prefix.
func WriteFile(fsys FS, path string, data []byte) error {
	err := writeFile(fsys, path, data)
	if err != nil {
		errorsTotal.Inc()
	} else {
		publishesTotal.With("file").Inc()
	}
	return err
}

func writeFile(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.RemoveAll(tmp)
		return fmt.Errorf("durable: write %s: %w", tmp, err)
	}
	if err := timedSync(f); err != nil {
		f.Close()
		fsys.RemoveAll(tmp)
		return fmt.Errorf("durable: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.RemoveAll(tmp)
		return fmt.Errorf("durable: close %s: %w", tmp, err)
	}
	if err := timedRename(fsys, tmp, path); err != nil {
		fsys.RemoveAll(tmp)
		return fmt.Errorf("durable: publish %s: %w", path, err)
	}
	if err := timedSyncDir(fsys, filepath.Dir(path)); err != nil {
		return fmt.Errorf("durable: fsync dir of %s: %w", path, err)
	}
	return nil
}

// Sibling names used by the directory-swap protocol. A directory dir
// being republished temporarily coexists with dir+StagingSuffix (the
// fully written candidate) and dir+OldSuffix (the previous version,
// moved aside for the one-rename publish).
const (
	StagingSuffix = ".staging"
	OldSuffix     = ".old"
)

// SwapDir publishes the fully written staging directory at final,
// crash-safely. If final already exists it is first moved aside to
// final+OldSuffix, then staging is renamed to final, the parent
// directory is fsynced, and the old version is removed. At every crash
// point either final holds a complete version (old or new), or final is
// absent and final+OldSuffix holds the complete old version, which
// RecoverDir restores.
func SwapDir(fsys FS, staging, final string) error {
	err := swapDir(fsys, staging, final)
	if err != nil {
		errorsTotal.Inc()
	} else {
		publishesTotal.With("dir").Inc()
	}
	return err
}

func swapDir(fsys FS, staging, final string) error {
	final = filepath.Clean(final)
	old := final + OldSuffix
	// A leftover .old from an earlier crashed publish would make the
	// move-aside fail; final exists, so the leftover is garbage.
	if err := fsys.RemoveAll(old); err != nil {
		return fmt.Errorf("durable: clear %s: %w", old, err)
	}
	if _, err := fsys.Stat(final); err == nil {
		if err := timedRename(fsys, final, old); err != nil {
			return fmt.Errorf("durable: move aside %s: %w", final, err)
		}
	}
	if err := timedRename(fsys, staging, final); err != nil {
		// Best-effort rollback; if the process dies before this runs,
		// RecoverDir performs the same restoration on next access.
		fsys.Rename(old, final)
		return fmt.Errorf("durable: publish %s: %w", final, err)
	}
	if err := timedSyncDir(fsys, filepath.Dir(final)); err != nil {
		return fmt.Errorf("durable: fsync dir of %s: %w", final, err)
	}
	if err := fsys.RemoveAll(old); err != nil {
		return fmt.Errorf("durable: remove %s: %w", old, err)
	}
	return nil
}

// RecoverDir repairs the one observable interruption of SwapDir: a
// crash between the move-aside and the publish rename leaves final
// absent and final+OldSuffix holding the complete previous version. It
// restores that version and reports whether it did. When final exists
// it does nothing — leftover .staging/.old siblings are cleaned up by
// the next publish, not by readers.
func RecoverDir(fsys FS, final string) (recovered bool, err error) {
	final = filepath.Clean(final)
	if _, err := fsys.Stat(final); err == nil {
		return false, nil
	}
	old := final + OldSuffix
	if _, err := fsys.Stat(old); err != nil {
		return false, nil
	}
	if err := timedRename(fsys, old, final); err != nil {
		errorsTotal.Inc()
		return false, fmt.Errorf("durable: recover %s from %s: %w", final, old, err)
	}
	if err := timedSyncDir(fsys, filepath.Dir(final)); err != nil {
		errorsTotal.Inc()
		return true, fmt.Errorf("durable: fsync dir of %s: %w", final, err)
	}
	publishesTotal.With("recover").Inc()
	return true, nil
}
