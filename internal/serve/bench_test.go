package serve

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/dataset"
)

// BenchmarkServeFeaturize measures single-row featurization latency
// through the store — the /v1/featurize hot path minus HTTP/JSON — with
// a warm cache (every lookup hits) versus a cold cache (every lookup
// misses and runs the full tokenize+embed composition). The gap is the
// capacity headroom the LRU buys for repeat-heavy traffic; see
// docs/SERVING.md for tuning notes.
func BenchmarkServeFeaturize(b *testing.B) {
	_, loaded, spec := fixture(b)
	base := spec.DB.Table(spec.BaseTable)

	job := func(rowIdx int, tag string) *rowJob {
		t := &dataset.Table{Name: spec.BaseTable}
		for _, c := range base.Columns {
			v := c.Values[rowIdx]
			if tag != "" && c.Name == "name" {
				v = dataset.String(v.Str + tag)
			}
			t.Columns = append(t.Columns, &dataset.Column{Name: c.Name, Values: []dataset.Value{v}})
		}
		j := &rowJob{t: t, table: spec.BaseTable, exclude: []string{spec.Target},
			graphRow: -1, mode: loaded.Config.Featurization}
		j.key = cacheKey(j)
		return j
	}

	b.Run("warm-cache", func(b *testing.B) {
		st := newStore(loaded, nil, Config{CacheSize: 1024}.withDefaults(), newMetrics(), nil)
		j := job(0, "")
		if _, err := st.featurizeRows(context.Background(), []*rowJob{j}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.featurizeRows(context.Background(), []*rowJob{job(0, "")}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cold-cache", func(b *testing.B) {
		st := newStore(loaded, nil, Config{CacheSize: 1024}.withDefaults(), newMetrics(), nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A unique name per iteration defeats the cache, so every
			// lookup pays tokenization + vector composition.
			if _, err := st.featurizeRows(context.Background(), []*rowJob{job(0, strconv.Itoa(i))}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
