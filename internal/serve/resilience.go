package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/resilience"
)

// Dependency names: one circuit breaker each, fixed for the life of the
// server. The ANN index and row cache degrade (brute-force scan, cache
// bypass); reload fails fast.
const (
	depANN      = "ann"
	depReload   = "reload"
	depRowCache = "rowcache"
)

// depNames is the fixed breaker set, in display order.
var depNames = []string{depANN, depReload, depRowCache}

// shedReasons are the fixed leva_shed_total label values: capacity
// (limit reached, queue full or disabled), queue_timeout (queued too
// long), client_gone (caller vanished while queued).
var shedReasons = []string{"capacity", "queue_timeout", "client_gone"}

// guards bundles the fault-tolerance machinery a store needs on its
// read path. One guards value is shared by every store generation —
// breaker history must survive hot reloads (a reload explicitly resets
// the breakers it repairs; a swap must not do so implicitly).
type guards struct {
	chaos    *resilience.Chaos
	breakers map[string]*resilience.Breaker
}

// newBreakers builds the per-dependency breaker set, wired into the
// state gauge and transition counter.
func (s *Server) newBreakers() map[string]*resilience.Breaker {
	bs := make(map[string]*resilience.Breaker, len(depNames))
	for _, dep := range depNames {
		dep := dep
		bs[dep] = resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: s.cfg.BreakerFailures,
			OpenFor:          s.cfg.BreakerOpenFor,
			OnStateChange: func(from, to resilience.State) {
				s.metrics.breakerState.With(dep).Set(float64(to))
				s.metrics.breakerTransitions.With(dep, to.String()).Inc()
				if s.logger != nil {
					s.logger.Info("breaker transition",
						"dep", dep, "from", from.String(), "to", to.String())
				}
			},
		})
		s.metrics.breakerState.With(dep).Set(float64(resilience.StateClosed))
	}
	return bs
}

// isDepFailure reports whether err indicts a dependency (and should
// trigger degradation) rather than the caller: a breaker rejection, an
// injected fault, or a dependency-budget timeout. Everything else —
// unknown tokens, bad dimensions — is a client error and says nothing
// about the dependency's health.
func isDepFailure(err error) bool {
	return errors.Is(err, resilience.ErrOpen) ||
		errors.Is(err, resilience.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded)
}

// depCall runs fn against a circuit-broken dependency: breaker
// admission first, then the dependency time budget, then any chaos
// faults scheduled for this call, then fn itself. The breaker sees
// every dependency failure and no client error.
func (s *Server) depCall(ctx context.Context, dep string, fn func(context.Context) error) error {
	done, err := s.breakers[dep].Allow()
	if err != nil {
		s.metrics.depCalls.With(dep, "open").Inc()
		return err
	}
	callCtx := ctx
	if s.cfg.DependencyTimeout > 0 {
		var cancel context.CancelFunc
		callCtx, cancel = context.WithTimeout(ctx, s.cfg.DependencyTimeout)
		defer cancel()
	}
	d := s.chaos.Decide(dep)
	if d.Delay > 0 {
		if resilience.Sleep(callCtx, d.Delay) != nil {
			if ctx.Err() != nil {
				// The caller stopped waiting: not the dependency's fault.
				done(true)
				s.metrics.depCalls.With(dep, "canceled").Inc()
				return ctx.Err()
			}
			done(false)
			s.metrics.depCalls.With(dep, "timeout").Inc()
			return context.DeadlineExceeded
		}
	}
	if d.Err {
		done(false)
		s.metrics.depCalls.With(dep, "error").Inc()
		return resilience.ErrInjected
	}
	err = fn(callCtx)
	if isDepFailure(err) {
		done(false)
		s.metrics.depCalls.With(dep, "error").Inc()
	} else {
		done(true)
		s.metrics.depCalls.With(dep, "ok").Inc()
	}
	return err
}

// withDeadline folds the client's X-Leva-Deadline-Ms budget into the
// request context — downstream work (batching, featurization, injected
// chaos latency, the dependency budget) all descend from it, so the
// whole pipeline stops the moment the caller stops waiting. Abandoned
// requests are counted by why they were abandoned.
func (s *Server) withDeadline(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d, ok, err := resilience.ParseDeadline(r.Header.Get(resilience.DeadlineHeader))
		if err != nil {
			writeErrorReason(w, http.StatusBadRequest, "bad_deadline", "%v", err)
			return
		}
		parent := r.Context()
		if ok {
			ctx, cancel := context.WithTimeout(parent, d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h.ServeHTTP(w, r)
		switch {
		case ok && errors.Is(r.Context().Err(), context.DeadlineExceeded) && parent.Err() == nil:
			s.metrics.abandoned.With("deadline").Inc()
		case parent.Err() != nil:
			s.metrics.abandoned.With("disconnect").Inc()
		}
	})
}

// withChaosHTTP is the request-level chaos layer: per the "http" target
// rule it delays requests, fails them outright with a named 503, or
// stalls their response bodies mid-write. Inert unless the server was
// built with a chaos source and it is enabled.
func (s *Server) withChaosHTTP(h http.Handler) http.Handler {
	if s.chaos == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := s.chaos.Decide("http")
		if d.Delay > 0 {
			if resilience.Sleep(r.Context(), d.Delay) != nil {
				writeErrorReason(w, http.StatusServiceUnavailable, "deadline_exceeded",
					"request abandoned during injected latency")
				return
			}
		}
		if d.Err {
			writeErrorReason(w, http.StatusServiceUnavailable, "chaos_injected",
				"chaos: injected request failure")
			return
		}
		if d.Stall {
			w = &stallWriter{ResponseWriter: w, ctx: r.Context(), stall: d.StallFor}
		}
		h.ServeHTTP(w, r)
	})
}

// stallWriter injects a mid-body hang: the first write is split after
// one byte and the remainder held back for the stall duration. The
// response stays complete and valid — the fault is the hang itself,
// which clients without read deadlines will feel and clients with them
// will abandon.
type stallWriter struct {
	http.ResponseWriter
	ctx     context.Context
	stall   time.Duration
	stalled bool
}

func (sw *stallWriter) Write(p []byte) (int, error) {
	if sw.stalled || len(p) < 2 {
		return sw.ResponseWriter.Write(p)
	}
	sw.stalled = true
	n, err := sw.ResponseWriter.Write(p[:1])
	if err != nil {
		return n, err
	}
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	_ = resilience.Sleep(sw.ctx, sw.stall)
	m, err := sw.ResponseWriter.Write(p[1:])
	return n + m, err
}

// chaosState is the GET /admin/chaos response and the POST body: a
// millisecond-typed wire form of the chaos source's configuration.
type chaosState struct {
	Enabled bool                 `json:"enabled"`
	Seed    int64                `json:"seed"`
	Rules   map[string]chaosRule `json:"rules"`
}

type chaosRule struct {
	ErrRate     float64 `json:"errRate"`
	LatencyMs   float64 `json:"latencyMs"`
	LatencyRate float64 `json:"latencyRate"`
	StallRate   float64 `json:"stallRate"`
	StallForMs  float64 `json:"stallForMs"`
}

// handleChaos is GET/POST /admin/chaos — the runtime window into the
// chaos harness. GET reports the current configuration; POST updates
// it (partial: only provided fields change; a provided seed resets the
// fault schedule). Servers started without -chaos answer 503: fault
// injection can never be switched on in a process that was not
// deliberately launched with it.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if s.chaos == nil {
		writeErrorReason(w, http.StatusServiceUnavailable, "chaos_disabled",
			"no chaos source configured (start levad with -chaos)")
		return
	}
	if r.Method == http.MethodPost {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var req struct {
			Enabled *bool                `json:"enabled"`
			Seed    *int64               `json:"seed"`
			Rules   map[string]chaosRule `json:"rules"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "malformed request: %v", err)
			return
		}
		if req.Seed != nil {
			s.chaos.Reseed(*req.Seed)
		}
		for target, rule := range req.Rules {
			s.chaos.SetRule(target, resilience.Rule{
				ErrRate:     rule.ErrRate,
				Latency:     time.Duration(rule.LatencyMs * float64(time.Millisecond)),
				LatencyRate: rule.LatencyRate,
				StallRate:   rule.StallRate,
				StallFor:    time.Duration(rule.StallForMs * float64(time.Millisecond)),
			})
		}
		if req.Enabled != nil {
			s.chaos.Enable(*req.Enabled)
			if *req.Enabled {
				s.metrics.chaosEnabled.Set(1)
			} else {
				s.metrics.chaosEnabled.Set(0)
			}
		}
	}
	state := chaosState{
		Enabled: s.chaos.Enabled(),
		Seed:    s.chaos.Seed(),
		Rules:   map[string]chaosRule{},
	}
	for _, target := range s.chaos.Targets() {
		rule := s.chaos.RuleFor(target)
		state.Rules[target] = chaosRule{
			ErrRate:     rule.ErrRate,
			LatencyMs:   float64(rule.Latency) / float64(time.Millisecond),
			LatencyRate: rule.LatencyRate,
			StallRate:   rule.StallRate,
			StallForMs:  float64(rule.StallFor) / float64(time.Millisecond),
		}
	}
	writeJSON(w, http.StatusOK, state)
}

// retryAfterHeader sets Retry-After, rounding d up to whole seconds
// with a floor of 1 (the header is integer-valued, and 0 would invite
// an immediate stampede).
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
