package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/ann"
	"repro/internal/resilience"
)

// neighborsRequest is the POST /v1/neighbors body. Exactly one of
// Token and Vector must be set: Token looks up an indexed entity and
// returns its neighbors (itself excluded); Vector searches with a raw
// query vector of the index's dimension.
type neighborsRequest struct {
	Token  string    `json:"token"`
	Vector []float64 `json:"vector"`
	// K is how many neighbors to return. Default 10.
	K int `json:"k"`
	// EfSearch overrides the index's search beam width for this query
	// (larger = higher recall, slower). 0 uses the index default.
	EfSearch int `json:"efSearch"`
}

// neighborItem is one returned neighbor: the entity's embedding token
// and its similarity under the index metric (cosine or inner product —
// higher is closer).
type neighborItem struct {
	Token string  `json:"token"`
	Score float64 `json:"score"`
}

type neighborsResponse struct {
	Token    string `json:"token,omitempty"`
	K        int    `json:"k"`
	Dim      int    `json:"dim"`
	CacheHit bool   `json:"cacheHit"`
	// Degraded marks an answer computed by the exact brute-force
	// fallback because the ANN dependency was circuit-broken or
	// failing: correct, but slower and uncached.
	Degraded  bool           `json:"degraded,omitempty"`
	Neighbors []neighborItem `json:"neighbors"`
}

// maxNeighborsK bounds one query so a bad client cannot ask the index
// to rank its entire vocabulary.
const maxNeighborsK = 1000

// handleNeighbors answers GET and POST /v1/neighbors against the store
// pinned at request entry — like /v1/featurize, a concurrent hot
// reload can neither drop an in-flight query nor mix index versions
// inside one response. GET takes token/k/ef query parameters; POST
// takes a JSON body with a token or a raw vector. Servers configured
// without an index answer 503.
func (s *Server) handleNeighbors(st *store, w http.ResponseWriter, r *http.Request) {
	if s.testHookNeighbors != nil {
		s.testHookNeighbors()
	}
	if st.index == nil {
		writeErrorReason(w, http.StatusServiceUnavailable, "no_index", "no ANN index loaded (start with -index, or rebuild with leva embed -index)")
		return
	}
	var req neighborsRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req.Token = q.Get("token")
		var err error
		if req.K, err = intParam(q.Get("k"), 10); err != nil {
			writeErrorReason(w, http.StatusBadRequest, "bad_param", "bad k: %v", err)
			return
		}
		if req.EfSearch, err = intParam(q.Get("ef"), 0); err != nil {
			writeErrorReason(w, http.StatusBadRequest, "bad_param", "bad ef: %v", err)
			return
		}
		if req.Token == "" {
			writeErrorReason(w, http.StatusBadRequest, "bad_param", "missing token parameter (POST a JSON body to query by raw vector)")
			return
		}
	} else {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
				return
			}
			writeError(w, http.StatusBadRequest, "malformed request: %v", err)
			return
		}
		if req.K == 0 {
			req.K = 10
		}
	}
	// Parameter bounds are checked before the index is ever touched —
	// GET and POST share these — and every rejection carries the
	// "bad_param" taxonomy tag so clients can branch without parsing
	// the message.
	if (req.Token == "") == (len(req.Vector) == 0) {
		writeErrorReason(w, http.StatusBadRequest, "bad_param", "exactly one of token and vector must be set")
		return
	}
	if req.K < 1 || req.K > maxNeighborsK {
		writeErrorReason(w, http.StatusBadRequest, "bad_param", "k must be in [1, %d], got %d", maxNeighborsK, req.K)
		return
	}
	if req.K > st.index.Len() {
		writeErrorReason(w, http.StatusBadRequest, "bad_param", "k=%d exceeds the index size %d", req.K, st.index.Len())
		return
	}
	if req.EfSearch < 0 {
		writeErrorReason(w, http.StatusBadRequest, "bad_param", "efSearch must be >= 0, got %d", req.EfSearch)
		return
	}
	if req.EfSearch != 0 && req.EfSearch < req.K {
		writeErrorReason(w, http.StatusBadRequest, "bad_param", "efSearch=%d is smaller than k=%d (use 0 for the index default)", req.EfSearch, req.K)
		return
	}

	if req.Token == "" && len(req.Vector) != st.index.Dim() {
		writeErrorReason(w, http.StatusBadRequest, "bad_param", "vector has %d dimensions, index has %d", len(req.Vector), st.index.Dim())
		return
	}

	// The HNSW search runs as a guarded dependency call: circuit
	// breaker, time budget, chaos faults. A dependency failure drops
	// one rung down the degradation ladder — an exact brute-force scan
	// (marked "degraded":true) — or, with fallback disabled, a named
	// 503. Client errors (unknown token, bad k) pass straight through.
	var (
		results  []ann.Result
		cacheHit bool
		degraded bool
	)
	err := s.depCall(r.Context(), depANN, func(context.Context) error {
		var e error
		if req.Token != "" {
			results, cacheHit, e = st.neighborsByName(req.Token, req.K, req.EfSearch)
		} else {
			results, e = st.index.SearchVector(req.Vector, req.K, req.EfSearch)
		}
		return e
	})
	if isDepFailure(err) {
		if s.cfg.DisableFallback {
			reason := "dependency_timeout"
			switch {
			case errors.Is(err, resilience.ErrOpen):
				reason = "breaker_open"
				retryAfterHeader(w, s.breakers[depANN].RetryAfter())
			case errors.Is(err, resilience.ErrInjected):
				reason = "chaos_injected"
			}
			writeErrorReason(w, http.StatusServiceUnavailable, reason, "neighbors unavailable: %v", err)
			return
		}
		s.metrics.degraded.With("neighbors").Inc()
		degraded, cacheHit = true, false
		if req.Token != "" {
			results, err = st.index.BruteForceName(req.Token, req.K)
		} else {
			results, err = st.index.BruteForceVector(req.Vector, req.K)
		}
	}
	if errors.Is(err, ann.ErrUnknownName) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if errors.Is(err, context.Canceled) {
		writeErrorReason(w, http.StatusServiceUnavailable, "client_gone", "request canceled: %v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "neighbors: %v", err)
		return
	}
	items := make([]neighborItem, len(results))
	for i, res := range results {
		items[i] = neighborItem{Token: res.Name, Score: res.Score}
	}
	writeJSON(w, http.StatusOK, neighborsResponse{
		Token:     req.Token,
		K:         req.K,
		Dim:       st.index.Dim(),
		CacheHit:  cacheHit,
		Degraded:  degraded,
		Neighbors: items,
	})
}

// intParam parses an optional integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}
