package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/matrix"
)

// altFixture builds a second bundle over the same schema as fixture()
// but a different seed: identical dim and feature width (so it passes
// reload validation) with different vector values (so tests can tell
// which bundle served a response).
var (
	altOnce sync.Once
	altRes  *core.Result
	altErr  error
)

func altFixture(t testing.TB) *core.Result {
	t.Helper()
	fixture(t) // ensure fixtureSpec exists
	altOnce.Do(func() {
		altRes, altErr = core.BuildEmbedding(fixtureSpec.DB, core.Config{
			Dim: 8, Seed: 23, Method: embed.MethodMF, UnseenFallbackDims: 3,
		})
	})
	if altErr != nil {
		t.Fatal(altErr)
	}
	return altRes
}

// featurizeOnce posts one fixed row and returns its feature vector.
func featurizeOnce(t *testing.T, url string) []float64 {
	t.Helper()
	_, _, sp := fixture(t)
	body := mustJSON(map[string]any{
		"table":   sp.BaseTable,
		"rows":    []any{jsonRow(sp.DB.Table(sp.BaseTable), 0)},
		"exclude": []string{sp.Target},
	})
	resp, err := http.Post(url+"/v1/featurize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("featurize status %d", resp.StatusCode)
	}
	var out featurizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Features[0]
}

func vecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// offlineVec featurizes row 0 of the base table through res directly —
// the ground truth for "which bundle produced this response".
func offlineVec(t *testing.T, res *core.Result) []float64 {
	t.Helper()
	_, _, spec := fixture(t)
	base := spec.DB.Table(spec.BaseTable)
	want, err := res.Featurize(base.SelectRows([]int{0}), spec.BaseTable,
		[]string{spec.Target}, func(int) int { return -1 })
	if err != nil {
		t.Fatal(err)
	}
	return want[0]
}

func TestReloadSwapsBundleAtomically(t *testing.T) {
	_, loaded, _ := fixture(t)
	alt := altFixture(t)
	srv := New(loaded, Config{Loader: func() (*core.Result, error) { return alt, nil }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oldVec, newVec := offlineVec(t, loaded), offlineVec(t, alt)
	if vecEqual(oldVec, newVec) {
		t.Fatal("fixture and altFixture featurize identically; reload is undetectable")
	}

	if got := featurizeOnce(t, ts.URL); !vecEqual(got, oldVec) {
		t.Fatal("pre-reload response does not match the loaded bundle")
	}
	if err := srv.Reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got := featurizeOnce(t, ts.URL); !vecEqual(got, newVec) {
		t.Fatal("post-reload response does not match the new bundle")
	}
	if gen := srv.curStore().gen; gen != 2 {
		t.Errorf("generation = %d, want 2", gen)
	}
	snap := srv.metrics.snapshot()
	if snap.Reload.Total != 1 || snap.Reload.Failures != 0 || snap.Reload.Generation != 2 {
		t.Errorf("reload snapshot = %+v", snap.Reload)
	}
}

// TestReloadDuringInFlightRequest pins the zero-downtime contract: a
// request already in flight when the swap lands completes successfully
// against the bundle it started with — not dropped, not answered from
// a mix of versions.
func TestReloadDuringInFlightRequest(t *testing.T) {
	_, loaded, spec := fixture(t)
	alt := altFixture(t)
	srv := New(loaded, Config{
		RequestTimeout: -1,
		CacheSize:      -1, // force full featurization so the pinned store does real work
		Loader:         func() (*core.Result, error) { return alt, nil },
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHookFeaturize = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oldVec := offlineVec(t, loaded)
	got := make(chan []float64, 1)
	go func() {
		body := mustJSON(map[string]any{
			"table":   spec.BaseTable,
			"rows":    []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
			"exclude": []string{spec.Target},
		})
		resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
		if err != nil {
			got <- nil
			return
		}
		defer resp.Body.Close()
		var out featurizeResponse
		if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
			got <- nil
			return
		}
		got <- out.Features[0]
	}()
	<-entered // request holds the pre-reload store

	if err := srv.Reload(); err != nil {
		t.Fatalf("reload with a request in flight: %v", err)
	}
	srv.testHookFeaturize = nil
	close(release)

	vec := <-got
	if vec == nil {
		t.Fatal("in-flight request failed across the reload")
	}
	if !vecEqual(vec, oldVec) {
		t.Fatal("in-flight request served mixed or new-bundle features; it must finish on its own version")
	}
	// And the next request sees the new bundle.
	if !vecEqual(featurizeOnce(t, ts.URL), offlineVec(t, alt)) {
		t.Fatal("follow-up request not on the new bundle")
	}
}

// TestReloadUnderBatchedLoad hammers featurize from many goroutines
// while the bundle is swapped back and forth with micro-batching on:
// every response must be a 200 carrying exactly the old vector or
// exactly the new vector, and no request may hang on a retired
// batcher.
func TestReloadUnderBatchedLoad(t *testing.T) {
	_, loaded, spec := fixture(t)
	alt := altFixture(t)
	next := make(chan *core.Result, 8)
	srv := New(loaded, Config{
		CacheSize:   -1,
		BatchWindow: time.Millisecond,
		BatchMax:    8,
		Loader:      func() (*core.Result, error) { return <-next, nil },
	})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oldVec, newVec := offlineVec(t, loaded), offlineVec(t, alt)
	body := mustJSON(map[string]any{
		"table":   spec.BaseTable,
		"rows":    []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
		"exclude": []string{spec.Target},
	})

	const workers, perWorker = 8, 12
	var bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
				if err != nil {
					bad.Add(1)
					continue
				}
				var out featurizeResponse
				ok := resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&out) == nil
				resp.Body.Close()
				if !ok || (!vecEqual(out.Features[0], oldVec) && !vecEqual(out.Features[0], newVec)) {
					bad.Add(1)
				}
			}
		}()
	}
	for _, res := range []*core.Result{alt, loaded, alt} {
		next <- res
		if err := srv.Reload(); err != nil {
			t.Fatalf("reload under load: %v", err)
		}
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d responses were dropped, non-200, or version-mixed during reloads", n)
	}
	if gen := srv.curStore().gen; gen != 4 {
		t.Errorf("generation = %d, want 4 after 3 reloads", gen)
	}
}

func TestReloadDimMismatchRollsBack(t *testing.T) {
	_, loaded, _ := fixture(t)
	bad := &core.Result{
		Embedding: embed.NewEmbedding([]string{"a", "b"}, matrix.FromRows([][]float64{{1, 2}, {3, 4}})),
		Textifier: loaded.Textifier,
		Config:    loaded.Config,
	}
	srv := New(loaded, Config{Loader: func() (*core.Result, error) { return bad, nil }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := featurizeOnce(t, ts.URL)
	err := srv.Reload()
	if err == nil {
		t.Fatal("dim-mismatched bundle accepted")
	}
	if !strings.Contains(err.Error(), "dim") {
		t.Errorf("rejection does not explain the dim mismatch: %v", err)
	}
	if gen := srv.curStore().gen; gen != 1 {
		t.Errorf("generation advanced to %d on a failed reload", gen)
	}
	if !vecEqual(featurizeOnce(t, ts.URL), before) {
		t.Error("serving features changed after a rejected reload")
	}
	snap := srv.metrics.snapshot()
	if snap.Reload.Total != 1 || snap.Reload.Failures != 1 {
		t.Errorf("reload counters = %+v, want 1 attempt / 1 failure", snap.Reload)
	}
	if snap.Reload.LastError == "" {
		t.Error("lastError empty after a failed reload")
	}
}

// TestReloadCorruptBundleNeverServes is the serving end of the
// durability story: a bundle directory with one flipped byte is
// rejected by manifest verification inside the loader, and the old
// store keeps answering.
func TestReloadCorruptBundleNeverServes(t *testing.T) {
	_, loaded, _ := fixture(t)
	dir := t.TempDir()
	if err := altFixture(t).SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "bundle.bin")
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(binPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := New(loaded, Config{Loader: func() (*core.Result, error) { return core.LoadBundle(dir) }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	err = srv.Reload()
	if err == nil {
		t.Fatal("corrupt candidate bundle accepted")
	}
	if !strings.Contains(err.Error(), "bundle.bin") {
		t.Errorf("rejection does not name the corrupt file: %v", err)
	}
	if !vecEqual(featurizeOnce(t, ts.URL), offlineVec(t, loaded)) {
		t.Error("old bundle not serving after corrupt candidate was rejected")
	}
}

// TestConcurrentReloadsAreSerialized models a double SIGHUP: two
// overlapping reloads must run one at a time (never interleaving load
// and swap), and both must complete.
func TestConcurrentReloadsAreSerialized(t *testing.T) {
	_, loaded, _ := fixture(t)
	alt := altFixture(t)
	var active, maxActive atomic.Int64
	gate := make(chan struct{})
	srv := New(loaded, Config{Loader: func() (*core.Result, error) {
		n := active.Add(1)
		defer active.Add(-1)
		for {
			prev := maxActive.Load()
			if n <= prev || maxActive.CompareAndSwap(prev, n) {
				break
			}
		}
		<-gate
		return alt, nil
	}})

	const reloads = 4
	errs := make(chan error, reloads)
	for i := 0; i < reloads; i++ {
		go func() { errs <- srv.Reload() }()
	}
	close(gate)
	for i := 0; i < reloads; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent reload %d: %v", i, err)
		}
	}
	if maxActive.Load() != 1 {
		t.Errorf("loader ran %d-way concurrent; reloads must serialize", maxActive.Load())
	}
	if gen := srv.curStore().gen; gen != reloads+1 {
		t.Errorf("generation = %d, want %d", gen, reloads+1)
	}
}

func TestAdminReloadEndpoint(t *testing.T) {
	_, loaded, _ := fixture(t)
	alt := altFixture(t)
	loadErr := error(nil)
	srv := New(loaded, Config{Loader: func() (*core.Result, error) { return alt, loadErr }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ok map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ok["generation"] != float64(2) {
		t.Fatalf("admin reload: status %d, body %v", resp.StatusCode, ok)
	}
	// The response reports which stages the refreshed bundle's build
	// recomputed; an in-memory build recomputes all three.
	stages, _ := ok["stages"].(map[string]any)
	for _, stage := range []string{"textify", "graph", "embed"} {
		if stages[stage] != string(core.StageRebuilt) {
			t.Errorf("stages[%s] = %v, want %s (body %v)", stage, stages[stage], core.StageRebuilt, ok)
		}
	}

	loadErr = errors.New("disk on fire")
	resp, err = http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var bad map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(bad["error"], "disk on fire") {
		t.Fatalf("failed admin reload: status %d, body %v", resp.StatusCode, bad)
	}
}

func TestReloadDisabledWithoutLoader(t *testing.T) {
	_, loaded, _ := fixture(t)
	srv := New(loaded, Config{})
	if err := srv.Reload(); !errors.Is(err, ErrReloadDisabled) {
		t.Fatalf("Reload without loader: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admin reload without loader: status %d, want 503", resp.StatusCode)
	}
}

// TestPanicBecomesCounted500 proves one poisonous request cannot kill
// the daemon: the handler panic is recovered into a 500, counted, and
// the next request is served normally.
func TestPanicBecomesCounted500(t *testing.T) {
	_, loaded, _ := fixture(t)
	srv := New(loaded, Config{})
	srv.testHookPanic = func() { panic("poison row") }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, _, spec := fixture(t)
	body := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || e["error"] == "" {
		t.Fatalf("panicking handler: status %d, body %v", resp.StatusCode, e)
	}

	srv.testHookPanic = nil
	if vec := featurizeOnce(t, ts.URL); vec == nil {
		t.Fatal("daemon dead after a recovered panic")
	}
	snap := srv.metrics.snapshot()
	if snap.PanicsTotal != 1 {
		t.Errorf("panicsTotal = %d, want 1", snap.PanicsTotal)
	}
	if snap.ResponsesByStatus["500"] != 1 {
		t.Errorf("responsesByStatus[500] = %d, want 1", snap.ResponsesByStatus["500"])
	}
}

// TestStageProvenance covers the provenance summary: builds carry their
// stage outcomes; bundles predating provenance report unknown.
func TestStageProvenance(t *testing.T) {
	_, loaded, _ := fixture(t)
	got := stageProvenance(loaded)
	if got["textify"] == "" || got["textify"] == "unknown" {
		t.Errorf("built result reports no provenance: %v", got)
	}
	legacy := &core.Result{}
	if got := stageProvenance(legacy); got["textify"] != "unknown" ||
		got["graph"] != "unknown" || got["embed"] != "unknown" {
		t.Errorf("legacy bundle provenance = %v, want unknown", got)
	}
}
