package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/synth"
)

// countMappings returns how many /proc/self/maps entries reference
// substr (a bundle directory path). Skips the test off linux.
func countMappings(t *testing.T, substr string) int {
	t.Helper()
	data, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Skipf("no /proc/self/maps on this platform: %v", err)
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, substr) {
			n++
		}
	}
	return n
}

// mmapBundleDir saves an independent copy of the serve fixture's
// deployment for mmap-lifecycle tests (each test gets its own dir so
// map counts cannot cross-talk).
func mmapBundleDir(t *testing.T) string {
	t.Helper()
	built, _, _ := fixture(t)
	dir := t.TempDir() + "/bundle"
	if err := built.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func mmapLoader(dir string) func() (*core.Result, error) {
	return func() (*core.Result, error) {
		return core.LoadBundleOpts(dir, core.LoadOptions{MMap: true})
	}
}

// TestReloadUnmapsRetiredGenerations is the mmap-leak regression: before
// the fix, every hot reload of an -mmap server leaked the retired
// generation's mapping for the life of the process (durable.MapFile had
// no release path at all). 50 reloads must leave the process with
// exactly one mapping of the bundle, and shutdown must drop that too.
func TestReloadUnmapsRetiredGenerations(t *testing.T) {
	if !durable.MapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	dir := mmapBundleDir(t)
	load := mmapLoader(dir)
	first, err := load()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Mapped() {
		t.Fatal("mmap load did not map the bundle")
	}
	srv := New(first, Config{Loader: load})
	if got := countMappings(t, dir); got != 1 {
		t.Fatalf("mappings before reloads = %d, want 1", got)
	}
	for i := 0; i < 50; i++ {
		if err := srv.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	if got := countMappings(t, dir); got != 1 {
		t.Errorf("mappings after 50 reloads = %d, want 1 (retired generations leaked)", got)
	}
	if gen := srv.curStore().gen; gen != 51 {
		t.Errorf("generation = %d, want 51", gen)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := countMappings(t, dir); got != 0 {
		t.Errorf("mappings after shutdown = %d, want 0", got)
	}
}

// TestReloadRejectedCandidateUnmapped: a candidate bundle that fails
// validation must not leak its mapping either — rejection paths unmap
// before returning.
func TestReloadRejectedCandidateUnmapped(t *testing.T) {
	if !durable.MapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	_, loaded, _ := fixture(t)
	// An incompatible candidate: same schema, different dimension.
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 11})
	wrong, err := core.BuildEmbedding(spec.DB, core.Config{Dim: 4, Seed: 11, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	altDir := t.TempDir() + "/wrong"
	if err := wrong.SaveBundle(altDir); err != nil {
		t.Fatal(err)
	}
	srv := New(loaded, Config{Loader: mmapLoader(altDir), BreakerFailures: 100})
	for i := 0; i < 3; i++ {
		if err := srv.Reload(); err == nil || !strings.Contains(err.Error(), "dim") {
			t.Fatalf("reload %d: err = %v, want a dim rejection", i, err)
		}
	}
	if got := countMappings(t, altDir); got != 0 {
		t.Errorf("mappings of the rejected candidate = %d, want 0", got)
	}
}

// TestCarriedIndexKeepsRetiredMappingAlive: a server whose in-process
// index reads vectors straight out of the mmap'd bundle (ann.Build
// aliases the arena and symbol table) carries that index across reloads
// when no IndexLoader is configured. The generation-1 mapping must stay
// alive exactly as long as the index does — while every intermediate
// generation is still unmapped on retirement.
func TestCarriedIndexKeepsRetiredMappingAlive(t *testing.T) {
	if !durable.MapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	dir := mmapBundleDir(t)
	load := mmapLoader(dir)
	first, err := load()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ann.Build(first.Embedding, ann.Options{Seed: 7, Metric: ann.MetricDot})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.SharesStorage(first.Embedding) {
		t.Fatal("dot-metric in-process index does not alias the embedding; the test is vacuous")
	}
	srv := New(first, Config{Index: ix, Loader: load})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := ix.Names()[0]
	want, err := ix.SearchName(token, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := srv.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		// The gen-1 mapping (feeding the carried index) plus the current
		// generation's own mapping; every other generation is unmapped.
		if got := countMappings(t, dir); got != 2 {
			t.Fatalf("mappings after reload %d = %d, want 2 (gen-1 retained + current)", i, got)
		}
	}
	// The carried index must still answer correctly off the retained
	// mapping — names resolve through the gen-1 symbol table.
	resp, err := http.Get(fmt.Sprintf("%s/v1/neighbors?token=%s&k=3", ts.URL, token))
	if err != nil {
		t.Fatal(err)
	}
	var out neighborsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Neighbors) != len(want) {
		t.Fatalf("neighbors after 10 reloads: status %d, %d results", resp.StatusCode, len(out.Neighbors))
	}
	for i, n := range out.Neighbors {
		if n.Token != want[i].Name || n.Score != want[i].Score {
			t.Errorf("neighbor %d = %s/%g, want %s/%g", i, n.Token, n.Score, want[i].Name, want[i].Score)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := countMappings(t, dir); got != 0 {
		t.Errorf("mappings after shutdown = %d, want 0 (retained gen-1 mapping leaked)", got)
	}
}

// TestReloadUnderMMapWhileQuerying hammers the swap path with live
// traffic: neighbor and featurize requests run nonstop while the bundle
// hot-reloads under mmap 20 times. Run under -race this doubles as the
// use-after-unmap detector for the ownership-transfer logic.
func TestReloadUnderMMapWhileQuerying(t *testing.T) {
	if !durable.MapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	dir := mmapBundleDir(t)
	load := mmapLoader(dir)
	first, err := load()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ann.Build(first.Embedding, ann.Options{Seed: 7, Metric: ann.MetricDot})
	if err != nil {
		t.Fatal(err)
	}
	_, _, spec := fixture(t)
	srv := New(first, Config{Index: ix, Loader: load})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := ix.Names()[0]
	row := jsonRow(spec.DB.Table(spec.BaseTable), 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				var err error
				if g%2 == 0 {
					resp, err = http.Get(fmt.Sprintf("%s/v1/neighbors?token=%s&k=3", ts.URL, token))
				} else {
					resp, err = http.Post(ts.URL+"/v1/featurize", "application/json",
						strings.NewReader(mustJSON(map[string]any{"table": spec.BaseTable, "rows": []any{row}})))
				}
				if err != nil {
					select {
					case errs <- err.Error():
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("status %d", resp.StatusCode):
					default:
					}
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if err := srv.Reload(); err != nil {
			t.Fatalf("reload %d under load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("query under reload failed: %s", e)
	}
}
