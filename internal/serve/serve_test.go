package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/synth"
)

// fixture builds one small embedding per test binary and round-trips it
// through a bundle, so every handler test exercises the exact artifact
// levad serves in production.
var (
	fixtureOnce sync.Once
	fixtureRes  *core.Result // as built
	fixtureSrv  *core.Result // after SaveBundle/LoadBundle
	fixtureSpec *synth.Spec
	fixtureErr  error
)

func fixture(t testing.TB) (built, loaded *core.Result, spec *synth.Spec) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureSpec = synth.Student(synth.StudentOptions{Students: 40, Seed: 11})
		fixtureRes, fixtureErr = core.BuildEmbedding(fixtureSpec.DB, core.Config{
			Dim: 8, Seed: 11, Method: embed.MethodMF, UnseenFallbackDims: 3,
		})
		if fixtureErr != nil {
			return
		}
		dir, err := os.MkdirTemp("", "leva-serve-fixture-*")
		if err != nil {
			fixtureErr = err
			return
		}
		if fixtureErr = fixtureRes.SaveBundle(dir); fixtureErr != nil {
			return
		}
		fixtureSrv, fixtureErr = core.LoadBundle(dir)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureRes, fixtureSrv, fixtureSpec
}

// jsonRow renders row i of t as a featurize-request row object.
func jsonRow(t *dataset.Table, i int) map[string]any {
	row := map[string]any{}
	for _, c := range t.Columns {
		switch v := c.Values[i]; v.Kind {
		case dataset.KindNull:
			row[c.Name] = nil
		case dataset.KindString:
			row[c.Name] = v.Str
		default:
			row[c.Name] = v.Num
		}
	}
	return row
}

func postFeaturize(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/featurize", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestFeaturizeMatchesOffline(t *testing.T) {
	_, loaded, spec := fixture(t)
	base := spec.DB.Table(spec.BaseTable)
	srv := New(loaded, Config{Logger: nil})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 10
	for _, tc := range []struct {
		name     string
		graphRow func(int) int
	}{
		{"new-rows", func(int) int { return -1 }},
		{"embedded-rows", func(i int) int { return i }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := loaded.Featurize(base.SelectRows(seq(n)), spec.BaseTable,
				[]string{spec.Target}, tc.graphRow)
			if err != nil {
				t.Fatal(err)
			}
			rows := make([]map[string]any, n)
			graphRows := make([]int, n)
			for i := 0; i < n; i++ {
				rows[i] = jsonRow(base, i)
				graphRows[i] = tc.graphRow(i)
			}
			resp, body := postFeaturize(t, ts.URL, map[string]any{
				"table":     spec.BaseTable,
				"rows":      rows,
				"exclude":   []string{spec.Target},
				"graphRows": graphRows,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var out featurizeResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
			if out.Rows != n || len(out.Features) != n {
				t.Fatalf("got %d rows, want %d", len(out.Features), n)
			}
			for i := range want {
				if len(out.Features[i]) != len(want[i]) {
					t.Fatalf("row %d: width %d, want %d", i, len(out.Features[i]), len(want[i]))
				}
				for j := range want[i] {
					if out.Features[i][j] != want[i][j] {
						t.Fatalf("row %d feature %d: got %v, want %v (served features must be bit-identical to offline)",
							i, j, out.Features[i][j], want[i][j])
					}
				}
			}
		})
	}
}

func TestFeaturizeColumnOrderIndependent(t *testing.T) {
	// JSON objects are unordered; the store must tokenize in fitted
	// column order, so any client-side key order yields the same bytes.
	_, loaded, _ := fixture(t)
	srv := New(loaded, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a := `{"table":"expenses","rows":[{"name":"student_00003","gender":"male","school_name":"school_2","total_expenses":100}]}`
	b := `{"table":"expenses","rows":[{"total_expenses":100,"school_name":"school_2","gender":"male","name":"student_00003"}]}`
	var feats [2][][]float64
	for i, body := range []string{a, b} {
		resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out featurizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		feats[i] = out.Features
	}
	for j := range feats[0][0] {
		if feats[0][0][j] != feats[1][0][j] {
			t.Fatalf("feature %d differs across key orders: %v vs %v", j, feats[0][0][j], feats[1][0][j])
		}
	}
}

func TestEmbeddingEndpoint(t *testing.T) {
	_, loaded, _ := fixture(t)
	srv := New(loaded, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := loaded.Embedding.SortedNames()[0]
	want, _ := loaded.Embedding.Vector(token)
	resp, err := http.Get(ts.URL + "/v1/embedding/" + token)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("known token: status %d", resp.StatusCode)
	}
	var out embeddingResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Token != token || out.Dim != len(want) {
		t.Fatalf("got token %q dim %d", out.Token, out.Dim)
	}
	for i := range want {
		if out.Vector[i] != want[i] {
			t.Fatalf("vector[%d] = %v, want %v", i, out.Vector[i], want[i])
		}
	}

	resp2, err := http.Get(ts.URL + "/v1/embedding/no-such-token-xyz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown token: status %d, want 404", resp2.StatusCode)
	}
}

func TestFeaturizeBadRequests(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{MaxRowsPerRequest: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	row := jsonRow(spec.DB.Table(spec.BaseTable), 0)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed-json", `{"table": "expenses", "rows": [`, http.StatusBadRequest},
		{"unknown-field", `{"table": "expenses", "rows": [{}], "bogus": 1}`, http.StatusBadRequest},
		{"missing-table", `{"rows": [{"name": "x"}]}`, http.StatusBadRequest},
		{"no-rows", `{"table": "expenses", "rows": []}`, http.StatusBadRequest},
		{"unknown-table", `{"table": "nope", "rows": [{"name": "x"}]}`, http.StatusBadRequest},
		{"unknown-column", `{"table": "expenses", "rows": [{"bogus_col": "x"}]}`, http.StatusBadRequest},
		{"bad-mode", `{"table": "expenses", "rows": [{"name": "x"}], "mode": "fancy"}`, http.StatusBadRequest},
		{"graphrows-mismatch", `{"table": "expenses", "rows": [{"name": "x"}], "graphRows": [1, 2]}`, http.StatusBadRequest},
		{"nested-value", `{"table": "expenses", "rows": [{"name": {"a": 1}}]}`, http.StatusBadRequest},
		{"too-many-rows", mustJSON(map[string]any{"table": spec.BaseTable, "rows": []any{row, row, row}}), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.want, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body %q is not {\"error\": ...}", body)
			}
		})
	}
}

func TestSaturationSheds429(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{MaxInFlight: 1, RequestTimeout: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHookFeaturize = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered // request 1 holds the only admission slot

	resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("admitted request: status %d, want 200", code)
	}

	snap := srv.metrics.snapshot()
	if snap.ShedTotal != 1 {
		t.Errorf("shedTotal = %d, want 1", snap.ShedTotal)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{Addr: "127.0.0.1:0", RequestTimeout: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHookFeaturize = func() {
		entered <- struct{}{}
		<-release
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	body := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+addr.String()+"/v1/featurize", "application/json", strings.NewReader(body))
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-entered // the request is in flight

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight request, not abort it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a request was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if code := <-reqDone; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want http.ErrServerClosed", err)
	}
}

func TestMetricsAndCacheCounters(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// The same row twice: second featurization must come from the LRU.
	body := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	var outs [2]featurizeResponse
	for i := range outs {
		resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&outs[i]); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if outs[0].CacheHits != 0 || outs[1].CacheHits != 1 {
		t.Fatalf("cacheHits = %d then %d, want 0 then 1", outs[0].CacheHits, outs[1].CacheHits)
	}
	for j := range outs[0].Features[0] {
		if outs[0].Features[0][j] != outs[1].Features[0][j] {
			t.Fatalf("cached features differ at %d", j)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := snap.Requests["featurize"].Count; got != 2 {
		t.Errorf("featurize count = %d, want 2", got)
	}
	if snap.Requests["healthz"].Count != 1 {
		t.Errorf("healthz count = %d, want 1", snap.Requests["healthz"].Count)
	}
	if snap.ResponsesByStatus["200"] < 3 {
		t.Errorf("responsesByStatus[200] = %d, want >= 3", snap.ResponsesByStatus["200"])
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.HitRate != 0.5 {
		t.Errorf("cache snapshot = %+v, want 1 hit / 1 miss", snap.Cache)
	}
	if snap.RowsFeaturizedTotal != 2 {
		t.Errorf("rowsFeaturizedTotal = %d, want 2", snap.RowsFeaturizedTotal)
	}
	if snap.Requests["featurize"].LatencyP50Ms <= 0 {
		t.Errorf("featurize p50 = %v, want > 0", snap.Requests["featurize"].LatencyP50Ms)
	}
}

func TestMicroBatchingCoalesces(t *testing.T) {
	_, loaded, spec := fixture(t)
	// Cache off so every request reaches the batcher.
	srv := New(loaded, Config{CacheSize: -1, BatchWindow: 5 * time.Millisecond, BatchMax: 64})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := spec.DB.Table(spec.BaseTable)
	want, err := loaded.Featurize(base.SelectRows(seq(8)), spec.BaseTable, nil, func(int) int { return -1 })
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	feats := make([][]float64, 8)
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := mustJSON(map[string]any{
				"table": spec.BaseTable,
				"rows":  []any{jsonRow(base, i)},
			})
			resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var out featurizeResponse
			if errs[i] = json.NewDecoder(resp.Body).Decode(&out); errs[i] == nil {
				feats[i] = out.Features[0]
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		for j := range want[i] {
			if feats[i][j] != want[i][j] {
				t.Fatalf("row %d feature %d: got %v, want %v", i, j, feats[i][j], want[i][j])
			}
		}
	}
	snap := srv.metrics.snapshot()
	if snap.BatchedRowsTotal != 8 {
		t.Errorf("batchedRowsTotal = %d, want 8", snap.BatchedRowsTotal)
	}
	if snap.BatchesTotal == 0 || snap.BatchesTotal > 8 {
		t.Errorf("batchesTotal = %d, want within [1, 8]", snap.BatchesTotal)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func mustJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(data)
}
