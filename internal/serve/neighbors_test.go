package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/ann"
	"repro/internal/core"
)

// fixtureIndex builds one ANN index over the serve fixture's embedding
// per test binary.
var (
	fixtureIxOnce sync.Once
	fixtureIx     *ann.Index
	fixtureIxErr  error
)

func fixtureIndex(t testing.TB) *ann.Index {
	t.Helper()
	_, loaded, _ := fixture(t)
	fixtureIxOnce.Do(func() {
		fixtureIx, fixtureIxErr = ann.Build(loaded.Embedding, ann.Options{Seed: 7})
	})
	if fixtureIxErr != nil {
		t.Fatal(fixtureIxErr)
	}
	return fixtureIx
}

// getNeighbors runs one GET /v1/neighbors query and decodes the result.
func getNeighbors(t *testing.T, url, token string, k int) (neighborsResponse, int) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/neighbors?token=%s&k=%d", url, token, k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out neighborsResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return out, resp.StatusCode
}

// TestNeighborsEndToEnd drives GET and POST /v1/neighbors against a
// real index and checks the responses against direct index searches —
// the HTTP layer must add nothing and lose nothing.
func TestNeighborsEndToEnd(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := fixtureIndex(t)
	srv := New(loaded, Config{Index: ix})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := ix.Names()[0]
	want, err := ix.SearchName(token, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture index returned no neighbors; the test is vacuous")
	}

	out, status := getNeighbors(t, ts.URL, token, 5)
	if status != http.StatusOK {
		t.Fatalf("GET status %d", status)
	}
	if out.CacheHit {
		t.Error("first query reported a cache hit")
	}
	if out.Dim != ix.Dim() || len(out.Neighbors) != len(want) {
		t.Fatalf("got %d neighbors at dim %d, want %d at %d", len(out.Neighbors), out.Dim, len(want), ix.Dim())
	}
	for i, n := range out.Neighbors {
		if n.Token != want[i].Name || n.Score != want[i].Score {
			t.Errorf("neighbor %d = %s/%g, want %s/%g", i, n.Token, n.Score, want[i].Name, want[i].Score)
		}
	}

	// The identical query is a cache hit with the identical answer.
	again, _ := getNeighbors(t, ts.URL, token, 5)
	if !again.CacheHit {
		t.Error("repeated query missed the neighbor cache")
	}
	if len(again.Neighbors) != len(out.Neighbors) {
		t.Fatal("cached answer differs from computed answer")
	}
	snap := srv.metrics
	if hits := int(snap.annCacheHits.Value()); hits != 1 {
		t.Errorf("ann cache hits = %d, want 1", hits)
	}

	// POST by token matches GET.
	resp, err := http.Post(ts.URL+"/v1/neighbors", "application/json",
		strings.NewReader(mustJSON(map[string]any{"token": token, "k": 5})))
	if err != nil {
		t.Fatal(err)
	}
	var posted neighborsResponse
	if err := json.NewDecoder(resp.Body).Decode(&posted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(posted.Neighbors) != len(want) {
		t.Fatalf("POST by token: status %d, %d neighbors", resp.StatusCode, len(posted.Neighbors))
	}

	// POST by raw vector: searching with an indexed entity's own vector
	// must return that entity as the top hit.
	vec, ok := loaded.Embedding.Vector(token)
	if !ok {
		t.Fatalf("fixture embedding lost token %q", token)
	}
	resp, err = http.Post(ts.URL+"/v1/neighbors", "application/json",
		strings.NewReader(mustJSON(map[string]any{"vector": vec, "k": 3})))
	if err != nil {
		t.Fatal(err)
	}
	var byVec neighborsResponse
	if err := json.NewDecoder(resp.Body).Decode(&byVec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(byVec.Neighbors) == 0 {
		t.Fatalf("POST by vector: status %d, %d neighbors", resp.StatusCode, len(byVec.Neighbors))
	}
	if byVec.Neighbors[0].Token != token {
		t.Errorf("self-vector query returned %q first, want %q", byVec.Neighbors[0].Token, token)
	}
}

// TestNeighborsValidation covers every rejection path of the endpoint.
func TestNeighborsValidation(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := fixtureIndex(t)
	srv := New(loaded, Config{Index: ix})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/neighbors", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(query string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/neighbors" + query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	token := ix.Names()[0]
	for name, tc := range map[string]struct {
		status int
		do     func() int
	}{
		"unknown token 404":   {404, func() int { return get("?token=no-such-entity&k=3") }},
		"missing token":       {400, func() int { return get("?k=3") }},
		"non-numeric k":       {400, func() int { return get("?token=" + token + "&k=banana") }},
		"non-numeric ef":      {400, func() int { return get("?token=" + token + "&ef=x") }},
		"k zero":              {400, func() int { return get("?token=" + token + "&k=0") }},
		"k over cap":          {400, func() int { return get(fmt.Sprintf("?token=%s&k=%d", token, maxNeighborsK+1)) }},
		"negative ef":         {400, func() int { return get("?token=" + token + "&ef=-1") }},
		"malformed body":      {400, func() int { return post("{nope") }},
		"unknown field":       {400, func() int { return post(`{"tokn":"x"}`) }},
		"token and vector":    {400, func() int { return post(`{"token":"a","vector":[1,2]}`) }},
		"neither":             {400, func() int { return post(`{"k":3}`) }},
		"wrong vector dim":    {400, func() int { return post(`{"vector":[1,2,3]}`) }},
		"unknown token POST":  {404, func() int { return post(`{"token":"no-such-entity"}`) }},
		"happy GET stays 200": {200, func() int { return get("?token=" + token) }},
	} {
		if got := tc.do(); got != tc.status {
			t.Errorf("%s: status %d, want %d", name, got, tc.status)
		}
	}
}

// TestNeighborsWithoutIndex: a server configured without an index
// answers 503 on both methods, and healthz reports zero ANN vectors.
func TestNeighborsWithoutIndex(t *testing.T) {
	_, loaded, _ := fixture(t)
	srv := New(loaded, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, status := getNeighbors(t, ts.URL, "anything", 3); status != http.StatusServiceUnavailable {
		t.Errorf("GET without index: status %d, want 503", status)
	}
	resp, err := http.Post(ts.URL+"/v1/neighbors", "application/json", strings.NewReader(`{"token":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST without index: status %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["annVectors"] != float64(0) {
		t.Errorf("healthz annVectors = %v, want 0", hz["annVectors"])
	}
}

// TestNeighborsPinnedAcrossReload is the zero-downtime contract for the
// ANN path: a neighbor query in flight when a reload swaps bundle and
// index finishes against the index it started with, and the next query
// sees the new index.
func TestNeighborsPinnedAcrossReload(t *testing.T) {
	_, loaded, _ := fixture(t)
	alt := altFixture(t)
	oldIx := fixtureIndex(t)
	newIx, err := ann.Build(alt.Embedding, ann.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(loaded, Config{
		RequestTimeout: -1,
		Index:          oldIx,
		Loader:         func() (*core.Result, error) { return alt, nil },
		IndexLoader:    func() (*ann.Index, error) { return newIx, nil },
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHookNeighbors = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := oldIx.Names()[0]
	wantOld, err := oldIx.SearchName(token, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	type answer struct {
		out    neighborsResponse
		status int
	}
	got := make(chan answer, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/v1/neighbors?token=%s&k=5", ts.URL, token))
		if err != nil {
			got <- answer{status: -1}
			return
		}
		defer resp.Body.Close()
		var out neighborsResponse
		if resp.StatusCode == http.StatusOK {
			json.NewDecoder(resp.Body).Decode(&out)
		}
		got <- answer{out: out, status: resp.StatusCode}
	}()
	<-entered // query holds the pre-reload store and its index

	if err := srv.Reload(); err != nil {
		t.Fatalf("reload with a neighbor query in flight: %v", err)
	}
	srv.testHookNeighbors = nil
	close(release)

	ans := <-got
	if ans.status != http.StatusOK {
		t.Fatalf("in-flight neighbor query failed across the reload: status %d", ans.status)
	}
	for i, n := range ans.out.Neighbors {
		if n.Token != wantOld[i].Name || n.Score != wantOld[i].Score {
			t.Fatalf("in-flight query served mixed or new-index results at %d: %s/%g", i, n.Token, n.Score)
		}
	}

	// The next query runs on the reloaded index.
	wantNew, err := newIx.SearchName(token, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, status := getNeighbors(t, ts.URL, token, 5)
	if status != http.StatusOK {
		t.Fatalf("post-reload query: status %d", status)
	}
	same := len(after.Neighbors) == len(wantNew)
	for i := 0; same && i < len(wantNew); i++ {
		same = after.Neighbors[i].Token == wantNew[i].Name && after.Neighbors[i].Score == wantNew[i].Score
	}
	if !same {
		t.Fatal("post-reload query does not match the new index")
	}
	if srv.curStore().index != newIx {
		t.Error("current store does not hold the reloaded index")
	}
}

// TestReloadRejectsBadIndex: a failing or mismatched candidate index
// rejects the whole reload — bundle included — and the old pair keeps
// serving.
func TestReloadRejectsBadIndex(t *testing.T) {
	_, loaded, _ := fixture(t)
	alt := altFixture(t)
	ix := fixtureIndex(t)

	t.Run("loader error", func(t *testing.T) {
		srv := New(loaded, Config{
			Index:       ix,
			Loader:      func() (*core.Result, error) { return alt, nil },
			IndexLoader: func() (*ann.Index, error) { return nil, fmt.Errorf("index disk on fire") },
		})
		if err := srv.Reload(); err == nil || !strings.Contains(err.Error(), "index disk on fire") {
			t.Fatalf("reload error = %v, want the index loader's failure", err)
		}
		st := srv.curStore()
		if st.gen != 1 || st.index != ix {
			t.Errorf("failed index reload advanced the store: gen %d", st.gen)
		}
	})

	t.Run("dim mismatch", func(t *testing.T) {
		badIx, err := ann.BuildVectors([]string{"a", "b", "c"},
			[][]float64{{1, 2}, {3, 4}, {5, 6}}, ann.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(loaded, Config{
			Index:       ix,
			Loader:      func() (*core.Result, error) { return alt, nil },
			IndexLoader: func() (*ann.Index, error) { return badIx, nil },
		})
		if err := srv.Reload(); err == nil || !strings.Contains(err.Error(), "dim") {
			t.Fatalf("reload error = %v, want a dim-mismatch rejection", err)
		}
		if st := srv.curStore(); st.gen != 1 || st.index != ix {
			t.Error("rejected index reload swapped the store anyway")
		}
	})

	t.Run("foreign names", func(t *testing.T) {
		// Right dimension, wrong vocabulary: an index built from some
		// other embedding must not pass validation.
		dim := loaded.Embedding.Dim
		vecs := make([][]float64, 3)
		names := make([]string, 3)
		for i := range vecs {
			v := make([]float64, dim)
			v[i%dim] = 1
			vecs[i] = v
			names[i] = fmt.Sprintf("not-an-entity-%d", i)
		}
		foreign, err := ann.BuildVectors(names, vecs, ann.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(loaded, Config{
			Index:       ix,
			Loader:      func() (*core.Result, error) { return alt, nil },
			IndexLoader: func() (*ann.Index, error) { return foreign, nil },
		})
		if err := srv.Reload(); err == nil || !strings.Contains(err.Error(), "not in the candidate embedding") {
			t.Fatalf("reload error = %v, want a foreign-name rejection", err)
		}
	})

	t.Run("no index loader carries index forward", func(t *testing.T) {
		srv := New(loaded, Config{
			Index:  ix,
			Loader: func() (*core.Result, error) { return loaded, nil },
		})
		if err := srv.Reload(); err != nil {
			t.Fatal(err)
		}
		if st := srv.curStore(); st.gen != 2 || st.index != ix {
			t.Errorf("reload without IndexLoader: gen %d, index carried = %v", st.gen, st.index == ix)
		}
	})
}

// BenchmarkANNSearch compares one /v1/neighbors-path search through the
// HNSW index against the exact brute-force scan it replaces, on the
// serving fixture's embedding.
func BenchmarkANNSearch(b *testing.B) {
	_, loaded, _ := fixture(b)
	ix, err := ann.Build(loaded.Embedding, ann.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	token := ix.Names()[0]
	query, _ := loaded.Embedding.Vector(token)

	b.Run("hnsw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.SearchVector(query, 10, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("hnsw-int8", func(b *testing.B) {
		qix, err := ann.Build(loaded.Embedding, ann.Options{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if err := qix.Quantize(nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qix.SearchVector(query, 10, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("brute-force", func(b *testing.B) {
		names := ix.Names()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			type scored struct {
				name  string
				score float64
			}
			best := make([]scored, 0, len(names))
			for _, n := range names {
				v, _ := loaded.Embedding.Vector(n)
				dot, qq, vv := 0.0, 0.0, 0.0
				for d := range v {
					dot += query[d] * v[d]
					qq += query[d] * query[d]
					vv += v[d] * v[d]
				}
				if qq > 0 && vv > 0 {
					best = append(best, scored{n, dot})
				}
			}
			_ = best
		}
	})

	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ann.Build(loaded.Embedding, ann.Options{Seed: 7}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
