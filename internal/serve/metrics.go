package serve

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/resilience"
)

// Serving metric family names. The catalog — every family, its labels
// and meaning — is docs/OBSERVABILITY.md, and a test diffs that table
// against a live Server's registry so the two cannot drift. Legacy
// consumers of the JSON snapshot keep their field names too: the same
// instruments render both GET /metrics (Prometheus text) and
// GET /metrics?format=json (the pre-obs JSON body, byte-compatible
// field for field).
const (
	metricUptime          = "leva_uptime_seconds"
	metricInFlight        = "leva_http_in_flight_requests"
	metricShed            = "leva_http_shed_total"
	metricPanics          = "leva_http_panics_total"
	metricRequests        = "leva_http_requests_total"
	metricRequestErrors   = "leva_http_request_errors_total"
	metricRequestDuration = "leva_http_request_duration_seconds"
	metricResponses       = "leva_http_responses_total"
	metricCacheHits       = "leva_rowcache_hits_total"
	metricCacheMisses     = "leva_rowcache_misses_total"
	metricCacheSize       = "leva_rowcache_size"
	metricCacheCapacity   = "leva_rowcache_capacity"
	metricRowsFeaturized  = "leva_rows_featurized_total"
	metricBatches         = "leva_batches_total"
	metricBatchedRows     = "leva_batched_rows_total"
	metricANNCacheHits    = "leva_ann_cache_hits_total"
	metricANNCacheMisses  = "leva_ann_cache_misses_total"
	metricANNIndexSize    = "leva_ann_index_size"
	metricQuantEnabled    = "leva_quant_enabled"
	metricQuantArenaBytes = "leva_quant_arena_bytes"
	metricGeneration      = "leva_bundle_generation"
	metricReloads         = "leva_reloads_total"
	metricReloadFailures  = "leva_reload_failures_total"
	metricReloadDuration  = "leva_reload_last_duration_seconds"
	metricReloadUnix      = "leva_reload_last_unix_seconds"

	metricAbandoned          = "leva_resilience_abandoned_total"
	metricBackoffs           = "leva_resilience_backoffs_total"
	metricBreakerState       = "leva_resilience_breaker_state"
	metricBreakerTransitions = "leva_resilience_breaker_transitions_total"
	metricChaosEnabled       = "leva_resilience_chaos_enabled"
	metricChaosInjections    = "leva_resilience_chaos_injections_total"
	metricDegraded           = "leva_resilience_degraded_total"
	metricDepCalls           = "leva_resilience_dep_calls_total"
	metricLimit              = "leva_resilience_limit"
	metricQueueDepth         = "leva_resilience_queue_depth"
	metricShedRetryAfter     = "leva_shed_retry_after_seconds"
	metricShedByReason       = "leva_shed_total"
)

// trackedStatuses are the response codes counted individually; anything
// else lands under code="other".
var trackedStatuses = []int{200, 400, 404, 413, 429, 500, 503}

// endpointNames are the fixed endpoint label values — one per route in
// Server.Handler.
var endpointNames = []string{"featurize", "embedding", "neighbors", "healthz", "metrics", "reload", "chaos"}

// metrics is the daemon-wide instrument set behind GET /metrics, one
// per Server (tests assert exact per-instance counts). Every value
// lives in an obs.Registry — the single source both exposition formats
// and the reload log lines read from — with lock-free updates on the
// request hot path.
type metrics struct {
	reg   *obs.Registry
	start time.Time

	inFlight        *obs.Gauge
	shed            *obs.Counter
	panics          *obs.Counter
	requests        *obs.CounterVec   // by endpoint
	requestErrors   *obs.CounterVec   // by endpoint, status >= 400
	latency         *obs.HistogramVec // by endpoint, seconds
	statuses        *obs.CounterVec   // by code ("200", ..., "other")
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	cacheCapGauge   *obs.Gauge
	rowsFeaturized  *obs.Counter
	batches         *obs.Counter
	batchedRows     *obs.Counter
	annCacheHits    *obs.Counter
	annCacheMisses  *obs.Counter
	annIndexSize    *obs.Gauge
	quantEnabled    *obs.Gauge
	quantArenaBytes *obs.Gauge

	abandoned          *obs.CounterVec // by reason (deadline, disconnect)
	backoffs           *obs.Counter
	breakerState       *obs.GaugeVec   // by dep
	breakerTransitions *obs.CounterVec // by dep, to
	chaosEnabled       *obs.Gauge
	chaosInjections    *obs.CounterVec // by target, kind
	degraded           *obs.CounterVec // by endpoint
	depCalls           *obs.CounterVec // by dep, outcome
	shedByReason       *obs.CounterVec // by reason
	shedRetryAfter     *obs.Gauge

	generation        *obs.Gauge
	reloads           *obs.Counter
	reloadFailures    *obs.Counter
	lastReloadSeconds *obs.Gauge
	lastReloadUnix    *obs.Gauge
	lastReloadError   atomic.Value // string; JSON-only, not a number

	// cacheCapacity and cacheLenFn describe the *current* store's row
	// cache. cacheLenFn is swapped on hot reload while scrapes may be
	// rendering, hence the atomic.Value (holds func() int).
	cacheCapacity atomic.Int64
	cacheLenFn    atomic.Value // func() int

	// limitFn and queueDepthFn read the admission limiter, which is
	// created after the metrics (atomic.Value holds func() float64 so a
	// bare metrics set — the golden test's case — renders zeros).
	limitFn      atomic.Value // func() float64
	queueDepthFn atomic.Value // func() float64
}

func newMetrics() *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg:   r,
		start: time.Now(),
		inFlight: r.Gauge(metricInFlight,
			"HTTP requests currently being handled."),
		shed: r.Counter(metricShed,
			"Requests shed with 429 by the concurrency limiter."),
		panics: r.Counter(metricPanics,
			"Handler panics recovered into 500 responses."),
		requests: r.CounterVec(metricRequests,
			"HTTP requests completed, by endpoint.", "endpoint"),
		requestErrors: r.CounterVec(metricRequestErrors,
			"HTTP requests answered with status >= 400, by endpoint.", "endpoint"),
		latency: r.HistogramVec(metricRequestDuration,
			"HTTP request wall time, by endpoint.",
			obs.LatencyBuckets, "endpoint"),
		statuses: r.CounterVec(metricResponses,
			"HTTP responses, by status code (untracked codes land under \"other\").", "code"),
		cacheHits: r.Counter(metricCacheHits,
			"Featurized-row cache hits."),
		cacheMisses: r.Counter(metricCacheMisses,
			"Featurized-row cache misses."),
		cacheCapGauge: r.Gauge(metricCacheCapacity,
			"Row-cache capacity in entries (0 = cache disabled)."),
		rowsFeaturized: r.Counter(metricRowsFeaturized,
			"Rows featurized by the serving path."),
		batches: r.Counter(metricBatches,
			"Micro-batches executed."),
		batchedRows: r.Counter(metricBatchedRows,
			"Rows featurized through micro-batches."),
		annCacheHits: r.Counter(metricANNCacheHits,
			"Neighbor-query cache hits."),
		annCacheMisses: r.Counter(metricANNCacheMisses,
			"Neighbor-query cache misses."),
		annIndexSize: r.Gauge(metricANNIndexSize,
			"Vectors in the serving ANN index (0 = no index loaded)."),
		quantEnabled: r.Gauge(metricQuantEnabled,
			"Whether the serving ANN index searches the int8 quantized arena (1) or float vectors (0)."),
		quantArenaBytes: r.Gauge(metricQuantArenaBytes,
			"Bytes held by the serving index's int8 arena plus per-vector scales (0 = not quantized)."),
		generation: r.Gauge(metricGeneration,
			"Serving bundle generation (1 at startup, +1 per successful reload)."),
		reloads: r.Counter(metricReloads,
			"Hot-reload attempts."),
		reloadFailures: r.Counter(metricReloadFailures,
			"Hot-reload attempts that failed (the previous bundle kept serving)."),
		lastReloadSeconds: r.Gauge(metricReloadDuration,
			"Duration of the last reload attempt."),
		lastReloadUnix: r.Gauge(metricReloadUnix,
			"Unix time of the last reload attempt (0 = never)."),
		abandoned: r.CounterVec(metricAbandoned,
			"Requests abandoned mid-flight, by reason (deadline = X-Leva-Deadline-Ms expired, disconnect = client closed the connection).", "reason"),
		backoffs: r.Counter(metricBackoffs,
			"Multiplicative decreases of the adaptive concurrency limit (each marks observed congestion)."),
		breakerState: r.GaugeVec(metricBreakerState,
			"Circuit breaker state, by dependency (0 = closed, 1 = half-open, 2 = open).", "dep"),
		breakerTransitions: r.CounterVec(metricBreakerTransitions,
			"Circuit breaker state transitions, by dependency and new state.", "dep", "to"),
		chaosEnabled: r.Gauge(metricChaosEnabled,
			"Whether chaos fault injection is active (1) or not (0)."),
		chaosInjections: r.CounterVec(metricChaosInjections,
			"Faults injected by the chaos harness, by target and kind (error, latency, stall).", "target", "kind"),
		degraded: r.CounterVec(metricDegraded,
			"Requests answered in a degraded mode (brute-force neighbor scan, row-cache bypass), by endpoint.", "endpoint"),
		depCalls: r.CounterVec(metricDepCalls,
			"Guarded dependency calls, by dependency and outcome (ok, error, timeout, canceled, open).", "dep", "outcome"),
		shedByReason: r.CounterVec(metricShedByReason,
			"Requests shed with 429, by reason (capacity, queue_timeout, client_gone).", "reason"),
		shedRetryAfter: r.Gauge(metricShedRetryAfter,
			"Retry-After value of the most recent shed response."),
	}
	r.Register(obs.NewGaugeFunc(metricUptime,
		"Seconds since this server was created.",
		func() float64 { return time.Since(m.start).Seconds() }))
	r.Register(obs.NewGaugeFunc(metricCacheSize,
		"Featurized rows currently cached.",
		func() float64 {
			if fn, ok := m.cacheLenFn.Load().(func() int); ok && fn != nil {
				return float64(fn())
			}
			return 0
		}))
	r.Register(obs.NewGaugeFunc(metricLimit,
		"Current adaptive concurrency limit (AIMD: climbs on success, falls on congestion).",
		func() float64 {
			if fn, ok := m.limitFn.Load().(func() float64); ok && fn != nil {
				return fn()
			}
			return 0
		}))
	r.Register(obs.NewGaugeFunc(metricQueueDepth,
		"Requests waiting in the admission queue.",
		func() float64 {
			if fn, ok := m.queueDepthFn.Load().(func() float64); ok && fn != nil {
				return fn()
			}
			return 0
		}))
	// Process-wide substrates share their package-level instruments
	// into this server's registry, so one scrape covers worker-pool
	// saturation, durability syscall latency, and runtime health.
	parallel.RegisterMetrics(r)
	durable.RegisterMetrics(r)
	ann.RegisterMetrics(r)
	obs.RegisterRuntimeMetrics(r)
	return m
}

// setRowCache points the cache gauges at the current store's cache.
// Called at store construction (startup and every reload).
func (m *metrics) setRowCache(capacity int, lenFn func() int) {
	m.cacheCapacity.Store(int64(capacity))
	m.cacheCapGauge.Set(float64(capacity))
	if lenFn != nil {
		m.cacheLenFn.Store(lenFn)
	}
}

// setLimiter points the admission gauges at the server's limiter.
// Called once at Server construction.
func (m *metrics) setLimiter(l *resilience.Limiter) {
	m.limitFn.Store(func() float64 { return l.Limit() })
	m.queueDepthFn.Store(func() float64 { return float64(l.QueueDepth()) })
}

// recordReload accounts one reload attempt. gen is the new generation
// on success (ignored on failure — the serving generation is
// unchanged).
func (m *metrics) recordReload(d time.Duration, gen int64, err error) {
	m.reloads.Inc()
	m.lastReloadSeconds.Set(d.Seconds())
	m.lastReloadUnix.Set(float64(time.Now().Unix()))
	if err != nil {
		m.reloadFailures.Inc()
		m.lastReloadError.Store(err.Error())
		return
	}
	m.lastReloadError.Store("")
	_ = gen // generation itself is stored by the swapper while holding the reload lock
}

// observe accounts one completed request.
func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	code := "other"
	for _, tracked := range trackedStatuses {
		if tracked == status {
			code = strconv.Itoa(status)
			break
		}
	}
	m.statuses.With(code).Inc()
	for _, name := range endpointNames {
		if name == endpoint {
			m.requests.With(endpoint).Inc()
			if status >= 400 {
				m.requestErrors.With(endpoint).Inc()
			}
			m.latency.With(endpoint).ObserveDuration(d)
			break
		}
	}
}

// endpointSnapshot is the wire form of one endpoint's counters.
type endpointSnapshot struct {
	Count        int64   `json:"count"`
	Errors       int64   `json:"errors"`
	LatencyMs    float64 `json:"latencyMeanMs"`
	LatencyP50Ms float64 `json:"latencyP50Ms"`
	LatencyP90Ms float64 `json:"latencyP90Ms"`
	LatencyP99Ms float64 `json:"latencyP99Ms"`
}

// cacheSnapshot is the wire form of the row-cache counters.
type cacheSnapshot struct {
	Enabled  bool    `json:"enabled"`
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hitRate"`
}

// reloadSnapshot is the wire form of the hot-reload counters.
type reloadSnapshot struct {
	Generation     int64   `json:"generation"`
	Total          int64   `json:"total"`
	Failures       int64   `json:"failures"`
	LastDurationMs float64 `json:"lastDurationMs"`
	LastUnix       int64   `json:"lastUnix"`
	LastError      string  `json:"lastError,omitempty"`
}

// resilienceSnapshot is the wire form of the admission/breaker/chaos
// state — new in the resilience PR, additive to the legacy schema.
type resilienceSnapshot struct {
	Limit          float64           `json:"limit"`
	QueueDepth     int               `json:"queueDepth"`
	ShedByReason   map[string]int64  `json:"shedByReason,omitempty"`
	AbandonedTotal int64             `json:"abandonedTotal"`
	DegradedTotal  int64             `json:"degradedTotal"`
	Breakers       map[string]string `json:"breakers"`
	ChaosEnabled   bool              `json:"chaosEnabled"`
}

// metricsSnapshot is the GET /metrics?format=json response body — the
// pre-obs JSON schema, field for field, derived from the same registry
// instruments the Prometheus exposition renders (plus the additive
// "resilience" section).
type metricsSnapshot struct {
	UptimeSeconds       float64                     `json:"uptimeSeconds"`
	InFlight            int64                       `json:"inFlight"`
	ShedTotal           int64                       `json:"shedTotal"`
	PanicsTotal         int64                       `json:"panicsTotal"`
	Requests            map[string]endpointSnapshot `json:"requests"`
	ResponsesByStatus   map[string]int64            `json:"responsesByStatus"`
	Cache               cacheSnapshot               `json:"cache"`
	Reload              reloadSnapshot              `json:"reload"`
	Resilience          resilienceSnapshot          `json:"resilience"`
	RowsFeaturizedTotal int64                       `json:"rowsFeaturizedTotal"`
	BatchesTotal        int64                       `json:"batchesTotal"`
	BatchedRowsTotal    int64                       `json:"batchedRowsTotal"`
}

func (m *metrics) snapshot() metricsSnapshot {
	snap := metricsSnapshot{
		UptimeSeconds:       time.Since(m.start).Seconds(),
		InFlight:            int64(m.inFlight.Value()),
		ShedTotal:           int64(m.shed.Value()),
		PanicsTotal:         int64(m.panics.Value()),
		Requests:            make(map[string]endpointSnapshot, len(endpointNames)),
		ResponsesByStatus:   make(map[string]int64),
		RowsFeaturizedTotal: int64(m.rowsFeaturized.Value()),
		BatchesTotal:        int64(m.batches.Value()),
		BatchedRowsTotal:    int64(m.batchedRows.Value()),
		Reload: reloadSnapshot{
			Generation:     int64(m.generation.Value()),
			Total:          int64(m.reloads.Value()),
			Failures:       int64(m.reloadFailures.Value()),
			LastDurationMs: m.lastReloadSeconds.Value() * 1e3,
			LastUnix:       int64(m.lastReloadUnix.Value()),
		},
	}
	if e, ok := m.lastReloadError.Load().(string); ok {
		snap.Reload.LastError = e
	}
	for _, name := range endpointNames {
		h := m.latency.With(name)
		es := endpointSnapshot{
			Count:  int64(m.requests.With(name).Value()),
			Errors: int64(m.requestErrors.With(name).Value()),
		}
		if es.Count > 0 {
			es.LatencyMs = h.Sum() / float64(h.Count()) * 1e3
			es.LatencyP50Ms = h.Quantile(0.50) * 1e3
			es.LatencyP90Ms = h.Quantile(0.90) * 1e3
			es.LatencyP99Ms = h.Quantile(0.99) * 1e3
		}
		snap.Requests[name] = es
	}
	for _, code := range trackedStatuses {
		key := strconv.Itoa(code)
		if n := int64(m.statuses.With(key).Value()); n > 0 {
			snap.ResponsesByStatus[key] = n
		}
	}
	if n := int64(m.statuses.With("other").Value()); n > 0 {
		snap.ResponsesByStatus["other"] = n
	}
	hits, misses := int64(m.cacheHits.Value()), int64(m.cacheMisses.Value())
	capacity := int(m.cacheCapacity.Load())
	snap.Cache = cacheSnapshot{
		Enabled:  capacity > 0,
		Capacity: capacity,
		Hits:     hits,
		Misses:   misses,
	}
	if fn, ok := m.cacheLenFn.Load().(func() int); ok && fn != nil {
		snap.Cache.Size = fn()
	}
	if hits+misses > 0 {
		snap.Cache.HitRate = float64(hits) / float64(hits+misses)
	}
	return snap
}

// fullSnapshot is the metrics snapshot plus the live resilience state,
// read from the server (breaker states advance with the clock, so they
// are read from the breakers themselves, not the lagging gauges).
func (s *Server) fullSnapshot() metricsSnapshot {
	m := s.metrics
	snap := m.snapshot()
	snap.Resilience = resilienceSnapshot{
		Limit:        s.limiter.Limit(),
		QueueDepth:   s.limiter.QueueDepth(),
		Breakers:     make(map[string]string, len(depNames)),
		ChaosEnabled: s.chaos.Enabled(),
	}
	for _, dep := range depNames {
		snap.Resilience.Breakers[dep] = s.breakers[dep].State().String()
	}
	for _, reason := range shedReasons {
		if n := int64(m.shedByReason.With(reason).Value()); n > 0 {
			if snap.Resilience.ShedByReason == nil {
				snap.Resilience.ShedByReason = make(map[string]int64)
			}
			snap.Resilience.ShedByReason[reason] = n
		}
	}
	for _, reason := range []string{"deadline", "disconnect"} {
		snap.Resilience.AbandonedTotal += int64(m.abandoned.With(reason).Value())
	}
	for _, endpoint := range []string{"featurize", "neighbors"} {
		snap.Resilience.DegradedTotal += int64(m.degraded.With(endpoint).Value())
	}
	return snap
}
