package serve

import (
	"strconv"
	"sync/atomic"
	"time"
)

// latencyBoundsNs are the upper bounds (nanoseconds) of the fixed
// log-spaced latency histogram buckets; one overflow bucket follows.
var latencyBoundsNs = []int64{
	int64(50 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(time.Second),
	int64(2500 * time.Millisecond),
	int64(5 * time.Second),
	int64(10 * time.Second),
}

// trackedStatuses are the response codes counted individually; anything
// else lands in the trailing "other" slot.
var trackedStatuses = []int{200, 400, 404, 413, 429, 500, 503}

// endpointMetrics accumulates per-endpoint counters. All fields are
// atomics so the hot path never takes a lock.
type endpointMetrics struct {
	count      atomic.Int64
	errors     atomic.Int64   // responses with status >= 400
	latencySum atomic.Int64   // nanoseconds
	buckets    []atomic.Int64 // len(latencyBoundsNs)+1, last = overflow
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{buckets: make([]atomic.Int64, len(latencyBoundsNs)+1)}
}

func (e *endpointMetrics) observe(d time.Duration, status int) {
	e.count.Add(1)
	if status >= 400 {
		e.errors.Add(1)
	}
	ns := d.Nanoseconds()
	e.latencySum.Add(ns)
	i := 0
	for i < len(latencyBoundsNs) && ns > latencyBoundsNs[i] {
		i++
	}
	e.buckets[i].Add(1)
}

// quantile estimates the q-th latency quantile (0 < q < 1) from the
// histogram, reporting the upper bound of the bucket holding that rank
// (the overflow bucket reports the largest bound). Zero with no data.
func (e *endpointMetrics) quantile(q float64) time.Duration {
	total := int64(0)
	for i := range e.buckets {
		total += e.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total)) + 1
	cum := int64(0)
	for i := range e.buckets {
		cum += e.buckets[i].Load()
		if cum >= rank {
			if i < len(latencyBoundsNs) {
				return time.Duration(latencyBoundsNs[i])
			}
			return time.Duration(latencyBoundsNs[len(latencyBoundsNs)-1])
		}
	}
	return time.Duration(latencyBoundsNs[len(latencyBoundsNs)-1])
}

// metrics is the daemon-wide counter set behind GET /metrics. Hand
// rolled on sync/atomic: no dependencies, one cache line of cost per
// request, snapshotted without stopping the world.
type metrics struct {
	start          time.Time
	inFlight       atomic.Int64
	shed           atomic.Int64
	panics         atomic.Int64
	statusCounts   []atomic.Int64              // len(trackedStatuses)+1, last = other
	endpoints      map[string]*endpointMetrics // fixed keys, read-only map
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheLen       func() int
	cacheCapacity  int
	rowsFeaturized atomic.Int64
	batches        atomic.Int64
	batchedRows    atomic.Int64

	// Hot-reload observability: the serving bundle generation (1 at
	// startup, +1 per successful swap) plus outcome counters and the
	// last attempt's duration/time, so operators can see both "did my
	// SIGHUP take" and "how long was the staging window".
	generation      atomic.Int64
	reloads         atomic.Int64
	reloadFailures  atomic.Int64
	lastReloadNs    atomic.Int64
	lastReloadUnix  atomic.Int64
	lastReloadError atomic.Value // string
}

func newMetrics() *metrics {
	return &metrics{
		start:        time.Now(),
		statusCounts: make([]atomic.Int64, len(trackedStatuses)+1),
		endpoints: map[string]*endpointMetrics{
			"featurize": newEndpointMetrics(),
			"embedding": newEndpointMetrics(),
			"healthz":   newEndpointMetrics(),
			"metrics":   newEndpointMetrics(),
			"reload":    newEndpointMetrics(),
		},
	}
}

// recordReload accounts one reload attempt. gen is the new generation
// on success (ignored on failure — the serving generation is
// unchanged).
func (m *metrics) recordReload(d time.Duration, gen int64, err error) {
	m.reloads.Add(1)
	m.lastReloadNs.Store(d.Nanoseconds())
	m.lastReloadUnix.Store(time.Now().Unix())
	if err != nil {
		m.reloadFailures.Add(1)
		m.lastReloadError.Store(err.Error())
		return
	}
	m.lastReloadError.Store("")
	_ = gen // generation itself is stored by the swapper while holding the reload lock
}

func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	i := 0
	for ; i < len(trackedStatuses); i++ {
		if trackedStatuses[i] == status {
			break
		}
	}
	m.statusCounts[i].Add(1)
	if e, ok := m.endpoints[endpoint]; ok {
		e.observe(d, status)
	}
}

// endpointSnapshot is the wire form of one endpoint's counters.
type endpointSnapshot struct {
	Count        int64   `json:"count"`
	Errors       int64   `json:"errors"`
	LatencyMs    float64 `json:"latencyMeanMs"`
	LatencyP50Ms float64 `json:"latencyP50Ms"`
	LatencyP90Ms float64 `json:"latencyP90Ms"`
	LatencyP99Ms float64 `json:"latencyP99Ms"`
}

// cacheSnapshot is the wire form of the row-cache counters.
type cacheSnapshot struct {
	Enabled  bool    `json:"enabled"`
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hitRate"`
}

// reloadSnapshot is the wire form of the hot-reload counters.
type reloadSnapshot struct {
	Generation     int64   `json:"generation"`
	Total          int64   `json:"total"`
	Failures       int64   `json:"failures"`
	LastDurationMs float64 `json:"lastDurationMs"`
	LastUnix       int64   `json:"lastUnix"`
	LastError      string  `json:"lastError,omitempty"`
}

// metricsSnapshot is the GET /metrics response body.
type metricsSnapshot struct {
	UptimeSeconds       float64                     `json:"uptimeSeconds"`
	InFlight            int64                       `json:"inFlight"`
	ShedTotal           int64                       `json:"shedTotal"`
	PanicsTotal         int64                       `json:"panicsTotal"`
	Requests            map[string]endpointSnapshot `json:"requests"`
	ResponsesByStatus   map[string]int64            `json:"responsesByStatus"`
	Cache               cacheSnapshot               `json:"cache"`
	Reload              reloadSnapshot              `json:"reload"`
	RowsFeaturizedTotal int64                       `json:"rowsFeaturizedTotal"`
	BatchesTotal        int64                       `json:"batchesTotal"`
	BatchedRowsTotal    int64                       `json:"batchedRowsTotal"`
}

func (m *metrics) snapshot() metricsSnapshot {
	snap := metricsSnapshot{
		UptimeSeconds:       time.Since(m.start).Seconds(),
		InFlight:            m.inFlight.Load(),
		ShedTotal:           m.shed.Load(),
		PanicsTotal:         m.panics.Load(),
		Requests:            make(map[string]endpointSnapshot, len(m.endpoints)),
		ResponsesByStatus:   make(map[string]int64),
		RowsFeaturizedTotal: m.rowsFeaturized.Load(),
		BatchesTotal:        m.batches.Load(),
		BatchedRowsTotal:    m.batchedRows.Load(),
		Reload: reloadSnapshot{
			Generation:     m.generation.Load(),
			Total:          m.reloads.Load(),
			Failures:       m.reloadFailures.Load(),
			LastDurationMs: float64(m.lastReloadNs.Load()) / 1e6,
			LastUnix:       m.lastReloadUnix.Load(),
		},
	}
	if e, ok := m.lastReloadError.Load().(string); ok {
		snap.Reload.LastError = e
	}
	for name, e := range m.endpoints {
		es := endpointSnapshot{Count: e.count.Load(), Errors: e.errors.Load()}
		if es.Count > 0 {
			es.LatencyMs = float64(e.latencySum.Load()) / float64(es.Count) / 1e6
			es.LatencyP50Ms = float64(e.quantile(0.50)) / 1e6
			es.LatencyP90Ms = float64(e.quantile(0.90)) / 1e6
			es.LatencyP99Ms = float64(e.quantile(0.99)) / 1e6
		}
		snap.Requests[name] = es
	}
	for i, code := range trackedStatuses {
		if n := m.statusCounts[i].Load(); n > 0 {
			snap.ResponsesByStatus[strconv.Itoa(code)] = n
		}
	}
	if n := m.statusCounts[len(trackedStatuses)].Load(); n > 0 {
		snap.ResponsesByStatus["other"] = n
	}
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	snap.Cache = cacheSnapshot{
		Enabled:  m.cacheCapacity > 0,
		Capacity: m.cacheCapacity,
		Hits:     hits,
		Misses:   misses,
	}
	if m.cacheLen != nil {
		snap.Cache.Size = m.cacheLen()
	}
	if hits+misses > 0 {
		snap.Cache.HitRate = float64(hits) / float64(hits+misses)
	}
	return snap
}
