package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/resilience"
)

// ErrReloadDisabled reports a reload attempt on a Server configured
// without a bundle Loader.
var ErrReloadDisabled = errors.New("serve: hot reload disabled: no bundle loader configured")

// errServerClosed reports a reload attempt after Shutdown.
var errServerClosed = errors.New("serve: reload refused: server is shut down")

// Reload swaps the serving bundle with zero downtime: the candidate is
// loaded (manifest-verified by the loader), validated against the
// running store — embedding dimension, feature width, and featurization
// mode must match, and a canary row must featurize cleanly — and only
// then atomically swapped in. In-flight requests keep the store they
// started with; new requests see the new store. Any failure leaves the
// current store serving, untouched, and the returned error says why.
//
// Reloads are serialized: concurrent calls (a double SIGHUP, an admin
// request racing a signal) run one after another, each against the
// then-current store. Every outcome and its duration is recorded in
// /metrics.
//
// Reload is itself a circuit-broken dependency: repeated candidate
// failures trip the "reload" breaker and further attempts fail fast
// (wrapping resilience.ErrOpen) until the cooling period admits a
// probe — an operator republishing a bad bundle in a retry loop gets
// one clear signal instead of a validation storm. A reload that does
// succeed resets the ANN and row-cache breakers: those dependencies
// were just replaced and validated, so their failure history is stale
// by construction.
func (s *Server) Reload() error {
	done, berr := s.breakers[depReload].Allow()
	if berr != nil {
		s.metrics.depCalls.With(depReload, "open").Inc()
		return fmt.Errorf("serve: reload refused (%d consecutive failures, retry in %s): %w",
			s.cfg.BreakerFailures, s.breakers[depReload].RetryAfter().Round(time.Second), berr)
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	start := time.Now()
	gen, err := s.reloadLocked()
	s.metrics.recordReload(time.Since(start), gen, err)
	// Config states (reload disabled, server shut down) say nothing
	// about bundle health; only real candidate failures count.
	benign := errors.Is(err, ErrReloadDisabled) || errors.Is(err, errServerClosed)
	done(err == nil || benign)
	if err != nil {
		if benign {
			s.metrics.depCalls.With(depReload, "canceled").Inc()
		} else {
			s.metrics.depCalls.With(depReload, "error").Inc()
		}
		return err
	}
	s.metrics.depCalls.With(depReload, "ok").Inc()
	for _, dep := range []string{depANN, depRowCache} {
		s.breakers[dep].Reset()
	}
	return nil
}

func (s *Server) reloadLocked() (int64, error) {
	if s.closed {
		return 0, errServerClosed
	}
	if s.cfg.Loader == nil {
		return 0, ErrReloadDisabled
	}
	res, err := s.cfg.Loader()
	if err != nil {
		return 0, fmt.Errorf("serve: reload: load candidate bundle: %w", err)
	}
	cur := s.st.Load()
	if err := validateCandidate(cur.res, res); err != nil {
		_ = res.Unmap() // the rejected candidate's mapping must not leak
		return 0, fmt.Errorf("serve: reload rejected, still serving generation %d: %w", cur.gen, err)
	}
	// The index reloads with the bundle when an IndexLoader is
	// configured; otherwise the current index (possibly nil) carries
	// forward. A candidate index that fails to load or validate rejects
	// the whole reload — serving a new embedding against a stale index
	// would silently return neighbors from the wrong vector space.
	ix := cur.index
	if s.cfg.IndexLoader != nil {
		cand, err := s.cfg.IndexLoader()
		if err != nil {
			_ = res.Unmap()
			return 0, fmt.Errorf("serve: reload rejected, still serving generation %d: load candidate index: %w", cur.gen, err)
		}
		if err := validateIndex(res, cand); err != nil {
			_ = res.Unmap()
			return 0, fmt.Errorf("serve: reload rejected, still serving generation %d: %w", cur.gen, err)
		}
		ix = cand
	}
	next := newStore(res, ix, s.cfg, s.metrics, s.guards)
	next.gen = cur.gen + 1
	// An index carried forward from an in-process build can read its
	// vectors straight out of a retired bundle's mmap'd arena.
	// Unmapping that arena when its store drains would leave the
	// carried index on unmapped pages, so ownership of the mapping
	// moves to the new store, which releases it when it retires in
	// turn. Mappings the old store was already retaining for the same
	// index move along with it (second and later reloads); the old
	// store's own bundle joins them only if the index actually aliases
	// it.
	if s.cfg.IndexLoader == nil && ix != nil {
		next.retain = cur.retain
		cur.retain = nil
		if cur.res.Mapped() && ix.SharesStorage(cur.res.Embedding) {
			next.retain = append(next.retain, cur.res)
			cur.ownsMap = false
		}
	}
	s.st.Store(next)
	s.metrics.generation.Set(float64(next.gen))
	// Drop the serving reference of the replaced store; its batcher
	// stops once the last in-flight request using it finishes.
	cur.release()
	return next.gen, nil
}

// validateCandidate checks a candidate bundle against the serving one.
// Downstream models were trained on feature vectors of a fixed shape,
// so a hot swap must preserve that shape exactly; a re-fit with a
// different dimension is a deliberate redeploy, not a reload.
func validateCandidate(cur, cand *core.Result) error {
	if cand.Embedding == nil || cand.Embedding.Len() == 0 {
		return errors.New("candidate bundle has an empty embedding")
	}
	if cand.Embedding.Dim != cur.Embedding.Dim {
		return fmt.Errorf("candidate embedding dim %d != serving dim %d", cand.Embedding.Dim, cur.Embedding.Dim)
	}
	if cand.Config.Featurization != cur.Config.Featurization {
		return fmt.Errorf("candidate featurization mode %d != serving mode %d",
			cand.Config.Featurization, cur.Config.Featurization)
	}
	curW := cur.FeatureWidth(cur.Config.Featurization)
	candW := cand.FeatureWidth(cand.Config.Featurization)
	if curW != candW {
		return fmt.Errorf("candidate feature width %d != serving width %d (downstream models would break)", candW, curW)
	}
	return canaryProbe(cand)
}

// canaryProbe featurizes one synthetic row through the candidate bundle
// — every fitted column of its first table, all nulls — so a bundle
// that loads but cannot featurize (corrupt tokenizer state, broken
// fallback config) is rejected before it ever sees traffic.
func canaryProbe(cand *core.Result) error {
	tables := cand.Textifier.Tables()
	if len(tables) == 0 {
		return errors.New("canary probe: candidate tokenizer knows no tables")
	}
	table := tables[0]
	cols := cand.Textifier.Columns(table)
	if len(cols) == 0 {
		return fmt.Errorf("canary probe: candidate table %q has no fitted columns", table)
	}
	t := &dataset.Table{Name: table}
	for _, c := range cols {
		t.Columns = append(t.Columns, &dataset.Column{Name: c, Values: []dataset.Value{dataset.Null()}})
	}
	mode := cand.Config.Featurization
	out, err := cand.FeaturizeRow(t, table, nil, 0, -1, mode)
	if err != nil {
		return fmt.Errorf("canary probe: featurize one row of %q: %w", table, err)
	}
	if want := cand.FeatureWidth(mode); len(out) != want {
		return fmt.Errorf("canary probe: got %d features, want %d", len(out), want)
	}
	return nil
}

// validateIndex checks a candidate ANN index against the bundle it
// will serve with: the dimensions must agree, every probed index entry
// must name an entity the embedding actually holds, and a canary
// search must answer — an index built from a different embedding (or a
// corrupt one that decoded anyway) is rejected before the swap.
func validateIndex(cand *core.Result, ix *ann.Index) error {
	if ix == nil || ix.Len() == 0 {
		return errors.New("candidate ANN index is empty")
	}
	if ix.Dim() != cand.Embedding.Dim {
		return fmt.Errorf("candidate ANN index dim %d != candidate embedding dim %d", ix.Dim(), cand.Embedding.Dim)
	}
	names := ix.Names()
	for _, probe := range []int{0, len(names) / 2, len(names) - 1} {
		if _, ok := cand.Embedding.Vector(names[probe]); !ok {
			return fmt.Errorf("candidate ANN index entry %q is not in the candidate embedding (index built from a different bundle?)", names[probe])
		}
	}
	if _, err := ix.SearchName(names[0], 1, 0); err != nil {
		return fmt.Errorf("candidate ANN index canary search: %w", err)
	}
	return nil
}

// stageProvenance summarizes which pipeline stages the build behind res
// actually recomputed, from the stage-cache provenance that version-3
// bundles carry (cached / partial / rebuilt per stage). Bundles saved
// before provenance existed report every stage as "unknown".
func stageProvenance(res *core.Result) map[string]string {
	c := res.Timings.Cache
	if c.Textify == "" && c.Graph == "" && c.Embed == "" {
		return map[string]string{"textify": "unknown", "graph": "unknown", "embed": "unknown"}
	}
	return map[string]string{
		"textify": string(c.Textify),
		"graph":   string(c.Graph),
		"embed":   string(c.Embed),
	}
}

// handleReload is POST /admin/reload: a synchronous reload with the
// outcome in the response. 200 with the new generation on success; 503
// when reload is not configured; 500 with the reason when the candidate
// was rejected (the previous bundle keeps serving either way). The
// "stages" field reports which pipeline stages the refreshed bundle's
// build recomputed versus served from its stage cache.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if err := s.Reload(); err != nil {
		if errors.Is(err, resilience.ErrOpen) {
			retryAfterHeader(w, s.breakers[depReload].RetryAfter())
			writeErrorReason(w, http.StatusServiceUnavailable, "breaker_open", "%v", err)
			return
		}
		status := http.StatusInternalServerError
		if errors.Is(err, ErrReloadDisabled) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	st := s.st.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "reloaded",
		"generation": st.gen,
		"durationMs": float64(time.Since(start)) / 1e6,
		"stages":     stageProvenance(st.res),
	})
}
