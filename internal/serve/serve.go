// Package serve is Leva's online serving subsystem: a long-lived
// featurization service in front of a saved deployment bundle (paper
// Section 2's "build the embedding once, featurize any downstream
// task"). It wraps a loaded core.Result in a read-optimized,
// concurrency-safe store — token→vector lookups straight off the
// embedding index, an LRU cache of fully-featurized rows, and an
// optional micro-batcher that coalesces concurrent single-row requests
// — and exposes it over HTTP:
//
//	POST /v1/featurize        rows in, dense feature vectors out
//	GET  /v1/embedding/{token} one embedding vector
//	GET  /v1/neighbors        top-k approximate nearest neighbors of a
//	POST /v1/neighbors        token (GET) or raw vector (POST), when an
//	                          ANN index is configured
//	GET  /healthz             liveness + degradation (per-breaker state)
//	GET  /metrics             Prometheus text (?format=json for the
//	                          legacy JSON snapshot)
//	GET  /admin/chaos         chaos-harness state (POST to reconfigure;
//	                          503 unless started with a chaos source)
//
// The HTTP layer carries the production plumbing: deadline propagation
// (clients bound their wait with X-Leva-Deadline-Ms and the context
// flows through featurize/batch/neighbors), an adaptive AIMD
// concurrency limiter with a short bounded queue that sheds excess
// load with Retry-After-carrying 429s, per-dependency circuit breakers
// with degraded fallbacks (brute-force neighbor scans, cache bypass),
// per-request timeouts, structured request logging, and graceful
// shutdown that drains in-flight requests. internal/resilience holds
// the mechanisms; cmd/levad is the daemon around this package.
package serve

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Config tunes the serving daemon. The zero value gets sensible
// production defaults; fields set to a negative value disable the
// corresponding feature where noted.
type Config struct {
	// Addr is the listen address. Default ":9090".
	Addr string
	// MaxInFlight is the adaptive concurrency limiter's hard ceiling:
	// at most this many featurize/embedding/neighbors requests run at
	// once, and the AIMD limit starts here and can only fall below it
	// under congestion. Excess requests queue briefly (see QueueLen),
	// then shed with 429 + Retry-After. Default 64.
	MaxInFlight int
	// QueueLen bounds requests waiting for an admission slot beyond the
	// limit. Default 16; negative disables queueing (immediate shed at
	// the limit).
	QueueLen int
	// QueueTimeout bounds one request's wait in the admission queue.
	// Default 100ms.
	QueueTimeout time.Duration
	// DependencyTimeout is the per-call time budget for circuit-broken
	// dependencies (the ANN index). Default 2s; negative disables.
	DependencyTimeout time.Duration
	// BreakerFailures is the consecutive-failure count that trips a
	// dependency's circuit breaker. Default 5.
	BreakerFailures int
	// BreakerOpenFor is how long a tripped breaker rejects calls before
	// admitting recovery probes. Default 5s.
	BreakerOpenFor time.Duration
	// Chaos, when non-nil, arms the request-level chaos harness: faults
	// from this seeded source are injected per its rules ("http", "ann",
	// "rowcache" targets) and /admin/chaos can reconfigure it at
	// runtime. Nil — the default — means no fault injection, ever.
	Chaos *resilience.Chaos
	// DisableFallback turns off degraded serving: a breaker-open or
	// failing ANN dependency answers 503 with an error taxonomy instead
	// of falling back to an exact brute-force scan.
	DisableFallback bool
	// RequestTimeout bounds one request's handler time; timed-out
	// requests get 503. Default 10s; negative disables.
	RequestTimeout time.Duration
	// CacheSize is the LRU capacity (fully-featurized rows). Default
	// 4096 entries; negative disables the cache.
	CacheSize int
	// BatchWindow, when positive, enables micro-batching: cache-miss
	// rows wait up to this long to be grouped with rows from
	// concurrent requests before featurizing. Off by default.
	BatchWindow time.Duration
	// BatchMax caps rows per micro-batch. Default 64.
	BatchMax int
	// MaxRowsPerRequest bounds one featurize call. Default 1024.
	MaxRowsPerRequest int
	// MaxBodyBytes bounds the request body. Default 8 MiB.
	MaxBodyBytes int64
	// Workers caps the goroutines featurizing one batch. 0 means
	// GOMAXPROCS.
	Workers int
	// Logger receives one structured record per request. Nil disables
	// request logging.
	Logger *slog.Logger
	// Loader reloads the serving bundle for hot reload (SIGHUP in
	// levad, POST /admin/reload). It is called with no request in
	// flight blocked on it — the old store keeps serving while the
	// candidate loads and validates. Nil disables hot reload.
	Loader func() (*core.Result, error)
	// Index, when non-nil, enables GET/POST /v1/neighbors: top-k
	// approximate-nearest-neighbor queries against this HNSW index.
	// The index must cover the served embedding (same entity names and
	// dimension). Nil means /v1/neighbors answers 503.
	Index *ann.Index
	// IndexLoader reloads the ANN index alongside the bundle during hot
	// reload. When nil, reloads carry the current index forward
	// unchanged; when set, the candidate index is loaded and validated
	// against the candidate bundle (dimension match, canary search)
	// before either is swapped in — a bad index rejects the whole
	// reload, exactly like a bad bundle.
	IndexLoader func() (*ann.Index, error)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":9090"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueueLen == 0 {
		c.QueueLen = 16
	}
	if c.QueueLen < 0 {
		c.QueueLen = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.DependencyTimeout == 0 {
		c.DependencyTimeout = 2 * time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = 5 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.MaxRowsPerRequest <= 0 {
		c.MaxRowsPerRequest = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server serves one loaded bundle over HTTP. The bundle can be swapped
// at runtime — see Reload — without dropping a request: handlers pin
// the store they start with, so every response is computed against
// exactly one bundle version.
type Server struct {
	cfg     Config
	st      atomic.Pointer[store]
	metrics *metrics
	logger  *slog.Logger
	httpSrv *http.Server
	ln      net.Listener

	// limiter is the adaptive admission controller behind every
	// data-plane endpoint; breakers guard the dependencies (see
	// depNames); chaos is the optional fault source; guards hands the
	// breaker/chaos pair to each store generation.
	limiter  *resilience.Limiter
	breakers map[string]*resilience.Breaker
	chaos    *resilience.Chaos
	guards   *guards

	// reloadMu serializes reloads (and the shutdown/reload handoff):
	// overlapping SIGHUPs queue behind each other instead of
	// interleaving their validate-then-swap sequences.
	reloadMu sync.Mutex
	closed   bool

	// testHookFeaturize, when set, runs inside the featurize handler
	// after admission (limiter slot held, store pinned) — the seam the
	// saturation, drain, and reload tests use to hold a request in
	// flight.
	testHookFeaturize func()
	// testHookPanic, when set, is invoked inside the featurize handler
	// and may panic — the seam the panic-recovery test uses.
	testHookPanic func()
	// testHookNeighbors, when set, runs inside the neighbors handler
	// after admission (limiter slot held, store pinned) — the seam the
	// reload-pinning test uses to hold a query in flight.
	testHookNeighbors func()
}

// New wraps a built or bundle-loaded Result in a Server. The Result's
// embedding and tokenizer are treated as immutable from here on.
func New(res *core.Result, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := newMetrics()
	s := &Server{
		cfg:     cfg,
		metrics: m,
		logger:  cfg.Logger,
		chaos:   cfg.Chaos,
	}
	s.limiter = resilience.NewLimiter(resilience.LimiterConfig{
		MaxLimit:     cfg.MaxInFlight,
		QueueLen:     cfg.QueueLen,
		QueueTimeout: cfg.QueueTimeout,
		OnBackoff:    m.backoffs.Inc,
	})
	m.setLimiter(s.limiter)
	s.breakers = s.newBreakers()
	s.guards = &guards{chaos: s.chaos, breakers: s.breakers}
	if s.chaos != nil {
		s.chaos.OnInject = func(target, kind string) {
			m.chaosInjections.With(target, kind).Inc()
		}
		if s.chaos.Enabled() {
			m.chaosEnabled.Set(1)
		}
	}
	first := newStore(res, cfg.Index, cfg, m, s.guards)
	first.gen = 1
	s.st.Store(first)
	m.generation.Set(1)
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// Handler returns the fully middleware-wrapped route table, usable
// directly in tests or behind an outer mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/featurize", s.instrument("featurize", true, s.withStore(s.handleFeaturize)))
	mux.Handle("GET /v1/embedding/{token}", s.instrument("embedding", true, s.withStore(s.handleEmbedding)))
	neighbors := s.instrument("neighbors", true, s.withStore(s.handleNeighbors))
	mux.Handle("GET /v1/neighbors", neighbors)
	mux.Handle("POST /v1/neighbors", neighbors)
	mux.Handle("GET /healthz", s.instrument("healthz", false, s.withStore(s.handleHealthz)))
	mux.Handle("GET /metrics", s.instrument("metrics", false, http.HandlerFunc(s.handleMetrics)))
	mux.Handle("POST /admin/reload", s.instrument("reload", false, http.HandlerFunc(s.handleReload)))
	chaos := s.instrument("chaos", false, http.HandlerFunc(s.handleChaos))
	mux.Handle("GET /admin/chaos", chaos)
	mux.Handle("POST /admin/chaos", chaos)
	return mux
}

// curStore returns the currently serving store without pinning it —
// for tests and metrics; request paths use acquireStore.
func (s *Server) curStore() *store { return s.st.Load() }

// Registry exposes the server's metric registry — the instruments
// behind GET /metrics — so embedding binaries (cmd/levad) can mount
// additional views such as /debug/vars.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// acquireStore pins the serving store for one request: the returned
// store stays fully usable (batcher included) until release, even if a
// reload swaps it out mid-request. The re-check loop closes the race
// where a swap lands between Load and the ref increment — if the store
// we grabbed is no longer current it may already be retired, so drop
// it and take the new one.
func (s *Server) acquireStore() *store {
	for {
		st := s.st.Load()
		st.refs.Add(1)
		if s.st.Load() == st {
			return st
		}
		st.release()
	}
}

// withStore adapts a store-pinned handler to http.Handler.
func (s *Server) withStore(h func(*store, http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := s.acquireStore()
		defer st.release()
		h(st, w, r)
	})
}

// Listen binds the configured address and returns the bound address
// (which resolves ":0" to the chosen port). Idempotent.
func (s *Server) Listen() (net.Addr, error) {
	if s.ln != nil {
		return s.ln.Addr(), nil
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve accepts connections until Shutdown; it returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve() error {
	if _, err := s.Listen(); err != nil {
		return err
	}
	return s.httpSrv.Serve(s.ln)
}

// Shutdown stops accepting new connections and drains in-flight
// requests until they finish or ctx expires, then retires the serving
// store (its micro-batcher stops once the last drained request lets go
// of it). Further reloads are refused.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if !s.closed {
		s.closed = true
		s.st.Load().release()
	}
	return err
}
