package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/resilience"
)

// mustChaos parses a chaos spec or fails the test.
func mustChaos(t *testing.T, spec string) *resilience.Chaos {
	t.Helper()
	c, err := resilience.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// getJSON GETs url and decodes the response body into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// getRaw GETs url and returns status, headers, and the raw body.
func getRaw(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// reasonOf decodes the "reason" taxonomy tag from an error body.
func reasonOf(t *testing.T, body []byte) string {
	t.Helper()
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q is not JSON: %v", body, err)
	}
	return e["reason"]
}

// TestNeighborsDegradeUnderChaos: with 100% injected ANN errors every
// neighbor query must still answer 200 — served by the exact
// brute-force fallback, marked degraded, never a hybrid (degraded +
// cacheHit) — and the breaker must trip deterministically after exactly
// BreakerFailures consecutive failures, observable via /metrics and
// /healthz.
func TestNeighborsDegradeUnderChaos(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := fixtureIndex(t)
	srv := New(loaded, Config{
		Index:           ix,
		BreakerFailures: 3,
		Chaos:           mustChaos(t, "seed=1;ann:err=1"),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := loaded.Embedding.SortedNames()[0]
	want, err := ix.BruteForceName(token, 5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		out, code := getNeighbors(t, ts.URL, token, 5)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 (degraded serving must keep answering)", i, code)
		}
		if !out.Degraded {
			t.Fatalf("request %d: not marked degraded under 100%% ANN chaos", i)
		}
		if out.CacheHit {
			t.Fatalf("request %d: degraded response claims a cache hit (hybrid response)", i)
		}
		if len(out.Neighbors) != len(want) {
			t.Fatalf("request %d: %d neighbors, want %d", i, len(out.Neighbors), len(want))
		}
		for j := range want {
			if out.Neighbors[j].Token != want[j].Name || out.Neighbors[j].Score != want[j].Score {
				t.Fatalf("request %d neighbor %d: got (%q, %v), brute-force oracle says (%q, %v)",
					i, j, out.Neighbors[j].Token, out.Neighbors[j].Score, want[j].Name, want[j].Score)
			}
		}
	}

	var snap metricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.Resilience.Breakers["ann"] != "open" {
		t.Errorf("ann breaker %q after %d consecutive failures, want open", snap.Resilience.Breakers["ann"], n)
	}
	if snap.Resilience.DegradedTotal != n {
		t.Errorf("degradedTotal = %d, want %d", snap.Resilience.DegradedTotal, n)
	}
	if !snap.Resilience.ChaosEnabled {
		t.Error("snapshot says chaos is disabled")
	}

	// The transition is deterministic under the fixed seed: exactly one
	// closed->open, visible in the Prometheus exposition.
	_, _, prom := getRaw(t, ts.URL+"/metrics")
	for _, line := range []string{
		`leva_resilience_breaker_transitions_total{dep="ann",to="open"} 1`,
		`leva_resilience_breaker_state{dep="ann"} 2`,
		`leva_resilience_chaos_enabled 1`,
	} {
		if !strings.Contains(string(prom), line) {
			t.Errorf("/metrics missing %q", line)
		}
	}

	var hz struct {
		Status   string            `json:"status"`
		Breakers map[string]string `json:"breakers"`
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "degraded" {
		t.Errorf("healthz status %q with an open breaker, want degraded", hz.Status)
	}
	if hz.Breakers["ann"] != "open" {
		t.Errorf("healthz breakers[ann] = %q, want open", hz.Breakers["ann"])
	}
}

// TestChaosDeterministicAcrossServers: two servers with the same chaos
// seed and the same serial request sequence must inject the same faults
// — the degraded/clean pattern is a replayable schedule, not noise.
func TestChaosDeterministicAcrossServers(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := fixtureIndex(t)
	token := loaded.Embedding.SortedNames()[1]

	run := func() []bool {
		srv := New(loaded, Config{
			Index:           ix,
			BreakerFailures: 3,
			Chaos:           mustChaos(t, "seed=42;ann:err=0.5"),
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		pattern := make([]bool, 0, 20)
		for i := 0; i < 20; i++ {
			out, code := getNeighbors(t, ts.URL, token, 3)
			if code != http.StatusOK {
				t.Fatalf("request %d: status %d", i, code)
			}
			pattern = append(pattern, out.Degraded)
		}
		return pattern
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: degraded=%v on one server, %v on the other — same seed must replay the same faults\n a=%v\n b=%v",
				i, a[i], b[i], a, b)
		}
	}
}

// TestNeighborsDisableFallback: with degraded serving turned off, a
// failing ANN dependency answers a named 503 — chaos_injected while the
// breaker counts failures, breaker_open (with Retry-After) once it
// trips — and never a hung or fabricated response.
func TestNeighborsDisableFallback(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := fixtureIndex(t)
	srv := New(loaded, Config{
		Index:           ix,
		BreakerFailures: 2,
		DisableFallback: true,
		Chaos:           mustChaos(t, "seed=3;ann:err=1"),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := loaded.Embedding.SortedNames()[0]
	url := fmt.Sprintf("%s/v1/neighbors?token=%s&k=3", ts.URL, token)
	for i := 0; i < 2; i++ {
		code, _, body := getRaw(t, url)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503 (%s)", i, code, body)
		}
		if r := reasonOf(t, body); r != "chaos_injected" {
			t.Fatalf("request %d: reason %q, want chaos_injected", i, r)
		}
	}
	code, hdr, body := getRaw(t, url)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-trip request: status %d, want 503 (%s)", code, body)
	}
	if r := reasonOf(t, body); r != "breaker_open" {
		t.Fatalf("post-trip request: reason %q, want breaker_open", r)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("breaker_open 503 missing Retry-After")
	}
}

// TestChaosLatencyBoundedByDependencyTimeout: injected ANN latency far
// beyond the dependency budget must not hang the request — the budget
// expires, the breaker records a timeout, and the brute-force fallback
// answers.
func TestChaosLatencyBoundedByDependencyTimeout(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := fixtureIndex(t)
	srv := New(loaded, Config{
		Index:             ix,
		DependencyTimeout: 50 * time.Millisecond,
		Chaos:             mustChaos(t, "seed=2;ann:lat=30s"),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := loaded.Embedding.SortedNames()[0]
	start := time.Now()
	out, code := getNeighbors(t, ts.URL, token, 3)
	elapsed := time.Since(start)
	if code != http.StatusOK || !out.Degraded {
		t.Fatalf("status %d degraded=%v, want a degraded 200", code, out.Degraded)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("request took %v under 30s injected latency — dependency budget did not bound it", elapsed)
	}
}

// TestRowCacheChaosBypass: injected row-cache faults brown out into
// cache bypass — featurize answers stay correct and cache-cold, never
// errors.
func TestRowCacheChaosBypass(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{
		Chaos: mustChaos(t, "seed=4;rowcache:err=1"),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	var first [][]float64
	for i := 0; i < 2; i++ {
		resp, raw := postFeaturize(t, ts.URL, json.RawMessage(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, raw)
		}
		var out featurizeResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if out.CacheHits != 0 {
			t.Fatalf("request %d: %d cache hits while the row cache is chaos-bypassed", i, out.CacheHits)
		}
		if i == 0 {
			first = out.Features
		} else {
			for j := range first[0] {
				if out.Features[0][j] != first[0][j] {
					t.Fatalf("feature %d differs across bypassed recomputes: %v vs %v", j, out.Features[0][j], first[0][j])
				}
			}
		}
	}
	var snap metricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.Resilience.DegradedTotal < 2 {
		t.Errorf("degradedTotal = %d, want >= 2 (one cache bypass per request)", snap.Resilience.DegradedTotal)
	}
}

// TestReloadResetsOpenBreaker: a successful hot reload replaces and
// revalidates the ANN index, so it must reset the open ann breaker and
// restore full (non-degraded) service.
func TestReloadResetsOpenBreaker(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := fixtureIndex(t)
	srv := New(loaded, Config{
		Index:           ix,
		BreakerFailures: 2,
		Chaos:           mustChaos(t, "seed=9;ann:err=1"),
		Loader:          func() (*core.Result, error) { return loaded, nil },
		IndexLoader:     func() (*ann.Index, error) { return ix, nil },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := loaded.Embedding.SortedNames()[0]
	for i := 0; i < 2; i++ {
		if out, code := getNeighbors(t, ts.URL, token, 3); code != http.StatusOK || !out.Degraded {
			t.Fatalf("request %d: status %d degraded=%v, want a degraded 200", i, code, out.Degraded)
		}
	}
	var snap metricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.Resilience.Breakers["ann"] != "open" {
		t.Fatalf("ann breaker %q after tripping, want open", snap.Resilience.Breakers["ann"])
	}

	// Stop injecting faults, then repair via hot reload.
	resp, err := http.Post(ts.URL+"/admin/chaos", "application/json", strings.NewReader(`{"enabled": false}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disable chaos: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d (%s)", resp.StatusCode, body)
	}

	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.Resilience.Breakers["ann"] != "closed" {
		t.Errorf("ann breaker %q after successful reload, want closed", snap.Resilience.Breakers["ann"])
	}
	var hz struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Errorf("healthz status %q after reload reset the breaker, want ok", hz.Status)
	}
	out, code := getNeighbors(t, ts.URL, token, 3)
	if code != http.StatusOK || out.Degraded {
		t.Errorf("post-reload query: status %d degraded=%v, want a clean 200", code, out.Degraded)
	}
}

// TestDeadlineHeader: X-Leva-Deadline-Ms is validated (400 with the
// bad_deadline taxonomy tag on garbage) and enforced — a budget that
// expires mid-handler yields the timeout 503 and is counted as
// abandoned{deadline}.
func TestDeadlineHeader(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{})
	srv.testHookFeaturize = func() { time.Sleep(300 * time.Millisecond) }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, bad := range []string{"abc", "-5", "0", "12.5"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/embedding/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(resilience.DeadlineHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: status %d, want 400", bad, resp.StatusCode)
		}
		if r := reasonOf(t, body); r != "bad_deadline" {
			t.Fatalf("deadline %q: reason %q, want bad_deadline", bad, r)
		}
	}

	payload := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/featurize", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(resilience.DeadlineHeader, "30")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "timeout") {
		t.Fatalf("expired deadline: body %q does not name the timeout", body)
	}

	// The abandoned counter increments right after the middleware
	// returns; poll briefly to avoid racing it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var snap metricsSnapshot
		getJSON(t, ts.URL+"/metrics?format=json", &snap)
		if snap.Resilience.AbandonedTotal >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned{deadline} was never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueShedsWithRetryAfter: with one admission slot held, excess
// requests wait in the bounded queue and shed with 429s that carry
// Retry-After and a shed-reason taxonomy tag.
func TestQueueShedsWithRetryAfter(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{
		MaxInFlight:    1,
		QueueLen:       1,
		QueueTimeout:   30 * time.Millisecond,
		RequestTimeout: -1,
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHookFeaturize = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered // request 1 holds the only admission slot

	// Request 2 fills the one queue slot and times out there; request 3
	// finds the queue full and sheds immediately. Run them concurrently
	// so both are in the building at once.
	type shed struct {
		code       int
		retryAfter string
		reason     string
	}
	results := make(chan shed, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
			if err != nil {
				results <- shed{code: -1}
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var e map[string]string
			_ = json.Unmarshal(raw, &e)
			results <- shed{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), reason: e["reason"]}
		}()
		time.Sleep(10 * time.Millisecond) // deterministic arrival order
	}
	for i := 0; i < 2; i++ {
		got := <-results
		if got.code != http.StatusTooManyRequests {
			t.Fatalf("shed request: status %d, want 429", got.code)
		}
		if got.retryAfter == "" {
			t.Error("429 missing Retry-After")
		}
		switch got.reason {
		case "capacity", "queue_timeout":
		default:
			t.Errorf("shed reason %q, want capacity or queue_timeout", got.reason)
		}
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("admitted request: status %d, want 200", code)
	}
	var snap metricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.ShedTotal != 2 {
		t.Errorf("shedTotal = %d, want 2", snap.ShedTotal)
	}
	total := int64(0)
	for _, n := range snap.Resilience.ShedByReason {
		total += n
	}
	if total != 2 {
		t.Errorf("shedByReason sums to %d (%v), want 2", total, snap.Resilience.ShedByReason)
	}
}

// TestAdminChaosEndpoint: GET reports the live configuration, POST
// partially updates it, and a server started without a chaos source
// refuses with the chaos_disabled taxonomy tag.
func TestAdminChaosEndpoint(t *testing.T) {
	_, loaded, _ := fixture(t)
	srv := New(loaded, Config{Chaos: mustChaos(t, "seed=5;ann:err=0.5")})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var state chaosState
	if code := getJSON(t, ts.URL+"/admin/chaos", &state); code != http.StatusOK {
		t.Fatalf("GET /admin/chaos: status %d", code)
	}
	if !state.Enabled || state.Seed != 5 {
		t.Fatalf("state = enabled=%v seed=%d, want enabled seed=5", state.Enabled, state.Seed)
	}
	if r := state.Rules["ann"]; r.ErrRate != 0.5 {
		t.Fatalf("rules[ann].errRate = %v, want 0.5", r.ErrRate)
	}

	resp, err := http.Post(ts.URL+"/admin/chaos", "application/json",
		strings.NewReader(`{"enabled": false, "rules": {"http": {"errRate": 0.1, "latencyMs": 250, "latencyRate": 1}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if state.Enabled {
		t.Error("POST enabled=false did not disable chaos")
	}
	if r := state.Rules["http"]; r.ErrRate != 0.1 || r.LatencyMs != 250 {
		t.Errorf("rules[http] = %+v, want errRate 0.1 latencyMs 250", r)
	}
	_, _, prom := getRaw(t, ts.URL+"/metrics")
	if !strings.Contains(string(prom), "leva_resilience_chaos_enabled 0") {
		t.Error("chaos_enabled gauge did not drop to 0")
	}

	resp, err = http.Post(ts.URL+"/admin/chaos", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	bare := New(loaded, Config{})
	bs := httptest.NewServer(bare.Handler())
	defer bs.Close()
	code, _, body := getRaw(t, bs.URL+"/admin/chaos")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("chaos-less server: status %d, want 503", code)
	}
	if r := reasonOf(t, body); r != "chaos_disabled" {
		t.Errorf("chaos-less server: reason %q, want chaos_disabled", r)
	}
}

// TestHTTPChaosStall: an injected mid-body stall still delivers a
// complete, valid response — the fault is the hang, not corruption.
func TestHTTPChaosStall(t *testing.T) {
	_, loaded, _ := fixture(t)
	srv := New(loaded, Config{
		Chaos: mustChaos(t, "seed=6;http:stall=1,stallfor=80ms"),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := loaded.Embedding.SortedNames()[0]
	start := time.Now()
	code, _, body := getRaw(t, ts.URL+"/v1/embedding/"+token)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("status %d (%s)", code, body)
	}
	var out embeddingResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("stalled body did not reassemble into valid JSON: %v (%q)", err, body)
	}
	if out.Token != token {
		t.Fatalf("token %q, want %q", out.Token, token)
	}
	if elapsed < 80*time.Millisecond {
		t.Errorf("response in %v, want >= 80ms stall", elapsed)
	}
}
