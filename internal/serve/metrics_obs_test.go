package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/obs"
	"repro/internal/synth"
)

// metaLines renders the registry and keeps only the # HELP / # TYPE
// lines — the part of the exposition that is byte-stable regardless of
// traffic.
func metaLines(t *testing.T, m *metrics) string {
	t.Helper()
	var b strings.Builder
	if err := m.reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var meta []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# ") {
			meta = append(meta, line)
		}
	}
	return strings.Join(meta, "\n")
}

// The serving catalog, byte for byte. A diff here means a metric was
// renamed, retyped, or re-documented — all of which break dashboards
// and docs/OBSERVABILITY.md, so the golden is updated deliberately,
// together with them. Families render in name order.
const goldenServeMeta = `# HELP leva_ann_build_seconds Wall time of HNSW index builds.
# TYPE leva_ann_build_seconds histogram
# HELP leva_ann_builds_total Completed HNSW index builds (BuildVectors calls that returned an index).
# TYPE leva_ann_builds_total counter
# HELP leva_ann_cache_hits_total Neighbor-query cache hits.
# TYPE leva_ann_cache_hits_total counter
# HELP leva_ann_cache_misses_total Neighbor-query cache misses.
# TYPE leva_ann_cache_misses_total counter
# HELP leva_ann_index_size Vectors in the serving ANN index (0 = no index loaded).
# TYPE leva_ann_index_size gauge
# HELP leva_ann_queries_total ANN searches executed (SearchVector and SearchName, any caller).
# TYPE leva_ann_queries_total counter
# HELP leva_ann_query_seconds Latency of individual ANN searches.
# TYPE leva_ann_query_seconds histogram
# HELP leva_batched_rows_total Rows featurized through micro-batches.
# TYPE leva_batched_rows_total counter
# HELP leva_batches_total Micro-batches executed.
# TYPE leva_batches_total counter
# HELP leva_bundle_generation Serving bundle generation (1 at startup, +1 per successful reload).
# TYPE leva_bundle_generation gauge
# HELP leva_durable_errors_total Durable operations (WriteFile/SwapDir/RecoverDir) that returned an error.
# TYPE leva_durable_errors_total counter
# HELP leva_durable_fsync_seconds Latency of fsync calls issued by the durability protocol, by target (file or dir).
# TYPE leva_durable_fsync_seconds histogram
# HELP leva_durable_publishes_total Completed durable publishes, by kind (file = WriteFile, dir = SwapDir, recover = RecoverDir restoration).
# TYPE leva_durable_publishes_total counter
# HELP leva_durable_rename_seconds Latency of rename calls issued by the durability protocol.
# TYPE leva_durable_rename_seconds histogram
# HELP leva_go_gc_cycles_total Completed GC cycles since process start.
# TYPE leva_go_gc_cycles_total counter
# HELP leva_go_goroutines Number of live goroutines.
# TYPE leva_go_goroutines gauge
# HELP leva_go_heap_alloc_bytes Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).
# TYPE leva_go_heap_alloc_bytes gauge
# HELP leva_http_in_flight_requests HTTP requests currently being handled.
# TYPE leva_http_in_flight_requests gauge
# HELP leva_http_panics_total Handler panics recovered into 500 responses.
# TYPE leva_http_panics_total counter
# HELP leva_http_request_duration_seconds HTTP request wall time, by endpoint.
# TYPE leva_http_request_duration_seconds histogram
# HELP leva_http_request_errors_total HTTP requests answered with status >= 400, by endpoint.
# TYPE leva_http_request_errors_total counter
# HELP leva_http_requests_total HTTP requests completed, by endpoint.
# TYPE leva_http_requests_total counter
# HELP leva_http_responses_total HTTP responses, by status code (untracked codes land under "other").
# TYPE leva_http_responses_total counter
# HELP leva_http_shed_total Requests shed with 429 by the concurrency limiter.
# TYPE leva_http_shed_total counter
# HELP leva_parallel_busy_workers Shard goroutines currently executing across all fan-outs.
# TYPE leva_parallel_busy_workers gauge
# HELP leva_parallel_fanouts_total Completed fan-outs (For/ForEach/ForError calls), including single-shard inline runs.
# TYPE leva_parallel_fanouts_total counter
# HELP leva_parallel_inflight_fanouts For/ForEach/ForError calls currently executing.
# TYPE leva_parallel_inflight_fanouts gauge
# HELP leva_parallel_shards_total Shards executed across all fan-outs.
# TYPE leva_parallel_shards_total counter
# HELP leva_quant_arena_bytes Bytes held by the serving index's int8 arena plus per-vector scales (0 = not quantized).
# TYPE leva_quant_arena_bytes gauge
# HELP leva_quant_enabled Whether the serving ANN index searches the int8 quantized arena (1) or float vectors (0).
# TYPE leva_quant_enabled gauge
# HELP leva_quant_queries_total ANN searches answered through the int8 quantized arena (subset of leva_ann_queries_total).
# TYPE leva_quant_queries_total counter
# HELP leva_quant_reranked_total Candidates re-ranked in float64 after int8 graph traversal (the accuracy-restoring pass of quantized searches).
# TYPE leva_quant_reranked_total counter
# HELP leva_reload_failures_total Hot-reload attempts that failed (the previous bundle kept serving).
# TYPE leva_reload_failures_total counter
# HELP leva_reload_last_duration_seconds Duration of the last reload attempt.
# TYPE leva_reload_last_duration_seconds gauge
# HELP leva_reload_last_unix_seconds Unix time of the last reload attempt (0 = never).
# TYPE leva_reload_last_unix_seconds gauge
# HELP leva_reloads_total Hot-reload attempts.
# TYPE leva_reloads_total counter
# HELP leva_resilience_abandoned_total Requests abandoned mid-flight, by reason (deadline = X-Leva-Deadline-Ms expired, disconnect = client closed the connection).
# TYPE leva_resilience_abandoned_total counter
# HELP leva_resilience_backoffs_total Multiplicative decreases of the adaptive concurrency limit (each marks observed congestion).
# TYPE leva_resilience_backoffs_total counter
# HELP leva_resilience_breaker_state Circuit breaker state, by dependency (0 = closed, 1 = half-open, 2 = open).
# TYPE leva_resilience_breaker_state gauge
# HELP leva_resilience_breaker_transitions_total Circuit breaker state transitions, by dependency and new state.
# TYPE leva_resilience_breaker_transitions_total counter
# HELP leva_resilience_chaos_enabled Whether chaos fault injection is active (1) or not (0).
# TYPE leva_resilience_chaos_enabled gauge
# HELP leva_resilience_chaos_injections_total Faults injected by the chaos harness, by target and kind (error, latency, stall).
# TYPE leva_resilience_chaos_injections_total counter
# HELP leva_resilience_degraded_total Requests answered in a degraded mode (brute-force neighbor scan, row-cache bypass), by endpoint.
# TYPE leva_resilience_degraded_total counter
# HELP leva_resilience_dep_calls_total Guarded dependency calls, by dependency and outcome (ok, error, timeout, canceled, open).
# TYPE leva_resilience_dep_calls_total counter
# HELP leva_resilience_limit Current adaptive concurrency limit (AIMD: climbs on success, falls on congestion).
# TYPE leva_resilience_limit gauge
# HELP leva_resilience_queue_depth Requests waiting in the admission queue.
# TYPE leva_resilience_queue_depth gauge
# HELP leva_rowcache_capacity Row-cache capacity in entries (0 = cache disabled).
# TYPE leva_rowcache_capacity gauge
# HELP leva_rowcache_hits_total Featurized-row cache hits.
# TYPE leva_rowcache_hits_total counter
# HELP leva_rowcache_misses_total Featurized-row cache misses.
# TYPE leva_rowcache_misses_total counter
# HELP leva_rowcache_size Featurized rows currently cached.
# TYPE leva_rowcache_size gauge
# HELP leva_rows_featurized_total Rows featurized by the serving path.
# TYPE leva_rows_featurized_total counter
# HELP leva_shed_retry_after_seconds Retry-After value of the most recent shed response.
# TYPE leva_shed_retry_after_seconds gauge
# HELP leva_shed_total Requests shed with 429, by reason (capacity, queue_timeout, client_gone).
# TYPE leva_shed_total counter
# HELP leva_uptime_seconds Seconds since this server was created.
# TYPE leva_uptime_seconds gauge`

func TestMetricsPrometheusGolden(t *testing.T) {
	got := metaLines(t, newMetrics())
	if got != goldenServeMeta {
		t.Errorf("HELP/TYPE lines drifted from golden.\ngot:\n%s\n\nwant:\n%s", got, goldenServeMeta)
	}
}

func TestMetricsPrometheusEndToEnd(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{CacheSize: 64})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	// The scrape itself is the 3rd request but is observed after its
	// body is written, so it must not be in its own counters yet.
	for _, want := range []string{
		`leva_http_requests_total{endpoint="featurize"} 2`,
		`leva_http_responses_total{code="200"} 2`,
		`leva_http_request_duration_seconds_count{endpoint="featurize"} 2`,
		`leva_rowcache_hits_total 1`,
		`leva_rowcache_misses_total 1`,
		`leva_rowcache_capacity 64`,
		`leva_rows_featurized_total 2`,
		`leva_bundle_generation 1`,
		`leva_http_request_duration_seconds_bucket{endpoint="featurize",le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(text, `le="0.005"`) {
		t.Error("exposition has no latency bucket boundaries")
	}
}

// TestMetricsConcurrentScrapeAndReload drives featurization, Prometheus
// scrapes, JSON snapshots, and hot reloads all at once. Run under
// -race, this is the proof that the registry's hot paths and the
// reload-time cacheLen swap are properly synchronized.
func TestMetricsConcurrentScrapeAndReload(t *testing.T) {
	_, loaded, spec := fixture(t)
	srv := New(loaded, Config{
		CacheSize: 64,
		Loader:    func() (*core.Result, error) { return loaded, nil },
	})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := mustJSON(map[string]any{
		"table": spec.BaseTable,
		"rows":  []any{jsonRow(spec.DB.Table(spec.BaseTable), 0)},
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(ts.URL+"/v1/featurize", "application/json", strings.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				url := ts.URL + "/metrics"
				if i%2 == 1 {
					url += "?format=json"
				}
				resp, err := http.Get(url)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := srv.Reload(); err != nil {
					t.Errorf("reload: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	snap := srv.metrics.snapshot()
	if snap.Reload.Total != 20 || snap.Reload.Generation != 21 {
		t.Errorf("reloads = %d, generation = %d, want 20 and 21", snap.Reload.Total, snap.Reload.Generation)
	}
	if snap.Requests["featurize"].Count != 40 {
		t.Errorf("featurize count = %d, want 40", snap.Requests["featurize"].Count)
	}
}

// TestMetricsCatalogMatchesDocs diffs the live registries against the
// catalog tables in docs/OBSERVABILITY.md: every family a Server or an
// instrumented build emits must be documented, and every documented
// leva_* family must still exist. This is the guarantee the runbook
// sells — the doc IS the metric surface.
func TestMetricsCatalogMatchesDocs(t *testing.T) {
	raw, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, name := range regexp.MustCompile("`(leva_[a-z0-9_]+)`").FindAllStringSubmatch(string(raw), -1) {
		documented[name[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no leva_* metric names found in docs/OBSERVABILITY.md")
	}

	emitted := map[string]bool{}
	// The serving surface: everything a Server's registry holds.
	for _, f := range newMetrics().reg.Families() {
		emitted[f.Name] = true
	}
	// The offline-pipeline surface: run one tiny scoped build (with a
	// stage cache, so lookup families register) plus one featurization.
	sc := obs.NewScope()
	bspec := synth.Student(synth.StudentOptions{Students: 12, Seed: 3})
	res, err := core.BuildEmbedding(bspec.DB, core.Config{
		Dim: 4, Method: embed.MethodMF, Seed: 3, Workers: 1,
		CacheDir: t.TempDir(), Obs: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Featurize(bspec.DB.Table(bspec.BaseTable), bspec.BaseTable,
		[]string{bspec.Target}, func(i int) int { return i }); err != nil {
		t.Fatal(err)
	}
	for _, f := range sc.Registry.Families() {
		emitted[f.Name] = true
	}

	for name := range emitted {
		if !documented[name] {
			t.Errorf("metric %s is emitted but missing from docs/OBSERVABILITY.md", name)
		}
	}
	for name := range documented {
		if !emitted[name] {
			t.Errorf("docs/OBSERVABILITY.md documents %s, which no registry emits", name)
		}
	}
}
