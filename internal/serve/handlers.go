package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// featurizeRequest is the POST /v1/featurize body. Rows are JSON
// objects mapping column names (as fitted at embedding time) to string,
// number, boolean, or null values; column order inside an object does
// not matter — the store tokenizes in the fitted column order, so the
// response is bit-identical to offline featurization of the same rows.
type featurizeRequest struct {
	Table string           `json:"table"`
	Rows  []map[string]any `json:"rows"`
	// Exclude lists columns to drop from featurization (typically the
	// target, when present in the rows).
	Exclude []string `json:"exclude"`
	// GraphRows optionally maps each row to its row index at embedding
	// time (the "table:rowIdx" embedding key); -1 or absent means the
	// row was never embedded and is composed from value-node vectors.
	GraphRows []int `json:"graphRows"`
	// Mode overrides the bundle's featurization mode: "row" or
	// "row+value". Empty uses the bundle default.
	Mode string `json:"mode"`
}

type featurizeResponse struct {
	Table     string      `json:"table"`
	Rows      int         `json:"rows"`
	Dim       int         `json:"dim"`
	CacheHits int         `json:"cacheHits"`
	Features  [][]float64 `json:"features"`
}

type embeddingResponse struct {
	Token  string    `json:"token"`
	Dim    int       `json:"dim"`
	Vector []float64 `json:"vector"`
}

// writeJSON marshals v with status code; encoding errors at this point
// can only be I/O (client gone), so they are ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeErrorReason is writeError with a machine-readable taxonomy tag:
// clients branch on "reason" (capacity, queue_timeout, client_gone,
// breaker_open, chaos_injected, dependency_timeout, bad_deadline,
// deadline_exceeded, chaos_disabled, no_index, bad_param) instead of
// parsing the human-facing message.
func writeErrorReason(w http.ResponseWriter, status int, reason, format string, args ...any) {
	writeJSON(w, status, map[string]string{
		"error":  fmt.Sprintf(format, args...),
		"reason": reason,
	})
}

// handleFeaturize computes features against st — the store pinned at
// request entry, so a concurrent hot reload can neither drop this
// request nor mix bundle versions inside one response.
func (s *Server) handleFeaturize(st *store, w http.ResponseWriter, r *http.Request) {
	if s.testHookFeaturize != nil {
		s.testHookFeaturize()
	}
	if s.testHookPanic != nil {
		s.testHookPanic()
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req featurizeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if req.Table == "" {
		writeError(w, http.StatusBadRequest, "missing table")
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, "no rows")
		return
	}
	if len(req.Rows) > s.cfg.MaxRowsPerRequest {
		writeError(w, http.StatusRequestEntityTooLarge, "%d rows exceeds the per-request limit of %d", len(req.Rows), s.cfg.MaxRowsPerRequest)
		return
	}
	if req.GraphRows != nil && len(req.GraphRows) != len(req.Rows) {
		writeError(w, http.StatusBadRequest, "graphRows has %d entries for %d rows", len(req.GraphRows), len(req.Rows))
		return
	}
	mode := st.res.Config.Featurization
	switch req.Mode {
	case "":
	case "row":
		mode = core.RowOnly
	case "row+value":
		mode = core.RowPlusValue
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want \"row\" or \"row+value\")", req.Mode)
		return
	}
	cols := st.columns(req.Table)
	if cols == nil {
		writeError(w, http.StatusBadRequest, "unknown table %q (bundle knows: %v)", req.Table, st.res.Textifier.Tables())
		return
	}
	colSet := make(map[string]bool, len(cols))
	for _, c := range cols {
		colSet[c] = true
	}

	jobs := make([]*rowJob, len(req.Rows))
	for i, row := range req.Rows {
		for _, k := range sortedKeys(row) {
			if !colSet[k] {
				writeError(w, http.StatusBadRequest, "row %d: unknown column %q in table %q", i, k, req.Table)
				return
			}
		}
		// One-row table with the provided columns in fitted order, so
		// token order — and therefore floating-point feature sums —
		// match the offline table scan exactly.
		t := &dataset.Table{Name: req.Table}
		for _, c := range cols {
			raw, ok := row[c]
			if !ok {
				continue
			}
			v, err := toValue(raw)
			if err != nil {
				writeError(w, http.StatusBadRequest, "row %d, column %q: %v", i, c, err)
				return
			}
			t.Columns = append(t.Columns, &dataset.Column{Name: c, Values: []dataset.Value{v}})
		}
		graphRow := -1
		if req.GraphRows != nil {
			graphRow = req.GraphRows[i]
		}
		j := &rowJob{t: t, table: req.Table, exclude: req.Exclude, graphRow: graphRow, mode: mode}
		j.key = cacheKey(j)
		jobs[i] = j
	}

	hits, err := st.featurizeRows(r.Context(), jobs)
	if err != nil {
		if r.Context().Err() != nil {
			writeError(w, http.StatusServiceUnavailable, "request canceled: %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "featurize: %v", err)
		return
	}
	features := make([][]float64, len(jobs))
	for i, j := range jobs {
		features[i] = j.out
	}
	writeJSON(w, http.StatusOK, featurizeResponse{
		Table:     req.Table,
		Rows:      len(features),
		Dim:       st.featureWidth(mode),
		CacheHits: hits,
		Features:  features,
	})
}

func (s *Server) handleEmbedding(st *store, w http.ResponseWriter, r *http.Request) {
	token := r.PathValue("token")
	vec, ok := st.vector(token)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown token %q", token)
		return
	}
	writeJSON(w, http.StatusOK, embeddingResponse{Token: token, Dim: len(vec), Vector: vec})
}

// handleHealthz reports liveness plus degradation: status flips to
// "degraded" while any circuit breaker is off closed, and the
// per-breaker states are listed so a load balancer (or operator) can
// drain a browning-out replica before it starts shedding hard.
func (s *Server) handleHealthz(st *store, w http.ResponseWriter, _ *http.Request) {
	annVectors := 0
	quantized := false
	var quantBytes int64
	if st.index != nil {
		annVectors = st.index.Len()
		quantized = st.index.Quantized()
		quantBytes = st.index.QuantBytes()
	}
	status := "ok"
	breakers := make(map[string]string, len(depNames))
	for _, dep := range depNames {
		state := s.breakers[dep].State()
		breakers[dep] = state.String()
		if state != resilience.StateClosed {
			status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       status,
		"vectors":      st.res.Embedding.Len(),
		"dim":          st.res.Embedding.Dim,
		"annVectors":   annVectors,
		"quantized":    quantized,
		"quantBytes":   quantBytes,
		"generation":   st.gen,
		"bundleFormat": st.res.BundleFormat,
		"breakers":     breakers,
		"chaosEnabled": s.chaos.Enabled(),
	})
}

// handleMetrics is GET /metrics: Prometheus text exposition by default,
// or the legacy JSON snapshot with ?format=json (same field names as
// before the registry migration — both render from one instrument set).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.fullSnapshot())
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.reg.WritePrometheus(w)
}

// toValue maps a decoded JSON value to a relational cell. Booleans
// become their textual form (CSV-loaded data never contains a bool
// kind); arrays and objects are rejected.
func toValue(x any) (dataset.Value, error) {
	switch v := x.(type) {
	case nil:
		return dataset.Null(), nil
	case string:
		return dataset.String(v), nil
	case float64:
		return dataset.Number(v), nil
	case bool:
		return dataset.String(strconv.FormatBool(v)), nil
	default:
		return dataset.Value{}, fmt.Errorf("unsupported JSON value of type %T (use string, number, boolean, or null)", x)
	}
}

// sortedKeys returns a row object's keys in lexical order so validation
// errors are deterministic.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
