package serve

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU of featurized row vectors. The
// serving hot path is read-mostly with small values (one []float64 per
// row), so a single lock in front of a map plus intrusive recency list
// is simpler than sharding and fast enough — the featurization it
// avoids costs orders of magnitude more than the critical section.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val []float64
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached vector and marks it most recently used. The
// returned slice is shared; callers must not mutate it.
func (c *lruCache) get(key string) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a vector, evicting the least recently used
// entry when full.
func (c *lruCache) put(key string, val []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
