package serve

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU of computed serving results —
// featurized row vectors and ANN neighbor lists. The serving hot path
// is read-mostly with small values, so a single lock in front of a map
// plus intrusive recency list is simpler than sharding and fast enough
// — the computation it avoids costs orders of magnitude more than the
// critical section.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and marks it most recently used. The
// returned value is shared; callers must not mutate it.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting the least recently used
// entry when full.
func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
