package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ann"
)

// quantFixtureIndex builds a fresh quantized index over the serve
// fixture (the shared fixtureIndex stays float — Quantize mutates).
func quantFixtureIndex(t *testing.T) *ann.Index {
	t.Helper()
	_, loaded, _ := fixture(t)
	ix, err := ann.Build(loaded.Embedding, ann.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Quantize(nil); err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestQuantizedServingEndToEnd: a server over an int8-quantized index
// answers /v1/neighbors exactly as a direct index search, reports the
// quantized arena in /healthz, and exposes the leva_quant_* gauges.
func TestQuantizedServingEndToEnd(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := quantFixtureIndex(t)
	srv := New(loaded, Config{Index: ix})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	token := ix.Names()[0]
	want, err := ix.SearchName(token, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, status := getNeighbors(t, ts.URL, token, 5)
	if status != http.StatusOK {
		t.Fatalf("GET status %d", status)
	}
	if len(out.Neighbors) != len(want) {
		t.Fatalf("got %d neighbors, want %d", len(out.Neighbors), len(want))
	}
	for i, n := range out.Neighbors {
		if n.Token != want[i].Name || n.Score != want[i].Score {
			t.Errorf("neighbor %d = %s/%g, want %s/%g", i, n.Token, n.Score, want[i].Name, want[i].Score)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["quantized"] != true {
		t.Errorf("healthz quantized = %v, want true", hz["quantized"])
	}
	if qb, ok := hz["quantBytes"].(float64); !ok || int64(qb) != ix.QuantBytes() {
		t.Errorf("healthz quantBytes = %v, want %d", hz["quantBytes"], ix.QuantBytes())
	}
	if got := srv.metrics.quantEnabled.Value(); got != 1 {
		t.Errorf("leva_quant_enabled = %v, want 1", got)
	}
	if got := srv.metrics.quantArenaBytes.Value(); got != float64(ix.QuantBytes()) {
		t.Errorf("leva_quant_arena_bytes = %v, want %d", got, ix.QuantBytes())
	}
}

// TestFloatServingReportsUnquantized pins the gauge/healthz zero state.
func TestFloatServingReportsUnquantized(t *testing.T) {
	_, loaded, _ := fixture(t)
	srv := New(loaded, Config{Index: fixtureIndex(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["quantized"] != false || hz["quantBytes"] != float64(0) {
		t.Errorf("healthz = quantized:%v quantBytes:%v, want false/0", hz["quantized"], hz["quantBytes"])
	}
	if got := srv.metrics.quantEnabled.Value(); got != 0 {
		t.Errorf("leva_quant_enabled = %v, want 0", got)
	}
}

// TestFeaturizeByteIdenticalUnderQuantization is the acceptance
// contract: quantization touches only the neighbors path — the same
// featurize request against a float-index server and a quantized-index
// server returns byte-identical bodies (the float arena answers both).
func TestFeaturizeByteIdenticalUnderQuantization(t *testing.T) {
	_, loaded, spec := fixture(t)
	body := map[string]any{
		"table": spec.BaseTable,
		"rows": []any{
			jsonRow(spec.DB.Table(spec.BaseTable), 0),
			jsonRow(spec.DB.Table(spec.BaseTable), 1),
			jsonRow(spec.DB.Table(spec.BaseTable), 2),
		},
	}
	responses := make([]string, 2)
	for i, ix := range []*ann.Index{fixtureIndex(t), quantFixtureIndex(t)} {
		srv := New(loaded, Config{Index: ix})
		ts := httptest.NewServer(srv.Handler())
		resp, raw := postFeaturize(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server %d: featurize status %d: %s", i, resp.StatusCode, raw)
		}
		responses[i] = string(raw)
		ts.Close()
	}
	if responses[0] != responses[1] {
		t.Error("featurize responses differ between float and quantized servers")
	}
}

// TestNeighborsBadParamReason: every parameter rejection of
// /v1/neighbors carries the machine-readable "bad_param" tag, on GET
// and POST alike, including the ef<k and k>index-size bounds.
func TestNeighborsBadParamReason(t *testing.T) {
	_, loaded, _ := fixture(t)
	ix := fixtureIndex(t)
	srv := New(loaded, Config{Index: ix})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reason := func(t *testing.T, resp *http.Response) string {
		t.Helper()
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body["reason"]
	}
	token := ix.Names()[0]
	oversized := ix.Len() + 1
	if oversized > maxNeighborsK {
		t.Fatalf("fixture index too large for the oversize probe: %d", ix.Len())
	}
	for name, query := range map[string]string{
		"k zero":         "?token=" + token + "&k=0",
		"k negative":     "?token=" + token + "&k=-3",
		"k over cap":     fmt.Sprintf("?token=%s&k=%d", token, maxNeighborsK+1),
		"k over index":   fmt.Sprintf("?token=%s&k=%d", token, oversized),
		"ef negative":    "?token=" + token + "&ef=-1",
		"ef below k":     "?token=" + token + "&k=5&ef=2",
		"non-numeric k":  "?token=" + token + "&k=banana",
		"non-numeric ef": "?token=" + token + "&ef=x",
		"missing token":  "?k=3",
	} {
		resp, err := http.Get(ts.URL + "/v1/neighbors" + query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			resp.Body.Close()
			t.Errorf("GET %s: status %d, want 400", name, resp.StatusCode)
			continue
		}
		if got := reason(t, resp); got != "bad_param" {
			t.Errorf("GET %s: reason %q, want bad_param", name, got)
		}
	}
	for name, body := range map[string]string{
		"k over index": fmt.Sprintf(`{"token":%q,"k":%d}`, token, oversized),
		"ef below k":   fmt.Sprintf(`{"token":%q,"k":5,"efSearch":2}`, token),
		"both set":     `{"token":"a","vector":[1]}`,
		"wrong dim":    `{"vector":[1,2,3]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/neighbors", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			resp.Body.Close()
			t.Errorf("POST %s: status %d, want 400", name, resp.StatusCode)
			continue
		}
		if got := reason(t, resp); got != "bad_param" {
			t.Errorf("POST %s: reason %q, want bad_param", name, got)
		}
	}
	// ef=0 keeps meaning "index default", and a valid ef >= k passes.
	for _, query := range []string{"?token=" + token + "&k=3&ef=0", "?token=" + token + "&k=3&ef=10"} {
		resp, err := http.Get(ts.URL + "/v1/neighbors" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", query, resp.StatusCode)
		}
	}
}
