package serve

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/resilience"
)

// statusRecorder captures the response status and size for metrics and
// request logging, and whether anything was written — the panic
// recovery path only sends its 500 when the handler died before
// responding.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.wrote = true
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// instrument wraps a handler with the serving middleware stack, from
// the outside in: metrics + structured logging, then panic recovery,
// then (for limited endpoints) client-deadline propagation, chaos
// injection, the per-request timeout, and the admission limiter. The
// limiter sits inside the timeout handler so a timed-out request's
// admission slot is released only when its work actually finishes —
// otherwise abandoned handlers could stack up past MaxInFlight. The
// deadline layer sits outside the timeout handler: TimeoutHandler
// derives its context from the request's, so whichever budget is
// shorter — client deadline or server timeout — cancels the work and
// produces the timed-out 503. Panic recovery sits outside the timeout
// handler because http.TimeoutHandler re-panics its handler's panics
// on the caller's goroutine.
func (s *Server) instrument(name string, limited bool, h http.Handler) http.Handler {
	if limited {
		h = s.limit(h)
		if s.cfg.RequestTimeout > 0 {
			// TimeoutHandler answers 503 and cancels the request
			// context, which the store checks between rows.
			h = http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request timed out","reason":"timeout"}`)
		}
		h = s.withDeadline(s.withChaosHTTP(h))
	}
	inner := h
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.serveRecovered(name, inner, rec, r)
		elapsed := time.Since(start)
		s.metrics.observe(name, rec.status, elapsed)
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", name),
				slog.Int("status", rec.status),
				slog.Int("bytes", rec.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// serveRecovered runs the handler under a panic guard: a panicking
// request becomes a counted 500 (when nothing was written yet) instead
// of a dead daemon — one bad row must not take down every client's
// featurization. http.ErrAbortHandler keeps its net/http meaning and is
// re-raised.
func (s *Server) serveRecovered(name string, h http.Handler, rec *statusRecorder, r *http.Request) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if v == http.ErrAbortHandler {
			panic(v)
		}
		s.metrics.panics.Inc()
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelError, "handler panic",
				slog.String("endpoint", name),
				slog.String("path", r.URL.Path),
				slog.Any("panic", v),
				slog.String("stack", string(debug.Stack())),
			)
		}
		if !rec.wrote {
			writeError(rec, http.StatusInternalServerError, "internal error")
		} else {
			rec.status = http.StatusInternalServerError
		}
	}()
	h.ServeHTTP(rec, r)
}

// limit is the adaptive admission controller: requests acquire a slot
// from the AIMD limiter (queueing briefly at the limit) and report
// their outcome on release — a request whose deadline expired is the
// congestion signal that shrinks the limit. Shed requests get a 429
// with a named reason and a Retry-After derived from observed service
// time, so saturation degrades into fast, explicit, back-off-able
// rejections instead of unbounded queueing.
func (s *Server) limit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := s.limiter.Acquire(r.Context())
		if err != nil {
			reason := "capacity"
			switch {
			case errors.Is(err, resilience.ErrQueueTimeout):
				reason = "queue_timeout"
			case r.Context().Err() != nil:
				reason = "client_gone"
			}
			retry := s.limiter.RetryAfter()
			s.metrics.shed.Inc()
			s.metrics.shedByReason.With(reason).Inc()
			s.metrics.shedRetryAfter.Set(retry.Seconds())
			retryAfterHeader(w, retry)
			writeErrorReason(w, http.StatusTooManyRequests, reason,
				"server saturated: concurrency limit %d reached", int(s.limiter.Limit()))
			return
		}
		defer func() {
			out := resilience.OutcomeOK
			if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
				out = resilience.OutcomeDropped
			}
			release(out)
		}()
		h.ServeHTTP(w, r)
	})
}
