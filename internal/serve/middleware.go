package serve

import (
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the response status and size for metrics and
// request logging, and whether anything was written — the panic
// recovery path only sends its 500 when the handler died before
// responding.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.wrote = true
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// instrument wraps a handler with the serving middleware stack, from
// the outside in: metrics + structured logging, then panic recovery,
// then (for limited endpoints) the per-request timeout, then the
// concurrency limiter. The limiter sits inside the timeout handler so
// a timed-out request's admission slot is released only when its work
// actually finishes — otherwise abandoned handlers could stack up past
// MaxInFlight. Panic recovery sits outside the timeout handler because
// http.TimeoutHandler re-panics its handler's panics on the caller's
// goroutine.
func (s *Server) instrument(name string, limited bool, h http.Handler) http.Handler {
	if limited {
		h = s.limit(h)
		if s.cfg.RequestTimeout > 0 {
			// TimeoutHandler answers 503 and cancels the request
			// context, which the store checks between rows.
			h = http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
		}
	}
	inner := h
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.serveRecovered(name, inner, rec, r)
		elapsed := time.Since(start)
		s.metrics.observe(name, rec.status, elapsed)
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", name),
				slog.Int("status", rec.status),
				slog.Int("bytes", rec.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// serveRecovered runs the handler under a panic guard: a panicking
// request becomes a counted 500 (when nothing was written yet) instead
// of a dead daemon — one bad row must not take down every client's
// featurization. http.ErrAbortHandler keeps its net/http meaning and is
// re-raised.
func (s *Server) serveRecovered(name string, h http.Handler, rec *statusRecorder, r *http.Request) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if v == http.ErrAbortHandler {
			panic(v)
		}
		s.metrics.panics.Inc()
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelError, "handler panic",
				slog.String("endpoint", name),
				slog.String("path", r.URL.Path),
				slog.Any("panic", v),
				slog.String("stack", string(debug.Stack())),
			)
		}
		if !rec.wrote {
			writeError(rec, http.StatusInternalServerError, "internal error")
		} else {
			rec.status = http.StatusInternalServerError
		}
	}()
	h.ServeHTTP(rec, r)
}

// limit admits at most MaxInFlight concurrent requests; the rest shed
// immediately with 429 so saturation degrades into fast, explicit
// rejections instead of unbounded queueing.
func (s *Server) limit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h.ServeHTTP(w, r)
		default:
			s.metrics.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server saturated: %d requests already in flight", s.cfg.MaxInFlight)
		}
	})
}
