package serve

import (
	"log/slog"
	"net/http"
	"time"
)

// statusRecorder captures the response status and size for metrics and
// request logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// instrument wraps a handler with the serving middleware stack, from
// the outside in: metrics + structured logging, then (for limited
// endpoints) the per-request timeout, then the concurrency limiter.
// The limiter sits inside the timeout handler so a timed-out request's
// admission slot is released only when its work actually finishes —
// otherwise abandoned handlers could stack up past MaxInFlight.
func (s *Server) instrument(name string, limited bool, h http.Handler) http.Handler {
	if limited {
		h = s.limit(h)
		if s.cfg.RequestTimeout > 0 {
			// TimeoutHandler answers 503 and cancels the request
			// context, which the store checks between rows.
			h = http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		s.metrics.observe(name, rec.status, elapsed)
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", name),
				slog.Int("status", rec.status),
				slog.Int("bytes", rec.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// limit admits at most MaxInFlight concurrent requests; the rest shed
// immediately with 429 so saturation degrades into fast, explicit
// rejections instead of unbounded queueing.
func (s *Server) limit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h.ServeHTTP(w, r)
		default:
			s.metrics.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server saturated: %d requests already in flight", s.cfg.MaxInFlight)
		}
	})
}
