package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRU(2)
	c.put("a", []float64{1})
	c.put("b", []float64{2})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before capacity exceeded")
	}
	// a was just touched, so inserting c must evict b.
	c.put("c", []float64{3})
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction; LRU order not respected")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used a was evicted")
	}
	if v, ok := c.get("c"); !ok || v.([]float64)[0] != 3 {
		t.Error("newest entry c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(2)
	c.put("a", []float64{1})
	c.put("a", []float64{9})
	if v, _ := c.get("a"); v.([]float64)[0] != 9 {
		t.Errorf("update not applied: %v", v)
	}
	if c.len() != 1 {
		t.Errorf("len = %d after double put, want 1", c.len())
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := newLRU(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if v, ok := c.get(key); ok && v.([]float64)[0] != float64((w*31+i)%100) {
					t.Errorf("key %s holds %v", key, v)
					return
				}
				c.put(key, []float64{float64((w*31 + i) % 100)})
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 64 {
		t.Errorf("len = %d exceeds capacity", c.len())
	}
}
