package serve

import (
	"context"
	"time"
)

// featJob is one row in flight through the micro-batcher; done closes
// once out/err are set on the underlying rowJob.
type featJob struct {
	job  *rowJob
	err  error
	done chan struct{}
}

// batcher coalesces featurize work arriving from concurrent requests.
// A single gather goroutine pulls the first job, keeps gathering until
// the window elapses or the batch is full, and hands the batch to run.
// Micro-batching trades a bounded latency floor (the window) for fewer,
// larger parallel fan-outs when many clients send single rows at once.
type batcher struct {
	jobs     chan *featJob
	window   time.Duration
	maxBatch int
	run      func([]*featJob)
	stop     chan struct{}
	stopped  chan struct{}
}

func newBatcher(window time.Duration, maxBatch int, run func([]*featJob)) *batcher {
	b := &batcher{
		jobs:     make(chan *featJob, maxBatch),
		window:   window,
		maxBatch: maxBatch,
		run:      run,
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	go b.loop()
	return b
}

func (b *batcher) loop() {
	defer close(b.stopped)
	for {
		select {
		case first := <-b.jobs:
			batch := append(make([]*featJob, 0, b.maxBatch), first)
			timer := time.NewTimer(b.window)
		gather:
			for len(batch) < b.maxBatch {
				select {
				case j := <-b.jobs:
					batch = append(batch, j)
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
			b.run(batch)
		case <-b.stop:
			// Drain anything that raced past the stop signal so no
			// submitter is left waiting on done forever.
			for {
				select {
				case j := <-b.jobs:
					b.run([]*featJob{j})
				default:
					return
				}
			}
		}
	}
}

// close stops the gather loop and waits for it to finish.
func (b *batcher) close() {
	close(b.stop)
	<-b.stopped
}

// doAll submits every job and waits for all of them (or ctx). A job
// whose context expires while queued may still be computed by the
// gather loop; its result is simply discarded.
func (b *batcher) doAll(ctx context.Context, jobs []*rowJob) error {
	fjs := make([]*featJob, len(jobs))
	for i, j := range jobs {
		fj := &featJob{job: j, done: make(chan struct{})}
		fjs[i] = fj
		select {
		case b.jobs <- fj:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	var firstErr error
	for _, fj := range fjs {
		select {
		case <-fj.done:
			if fj.err != nil && firstErr == nil {
				firstErr = fj.err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return firstErr
}
