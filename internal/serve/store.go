package serve

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

// store is the read path between the HTTP handlers and the loaded
// embedding: concurrency-safe token→vector lookups (the embedding index
// is immutable after load, so reads need no locking), an LRU cache of
// fully-featurized rows keyed by row content, and an optional
// micro-batcher that groups cache misses from concurrent requests into
// one parallel featurize pass.
//
// Stores are immutable snapshots: a hot reload builds a whole new store
// (fresh cache, fresh batcher) around the new bundle and swaps it in
// atomically, so one request only ever sees one bundle version. The
// refs counter retires a replaced store — its batcher shuts down when
// the last in-flight request using it finishes, never under one.
type store struct {
	res     *core.Result
	cache   *lruCache
	batcher *batcher
	metrics *metrics
	workers int

	// index is the optional ANN index behind /v1/neighbors. Like the
	// embedding it is immutable after load, so searches need no
	// locking; a hot reload swaps in a whole new store with the new
	// index, and pinned requests keep searching the old one.
	index *ann.Index
	// annCache memoizes token-keyed neighbor queries (raw-vector
	// queries are not cached: their keys would be unbounded). Nil when
	// the index is absent or caching is disabled.
	annCache *lruCache

	// guards carries the server's circuit breakers and chaos source —
	// shared across store generations so breaker history survives a hot
	// reload. Nil in direct store tests.
	guards *guards

	// ownsMap records whether this store releases res's mmap region
	// when it retires. Normally true; a reload that carries forward an
	// in-process index aliasing this bundle's arena transfers ownership
	// to the successor store instead (see reloadLocked).
	ownsMap bool
	// retain holds retired bundles whose mappings must outlive their
	// own store because this store's carried index still reads vectors
	// out of them. Released together with this store.
	retain []*core.Result

	// gen is the bundle generation this store serves: 1 for the store
	// loaded at startup, +1 per successful reload.
	gen int64
	// refs counts the serving reference (held by the Server until this
	// store is swapped out or shut down) plus one per in-flight request
	// that captured this store. See Server.acquireStore.
	refs      atomic.Int64
	closeOnce sync.Once
}

func newStore(res *core.Result, ix *ann.Index, cfg Config, m *metrics, g *guards) *store {
	s := &store{res: res, index: ix, metrics: m, workers: cfg.Workers, guards: g, ownsMap: true}
	s.refs.Store(1) // the serving reference
	if cfg.CacheSize > 0 {
		s.cache = newLRU(cfg.CacheSize)
		m.setRowCache(cfg.CacheSize, s.cache.len)
	}
	if ix != nil && cfg.CacheSize > 0 {
		s.annCache = newLRU(cfg.CacheSize)
	}
	if ix != nil {
		m.annIndexSize.Set(float64(ix.Len()))
	} else {
		m.annIndexSize.Set(0)
	}
	if ix != nil && ix.Quantized() {
		m.quantEnabled.Set(1)
		m.quantArenaBytes.Set(float64(ix.QuantBytes()))
	} else {
		m.quantEnabled.Set(0)
		m.quantArenaBytes.Set(0)
	}
	if cfg.BatchWindow > 0 {
		s.batcher = newBatcher(cfg.BatchWindow, cfg.BatchMax, s.runBatch)
	}
	return s
}

// release drops one reference; the last drop stops the batcher's gather
// loop and returns the bundle's mmap region (plus any regions retained
// on behalf of a carried index) to the kernel — a retired generation
// must not keep its pages resident for the life of the process.
// Idempotence of the close is guarded so the acquire/swap race (see
// Server.acquireStore) cannot close twice.
func (s *store) release() {
	if s.refs.Add(-1) <= 0 {
		s.closeOnce.Do(func() {
			if s.batcher != nil {
				s.batcher.close()
			}
			if s.ownsMap {
				_ = s.res.Unmap()
			}
			for _, r := range s.retain {
				_ = r.Unmap()
			}
		})
	}
}

// vector returns the embedding vector for an entity key (a token, or
// "table:rowIdx" for rows). The slice is shared and must not be
// mutated.
func (s *store) vector(token string) ([]float64, bool) {
	return s.res.Embedding.Vector(token)
}

// columns returns the fitted column order for table, or nil if the
// bundle's tokenizer has never seen it.
func (s *store) columns(table string) []string {
	return s.res.Textifier.Columns(table)
}

// featureWidth is the response vector length under mode.
func (s *store) featureWidth(mode core.FeaturizationMode) int {
	return s.res.FeatureWidth(mode)
}

// rowJob is one row awaiting featurization. t is a one-row table whose
// columns are in the fitted order; out is filled by featurizeRows.
type rowJob struct {
	t        *dataset.Table
	table    string
	exclude  []string
	graphRow int
	mode     core.FeaturizationMode
	key      string
	out      []float64
}

// cacheKey renders a canonical identity for a row's featurization:
// table, mode, graph row, excluded columns, and every (column, value)
// pair in fitted column order. Two requests with the same key are
// guaranteed the same feature vector, so cached vectors can be shared.
func cacheKey(j *rowJob) string {
	var b strings.Builder
	b.Grow(64)
	b.WriteString(j.table)
	b.WriteByte(0x1e)
	b.WriteByte(byte('0' + j.mode))
	b.WriteByte(0x1e)
	b.WriteString(strconv.Itoa(j.graphRow))
	for _, e := range j.exclude {
		b.WriteByte(0x1e)
		b.WriteString(e)
	}
	for _, c := range j.t.Columns {
		b.WriteByte(0x1f)
		b.WriteString(c.Name)
		b.WriteByte(0x1e)
		b.WriteByte(byte('0' + c.Values[0].Kind))
		b.WriteString(c.Values[0].Text())
	}
	return b.String()
}

// cacheGate decides — once per request — whether the row cache may be
// used, routing the decision through the rowcache circuit breaker and
// chaos target. The in-memory LRU cannot fail on its own; the breaker
// exists so injected cache faults (and any future remote cache) brown
// out into cache bypass — every row recomputed, correctness kept —
// instead of failed requests.
func (s *store) cacheGate() bool {
	if s.cache == nil {
		return false
	}
	g := s.guards
	if g == nil || g.breakers[depRowCache] == nil {
		return true
	}
	done, err := g.breakers[depRowCache].Allow()
	if err != nil {
		s.metrics.depCalls.With(depRowCache, "open").Inc()
		s.metrics.degraded.With("featurize").Inc()
		return false
	}
	if d := g.chaos.Decide(depRowCache); d.Err {
		done(false)
		s.metrics.depCalls.With(depRowCache, "error").Inc()
		s.metrics.degraded.With("featurize").Inc()
		return false
	}
	done(true)
	s.metrics.depCalls.With(depRowCache, "ok").Inc()
	return true
}

// featurizeRows fills every job's out vector, serving from the cache
// where possible, and reports the number of cache hits. Returned
// vectors may be shared with the cache; callers must not mutate them.
func (s *store) featurizeRows(ctx context.Context, jobs []*rowJob) (int, error) {
	hits := 0
	misses := jobs
	useCache := s.cacheGate()
	if useCache {
		misses = misses[:0:0]
		for _, j := range jobs {
			if v, ok := s.cache.get(j.key); ok {
				j.out = v.([]float64)
				hits++
				continue
			}
			misses = append(misses, j)
		}
		s.metrics.cacheHits.Add(float64(hits))
		s.metrics.cacheMisses.Add(float64(len(misses)))
	}
	if len(misses) > 0 {
		var err error
		if s.batcher != nil {
			err = s.batcher.doAll(ctx, misses)
		} else {
			err = s.compute(ctx, misses)
		}
		if err != nil {
			return hits, err
		}
		if useCache {
			for _, j := range misses {
				s.cache.put(j.key, j.out)
			}
		}
	}
	s.metrics.rowsFeaturized.Add(float64(len(jobs)))
	return hits, nil
}

// compute featurizes jobs inline, fanning out across s.workers
// goroutines; each job writes only its own out slot.
func (s *store) compute(ctx context.Context, jobs []*rowJob) error {
	return parallel.ForError(len(jobs), s.workers, func(_ int, pr parallel.Range) error {
		for i := pr.Lo; i < pr.Hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			j := jobs[i]
			out, err := s.res.FeaturizeRow(j.t, j.table, j.exclude, 0, j.graphRow, j.mode)
			if err != nil {
				return err
			}
			j.out = out
		}
		return nil
	})
}

// neighborsByName answers a token-keyed neighbor query through the
// per-store LRU: identical (token, k, ef) queries against one index
// generation share one search. The returned slice is shared with the
// cache; callers must not mutate it.
func (s *store) neighborsByName(token string, k, ef int) ([]ann.Result, bool, error) {
	if s.annCache == nil {
		res, err := s.index.SearchName(token, k, ef)
		return res, false, err
	}
	key := annCacheKey(token, k, ef)
	if v, ok := s.annCache.get(key); ok {
		s.metrics.annCacheHits.Inc()
		return v.([]ann.Result), true, nil
	}
	s.metrics.annCacheMisses.Inc()
	res, err := s.index.SearchName(token, k, ef)
	if err != nil {
		return nil, false, err
	}
	s.annCache.put(key, res)
	return res, false, nil
}

// annCacheKey renders the identity of a token-keyed neighbor query.
// The 0x1e separator cannot appear in a token drawn from the embedding
// vocabulary's printable keys, so distinct queries cannot collide.
func annCacheKey(token string, k, ef int) string {
	var b strings.Builder
	b.Grow(len(token) + 12)
	b.WriteString(token)
	b.WriteByte(0x1e)
	b.WriteString(strconv.Itoa(k))
	b.WriteByte(0x1e)
	b.WriteString(strconv.Itoa(ef))
	return b.String()
}

// runBatch is the batcher's executor: one gathered batch, featurized in
// parallel, each job's error delivered individually.
func (s *store) runBatch(batch []*featJob) {
	s.metrics.batches.Inc()
	s.metrics.batchedRows.Add(float64(len(batch)))
	parallel.For(len(batch), s.workers, func(_ int, pr parallel.Range) {
		for i := pr.Lo; i < pr.Hi; i++ {
			fj := batch[i]
			j := fj.job
			j.out, fj.err = s.res.FeaturizeRow(j.t, j.table, j.exclude, 0, j.graphRow, j.mode)
			close(fj.done)
		}
	})
}
