package er

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/synth"
)

// TestTuneER compares Leva ER variants; enable with LEVA_TUNE=1.
func TestTuneER(t *testing.T) {
	if os.Getenv("LEVA_TUNE") == "" {
		t.Skip("set LEVA_TUNE=1 to run the tuning harness")
	}
	for _, noise := range []float64{0.22, 0.38} {
		pair := synth.ER("beer", synth.EROptions{Noise: noise, Entities: 300, Seed: 5})
		for _, c := range []struct {
			name string
			mf   embed.MFOptions
			feat core.FeaturizationMode
			thr  float64
		}{
			{"mf-default-rv", embed.MFOptions{}, core.RowPlusValue, 0.5},
			{"mf-w1-rv", embed.MFOptions{Window: 1}, core.RowPlusValue, 0.5},
			{"mf-default-row", embed.MFOptions{}, core.RowOnly, 0.5},
			{"mf-w5-rv", embed.MFOptions{Window: 5}, core.RowPlusValue, 0.5},
			{"mf-default-rv-thr.3", embed.MFOptions{}, core.RowPlusValue, 0.3},
			{"mf-default-rv-thr.7", embed.MFOptions{}, core.RowPlusValue, 0.7},
		} {
			f1 := levaVariant(t, pair, c.mf, c.feat, c.thr)
			t.Logf("noise=%.2f %-20s f1=%.3f", noise, c.name, f1)
		}
	}
}

func levaVariant(t *testing.T, pair *synth.ERPair, mf embed.MFOptions, feat core.FeaturizationMode, thr float64) float64 {
	db := dataset.NewDatabase(pair.A, pair.B)
	res, err := core.BuildEmbedding(db, core.Config{
		Dim: 64, Method: embed.MethodMF, MF: mf, Seed: 3, Featurization: feat,
	})
	if err != nil {
		t.Fatal(err)
	}
	va, err := res.Featurize(pair.A, pair.A.Name, nil, func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	vb, err := res.Featurize(pair.B, pair.B.Name, nil, func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	pred := mutualNearest(va, vb, thr, 1)
	_, _, f1 := Score(pred, pair.Matches)
	return f1
}
