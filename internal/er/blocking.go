package er

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ann"
	"repro/internal/matrix"
)

// Blocking for entity resolution: candidate generation that spares the
// matcher the exhaustive |A|x|B| scan. Two generators share one
// scoring loop (mutualNearestCandidates):
//
//   - BlockLSH: random-hyperplane (SimHash) LSH. Cosine-similar
//     vectors agree on most hyperplane signs, so banding the sign bits
//     buckets likely matches together and only within-bucket pairs are
//     scored. Tuned by Options.BlockBands/BlockRows (see their docs
//     for the recall/precision trade).
//   - BlockANN: an HNSW index per side (internal/ann); each row's
//     Options.ANNK approximate nearest neighbors on the other side,
//     taken in both directions, are the candidates.
//
// Determinism: both generators derive all randomness from Options.Seed
// (the hyperplane draws; the index's level assignment), and candidate
// lists are produced in a fixed order, so blocked matching is as
// reproducible as the exhaustive scan.

// hyperplaneLSH holds the random projection directions.
type hyperplaneLSH struct {
	planes [][]float64 // bits x dim
	bands  int
	rows   int
}

// newHyperplaneLSH samples bands*rows hyperplanes for dim-dimensional
// vectors from a rand.Rand seeded with seed — the only randomness in
// the LSH blocker, so a fixed seed fixes every bucket assignment.
func newHyperplaneLSH(dim, bands, rows int, seed int64) *hyperplaneLSH {
	rng := rand.New(rand.NewSource(seed))
	bits := bands * rows
	planes := make([][]float64, bits)
	for i := range planes {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		planes[i] = p
	}
	return &hyperplaneLSH{planes: planes, bands: bands, rows: rows}
}

// signature returns the sign-bit pattern of v against every plane.
func (h *hyperplaneLSH) signature(v []float64) []bool {
	sig := make([]bool, len(h.planes))
	for i, p := range h.planes {
		dot := 0.0
		for j := 0; j < len(v) && j < len(p); j++ {
			dot += v[j] * p[j]
		}
		sig[i] = dot >= 0
	}
	return sig
}

// bandKeys renders one hashable key per band.
func (h *hyperplaneLSH) bandKeys(sig []bool) []uint64 {
	keys := make([]uint64, h.bands)
	for b := 0; b < h.bands; b++ {
		var k uint64 = 1469598103934665603
		for r := 0; r < h.rows; r++ {
			k *= 1099511628211
			if sig[b*h.rows+r] {
				k ^= 1
			} else {
				k ^= 2
			}
		}
		keys[b] = k
	}
	return keys
}

// blockedCandidates returns, per row of a, the candidate rows of b that
// share at least one LSH band — the only pairs the matcher scores.
func blockedCandidates(a, b [][]float64, bands, rows int, seed int64) [][]int32 {
	if len(a) == 0 || len(b) == 0 {
		return make([][]int32, len(a))
	}
	lsh := newHyperplaneLSH(len(a[0]), bands, rows, seed)
	// Index b by band keys.
	buckets := make([]map[uint64][]int32, bands)
	for i := range buckets {
		buckets[i] = map[uint64][]int32{}
	}
	for j, vb := range b {
		keys := lsh.bandKeys(lsh.signature(vb))
		for band, k := range keys {
			buckets[band][k] = append(buckets[band][k], int32(j))
		}
	}
	out := make([][]int32, len(a))
	for i, va := range a {
		keys := lsh.bandKeys(lsh.signature(va))
		seen := map[int32]bool{}
		for band, k := range keys {
			for _, j := range buckets[band][k] {
				if !seen[j] {
					seen[j] = true
					out[i] = append(out[i], j)
				}
			}
		}
	}
	return out
}

// annCandidates generates candidates from two HNSW indexes: for every
// row of a, its k approximate nearest rows of b, merged with the
// reverse direction (rows of a retrieved for rows of b) so a pair
// missed by one index can be recovered by the other — mutual-nearest
// matching needs both sides to see the pair. Candidate lists come back
// sorted by b-row id, making downstream scoring order-independent of
// the retrieval order.
func annCandidates(a, b [][]float64, k int, seed int64) ([][]int32, error) {
	out := make([][]int32, len(a))
	if len(a) == 0 || len(b) == 0 {
		return out, nil
	}
	names := func(n int) []string {
		ns := make([]string, n)
		for i := range ns {
			ns[i] = fmt.Sprintf("%d", i)
		}
		return ns
	}
	opts := ann.Options{Seed: seed}
	ixB, err := ann.BuildVectors(names(len(b)), b, opts)
	if err != nil {
		return nil, fmt.Errorf("er: ann blocking: index B: %w", err)
	}
	ixA, err := ann.BuildVectors(names(len(a)), a, opts)
	if err != nil {
		return nil, fmt.Errorf("er: ann blocking: index A: %w", err)
	}
	seen := make([]map[int32]bool, len(a))
	add := func(i int, j int32) {
		if seen[i] == nil {
			seen[i] = map[int32]bool{}
		}
		if !seen[i][j] {
			seen[i][j] = true
			out[i] = append(out[i], j)
		}
	}
	for i, va := range a {
		hits, err := ixB.SearchVector(va, k, 0)
		if err != nil {
			return nil, fmt.Errorf("er: ann blocking: %w", err)
		}
		for _, h := range hits {
			add(i, int32(h.ID))
		}
	}
	for j, vb := range b {
		hits, err := ixA.SearchVector(vb, k, 0)
		if err != nil {
			return nil, fmt.Errorf("er: ann blocking: %w", err)
		}
		for _, h := range hits {
			add(h.ID, int32(j))
		}
	}
	for i := range out {
		sort.Slice(out[i], func(x, y int) bool { return out[i][x] < out[i][y] })
	}
	return out, nil
}

// mutualNearestCandidates is the blocked matcher: mutualNearest
// restricted to the candidate pairs cands (per row of a, the rows of b
// worth scoring), regardless of which blocker generated them.
func mutualNearestCandidates(a, b [][]float64, threshold float64, cands [][]int32) [][2]int {
	bestForA := make([]int, len(a))
	simForA := make([]float64, len(a))
	bestForB := make([]int, len(b))
	simForB := make([]float64, len(b))
	for i := range bestForA {
		bestForA[i] = -1
	}
	for j := range bestForB {
		bestForB[j] = -1
	}
	for i, js := range cands {
		for _, j := range js {
			s := matrix.CosineSimilarity(a[i], b[j])
			if bestForA[i] < 0 || s > simForA[i] {
				bestForA[i], simForA[i] = int(j), s
			}
			if bestForB[j] < 0 || s > simForB[j] {
				bestForB[j], simForB[j] = i, s
			}
		}
	}
	var out [][2]int
	for i, j := range bestForA {
		if j >= 0 && bestForB[j] == i && simForA[i] >= threshold {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}
