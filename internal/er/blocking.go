package er

import (
	"math/rand"

	"repro/internal/matrix"
)

// Blocking for entity resolution: random-hyperplane (SimHash) LSH over
// embedding vectors. Cosine-similar vectors agree on most hyperplane
// signs, so banding the sign bits buckets likely matches together and
// the matcher only scores within-bucket candidate pairs — sub-quadratic
// in catalog size instead of the exhaustive all-pairs scan.

// hyperplaneLSH holds the random projection directions.
type hyperplaneLSH struct {
	planes [][]float64 // bits x dim
	bands  int
	rows   int
}

// newHyperplaneLSH samples bands*rows hyperplanes for dim-dimensional
// vectors.
func newHyperplaneLSH(dim, bands, rows int, seed int64) *hyperplaneLSH {
	rng := rand.New(rand.NewSource(seed))
	bits := bands * rows
	planes := make([][]float64, bits)
	for i := range planes {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		planes[i] = p
	}
	return &hyperplaneLSH{planes: planes, bands: bands, rows: rows}
}

// signature returns the sign-bit pattern of v against every plane.
func (h *hyperplaneLSH) signature(v []float64) []bool {
	sig := make([]bool, len(h.planes))
	for i, p := range h.planes {
		dot := 0.0
		for j := 0; j < len(v) && j < len(p); j++ {
			dot += v[j] * p[j]
		}
		sig[i] = dot >= 0
	}
	return sig
}

// bandKeys renders one hashable key per band.
func (h *hyperplaneLSH) bandKeys(sig []bool) []uint64 {
	keys := make([]uint64, h.bands)
	for b := 0; b < h.bands; b++ {
		var k uint64 = 1469598103934665603
		for r := 0; r < h.rows; r++ {
			k *= 1099511628211
			if sig[b*h.rows+r] {
				k ^= 1
			} else {
				k ^= 2
			}
		}
		keys[b] = k
	}
	return keys
}

// blockedCandidates returns, per row of a, the candidate rows of b that
// share at least one LSH band — the only pairs the matcher scores.
func blockedCandidates(a, b [][]float64, bands, rows int, seed int64) [][]int32 {
	if len(a) == 0 || len(b) == 0 {
		return make([][]int32, len(a))
	}
	lsh := newHyperplaneLSH(len(a[0]), bands, rows, seed)
	// Index b by band keys.
	buckets := make([]map[uint64][]int32, bands)
	for i := range buckets {
		buckets[i] = map[uint64][]int32{}
	}
	for j, vb := range b {
		keys := lsh.bandKeys(lsh.signature(vb))
		for band, k := range keys {
			buckets[band][k] = append(buckets[band][k], int32(j))
		}
	}
	out := make([][]int32, len(a))
	for i, va := range a {
		keys := lsh.bandKeys(lsh.signature(va))
		seen := map[int32]bool{}
		for band, k := range keys {
			for _, j := range buckets[band][k] {
				if !seen[j] {
					seen[j] = true
					out[i] = append(out[i], j)
				}
			}
		}
	}
	return out
}

// mutualNearestBlocked is mutualNearest restricted to LSH-blocked
// candidate pairs.
func mutualNearestBlocked(a, b [][]float64, threshold float64, bands, rows int, seed int64) [][2]int {
	cands := blockedCandidates(a, b, bands, rows, seed)
	bestForA := make([]int, len(a))
	simForA := make([]float64, len(a))
	bestForB := make([]int, len(b))
	simForB := make([]float64, len(b))
	for i := range bestForA {
		bestForA[i] = -1
	}
	for j := range bestForB {
		bestForB[j] = -1
	}
	for i, js := range cands {
		for _, j := range js {
			s := matrix.CosineSimilarity(a[i], b[j])
			if bestForA[i] < 0 || s > simForA[i] {
				bestForA[i], simForA[i] = int(j), s
			}
			if bestForB[j] < 0 || s > simForB[j] {
				bestForB[j], simForB[j] = i, s
			}
		}
	}
	var out [][2]int
	for i, j := range bestForA {
		if j >= 0 && bestForB[j] == i && simForA[i] >= threshold {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}
