package er

import (
	"math/rand"
	"testing"

	"repro/internal/synth"
)

func TestBlockedCandidatesFindSimilarVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const dim = 32
	// b[j] is a tiny perturbation of a[j]: the blocked candidate set
	// for a[i] must almost always contain its twin.
	var a, b [][]float64
	for i := 0; i < 200; i++ {
		v := make([]float64, dim)
		w := make([]float64, dim)
		for k := range v {
			v[k] = rng.NormFloat64()
			w[k] = v[k] + 0.01*rng.NormFloat64()
		}
		a = append(a, v)
		b = append(b, w)
	}
	cands := blockedCandidates(a, b, 24, 6, 2)
	hit := 0
	totalCands := 0
	for i, js := range cands {
		totalCands += len(js)
		for _, j := range js {
			if int(j) == i {
				hit++
			}
		}
	}
	if hit < 190 {
		t.Errorf("twin recall %d/200", hit)
	}
	// Blocking must actually prune: far fewer than n^2 pairs.
	if totalCands >= 200*200/2 {
		t.Errorf("blocking scored %d pairs, not sub-quadratic", totalCands)
	}
}

// twinVectors builds the blocking fixture: b[j] is a tiny perturbation
// of a[j], so a blocker's candidate set for a[i] should almost always
// contain its twin.
func twinVectors(n, dim int, seed int64) (a, b [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		w := make([]float64, dim)
		for k := range v {
			v[k] = rng.NormFloat64()
			w[k] = v[k] + 0.01*rng.NormFloat64()
		}
		a = append(a, v)
		b = append(b, w)
	}
	return a, b
}

// TestANNCandidatesFindSimilarVectors is the LSH twin test run against
// the HNSW blocker: near-perfect twin recall at a sub-quadratic
// candidate budget.
func TestANNCandidatesFindSimilarVectors(t *testing.T) {
	a, b := twinVectors(200, 32, 1)
	cands, err := annCandidates(a, b, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	hit, totalCands := 0, 0
	for i, js := range cands {
		totalCands += len(js)
		for _, j := range js {
			if int(j) == i {
				hit++
			}
		}
	}
	if hit < 195 {
		t.Errorf("twin recall %d/200", hit)
	}
	if totalCands >= 200*200/2 {
		t.Errorf("ann blocking scored %d pairs, not sub-quadratic", totalCands)
	}
}

// TestMutualNearestParallelBitIdentical pins the satellite contract of
// the parallelized brute-force scan: every worker count predicts the
// exact same pairs, because shards write disjoint slots and float
// comparisons don't reassociate.
func TestMutualNearestParallelBitIdentical(t *testing.T) {
	a, b := twinVectors(120, 16, 9)
	want := mutualNearest(a, b, 0.5, 1)
	if len(want) == 0 {
		t.Fatal("fixture produced no matches; the comparison is vacuous")
	}
	for _, workers := range []int{2, 3, 5, 8} {
		got := mutualNearest(a, b, 0.5, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pair %d is %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestANNBlockingMatchesUnblocked drives the ann blocker through the
// public MatchTables API and requires its F1 to stay within 0.1 of the
// exhaustive scan — same bar the LSH blocker is held to.
func TestANNBlockingMatchesUnblocked(t *testing.T) {
	pair := synth.ER("annblk", synth.EROptions{Entities: 150, ExtraPerSide: 30, Noise: 0.2, Seed: 3})
	plain, err := MatchTables(pair.A, pair.B, MethodLeva, Options{Dim: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := MatchTables(pair.A, pair.B, MethodLeva, Options{
		Dim: 48, Seed: 3, Blocking: true, BlockMethod: BlockANN,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1Plain := Score(plain, pair.Matches)
	_, _, f1Blocked := Score(blocked, pair.Matches)
	t.Logf("plain F1 %.3f, ann-blocked F1 %.3f", f1Plain, f1Blocked)
	if f1Blocked < f1Plain-0.1 {
		t.Errorf("ann blocking cost too much recall: %.3f vs %.3f", f1Blocked, f1Plain)
	}
}

func TestMatchTablesRejectsUnknownBlockMethod(t *testing.T) {
	pair := synth.ER("badblk", synth.EROptions{Entities: 10, Seed: 1})
	_, err := MatchTables(pair.A, pair.B, MethodLeva, Options{
		Blocking: true, BlockMethod: "simhash-3000",
	})
	if err == nil {
		t.Fatal("unknown blocking method accepted")
	}
}

func TestMutualNearestBlockedMatchesUnblocked(t *testing.T) {
	pair := synth.ER("blk", synth.EROptions{Entities: 150, ExtraPerSide: 30, Noise: 0.2, Seed: 3})
	plain, err := MatchTables(pair.A, pair.B, MethodLeva, Options{Dim: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := MatchTables(pair.A, pair.B, MethodLeva, Options{Dim: 48, Seed: 3, Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1Plain := Score(plain, pair.Matches)
	_, _, f1Blocked := Score(blocked, pair.Matches)
	t.Logf("plain F1 %.3f, blocked F1 %.3f", f1Plain, f1Blocked)
	if f1Blocked < f1Plain-0.1 {
		t.Errorf("blocking cost too much recall: %.3f vs %.3f", f1Blocked, f1Plain)
	}
}
