package er

import (
	"math/rand"
	"testing"

	"repro/internal/synth"
)

func TestBlockedCandidatesFindSimilarVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const dim = 32
	// b[j] is a tiny perturbation of a[j]: the blocked candidate set
	// for a[i] must almost always contain its twin.
	var a, b [][]float64
	for i := 0; i < 200; i++ {
		v := make([]float64, dim)
		w := make([]float64, dim)
		for k := range v {
			v[k] = rng.NormFloat64()
			w[k] = v[k] + 0.01*rng.NormFloat64()
		}
		a = append(a, v)
		b = append(b, w)
	}
	cands := blockedCandidates(a, b, 24, 6, 2)
	hit := 0
	totalCands := 0
	for i, js := range cands {
		totalCands += len(js)
		for _, j := range js {
			if int(j) == i {
				hit++
			}
		}
	}
	if hit < 190 {
		t.Errorf("twin recall %d/200", hit)
	}
	// Blocking must actually prune: far fewer than n^2 pairs.
	if totalCands >= 200*200/2 {
		t.Errorf("blocking scored %d pairs, not sub-quadratic", totalCands)
	}
}

func TestMutualNearestBlockedMatchesUnblocked(t *testing.T) {
	pair := synth.ER("blk", synth.EROptions{Entities: 150, ExtraPerSide: 30, Noise: 0.2, Seed: 3})
	plain, err := MatchTables(pair.A, pair.B, MethodLeva, Options{Dim: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := MatchTables(pair.A, pair.B, MethodLeva, Options{Dim: 48, Seed: 3, Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1Plain := Score(plain, pair.Matches)
	_, _, f1Blocked := Score(blocked, pair.Matches)
	t.Logf("plain F1 %.3f, blocked F1 %.3f", f1Plain, f1Blocked)
	if f1Blocked < f1Plain-0.1 {
		t.Errorf("blocking cost too much recall: %.3f vs %.3f", f1Blocked, f1Plain)
	}
}
