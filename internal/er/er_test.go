package er

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func TestScore(t *testing.T) {
	truth := [][2]int{{0, 0}, {1, 1}, {2, 2}}
	pred := [][2]int{{0, 0}, {1, 1}, {3, 3}}
	p, r, f1 := Score(pred, truth)
	if p != 2.0/3.0 || r != 2.0/3.0 || f1 != 2.0/3.0 {
		t.Errorf("PRF = %v %v %v", p, r, f1)
	}
	if _, _, f := Score(nil, truth); f != 0 {
		t.Errorf("empty predictions F1 = %v", f)
	}
}

func TestCanonicalizeTokens(t *testing.T) {
	tab := dataset.NewTable("t", "a", "b")
	tab.AppendRow(dataset.String("brand_1~a12"), dataset.Number(3))
	out := CanonicalizeTokens(tab)
	if got := out.Cell(0, "a").Str; got != "brand_1" {
		t.Errorf("canonicalized = %q", got)
	}
	// Numbers untouched; original untouched.
	if out.Cell(0, "b").Num != 3 {
		t.Error("number modified")
	}
	if tab.Cell(0, "a").Str != "brand_1~a12" {
		t.Error("original mutated")
	}
}

func TestMutualNearest(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := [][]float64{{0.9, 0.1}, {0.1, 0.9}, {0.5, 0.5}}
	pred := mutualNearest(a, b, 0.5, 1)
	if len(pred) != 2 {
		t.Fatalf("pairs = %v", pred)
	}
	for _, p := range pred {
		if p[0] != p[1] {
			t.Errorf("wrong pairing %v", p)
		}
	}
	// High threshold suppresses everything.
	if got := mutualNearest(a, b, 0.9999, 1); len(got) > 1 {
		t.Errorf("threshold did not gate: %v", got)
	}
}

func TestMatchTablesLevaEasyPair(t *testing.T) {
	pair := synth.ER("easy", synth.EROptions{Entities: 120, ExtraPerSide: 30, Noise: 0.15, Seed: 1})
	pred, err := MatchTables(pair.A, pair.B, MethodLeva, Options{Dim: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1 := Score(pred, pair.Matches)
	if f1 < 0.5 {
		t.Errorf("Leva F1 on easy pair = %v, want >= 0.5", f1)
	}
}

func TestMatchTablesEmbDIFBeatsEmbDIS(t *testing.T) {
	pair := synth.ER("mid", synth.EROptions{Entities: 100, ExtraPerSide: 25, Noise: 0.4, Seed: 2})
	opts := Options{Dim: 48, Seed: 2}
	predS, err := MatchTables(pair.A, pair.B, MethodEmbDIS, opts)
	if err != nil {
		t.Fatal(err)
	}
	predF, err := MatchTables(pair.A, pair.B, MethodEmbDIF, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1S := Score(predS, pair.Matches)
	_, _, f1F := Score(predF, pair.Matches)
	if f1F <= f1S {
		t.Errorf("input transformation did not help: EmbDI-F %v <= EmbDI-S %v", f1F, f1S)
	}
}

func TestMatchTablesUnknownMethod(t *testing.T) {
	pair := synth.ER("x", synth.EROptions{Entities: 10, ExtraPerSide: 2, Noise: 0.1, Seed: 3})
	if _, err := MatchTables(pair.A, pair.B, Method("nope"), Options{}); err == nil {
		t.Error("unknown method accepted")
	}
}
