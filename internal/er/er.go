// Package er applies relational embeddings to entity resolution, the
// out-of-design-scope task of paper Section 6.7 (Table 8): embed two
// catalog tables into one space, then predict matches with
// threshold-gated mutual nearest neighbors on cosine similarity.
package er

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/textify"
)

// Method selects how the shared embedding space is built.
type Method string

const (
	// MethodLeva uses Leva's full pipeline (refined weighted graph,
	// MF embedding) with no input preprocessing.
	MethodLeva Method = "leva"
	// MethodEmbDIS is EmbDI-style without input transformation: the
	// tripartite graph over the raw tables.
	MethodEmbDIS Method = "embdi-s"
	// MethodEmbDIF is EmbDI-style with input transformation: token
	// canonicalization is applied to both tables before embedding
	// (the data-preparation step that gives EmbDI-F its edge in the
	// paper).
	MethodEmbDIF Method = "embdi-f"
	// MethodDeepER composes tuple vectors from IDF-weighted word
	// embeddings.
	MethodDeepER Method = "deeper"
)

// BlockMethod selects the candidate generator used when
// Options.Blocking is set.
type BlockMethod string

const (
	// BlockLSH buckets rows by random-hyperplane (SimHash) LSH bands;
	// two rows become candidates when they collide in any band.
	BlockLSH BlockMethod = "lsh"
	// BlockANN retrieves each row's approximate nearest neighbors
	// from an HNSW index (internal/ann), in both directions, and
	// scores only those pairs. Candidate quality tracks the index's
	// recall, which is typically higher than LSH banding at the same
	// candidate budget.
	BlockANN BlockMethod = "ann"
)

// Options tunes matching. The zero value means "defaults".
//
// Matching is deterministic: for fixed inputs, options, and Seed,
// MatchTables predicts the same pairs on every run and at every
// Workers setting. Each randomized component (the embedding build, the
// LSH hyperplanes, the ANN index) derives from Seed alone, and the
// parallel scoring loops write disjoint per-row slots (the
// internal/parallel contract), so scheduling never leaks into results.
type Options struct {
	// Dim is the embedding size. Default 100.
	Dim int
	// Threshold is the minimum cosine similarity for a predicted
	// match. Default 0.5.
	Threshold float64
	// Blocking enables candidate blocking so matching scores
	// sub-quadratically many pairs instead of all |A|x|B|; recall
	// dips slightly in exchange. Recommended once catalogs exceed a
	// few thousand rows. BlockMethod picks the blocker.
	Blocking bool
	// BlockMethod selects the candidate generator used when Blocking
	// is set: BlockLSH (the default) or BlockANN.
	BlockMethod BlockMethod
	// BlockBands and BlockRows tune the LSH blocker. The signature of
	// a row is BlockBands*BlockRows hyperplane sign bits, split into
	// BlockBands bands of BlockRows bits each; two rows are candidates
	// when they agree on every bit of at least one band. More bands
	// raise recall (more chances to collide), more rows per band raise
	// precision (a collision requires longer exact agreement).
	// Defaults 24 and 6. Ignored by BlockANN.
	BlockBands int
	BlockRows  int
	// ANNK is how many approximate nearest neighbors BlockANN
	// retrieves per row in each direction. Default 10. Ignored by
	// BlockLSH.
	ANNK int
	// Seed drives every random choice downstream — the embedding
	// build, the LSH hyperplane draws, and the ANN index's level
	// assignment. Two runs with the same seed and inputs generate
	// identical candidates and identical predictions.
	Seed int64
	// Workers caps the goroutines of the brute-force scoring loops
	// (0 = all cores, 1 = sequential). Results are bit-identical at
	// every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Dim <= 0 {
		o.Dim = 100
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.5
	}
	if o.BlockMethod == "" {
		o.BlockMethod = BlockLSH
	}
	if o.BlockBands <= 0 {
		o.BlockBands = 24
	}
	if o.BlockRows <= 0 {
		o.BlockRows = 6
	}
	if o.ANNK <= 0 {
		o.ANNK = 10
	}
	return o
}

// MatchTables embeds both tables with the chosen method and returns
// predicted match pairs (rowA, rowB): mutual nearest neighbors whose
// cosine similarity clears the threshold.
func MatchTables(a, b *dataset.Table, method Method, opts Options) ([][2]int, error) {
	opts = opts.withDefaults()
	if method == MethodEmbDIF {
		a, b = CanonicalizeTokens(a), CanonicalizeTokens(b)
	}
	db := dataset.NewDatabase(a, b)

	var vecsA, vecsB [][]float64
	switch method {
	case MethodLeva:
		// ER wants row-row proximity at longer token range than the
		// supervised-featurization default, so the proximity window
		// matches the full SGNS window here.
		res, err := core.BuildEmbedding(db, core.Config{
			Dim:    opts.Dim,
			Method: embed.MethodMF,
			MF:     embed.MFOptions{Window: 5},
			Seed:   opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		vecsA, err = res.Featurize(a, a.Name, nil, func(i int) int { return i })
		if err != nil {
			return nil, err
		}
		vecsB, err = res.Featurize(b, b.Name, nil, func(i int) int { return i })
		if err != nil {
			return nil, err
		}
	case MethodEmbDIS, MethodEmbDIF, MethodDeepER:
		model, err := textify.Fit(db, textify.Options{})
		if err != nil {
			return nil, err
		}
		tokenized, err := model.TransformAll(db)
		if err != nil {
			return nil, err
		}
		bopts := embed.BaselineOptions{Dim: opts.Dim, Seed: opts.Seed,
			WalkLength: 40, WalksPerNode: 6, Epochs: 3}
		var e *embed.Embedding
		if method == MethodDeepER {
			e = embed.DeepERStyle(tokenized, bopts)
		} else {
			e = embed.EmbDIStyle(tokenized, bopts)
		}
		vecsA = rowVectors(e, a)
		vecsB = rowVectors(e, b)
	default:
		return nil, fmt.Errorf("er: unknown method %q", method)
	}
	if opts.Blocking {
		var cands [][]int32
		switch opts.BlockMethod {
		case BlockANN:
			var err error
			cands, err = annCandidates(vecsA, vecsB, opts.ANNK, opts.Seed)
			if err != nil {
				return nil, err
			}
		case BlockLSH:
			cands = blockedCandidates(vecsA, vecsB, opts.BlockBands, opts.BlockRows, opts.Seed)
		default:
			return nil, fmt.Errorf("er: unknown blocking method %q", opts.BlockMethod)
		}
		return mutualNearestCandidates(vecsA, vecsB, opts.Threshold, cands), nil
	}
	return mutualNearest(vecsA, vecsB, opts.Threshold, opts.Workers), nil
}

func rowVectors(e *embed.Embedding, t *dataset.Table) [][]float64 {
	out := make([][]float64, t.NumRows())
	for i := range out {
		if v, ok := e.Vector(embed.RowKey(t.Name, i)); ok {
			out[i] = v
		} else {
			out[i] = make([]float64, e.Dim)
		}
	}
	return out
}

// mutualNearest predicts (i, j) when j is i's nearest neighbor in B, i
// is j's nearest in A, and the similarity clears the threshold. The two
// exhaustive scans shard their outer loop across workers; every shard
// writes only its own rows' best/sim slots and float comparisons don't
// depend on evaluation order, so the result is bit-identical at every
// worker count — this brute-force path is the recall oracle the ANN
// blocker is tested against, and an oracle must not drift with
// parallelism.
func mutualNearest(a, b [][]float64, threshold float64, workers int) [][2]int {
	workers = parallel.Workers(workers)
	bestForA := make([]int, len(a))
	simForA := make([]float64, len(a))
	parallel.For(len(a), workers, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			bestForA[i] = -1
			for j, vb := range b {
				s := matrix.CosineSimilarity(a[i], vb)
				if bestForA[i] < 0 || s > simForA[i] {
					bestForA[i], simForA[i] = j, s
				}
			}
		}
	})
	bestForB := make([]int, len(b))
	simForB := make([]float64, len(b))
	parallel.For(len(b), workers, func(_ int, r parallel.Range) {
		for j := r.Lo; j < r.Hi; j++ {
			bestForB[j] = -1
			for i, va := range a {
				s := matrix.CosineSimilarity(va, b[j])
				if bestForB[j] < 0 || s > simForB[j] {
					bestForB[j], simForB[j] = i, s
				}
			}
		}
	})
	var out [][2]int
	for i, j := range bestForA {
		if j >= 0 && bestForB[j] == i && simForA[i] >= threshold {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// Score compares predicted pairs to ground truth and returns precision,
// recall and F1.
func Score(pred, truth [][2]int) (prec, rec, f1 float64) {
	truthSet := make(map[[2]int]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}
	tp := 0
	for _, p := range pred {
		if truthSet[p] {
			tp++
		}
	}
	fp := len(pred) - tp
	fn := len(truth) - tp
	if tp == 0 {
		return 0, 0, 0
	}
	prec = float64(tp) / float64(tp+fp)
	rec = float64(tp) / float64(tp+fn)
	f1 = 2 * prec * rec / (prec + rec)
	return prec, rec, f1
}

// CanonicalizeTokens is the EmbDI-F input transformation: a cleaning
// pass that strips view-local corruption suffixes ("value~a12" ->
// "value"), the synthetic analog of the format normalization EmbDI-F
// performs on real catalogs. It returns a cleaned copy.
func CanonicalizeTokens(t *dataset.Table) *dataset.Table {
	out := t.Clone()
	for _, c := range out.Columns {
		for i, v := range c.Values {
			if v.Kind != dataset.KindString {
				continue
			}
			if k := strings.IndexByte(v.Str, '~'); k >= 0 {
				c.Values[i] = dataset.String(v.Str[:k])
			}
		}
	}
	return out
}
