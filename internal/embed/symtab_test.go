package embed

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestSymbolTableRoundTrip(t *testing.T) {
	names := []string{"zeta", "alpha", "t:0", "t:1", "", "müller", "alpha2"}
	st, err := NewSymbolTable(names)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(names))
	}
	for i, n := range names {
		if got := st.At(i); got != n {
			t.Errorf("At(%d) = %q, want %q", i, got, n)
		}
		id, ok := st.Lookup(n)
		if !ok || id != i {
			t.Errorf("Lookup(%q) = %d,%v, want %d,true", n, id, ok, i)
		}
	}
	for _, miss := range []string{"nope", "alph", "alpha3", "zzz"} {
		if _, ok := st.Lookup(miss); ok {
			t.Errorf("Lookup(%q) found a symbol", miss)
		}
	}
	got := st.AppendNames(nil)
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("AppendNames order broken at %d: %q != %q", i, got[i], names[i])
		}
	}
}

func TestSymbolTableLookupIsAllocFree(t *testing.T) {
	names := make([]string, 500)
	for i := range names {
		names[i] = fmt.Sprintf("token-%04d", i)
	}
	st, err := NewSymbolTable(names)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, n := range []string{"token-0000", "token-0250", "token-0499", "missing"} {
			st.Lookup(n)
		}
	})
	if allocs != 0 {
		t.Errorf("Lookup allocates %v times per run, want 0", allocs)
	}
}

// TestSymbolTableFromParts checks that the decode-side constructor
// accepts exactly what the encode side produces and rejects every
// structural corruption a hostile file could carry.
func TestSymbolTableFromParts(t *testing.T) {
	names := []string{"b", "a", "c"}
	src, err := NewSymbolTable(names)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromParts(src.Blob(), src.Offsets(), src.SortedIDs())
	if err != nil {
		t.Fatalf("FromParts rejects its own encode: %v", err)
	}
	if id, ok := st.Lookup("a"); !ok || id != 1 {
		t.Fatalf("Lookup(a) = %d,%v", id, ok)
	}

	bad := []struct {
		name string
		blob []byte
		offs []uint32
		perm []int32
	}{
		{"no-offsets", []byte("abc"), nil, nil},
		{"perm-length", []byte("abc"), []uint32{0, 1, 2, 3}, []int32{0, 1}},
		{"offsets-span", []byte("abc"), []uint32{0, 1, 2}, []int32{0, 1}},
		{"offsets-decrease", []byte("abc"), []uint32{0, 2, 1, 3}, []int32{0, 1, 2}},
		{"perm-out-of-range", []byte("abc"), []uint32{0, 1, 2, 3}, []int32{0, 1, 7}},
		{"perm-dup", []byte("abc"), []uint32{0, 1, 2, 3}, []int32{0, 1, 1}},
		{"perm-unsorted", []byte("abc"), []uint32{0, 1, 2, 3}, []int32{2, 1, 0}},
	}
	for _, tc := range bad {
		if _, err := FromParts(tc.blob, tc.offs, tc.perm); err == nil {
			t.Errorf("FromParts accepted corrupt input %s", tc.name)
		}
	}
}

// TestEmbeddingLookupMatchesMap cross-checks the binary-search path
// against a reference map over a randomized vocabulary.
func TestEmbeddingLookupMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, dim := 300, 4
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%c%d:%d", 'a'+rng.Intn(26), rng.Intn(1000), i)
	}
	m := matrix.NewDense(n, dim)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	e := NewEmbedding(names, m)
	ref := make(map[string]int, n)
	for i, nm := range names {
		ref[nm] = i
	}
	for nm, want := range ref {
		v, ok := e.Vector(nm)
		if !ok {
			t.Fatalf("Vector(%q) missing", nm)
		}
		for j, x := range v {
			if x != m.At(want, j) {
				t.Fatalf("Vector(%q)[%d] = %v, want %v", nm, j, x, m.At(want, j))
			}
		}
	}
	if e.Has("definitely-not-present") {
		t.Error("Has() found a missing name")
	}
}
