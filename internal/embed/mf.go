package embed

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// MFOptions configures the matrix-factorization embedding method
// (paper Section 4.2.1).
type MFOptions struct {
	// Dim is the embedding size. Default 100.
	Dim int
	// Tau is the negative-sampling ratio in the proximity matrix
	// M_ij = log(P_ij) - log(tau * P_D,j). Default 1.
	Tau float64
	// Window is the random-walk window the proximity matrix matches:
	// M factorizes the PMI of (P + P^2 + ... + P^Window)/Window, the
	// NetMF/NetSMF construction (paper reference [35]). Window 1 is
	// plain 1-hop PMI. Default 2: one value-node hop each way, which
	// links rows sharing a token directly while keeping the matrix
	// sharp; together with the spectral propagation step this covers
	// the multi-hop paths join information travels over. Larger
	// windows trade regression accuracy for classification accuracy
	// and are exposed for ablation.
	Window int
	// TopK prunes each row of the sparse matrix powers to its largest
	// entries so hub value nodes cannot densify the proximity matrix.
	// Default 128.
	TopK int
	// PMICap clips proximity entries from above. Rare pairs (for
	// example a row and its unique key token) carry the highest PMI
	// and can dominate the truncated factorization with
	// class-irrelevant micro-cliques; a cap redirects the dimension
	// budget toward shared structure. 0 disables capping (the
	// default; capping is exposed for ablation).
	PMICap float64
	// Oversample and PowerIters tune the randomized SVD. Defaults 8
	// and 2.
	Oversample int
	PowerIters int
	// NoSpectralPropagation disables the ProNE-style Chebyshev
	// enhancement after factorization. The enhancement is on by
	// default because the paper's evaluation uses "randomized SVD
	// methods with spectral propagation techniques enhancement from
	// [41]".
	NoSpectralPropagation bool
	// ChebOrder, ChebMu, ChebS tune the propagation filter. Defaults
	// 10, 0.2, 0.5.
	ChebOrder int
	ChebMu    float64
	ChebS     float64
	// Seed seeds the Gaussian test matrix.
	Seed int64
	// Workers caps parallelism across the proximity-matrix
	// accumulation, the randomized-SVD matmuls and the spectral
	// propagation; 0 means GOMAXPROCS. The factorization is
	// bit-identical at every worker count: all parallel kernels
	// partition output rows, and reductions keep the sequential
	// accumulation order.
	Workers int
}

func (o MFOptions) withDefaults() MFOptions {
	if o.Dim <= 0 {
		o.Dim = 100
	}
	if o.Tau <= 0 {
		o.Tau = 1
	}
	if o.Window <= 0 {
		o.Window = 2
	}
	if o.PMICap < 0 {
		o.PMICap = 0
	}
	if o.TopK <= 0 {
		o.TopK = 128
	}
	if o.Oversample <= 0 {
		o.Oversample = 8
	}
	if o.PowerIters < 0 {
		o.PowerIters = 0
	} else if o.PowerIters == 0 {
		o.PowerIters = 2
	}
	if o.ChebOrder <= 0 {
		o.ChebOrder = 10
	}
	if o.ChebMu == 0 {
		o.ChebMu = 0.2
	}
	if o.ChebS == 0 {
		o.ChebS = 0.5
	}
	return o
}

// MF embeds the graph by factorizing a shifted-PMI proximity matrix
// with the Halko randomized SVD; node embeddings are U·Σ^½ (paper
// Section 4.2.1).
//
// The proximity follows the paper's definition M_ij = log(P_ij) −
// log(τ·P_D,j) generalized to a length-Window walk context (the NetMF
// equivalence of SGNS): P is the weighted transition matrix, the first
// Window powers are averaged with per-row pruning to stay sparse, and
// entries are clipped at zero. Non-edges of the windowed graph remain
// structural zeros, which is what keeps randomized sparse factorization
// applicable — the payoff of the value-node construction.
func MF(g *graph.Graph, opts MFOptions) *Embedding {
	opts = opts.withDefaults()
	n := g.NumNodes()
	names := nodeNames(g)
	if n == 0 {
		return NewEmbedding(names, matrix.NewDense(0, opts.Dim))
	}

	// Weighted degrees and transition matrix P = D^{-1} A. The degree
	// and volume sums stay sequential (O(E), and splitting them would
	// change the floating-point accumulation order); the normalized
	// rows of P assemble in parallel.
	nodeSum := make([]float64, n)
	vol := 0.0
	for i := 0; i < n; i++ {
		for k := range g.Neighbors(int32(i)) {
			w := g.EdgeWeight(int32(i), k)
			nodeSum[i] += w
			vol += w
		}
	}
	if vol == 0 {
		return NewEmbedding(names, matrix.NewDense(n, opts.Dim))
	}
	p := transitionCSR(g, nodeSum, opts.Workers)

	var adj *matrix.CSR
	if !opts.NoSpectralPropagation {
		adj = g.AdjacencyCSR()
	}
	e := factorizeWindow(p, adj, nodeSum, vol, opts.Window, opts.Dim, opts)
	return NewEmbedding(names, e)
}

// transitionCSR assembles the row-normalized transition matrix
// P = D^{-1} A with the rows partitioned across workers. Each row's
// entries are sorted by column (and duplicate neighbor entries summed
// in adjacency order), matching the canonical NewCSR layout.
func transitionCSR(g *graph.Graph, nodeSum []float64, workers int) *matrix.CSR {
	n := g.NumNodes()
	type entry struct {
		col int32
		val float64
	}
	return matrix.ShardedCSR(n, n, workers, func(lo, hi int, frag *matrix.CSR) {
		row := make([]entry, 0, 16)
		for i := lo; i < hi; i++ {
			if nodeSum[i] != 0 {
				inv := 1 / nodeSum[i]
				row = row[:0]
				for k, j := range g.Neighbors(int32(i)) {
					w := g.EdgeWeight(int32(i), k)
					if w > 0 {
						row = append(row, entry{col: j, val: w * inv})
					}
				}
				sort.SliceStable(row, func(x, y int) bool { return row[x].col < row[y].col })
				for _, e := range row {
					if m := len(frag.Vals); m > int(frag.RowPtr[i-lo]) && frag.ColIdx[m-1] == e.col {
						frag.Vals[m-1] += e.val
						continue
					}
					frag.ColIdx = append(frag.ColIdx, e.col)
					frag.Vals = append(frag.Vals, e.val)
				}
			}
			frag.RowPtr[i-lo+1] = int32(len(frag.Vals))
		}
	})
}

// factorizeWindow builds the windowed shifted-PMI proximity from the
// transition matrix p, factorizes it to dim dimensions, and applies
// spectral propagation when adj is non-nil.
func factorizeWindow(p, adj *matrix.CSR, nodeSum []float64, vol float64, window, dim int, opts MFOptions) *matrix.Dense {
	// S = (P + P^2 + ... + P^window) / window with per-row pruning.
	s := p
	acc := p
	for t := 2; t <= window; t++ {
		acc = matrix.MulCSRPruneWorkers(acc, p, opts.TopK, 1e-6, opts.Workers)
		s = matrix.AddCSRWorkers(s, acc, opts.Workers)
	}
	if window > 1 {
		s = matrix.ScaleCSR(s, 1/float64(window))
	}

	// Shifted positive PMI: M_ij = max(log(vol·S_ij / (τ·d_j)), 0).
	m := prunePMI(s, nodeSum, vol, opts.Tau, opts.PMICap, opts.Workers)

	rng := rand.New(rand.NewSource(opts.Seed))
	res := matrix.RandomizedSVDWorkers(m, dim, opts.Oversample, opts.PowerIters, rng, opts.Workers)
	e := matrix.EmbeddingFromSVD(res)
	e = padColumns(e, dim)
	if adj != nil {
		e = matrix.ChebyshevPropagateWorkers(adj, e, opts.ChebOrder, opts.ChebMu, opts.ChebS, opts.Workers)
	}
	return e
}

// prunePMI maps windowed-transition probabilities to clipped shifted
// PMI, with the rows partitioned across workers.
func prunePMI(s *matrix.CSR, degree []float64, vol, tau, cap float64, workers int) *matrix.CSR {
	return matrix.ShardedCSR(s.NumRows, s.NumCols, workers, func(lo, hi int, frag *matrix.CSR) {
		for i := lo; i < hi; i++ {
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				j := s.ColIdx[p]
				if int(j) == i {
					// Drop self-proximity: bipartite walks return to
					// their origin at every even step, and the
					// resulting huge diagonal PMI would make the
					// truncated SVD spend its dimension budget
					// encoding node identity instead of structure.
					continue
				}
				dj := degree[j]
				if dj <= 0 || s.Vals[p] <= 0 {
					continue
				}
				v := math.Log(vol * s.Vals[p] / (tau * dj))
				if cap > 0 && v > cap {
					v = cap
				}
				if v > 0 {
					frag.ColIdx = append(frag.ColIdx, j)
					frag.Vals = append(frag.Vals, v)
				}
			}
			frag.RowPtr[i-lo+1] = int32(len(frag.Vals))
		}
	})
}

// padColumns widens e with zero columns up to dim (the randomized SVD
// may return fewer columns than requested on tiny graphs).
func padColumns(e *matrix.Dense, dim int) *matrix.Dense {
	if e.Cols >= dim {
		return e
	}
	out := matrix.NewDense(e.Rows, dim)
	for i := 0; i < e.Rows; i++ {
		copy(out.Row(i), e.Row(i))
	}
	return out
}

func nodeNames(g *graph.Graph) []string {
	names := make([]string, g.NumNodes())
	for i := range names {
		names[i] = g.NodeName(int32(i))
	}
	return names
}
