package embed

import "repro/internal/graph"

// Method names an embedding construction algorithm.
type Method string

const (
	// MethodMF is randomized-SVD matrix factorization: faster, but the
	// matrix representation costs more memory.
	MethodMF Method = "mf"
	// MethodRW is random walks + SGNS: slower, adjacency-list
	// representation, lower memory footprint.
	MethodRW Method = "rw"
	// MethodGloVe is the GloVe plug-in: walk co-occurrence counts
	// factorized by weighted least squares. Never auto-selected; it
	// exists to exercise the plug-and-play method interface.
	MethodGloVe Method = "glove"
	// MethodAuto lets Leva pick per the paper's rule: MF when the
	// estimated memory fits the budget, RW otherwise.
	MethodAuto Method = "auto"
)

// Select resolves MethodAuto against a memory budget in bytes by
// estimating the MF working set from the graph size (paper Section 4.2:
// "Leva analyzes the graph and uses the number of nodes to estimate the
// memory consumption"). A non-positive budget means unlimited, which
// selects MF.
func Select(m Method, g *graph.Graph, dim int, memBudgetBytes int64) Method {
	if m != MethodAuto {
		return m
	}
	if memBudgetBytes <= 0 {
		return MethodMF
	}
	if g.EstimateMFMemoryBytes(dim) <= memBudgetBytes {
		return MethodMF
	}
	return MethodRW
}
