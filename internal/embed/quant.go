package embed

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Scalar int8 quantization of the vector arena.
//
// Each row is quantized independently and symmetrically: the row's
// scale is maxabs/127 and the zero point is always 0, so a stored byte
// q decodes to q*scale and negation/dot-product structure is preserved
// exactly (q(-x) == -q(x)). Per-row scales keep the representable
// range tight for embeddings whose row norms vary by orders of
// magnitude — one global scale would crush small rows to zero.
//
// The round-trip error bound is the quantization step: for every
// element x of row i, |x - Dequantize(x)| <= Scales[i]/2 (rounding to
// nearest), which QuantizeRoundTripBound exposes and the tests assert.

// QuantizedMatrix is a row-major int8 matrix with one float64 scale
// per row: element (i, j) represents Scales[i] * Data[i*Cols+j]. It is
// immutable by convention once built — serving code shares it across
// goroutines without locking.
type QuantizedMatrix struct {
	Rows, Cols int
	// Data holds the quantized elements, row-major, len Rows*Cols.
	Data []int8
	// Scales holds the per-row dequantization factor, len Rows. A zero
	// scale marks an all-zero row.
	Scales []float64
}

// Quantize builds the symmetric int8 form of m. Non-finite inputs are
// clamped: NaN quantizes to 0, ±Inf to ±127 with the scale taken over
// the finite elements only (an all-±Inf row gets scale 0 and saturated
// bytes decode to 0 — embeddings never contain such rows, but the
// quantizer must not poison a whole arena over one bad element).
func Quantize(m *matrix.Dense) *QuantizedMatrix {
	q := &QuantizedMatrix{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Data:   make([]int8, m.Rows*m.Cols),
		Scales: make([]float64, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		q.Scales[i] = QuantizeRow(row, q.Data[i*m.Cols:(i+1)*m.Cols])
	}
	return q
}

// QuantizeRow quantizes one vector into dst (len(dst) == len(v)) and
// returns the scale. Shared by the arena quantizer and the per-query
// path in internal/ann.
func QuantizeRow(v []float64, dst []int8) float64 {
	var maxAbs float64
	for _, x := range v {
		a := math.Abs(x)
		if a > maxAbs && !math.IsInf(a, 1) {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for j := range dst {
			dst[j] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for j, x := range v {
		switch {
		case math.IsNaN(x):
			dst[j] = 0
		case x*inv > 127:
			dst[j] = 127
		case x*inv < -127:
			dst[j] = -127
		default:
			dst[j] = int8(math.RoundToEven(x * inv))
		}
	}
	return scale
}

// QuantizedFromParts validates an externally decoded quantized arena
// (the bundle quant section) and wraps it without copying. data and
// scales are retained.
func QuantizedFromParts(rows, cols int, data []int8, scales []float64) (*QuantizedMatrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("embed: quantized matrix has negative shape %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("embed: quantized matrix %dx%d needs %d bytes, got %d", rows, cols, rows*cols, len(data))
	}
	if len(scales) != rows {
		return nil, fmt.Errorf("embed: quantized matrix has %d scales for %d rows", len(scales), rows)
	}
	for i, s := range scales {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("embed: quantized matrix row %d has invalid scale %v", i, s)
		}
	}
	return &QuantizedMatrix{Rows: rows, Cols: cols, Data: data, Scales: scales}, nil
}

// Row returns a view (not a copy) of row i.
func (q *QuantizedMatrix) Row(i int) []int8 {
	return q.Data[i*q.Cols : (i+1)*q.Cols]
}

// DequantizeRow decodes row i into dst, which must have length Cols.
func (q *QuantizedMatrix) DequantizeRow(i int, dst []float64) {
	s := q.Scales[i]
	row := q.Row(i)
	for j, b := range row {
		dst[j] = float64(b) * s
	}
}

// Dequantize decodes the whole matrix into a fresh Dense.
func (q *QuantizedMatrix) Dequantize() *matrix.Dense {
	m := matrix.NewDense(q.Rows, q.Cols)
	for i := 0; i < q.Rows; i++ {
		q.DequantizeRow(i, m.Row(i))
	}
	return m
}

// Bytes is the in-memory footprint of the quantized representation:
// one byte per element plus one float64 scale per row. Compare with
// 8*Rows*Cols for the float arena it replaces.
func (q *QuantizedMatrix) Bytes() int64 {
	return int64(len(q.Data)) + 8*int64(len(q.Scales))
}

// RoundTripBound returns the worst-case absolute reconstruction error
// of row i: half the quantization step.
func (q *QuantizedMatrix) RoundTripBound(i int) float64 {
	return q.Scales[i] / 2
}
