// Package embed turns Leva's relational graph into vector embeddings.
// It provides the two first-party methods the paper ships — randomized
// SVD matrix factorization (MF) and random-walk + SGNS (RW) — behind a
// plug-and-play interface, the memory-based auto-selection rule between
// them, and faithful reconstructions of the comparator methods from
// Section 6.3 (Word2Vec-direct, Node2Vec, EmbDI, DeepER).
package embed

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/matrix"
)

// Embedding maps node names to dense vectors. Row nodes are keyed
// "table:rowIdx"; value nodes are keyed by their token.
//
// Internally the names live in an interned SymbolTable (one byte blob
// plus offsets, binary-searched on lookup) and the vectors in one
// contiguous row-major arena — the exact layout the version-4 bundle
// format stores, so a loaded bundle's embedding is a set of views over
// the file bytes rather than a decoded copy. The public API (Vector /
// Names / Has / Matrix) is unchanged from the map-backed days.
type Embedding struct {
	// Dim is the vector dimensionality.
	Dim     int
	syms    *SymbolTable
	vectors *matrix.Dense // Len() x Dim arena

	namesOnce sync.Once
	names     []string // lazily materialized Names() slice
}

// NewEmbedding wraps a dense matrix whose i-th row is the vector for
// names[i]. The names are interned (copied once into the symbol
// table); the matrix is retained as-is.
func NewEmbedding(names []string, vectors *matrix.Dense) *Embedding {
	if len(names) != vectors.Rows {
		panic(fmt.Sprintf("embed: %d names for %d vectors", len(names), vectors.Rows))
	}
	st, err := NewSymbolTable(names)
	if err != nil {
		panic(err.Error()) // only reachable past a 4 GiB token blob
	}
	e := &Embedding{Dim: vectors.Cols, syms: st, vectors: vectors}
	e.names = append([]string(nil), names...)
	return e
}

// NewEmbeddingTable wraps an already-built symbol table and vector
// arena without copying either — the zero-copy path of the bundle
// reader. arena row i is the vector for table symbol i.
func NewEmbeddingTable(st *SymbolTable, arena *matrix.Dense) (*Embedding, error) {
	if st.Len() != arena.Rows {
		return nil, fmt.Errorf("embed: %d symbols for %d vectors", st.Len(), arena.Rows)
	}
	return &Embedding{Dim: arena.Cols, syms: st, vectors: arena}, nil
}

// Len returns the number of embedded entities.
func (e *Embedding) Len() int { return e.syms.Len() }

// Symbols returns the interned name table (shared, immutable).
func (e *Embedding) Symbols() *SymbolTable { return e.syms }

// Names returns the embedded entity names in index order (shared). For
// an embedding loaded zero-copy from a bundle the slice is materialized
// on first call (string views over the interned blob, no byte copies)
// and cached.
func (e *Embedding) Names() []string {
	e.namesOnce.Do(func() {
		if e.names == nil {
			e.names = e.syms.AppendNames(nil)
		}
	})
	return e.names
}

// Vector returns the vector for name and whether it exists. The slice
// is shared with the embedding; callers must not mutate it.
func (e *Embedding) Vector(name string) ([]float64, bool) {
	i, ok := e.syms.Lookup(name)
	if !ok {
		return nil, false
	}
	return e.vectors.Row(i), true
}

// Has reports whether name is embedded.
func (e *Embedding) Has(name string) bool {
	return e.syms.Has(name)
}

// Matrix returns the underlying vectors (shared).
func (e *Embedding) Matrix() *matrix.Dense { return e.vectors }

// RowKey renders the canonical embedding key for a table row.
func RowKey(table string, row int) string {
	return fmt.Sprintf("%s:%d", table, row)
}

// ReduceDim projects the embedding to k dimensions with PCA fitted on
// its own vectors, the storage-saving path of paper Section 6.5.2.
func (e *Embedding) ReduceDim(k int) *Embedding {
	if k >= e.Dim {
		return e
	}
	pca := matrix.FitPCA(e.vectors, k)
	return NewEmbedding(e.Names(), pca.Transform(e.vectors))
}

// Subset returns a new embedding restricted to the given names; names
// missing from the embedding are skipped.
func (e *Embedding) Subset(names []string) *Embedding {
	kept := make([]string, 0, len(names))
	rows := make([][]float64, 0, len(names))
	for _, n := range names {
		if v, ok := e.Vector(n); ok {
			kept = append(kept, n)
			rows = append(rows, v)
		}
	}
	return NewEmbedding(kept, matrix.FromRows(rows))
}

// SortedNames returns the embedded names in lexical order (for
// deterministic iteration in tests and experiments).
func (e *Embedding) SortedNames() []string {
	out := append([]string(nil), e.Names()...)
	sort.Strings(out)
	return out
}

// MeanVector averages the vectors of the given names, skipping missing
// ones. It reports how many names were found; a zero count yields a
// zero vector.
func (e *Embedding) MeanVector(names []string) ([]float64, int) {
	out := make([]float64, e.Dim)
	found := 0
	for _, n := range names {
		v, ok := e.Vector(n)
		if !ok {
			continue
		}
		found++
		for i, x := range v {
			out[i] += x
		}
	}
	if found > 0 {
		inv := 1 / float64(found)
		for i := range out {
			out[i] *= inv
		}
	}
	return out, found
}
