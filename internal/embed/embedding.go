// Package embed turns Leva's relational graph into vector embeddings.
// It provides the two first-party methods the paper ships — randomized
// SVD matrix factorization (MF) and random-walk + SGNS (RW) — behind a
// plug-and-play interface, the memory-based auto-selection rule between
// them, and faithful reconstructions of the comparator methods from
// Section 6.3 (Word2Vec-direct, Node2Vec, EmbDI, DeepER).
package embed

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// Embedding maps node names to dense vectors. Row nodes are keyed
// "table:rowIdx"; value nodes are keyed by their token.
type Embedding struct {
	// Dim is the vector dimensionality.
	Dim     int
	names   []string
	index   map[string]int
	vectors *matrix.Dense // len(names) x Dim
}

// NewEmbedding wraps a dense matrix whose i-th row is the vector for
// names[i].
func NewEmbedding(names []string, vectors *matrix.Dense) *Embedding {
	if len(names) != vectors.Rows {
		panic(fmt.Sprintf("embed: %d names for %d vectors", len(names), vectors.Rows))
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return &Embedding{Dim: vectors.Cols, names: names, index: idx, vectors: vectors}
}

// Len returns the number of embedded entities.
func (e *Embedding) Len() int { return len(e.names) }

// Names returns the embedded entity names in index order (shared).
func (e *Embedding) Names() []string { return e.names }

// Vector returns the vector for name and whether it exists. The slice
// is shared with the embedding; callers must not mutate it.
func (e *Embedding) Vector(name string) ([]float64, bool) {
	i, ok := e.index[name]
	if !ok {
		return nil, false
	}
	return e.vectors.Row(i), true
}

// Has reports whether name is embedded.
func (e *Embedding) Has(name string) bool {
	_, ok := e.index[name]
	return ok
}

// Matrix returns the underlying vectors (shared).
func (e *Embedding) Matrix() *matrix.Dense { return e.vectors }

// RowKey renders the canonical embedding key for a table row.
func RowKey(table string, row int) string {
	return fmt.Sprintf("%s:%d", table, row)
}

// ReduceDim projects the embedding to k dimensions with PCA fitted on
// its own vectors, the storage-saving path of paper Section 6.5.2.
func (e *Embedding) ReduceDim(k int) *Embedding {
	if k >= e.Dim {
		return e
	}
	pca := matrix.FitPCA(e.vectors, k)
	return NewEmbedding(e.names, pca.Transform(e.vectors))
}

// Subset returns a new embedding restricted to the given names; names
// missing from the embedding are skipped.
func (e *Embedding) Subset(names []string) *Embedding {
	kept := make([]string, 0, len(names))
	rows := make([][]float64, 0, len(names))
	for _, n := range names {
		if v, ok := e.Vector(n); ok {
			kept = append(kept, n)
			rows = append(rows, v)
		}
	}
	return NewEmbedding(kept, matrix.FromRows(rows))
}

// SortedNames returns the embedded names in lexical order (for
// deterministic iteration in tests and experiments).
func (e *Embedding) SortedNames() []string {
	out := append([]string(nil), e.names...)
	sort.Strings(out)
	return out
}

// MeanVector averages the vectors of the given names, skipping missing
// ones. It reports how many names were found; a zero count yields a
// zero vector.
func (e *Embedding) MeanVector(names []string) ([]float64, int) {
	out := make([]float64, e.Dim)
	found := 0
	for _, n := range names {
		v, ok := e.Vector(n)
		if !ok {
			continue
		}
		found++
		for i, x := range v {
			out[i] += x
		}
	}
	if found > 0 {
		inv := 1 / float64(found)
		for i := range out {
			out[i] *= inv
		}
	}
	return out, found
}
