package embed

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestTSVRoundTrip(t *testing.T) {
	e := NewEmbedding([]string{"tok", "t:0", "a b"}, matrix.FromRows([][]float64{
		{1.5, -2}, {0, 3.25}, {1e-9, 42},
	}))
	var buf bytes.Buffer
	if err := e.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || back.Dim != 2 {
		t.Fatalf("round trip shape %d/%d", back.Len(), back.Dim)
	}
	for _, name := range e.Names() {
		want, _ := e.Vector(name)
		got, ok := back.Vector(name)
		if !ok {
			t.Fatalf("name %q lost", name)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
}

func TestWriteTSVRejectsSeparatorNames(t *testing.T) {
	e := NewEmbedding([]string{"bad\tname"}, matrix.FromRows([][]float64{{1}}))
	if err := e.WriteTSV(&bytes.Buffer{}); err == nil {
		t.Error("tab in name accepted")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"",                // empty
		"noseparator\n",   // no tab
		"a\t1 2\nb\t1\n",  // ragged dims
		"a\tnotanumber\n", // parse failure
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}
