package embed

import (
	"fmt"
	"sort"
	"unsafe"
)

// SymbolTable is an interned, binary-searchable collection of entity
// names. All token bytes live in one contiguous blob, sliced by an
// offsets array; a separate permutation orders the tokens
// lexicographically for lookup. Nothing is a per-token heap object, so
// a table decoded from a version-4 bundle is three slice headers over
// the file's own bytes — no string allocations, no map construction.
//
// The table preserves insertion order: symbol i is the i-th name the
// table was built with, and vector arenas are laid out in the same
// order. Insertion order is load-bearing everywhere an id is (ANN
// node ids, TSV line order, fingerprints), which is why the blob is
// not itself sorted; the permutation carries the sortedness instead.
//
// A SymbolTable is immutable after construction and safe for
// concurrent readers. Callers must never mutate the slices handed to
// FromParts or returned by Blob/Offsets/SortedIDs: At and Names return
// strings aliasing the blob's bytes.
type SymbolTable struct {
	blob []byte   // concatenated token bytes, insertion order
	offs []uint32 // len n+1; token i = blob[offs[i]:offs[i+1]]
	perm []int32  // lexicographic order: At(perm[0]) <= At(perm[1]) <= ...
}

// NewSymbolTable interns names (in the given order) into a fresh table.
// Token bytes are copied once into one allocation.
func NewSymbolTable(names []string) (*SymbolTable, error) {
	total := 0
	for _, n := range names {
		total += len(n)
	}
	if total > maxSymbolBlob {
		return nil, fmt.Errorf("embed: symbol table blob would be %d bytes; the format caps it at %d", total, maxSymbolBlob)
	}
	st := &SymbolTable{
		blob: make([]byte, 0, total),
		offs: make([]uint32, 1, len(names)+1),
		perm: make([]int32, len(names)),
	}
	for i, n := range names {
		st.blob = append(st.blob, n...)
		st.offs = append(st.offs, uint32(len(st.blob)))
		st.perm[i] = int32(i)
	}
	// Ties (duplicate names) break by ascending id so the permutation —
	// and therefore the encoded bundle — is fully input-determined.
	sort.Slice(st.perm, func(a, b int) bool {
		sa, sb := st.At(int(st.perm[a])), st.At(int(st.perm[b]))
		if sa != sb {
			return sa < sb
		}
		return st.perm[a] < st.perm[b]
	})
	return st, nil
}

// maxSymbolBlob bounds the token blob so offsets always fit in uint32.
const maxSymbolBlob = 1<<32 - 1

// FromParts wraps pre-built table components without copying — the
// zero-decode path of the version-4 bundle reader. The components are
// validated structurally (monotonic offsets spanning exactly the blob,
// perm a permutation in non-decreasing token order) so a corrupt or
// hostile file cannot produce a table whose methods panic or
// mis-search. The slices are retained; callers must not mutate them.
func FromParts(blob []byte, offs []uint32, perm []int32) (*SymbolTable, error) {
	if len(offs) == 0 {
		return nil, fmt.Errorf("embed: symbol table has no offsets")
	}
	n := len(offs) - 1
	if len(perm) != n {
		return nil, fmt.Errorf("embed: symbol table has %d offsets for %d permutation entries", n, len(perm))
	}
	if offs[0] != 0 || int64(offs[n]) != int64(len(blob)) {
		return nil, fmt.Errorf("embed: symbol offsets span [%d, %d), blob has %d bytes", offs[0], offs[n], len(blob))
	}
	for i := 0; i < n; i++ {
		if offs[i] > offs[i+1] {
			return nil, fmt.Errorf("embed: symbol offsets decrease at %d (%d > %d)", i, offs[i], offs[i+1])
		}
	}
	st := &SymbolTable{blob: blob, offs: offs, perm: perm}
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("embed: symbol permutation entry %d is %d (not a permutation of 0..%d)", i, p, n-1)
		}
		seen[p] = true
		if i > 0 && st.At(int(perm[i-1])) > st.At(int(p)) {
			return nil, fmt.Errorf("embed: symbol permutation is not in sorted token order at %d", i)
		}
	}
	return st, nil
}

// Len returns the number of interned symbols.
func (st *SymbolTable) Len() int { return len(st.offs) - 1 }

// At returns symbol i (insertion order) as a string aliasing the blob —
// zero copy, zero allocation. The result is valid as long as the table
// is; callers must treat it as immutable (it always is for strings).
func (st *SymbolTable) At(i int) string {
	lo, hi := st.offs[i], st.offs[i+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&st.blob[lo], int(hi-lo))
}

// Lookup returns the insertion-order id of name via binary search over
// the sorted permutation. It performs no allocations. When the table
// holds duplicate names (legal but degenerate), one of their ids is
// returned deterministically (the first in sorted-permutation order).
func (st *SymbolTable) Lookup(name string) (int, bool) {
	lo, hi := 0, len(st.perm)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.At(int(st.perm[mid])) < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.perm) && st.At(int(st.perm[lo])) == name {
		return int(st.perm[lo]), true
	}
	return 0, false
}

// Has reports whether name is interned.
func (st *SymbolTable) Has(name string) bool {
	_, ok := st.Lookup(name)
	return ok
}

// AppendNames appends every symbol in insertion order. The appended
// strings alias the blob (no byte copies).
func (st *SymbolTable) AppendNames(dst []string) []string {
	n := st.Len()
	if dst == nil {
		dst = make([]string, 0, n)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, st.At(i))
	}
	return dst
}

// Blob returns the interned token bytes (shared; do not mutate).
func (st *SymbolTable) Blob() []byte { return st.blob }

// Offsets returns the token boundary offsets (shared; do not mutate).
func (st *SymbolTable) Offsets() []uint32 { return st.offs }

// SortedIDs returns the lexicographic permutation (shared; do not
// mutate): At(SortedIDs()[0]) is the smallest token.
func (st *SymbolTable) SortedIDs() []int32 { return st.perm }
