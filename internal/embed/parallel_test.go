package embed

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/textify"
)

// mfFixtureGraph builds a weighted refinement graph big enough that
// every parallel MF kernel (transition build, windowed powers, PMI,
// SVD, propagation) sees multiple shards.
func mfFixtureGraph() *graph.Graph {
	t := &textify.TokenizedTable{Table: "t", Attrs: []string{"id", "cat", "grp", "f"}}
	for i := 0; i < 300; i++ {
		t.Cells = append(t.Cells, [][]string{
			{fmt.Sprintf("id%d", i)},
			{fmt.Sprintf("cat%d", i%13)},
			{fmt.Sprintf("grp%d", i%5)},
			{"pad"},
		})
	}
	g, _ := graph.Build([]*textify.TokenizedTable{t}, graph.Options{})
	return g
}

// TestMFWorkersBitIdentical holds MF to its documented contract: the
// embedding is bit-identical at every worker count.
func TestMFWorkersBitIdentical(t *testing.T) {
	g := mfFixtureGraph()
	ref := MF(g, MFOptions{Dim: 24, Seed: 5, Workers: 1})
	for _, w := range []int{2, 3, 8} {
		got := MF(g, MFOptions{Dim: 24, Seed: 5, Workers: w})
		if got.Len() != ref.Len() || got.Dim != ref.Dim {
			t.Fatalf("workers=%d: shape %dx%d vs %dx%d", w, got.Len(), got.Dim, ref.Len(), ref.Dim)
		}
		for _, name := range ref.Names() {
			a, _ := ref.Vector(name)
			b, ok := got.Vector(name)
			if !ok {
				t.Fatalf("workers=%d: %q missing", w, name)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("workers=%d: %q[%d] = %v vs %v (must be bit-identical)", w, name, j, b[j], a[j])
				}
			}
		}
	}
}

// TestMFWorkersBitIdenticalNoPropagation covers the plain-SVD branch.
func TestMFWorkersBitIdenticalNoPropagation(t *testing.T) {
	g := mfFixtureGraph()
	ref := MF(g, MFOptions{Dim: 16, Seed: 7, NoSpectralPropagation: true, Workers: 1})
	got := MF(g, MFOptions{Dim: 16, Seed: 7, NoSpectralPropagation: true, Workers: 4})
	for _, name := range ref.Names() {
		a, _ := ref.Vector(name)
		b, _ := got.Vector(name)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%q[%d] differs across worker counts", name, j)
			}
		}
	}
}
