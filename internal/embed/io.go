package embed

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/matrix"
)

// WriteTSV serializes the embedding as one line per entity: the entity
// name, a tab, then the space-separated vector. The format round-trips
// through ReadTSV and is trivially consumable from any language.
func (e *Embedding) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range e.Names() {
		if strings.ContainsAny(name, "\t\n") {
			return fmt.Errorf("embed: name %q contains a separator", name)
		}
		bw.WriteString(name)
		bw.WriteByte('\t')
		vec, _ := e.Vector(name)
		for i, v := range vec {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadTSV parses an embedding written by WriteTSV. All rows must share
// one dimension.
func ReadTSV(r io.Reader) (*Embedding, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var names []string
	var rows [][]float64
	dim := -1
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if text == "" {
			continue
		}
		tab := strings.IndexByte(text, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("embed: line %d: no tab separator", line)
		}
		name := text[:tab]
		fields := strings.Fields(text[tab+1:])
		if dim == -1 {
			dim = len(fields)
		} else if len(fields) != dim {
			return nil, fmt.Errorf("embed: line %d: %d dims, want %d", line, len(fields), dim)
		}
		vec := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("embed: line %d: %w", line, err)
			}
			vec[i] = v
		}
		names = append(names, name)
		rows = append(rows, vec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("embed: read: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("embed: empty embedding file")
	}
	return NewEmbedding(names, matrix.FromRows(rows)), nil
}
