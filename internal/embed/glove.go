package embed

import (
	"repro/internal/glove"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/walk"
)

// GloVeOptions configures the GloVe plug-in method: walk generation
// feeding co-occurrence counting, then weighted least squares.
type GloVeOptions struct {
	// Dim is the embedding size. Default 100.
	Dim int
	// WalkLength/WalksPerNode drive the co-occurrence corpus.
	WalkLength   int
	WalksPerNode int
	// Window is the co-occurrence window. Default 5.
	Window int
	// Epochs of AdaGrad. Default 15.
	Epochs int
	// Seed seeds walk generation and factor initialization.
	Seed int64
	// Workers caps walk parallelism.
	Workers int
}

// GloVe embeds the graph with the GloVe objective over walk
// co-occurrence statistics. It is the third plug-in of Leva's
// embedding-construction stage, exercising the same plug-and-play
// interface as MF and RW (paper Section 4.2: "accepts different
// embedding methods ... so it can readily adopt newer approaches").
func GloVe(g *graph.Graph, opts GloVeOptions) *Embedding {
	if opts.Dim <= 0 {
		opts.Dim = 100
	}
	corpus := walk.Generate(g, walk.Options{
		WalkLength:   opts.WalkLength,
		WalksPerNode: opts.WalksPerNode,
		Seed:         opts.Seed,
		Workers:      opts.Workers,
	})
	pairs := glove.CountCooccurrence(corpus.Walks, opts.Window)
	model := glove.Train(pairs, g.NumNodes(), glove.Options{
		Dim: opts.Dim, Epochs: opts.Epochs, Seed: opts.Seed,
	})
	vecs := matrix.NewDense(g.NumNodes(), opts.Dim)
	for i := 0; i < g.NumNodes(); i++ {
		copy(vecs.Row(i), model.Vector(int32(i)))
	}
	return NewEmbedding(nodeNames(g), vecs)
}
