package embed

import (
	"math"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/textify"
	"repro/internal/walk"
	"repro/internal/word2vec"
)

// This file reconstructs the comparator embedding methods of paper
// Section 6.3. Each keeps the SGNS trainer fixed and varies only what
// Leva's contribution varies: how the relational data is turned into a
// training corpus or graph.

// BaselineOptions configures a comparator method.
type BaselineOptions struct {
	// Dim is the embedding size. Default 100.
	Dim int
	// Epochs, Window, Negative tune SGNS (zero = defaults).
	Epochs   int
	Window   int
	Negative int
	// WalkLength/WalksPerNode tune graph-walk comparators.
	WalkLength   int
	WalksPerNode int
	// P, Q are the Node2Vec biases. Defaults 1 and 0.5.
	P, Q float64
	// Seed seeds everything.
	Seed int64
	// Workers caps parallelism.
	Workers int
}

func (o BaselineOptions) withDefaults() BaselineOptions {
	if o.Dim <= 0 {
		o.Dim = 100
	}
	if o.P == 0 {
		o.P = 1
	}
	if o.Q == 0 {
		o.Q = 0.5
	}
	return o
}

// vocab interns string tokens to dense int ids.
type vocab struct {
	ids    map[string]int32
	tokens []string
}

func newVocab() *vocab { return &vocab{ids: make(map[string]int32)} }

func (v *vocab) id(tok string) int32 {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	id := int32(len(v.tokens))
	v.ids[tok] = id
	v.tokens = append(v.tokens, tok)
	return id
}

// rowCorpus converts textified tables into one sentence per row, in row
// order — the "directly textify relational datasets row by row" recipe
// of the Word2Vec baseline.
func rowCorpus(tables []*textify.TokenizedTable, v *vocab) ([][]int32, [][]int32) {
	var corpus [][]int32
	var rowSeqs [][]int32 // parallel to corpus: same content, kept for composition
	for _, t := range tables {
		for _, row := range t.Cells {
			var seq []int32
			for _, toks := range row {
				for _, tok := range toks {
					seq = append(seq, v.id(tok))
				}
			}
			corpus = append(corpus, seq)
			rowSeqs = append(rowSeqs, seq)
		}
	}
	return corpus, rowSeqs
}

// Word2VecDirect trains SGNS on the row-order textified corpus with no
// graph at all. Row entries are mean token vectors.
func Word2VecDirect(tables []*textify.TokenizedTable, opts BaselineOptions) *Embedding {
	opts = opts.withDefaults()
	v := newVocab()
	corpus, _ := rowCorpus(tables, v)
	model := word2vec.Train(corpus, len(v.tokens), word2vec.Options{
		Dim: opts.Dim, Epochs: opts.Epochs, Window: opts.Window,
		Negative: opts.Negative, Seed: opts.Seed, Workers: opts.Workers,
	})
	return composeTokenRowEmbedding(tables, v, model, nil, opts.Dim)
}

// DeepERStyle trains word embeddings on the same corpus but composes
// tuple vectors with inverse-document-frequency weighting, the
// distributed tuple representation DeepER builds (reference [18]): rare,
// discriminative tokens dominate the tuple vector instead of frequent
// filler values.
func DeepERStyle(tables []*textify.TokenizedTable, opts BaselineOptions) *Embedding {
	opts = opts.withDefaults()
	v := newVocab()
	corpus, _ := rowCorpus(tables, v)
	model := word2vec.Train(corpus, len(v.tokens), word2vec.Options{
		Dim: opts.Dim, Epochs: opts.Epochs, Window: opts.Window,
		Negative: opts.Negative, Seed: opts.Seed, Workers: opts.Workers,
	})
	// Document frequency over rows.
	df := make([]int, len(v.tokens))
	totalRows := 0
	for _, t := range tables {
		totalRows += len(t.Cells)
		for _, row := range t.Cells {
			seen := map[int32]bool{}
			for _, toks := range row {
				for _, tok := range toks {
					id := v.ids[tok]
					if !seen[id] {
						seen[id] = true
						df[id]++
					}
				}
			}
		}
	}
	idf := make([]float64, len(v.tokens))
	for i, d := range df {
		idf[i] = math.Log(float64(totalRows+1) / float64(d+1))
	}
	return composeTokenRowEmbedding(tables, v, model, idf, opts.Dim)
}

// composeTokenRowEmbedding builds an Embedding holding every token
// vector plus one composed vector per row ((idf-)weighted mean).
func composeTokenRowEmbedding(tables []*textify.TokenizedTable, v *vocab, model *word2vec.Model, idf []float64, dim int) *Embedding {
	var names []string
	var rows [][]float64
	for id, tok := range v.tokens {
		names = append(names, tok)
		vec := make([]float64, dim)
		copy(vec, model.Vector(int32(id)))
		rows = append(rows, vec)
	}
	for _, t := range tables {
		for i, row := range t.Cells {
			vec := make([]float64, dim)
			totalW := 0.0
			for _, toks := range row {
				for _, tok := range toks {
					id := v.ids[tok]
					w := 1.0
					if idf != nil {
						w = idf[id]
					}
					mv := model.Vector(id)
					for k := range vec {
						vec[k] += w * mv[k]
					}
					totalW += w
				}
			}
			if totalW > 0 {
				for k := range vec {
					vec[k] /= totalW
				}
			}
			names = append(names, RowKey(t.Table, i))
			rows = append(rows, vec)
		}
	}
	return NewEmbedding(names, matrix.FromRows(rows))
}

// Node2Vec builds the value-node graph without refinement or weighting
// and runs second-order biased walks — "a graph directly based on
// syntactic relationships without additional refinement and weighting"
// (Section 6.3).
func Node2Vec(tables []*textify.TokenizedTable, opts BaselineOptions) *Embedding {
	opts = opts.withDefaults()
	g, _ := graph.Build(tables, graph.Options{DisableRefinement: true, Unweighted: true})
	corpus := walk.Generate(g, walk.Options{
		WalkLength:   opts.WalkLength,
		WalksPerNode: opts.WalksPerNode,
		P:            opts.P,
		Q:            opts.Q,
		Seed:         opts.Seed,
		Workers:      opts.Workers,
	})
	return trainOnWalks(g, corpus, opts)
}

// EmbDIStyle builds the tripartite EmbDI graph — each cell (value) node
// linked to both its row node and its column node (reference [11]) — and
// runs uniform first-order walks over it.
func EmbDIStyle(tables []*textify.TokenizedTable, opts BaselineOptions) *Embedding {
	opts = opts.withDefaults()
	g := BuildEmbDIGraph(tables)
	corpus := walk.Generate(g, walk.Options{
		WalkLength:   opts.WalkLength,
		WalksPerNode: opts.WalksPerNode,
		Seed:         opts.Seed,
		Workers:      opts.Workers,
	})
	return trainOnWalks(g, corpus, opts)
}

// BuildEmbDIGraph constructs the EmbDI-style tripartite graph: value
// nodes connect to the rows containing them and to the columns they
// appear under, with no refinement, voting, or weighting.
func BuildEmbDIGraph(tables []*textify.TokenizedTable) *graph.Graph {
	g := graph.New(false)
	type edge struct{ a, b int32 }
	seen := map[edge]bool{}
	addOnce := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		e := edge{a, b}
		if seen[e] {
			return
		}
		seen[e] = true
		g.AddEdge(a, b, 1)
	}
	for _, t := range tables {
		colNodes := make([]int32, len(t.Attrs))
		for j, attr := range t.Attrs {
			colNodes[j] = g.AddColumnNode(t.Table + "." + attr)
		}
		for i, row := range t.Cells {
			rowNode := g.AddRowNode(t.Table, i)
			for j, toks := range row {
				for _, tok := range toks {
					valNode := g.AddValueNode(tok)
					addOnce(valNode, rowNode)
					addOnce(valNode, colNodes[j])
				}
			}
		}
	}
	return g
}

func trainOnWalks(g *graph.Graph, corpus *walk.Corpus, opts BaselineOptions) *Embedding {
	model := word2vec.Train(corpus.Walks, g.NumNodes(), word2vec.Options{
		Dim: opts.Dim, Epochs: opts.Epochs, Window: opts.Window,
		Negative: opts.Negative, Seed: opts.Seed, Workers: opts.Workers,
		Subsample: -1, // walk corpora carry structure in frequency
	})
	vecs := matrix.NewDense(g.NumNodes(), opts.Dim)
	for i := 0; i < g.NumNodes(); i++ {
		copy(vecs.Row(i), model.Vector(int32(i)))
	}
	return NewEmbedding(nodeNames(g), vecs)
}
