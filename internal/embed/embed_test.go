package embed

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/textify"
)

// twoClusterTables builds two row clusters bridged by distinct shared
// tokens, so any sensible embedding separates them.
func twoClusterTables() []*textify.TokenizedTable {
	t := &textify.TokenizedTable{Table: "t", Attrs: []string{"a", "b", "c", "d"}}
	for i := 0; i < 10; i++ {
		tok := "left"
		if i >= 5 {
			tok = "right"
		}
		t.Cells = append(t.Cells, [][]string{
			{tok}, {tok + "2"}, {"f1"}, {"f2"},
		})
	}
	return []*textify.TokenizedTable{t}
}

// clusterScore returns mean intra-cluster minus inter-cluster cosine
// similarity of the 10 row nodes.
func clusterScore(e *Embedding) float64 {
	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for i := 0; i < 10; i++ {
		vi, _ := e.Vector(RowKey("t", i))
		for j := i + 1; j < 10; j++ {
			vj, _ := e.Vector(RowKey("t", j))
			s := matrix.CosineSimilarity(vi, vj)
			if (i < 5) == (j < 5) {
				intra += s
				nIntra++
			} else {
				inter += s
				nInter++
			}
		}
	}
	return intra/float64(nIntra) - inter/float64(nInter)
}

func TestMFSeparatesClusters(t *testing.T) {
	g, _ := graph.Build(twoClusterTables(), graph.Options{})
	e := MF(g, MFOptions{Dim: 8, Seed: 1})
	if e.Dim != 8 {
		t.Fatalf("dim = %d", e.Dim)
	}
	if s := clusterScore(e); s < 0.2 {
		t.Errorf("MF cluster separation = %v", s)
	}
}

func TestRWSeparatesClusters(t *testing.T) {
	g, _ := graph.Build(twoClusterTables(), graph.Options{})
	e := RW(g, RWOptions{Dim: 8, WalkLength: 20, WalksPerNode: 8, Epochs: 3, Seed: 1, Workers: 1})
	if s := clusterScore(e); s < 0.2 {
		t.Errorf("RW cluster separation = %v", s)
	}
}

func TestMFTinyGraphPadsToRequestedDim(t *testing.T) {
	// A 3-node graph cannot support 32 singular vectors; the embedding
	// must still come back at the requested width (zero-padded).
	tbl := &textify.TokenizedTable{Table: "t", Attrs: []string{"x"},
		Cells: [][][]string{{{"tok"}}, {{"tok"}}}}
	g, _ := graph.Build([]*textify.TokenizedTable{tbl}, graph.Options{})
	e := MF(g, MFOptions{Dim: 32, Seed: 1})
	if e.Dim != 32 {
		t.Fatalf("dim = %d, want 32", e.Dim)
	}
	v, ok := e.Vector(RowKey("t", 0))
	if !ok || len(v) != 32 {
		t.Fatalf("vector len = %d", len(v))
	}
}

func TestMFEmptyGraph(t *testing.T) {
	g := graph.New(true)
	e := MF(g, MFOptions{Dim: 4})
	if e.Len() != 0 {
		t.Error("empty graph produced vectors")
	}
}

func TestEmbeddingAPI(t *testing.T) {
	vecs := matrix.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	e := NewEmbedding([]string{"a", "b", "c"}, vecs)
	if e.Len() != 3 || e.Dim != 2 {
		t.Fatalf("len/dim = %d/%d", e.Len(), e.Dim)
	}
	if v, ok := e.Vector("b"); !ok || v[1] != 1 {
		t.Errorf("Vector(b) = %v, %v", v, ok)
	}
	if _, ok := e.Vector("zzz"); ok {
		t.Error("missing name found")
	}
	if !e.Has("a") || e.Has("zzz") {
		t.Error("Has wrong")
	}
	mean, n := e.MeanVector([]string{"a", "b", "zzz"})
	if n != 2 || mean[0] != 0.5 || mean[1] != 0.5 {
		t.Errorf("MeanVector = %v (%d found)", mean, n)
	}
	sub := e.Subset([]string{"c", "zzz"})
	if sub.Len() != 1 || !sub.Has("c") {
		t.Error("Subset wrong")
	}
	sorted := e.SortedNames()
	if sorted[0] != "a" || sorted[2] != "c" {
		t.Errorf("SortedNames = %v", sorted)
	}
}

func TestReduceDim(t *testing.T) {
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{float64(i), float64(2 * i), 0.001 * float64(i%3)}
	}
	names := make([]string, 30)
	for i := range names {
		names[i] = RowKey("t", i)
	}
	e := NewEmbedding(names, matrix.FromRows(rows))
	r := e.ReduceDim(1)
	if r.Dim != 1 || r.Len() != 30 {
		t.Fatalf("reduced dim/len = %d/%d", r.Dim, r.Len())
	}
	// Reducing to >= dim is a no-op.
	if e.ReduceDim(10) != e {
		t.Error("ReduceDim above dim did not return original")
	}
}

func TestSelect(t *testing.T) {
	g, _ := graph.Build(twoClusterTables(), graph.Options{})
	if m := Select(MethodMF, g, 8, 1); m != MethodMF {
		t.Error("explicit method overridden")
	}
	if m := Select(MethodAuto, g, 8, 0); m != MethodMF {
		t.Error("unlimited budget did not pick MF")
	}
	if m := Select(MethodAuto, g, 8, 1); m != MethodRW {
		t.Error("tiny budget did not fall back to RW")
	}
	big := g.EstimateMFMemoryBytes(8) + 1
	if m := Select(MethodAuto, g, 8, big); m != MethodMF {
		t.Error("sufficient budget did not pick MF")
	}
}

func TestBaselineEmbeddersProduceRowVectors(t *testing.T) {
	tables := twoClusterTables()
	opts := BaselineOptions{Dim: 8, Seed: 2, WalkLength: 15, WalksPerNode: 4, Epochs: 2, Workers: 1}
	for name, e := range map[string]*Embedding{
		"word2vec": Word2VecDirect(tables, opts),
		"node2vec": Node2Vec(tables, opts),
		"embdi":    EmbDIStyle(tables, opts),
		"deeper":   DeepERStyle(tables, opts),
	} {
		for i := 0; i < 10; i++ {
			if _, ok := e.Vector(RowKey("t", i)); !ok {
				t.Errorf("%s: no vector for row %d", name, i)
			}
		}
		if _, ok := e.Vector("left"); !ok {
			t.Errorf("%s: no vector for token", name)
		}
		if e.Dim != 8 {
			t.Errorf("%s: dim = %d", name, e.Dim)
		}
	}
}

func TestEmbDIGraphHasColumnNodes(t *testing.T) {
	g := BuildEmbDIGraph(twoClusterTables())
	if got := g.CountKind(graph.ColumnNode); got != 4 {
		t.Errorf("column nodes = %d, want 4", got)
	}
	if g.CountKind(graph.RowNode) != 10 {
		t.Errorf("row nodes = %d", g.CountKind(graph.RowNode))
	}
	// Value nodes connect to both rows and columns: token "left"
	// should have degree 6 (5 rows + 1 column).
	left, ok := g.ValueNodeID("left")
	if !ok {
		t.Fatal("no left node")
	}
	if g.Degree(left) != 6 {
		t.Errorf("deg(left) = %d, want 6", g.Degree(left))
	}
}

func TestMFWindowedVariant(t *testing.T) {
	g, _ := graph.Build(twoClusterTables(), graph.Options{})
	e := MF(g, MFOptions{Dim: 8, Window: 5, Seed: 3})
	if s := clusterScore(e); s < 0.2 {
		t.Errorf("windowed MF separation = %v", s)
	}
	e2 := MF(g, MFOptions{Dim: 8, Window: 1, Seed: 3, NoSpectralPropagation: true})
	if s := clusterScore(e2); s < 0.05 {
		t.Errorf("plain 1-hop MF separation = %v", s)
	}
}
