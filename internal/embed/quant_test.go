package embed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestQuantizeRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := matrix.NewDense(50, 32)
	for i := range m.Data {
		m.Data[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(5)-2))
	}
	q := Quantize(m)
	if q.Rows != m.Rows || q.Cols != m.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", q.Rows, q.Cols, m.Rows, m.Cols)
	}
	dq := q.Dequantize()
	for i := 0; i < m.Rows; i++ {
		bound := q.RoundTripBound(i)
		for j := 0; j < m.Cols; j++ {
			err := math.Abs(m.At(i, j) - dq.At(i, j))
			// RoundToEven can land exactly on the half step; allow a
			// hair of float slack on top of scale/2.
			if err > bound*(1+1e-12) {
				t.Fatalf("row %d col %d: |%v - %v| = %v exceeds bound %v",
					i, j, m.At(i, j), dq.At(i, j), err, bound)
			}
		}
	}
}

func TestQuantizePerRowScale(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, -1, 0.5},
		{1000, -500, 250},
		{0, 0, 0},
	})
	q := Quantize(m)
	if got, want := q.Scales[0], 1.0/127; got != want {
		t.Fatalf("row 0 scale = %v, want %v", got, want)
	}
	if got, want := q.Scales[1], 1000.0/127; got != want {
		t.Fatalf("row 1 scale = %v, want %v", got, want)
	}
	if q.Scales[2] != 0 {
		t.Fatalf("zero row scale = %v, want 0", q.Scales[2])
	}
	for _, b := range q.Row(2) {
		if b != 0 {
			t.Fatalf("zero row quantized to %v", q.Row(2))
		}
	}
	// The max-magnitude element hits ±127 exactly.
	if q.Row(0)[0] != 127 || q.Row(0)[1] != -127 {
		t.Fatalf("row 0 = %v, want extremes at ±127", q.Row(0))
	}
	dst := make([]float64, 3)
	q.DequantizeRow(1, dst)
	if dst[0] != 1000 {
		t.Fatalf("dequantized max element %v, want exact 1000", dst[0])
	}
}

func TestQuantizeNonFinite(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{math.NaN(), 2, math.Inf(1), -3, math.Inf(-1)},
	})
	q := Quantize(m)
	// Scale comes from the finite elements (maxabs 3); NaN → 0, ±Inf
	// saturate.
	if got, want := q.Scales[0], 3.0/127; got != want {
		t.Fatalf("scale = %v, want %v", got, want)
	}
	row := q.Row(0)
	if row[0] != 0 || row[2] != 127 || row[4] != -127 {
		t.Fatalf("non-finite row quantized to %v", row)
	}
}

func TestQuantizedFromParts(t *testing.T) {
	if _, err := QuantizedFromParts(2, 3, make([]int8, 6), []float64{1, 2}); err != nil {
		t.Fatalf("valid parts rejected: %v", err)
	}
	bad := []struct {
		name   string
		rows   int
		cols   int
		data   []int8
		scales []float64
	}{
		{"short data", 2, 3, make([]int8, 5), []float64{1, 2}},
		{"short scales", 2, 3, make([]int8, 6), []float64{1}},
		{"negative scale", 2, 3, make([]int8, 6), []float64{1, -2}},
		{"nan scale", 2, 3, make([]int8, 6), []float64{1, math.NaN()}},
		{"inf scale", 2, 3, make([]int8, 6), []float64{1, math.Inf(1)}},
		{"negative rows", -1, 3, nil, nil},
	}
	for _, tc := range bad {
		if _, err := QuantizedFromParts(tc.rows, tc.cols, tc.data, tc.scales); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestQuantizedBytes(t *testing.T) {
	q := Quantize(matrix.NewDense(10, 100))
	if got, want := q.Bytes(), int64(10*100+8*10); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
	// The headline claim: >= 4x smaller than the float arena at any
	// realistic dimension (here 100: 7.4x).
	float := int64(8 * 10 * 100)
	if float < 4*q.Bytes() {
		t.Fatalf("quantized arena %d bytes vs float %d: less than 4x reduction", q.Bytes(), float)
	}
}
