package embed

import (
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/walk"
	"repro/internal/word2vec"
)

// RWOptions configures the random-walk embedding method (paper
// Section 4.2.2): walk generation parameters plus the SGNS trainer.
type RWOptions struct {
	// Dim is the embedding size. Default 100.
	Dim int
	// Walk parameters; zero values take the walk package defaults
	// (length 80, 10 walks per node).
	WalkLength   int
	WalksPerNode int
	// RestartIterations enables balanced walks: that many of the
	// WalksPerNode iterations restart from the worst-represented
	// nodes (the paper's 6+4 split). 0 disables balancing.
	RestartIterations int
	// VisitLimit caps how often a value node is emitted. 0 disables.
	VisitLimit int
	// Window, Negative, Epochs tune SGNS; zero values take the
	// word2vec defaults.
	Window   int
	Negative int
	Epochs   int
	// Seed seeds walks and SGD.
	Seed int64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o RWOptions) withDefaults() RWOptions {
	if o.Dim <= 0 {
		o.Dim = 100
	}
	return o
}

// RW embeds the graph by generating (optionally balanced, weighted)
// random walks and training skip-gram negative sampling over the walk
// corpus. Weighted graphs sample transitions through per-node alias
// tables; unweighted graphs sample uniformly, trading quality for the
// smaller memory footprint the paper discusses in Section 4.3.
func RW(g *graph.Graph, opts RWOptions) *Embedding {
	opts = opts.withDefaults()
	names := nodeNames(g)
	corpus := walk.Generate(g, walk.Options{
		WalkLength:        opts.WalkLength,
		WalksPerNode:      opts.WalksPerNode,
		RestartIterations: opts.RestartIterations,
		VisitLimit:        opts.VisitLimit,
		Seed:              opts.Seed,
		Workers:           opts.Workers,
	})
	model := word2vec.Train(corpus.Walks, g.NumNodes(), word2vec.Options{
		Dim:      opts.Dim,
		Window:   opts.Window,
		Negative: opts.Negative,
		Epochs:   opts.Epochs,
		// Frequent-token subsampling is a text-corpus heuristic; on
		// walk corpora every node is "frequent" and subsampling
		// destroys the structure the walks encode, so it is disabled
		// (as DeepWalk/node2vec do).
		Subsample: -1,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
	})
	vecs := matrix.NewDense(g.NumNodes(), opts.Dim)
	for i := 0; i < g.NumNodes(); i++ {
		copy(vecs.Row(i), model.Vector(int32(i)))
	}
	return NewEmbedding(names, vecs)
}
