package embed

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV asserts the embedding parser never panics on corrupted or
// truncated input, and that anything it accepts survives a write/read
// round trip with identical shape — the property the bundle loader
// leans on when a legacy bundle has no manifest screening its bytes.
func FuzzReadTSV(f *testing.F) {
	f.Add("a\t1 2 3\nb\t4 5 6\n")
	f.Add("a\t1 2 3\nb\t4 5\n")       // ragged dims
	f.Add("name only no tab\n")       // missing separator
	f.Add("x\tnot-a-number\n")        // bad float
	f.Add("x\t1\n\nx2\t2\n")          // blank lines, duplicate-ish names
	f.Add("x\tNaN Inf -Inf\n")        // non-finite floats round-trip
	f.Add("")                         // empty file
	f.Add("x\t1e308 -1e308 1e-308\n") // extreme magnitudes
	f.Add("\t1 2\n")                  // empty name
	f.Fuzz(func(t *testing.T, input string) {
		e, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if e.Len() == 0 || e.Dim < 0 {
			t.Fatalf("accepted embedding has shape %d x %d", e.Len(), e.Dim)
		}
		var buf bytes.Buffer
		if err := e.WriteTSV(&buf); err != nil {
			// Accepted names containing separators cannot re-serialize;
			// anything else must round-trip.
			if strings.Contains(err.Error(), "separator") {
				return
			}
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != e.Len() || back.Dim != e.Dim {
			t.Fatalf("round trip shape %dx%d != %dx%d", back.Len(), back.Dim, e.Len(), e.Dim)
		}
	})
}
