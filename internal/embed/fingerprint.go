package embed

import "repro/internal/fingerprint"

// Fingerprint domains. Bump a version suffix whenever the matching
// options struct gains a field that changes the produced embedding.
const (
	mfFPDomain    = "leva/embed-mf/v1"
	rwFPDomain    = "leva/embed-rw/v1"
	gloveFPDomain = "leva/embed-glove/v1"
)

// Fingerprint returns a content hash of the embedding itself — the
// dimensionality and every (name, vector) pair, by exact float bits.
// Downstream artifacts derived from the vectors (the ANN index) key
// their cache entries on it: two embeddings hash equal iff every
// derived artifact is guaranteed identical. Cost is one pass over the
// matrix, negligible next to any build that produced it.
func (e *Embedding) Fingerprint() string {
	h := fingerprint.New("leva/embedding-content/v1")
	h.Int(int64(e.Dim))
	names := e.Names()
	h.Int(int64(len(names)))
	for i, n := range names {
		h.String(n)
		for _, v := range e.vectors.Row(i) {
			h.Float(v)
		}
	}
	return h.Sum()
}

// Fingerprint returns a canonical content hash of the MF options after
// defaulting. Workers is excluded: the factorization is bit-identical
// at every worker count, so parallelism cannot change the artifact.
func (o MFOptions) Fingerprint() string {
	o = o.withDefaults()
	o.Workers = 0
	return fingerprint.JSON(mfFPDomain, o)
}

// Fingerprint returns a canonical content hash of the RW options after
// defaulting. Unlike MF, Workers is included: SGNS training is Hogwild
// SGD, reproducible only at Workers=1, so embeddings trained at
// different worker counts are distinct artifacts and must not share a
// cache entry.
func (o RWOptions) Fingerprint() string {
	return fingerprint.JSON(rwFPDomain, o.withDefaults())
}

// Fingerprint returns a canonical content hash of the GloVe options.
// Workers is included for the same reason as RWOptions.Fingerprint.
func (o GloVeOptions) Fingerprint() string {
	if o.Dim <= 0 {
		o.Dim = 100
	}
	return fingerprint.JSON(gloveFPDomain, o)
}
