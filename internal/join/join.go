// Package join materializes joined training tables from ground-truth
// key/foreign-key metadata. It implements the Full Table baseline: the
// carefully-supervised, schema-aware data assembly Leva is compared
// against (paper Section 2.2). Only baselines use this package — Leva's
// own pipeline never sees key information.
//
// Join cardinalities are handled the way the paper says analysts must:
// N:1 joins attach the referenced row's attributes directly, while 1:N
// joins aggregate the referencing rows (mean and count for numeric
// attributes, mode for strings) so the result keeps the base table's row
// distribution.
package join

import (
	"fmt"

	"repro/internal/dataset"
)

// Options bounds the recursive expansion.
type Options struct {
	// MaxDepth limits how many FK hops from the base table are
	// materialized. Default 3.
	MaxDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	return o
}

// FullTable assembles the Full Table for baseName: the base table
// augmented with every table reachable over ground-truth foreign keys,
// with 1:N sides aggregated. The returned table has the base table's
// rows; augmented columns are prefixed with the join path.
func FullTable(db *dataset.Database, baseName string, opts Options) (*dataset.Table, error) {
	opts = opts.withDefaults()
	base := db.Table(baseName)
	if base == nil {
		return nil, fmt.Errorf("join: no table %q", baseName)
	}
	visited := map[string]bool{baseName: true}
	return augment(db, base, visited, opts.MaxDepth), nil
}

// augment recursively expands t with N:1 lookups and 1:N aggregates.
// visited guards against cycles; each recursion level copies it so
// sibling branches can both reach a shared dimension table.
func augment(db *dataset.Database, t *dataset.Table, visited map[string]bool, depth int) *dataset.Table {
	out := t.Clone()
	if depth <= 0 {
		return out
	}

	// N:1 — follow this table's own foreign keys.
	for _, fk := range t.ForeignKeys {
		ref := db.Table(fk.RefTable)
		if ref == nil || visited[fk.RefTable] {
			continue
		}
		sub := copyVisited(visited)
		sub[fk.RefTable] = true
		refAug := augment(db, ref, sub, depth-1)
		attachLookup(out, fk.Column, refAug, fk.RefColumn, fk.RefTable)
	}

	// 1:N — find other tables whose foreign keys reference this table.
	for _, other := range db.Tables {
		if visited[other.Name] {
			continue
		}
		for _, fk := range other.ForeignKeys {
			if fk.RefTable != t.Name {
				continue
			}
			sub := copyVisited(visited)
			sub[other.Name] = true
			otherAug := augment(db, other, sub, depth-1)
			attachAggregates(out, fk.RefColumn, otherAug, fk.Column, other.Name)
		}
	}
	return out
}

func copyVisited(v map[string]bool) map[string]bool {
	out := make(map[string]bool, len(v)+1)
	for k, b := range v {
		out[k] = b
	}
	return out
}

// attachLookup appends ref's columns to out via an N:1 equi-join
// out.onCol = ref.refCol. Missing matches contribute nulls.
func attachLookup(out *dataset.Table, onCol string, ref *dataset.Table, refCol, prefix string) {
	keyCol := ref.Column(refCol)
	if keyCol == nil || out.Column(onCol) == nil {
		return
	}
	index := make(map[dataset.Value]int, keyCol.Len())
	for i, v := range keyCol.Values {
		if _, dup := index[v]; !dup && !v.IsNull() {
			index[v] = i
		}
	}
	on := out.Column(onCol)
	for _, c := range ref.Columns {
		if c.Name == refCol {
			continue // the key itself duplicates the join column
		}
		vals := make([]dataset.Value, len(on.Values))
		for i, v := range on.Values {
			if j, ok := index[v]; ok {
				vals[i] = c.Values[j]
			} else {
				vals[i] = dataset.Null()
			}
		}
		out.Columns = append(out.Columns, &dataset.Column{
			Name:   prefix + "." + c.Name,
			Values: vals,
		})
	}
}

// attachAggregates appends aggregated columns from other via the 1:N
// join out.onCol = other.fkCol: per numeric column a mean, per string
// column the mode, plus one match-count column.
func attachAggregates(out *dataset.Table, onCol string, other *dataset.Table, fkCol, prefix string) {
	fk := other.Column(fkCol)
	if fk == nil || out.Column(onCol) == nil {
		return
	}
	groups := make(map[dataset.Value][]int)
	for i, v := range fk.Values {
		if !v.IsNull() {
			groups[v] = append(groups[v], i)
		}
	}
	on := out.Column(onCol)

	counts := make([]dataset.Value, len(on.Values))
	for i, v := range on.Values {
		counts[i] = dataset.Int(len(groups[v]))
	}
	out.Columns = append(out.Columns, &dataset.Column{
		Name: prefix + ".count", Values: counts,
	})

	for _, c := range other.Columns {
		if c.Name == fkCol {
			continue
		}
		if numericColumn(c) {
			vals := make([]dataset.Value, len(on.Values))
			for i, v := range on.Values {
				vals[i] = meanOf(c, groups[v])
			}
			out.Columns = append(out.Columns, &dataset.Column{
				Name: prefix + "." + c.Name + ".mean", Values: vals,
			})
		} else {
			vals := make([]dataset.Value, len(on.Values))
			for i, v := range on.Values {
				vals[i] = modeOf(c, groups[v])
			}
			out.Columns = append(out.Columns, &dataset.Column{
				Name: prefix + "." + c.Name + ".mode", Values: vals,
			})
		}
	}
}

func numericColumn(c *dataset.Column) bool {
	nonNull, numeric := 0, 0
	for _, v := range c.Values {
		if v.IsNull() {
			continue
		}
		nonNull++
		if _, ok := v.Float(); ok {
			numeric++
		}
	}
	return nonNull > 0 && numeric == nonNull
}

func meanOf(c *dataset.Column, idx []int) dataset.Value {
	s, n := 0.0, 0
	for _, i := range idx {
		if f, ok := c.Values[i].Float(); ok {
			s += f
			n++
		}
	}
	if n == 0 {
		return dataset.Null()
	}
	return dataset.Number(s / float64(n))
}

func modeOf(c *dataset.Column, idx []int) dataset.Value {
	counts := map[string]int{}
	best, bestN := "", 0
	for _, i := range idx {
		v := c.Values[i]
		if v.IsNull() {
			continue
		}
		s := v.Text()
		counts[s]++
		if counts[s] > bestN || (counts[s] == bestN && s < best) {
			best, bestN = s, counts[s]
		}
	}
	if bestN == 0 {
		return dataset.Null()
	}
	return dataset.String(best)
}

// LeftJoinOn materializes a generic left join base.baseCol =
// other.otherCol with 1:N aggregation, used by the discovery baseline to
// attach whatever joins it finds (right or wrong). Appended columns are
// prefixed with prefix.
func LeftJoinOn(base *dataset.Table, baseCol string, other *dataset.Table, otherCol, prefix string) *dataset.Table {
	out := base.Clone()
	attachAggregates(out, baseCol, other, otherCol, prefix)
	return out
}
