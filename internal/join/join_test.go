package join

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func TestFullTableStudent(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 50, Seed: 1})
	full, err := FullTable(spec.DB, "expenses", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.NumRows() != 50 {
		t.Fatalf("full table rows = %d, want base row count 50", full.NumRows())
	}
	// The 1:N join to order_info must contribute a count column and,
	// through order_info's N:1 join to price_info, a mean price.
	countCol := full.Column("order_info.count")
	if countCol == nil {
		t.Fatal("no order_info.count column; have " + joinNames(full))
	}
	meanPrice := full.Column("order_info.price_info.prices.mean")
	if meanPrice == nil {
		t.Fatal("no multi-hop mean price column; have " + joinNames(full))
	}
	// Ground truth: total = count * mean price (exactly, since the
	// target is the sum of ordered item prices).
	for i := 0; i < full.NumRows(); i++ {
		total := full.Cell(i, "total_expenses").Num
		n := countCol.Values[i].Num
		mp := meanPrice.Values[i].Num
		if math.Abs(total-n*mp) > 1e-6 {
			t.Fatalf("row %d: total %v != count %v * mean %v", i, total, n, mp)
		}
	}
}

func joinNames(t *dataset.Table) string {
	s := ""
	for _, c := range t.Columns {
		s += c.Name + " "
	}
	return s
}

func TestFullTableUnknownBase(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 5, Seed: 1})
	if _, err := FullTable(spec.DB, "nope", Options{}); err == nil {
		t.Error("unknown base table accepted")
	}
}

func TestAttachLookupNulls(t *testing.T) {
	base := dataset.NewTable("base", "ref")
	base.AppendRow(dataset.String("k1"))
	base.AppendRow(dataset.String("missing"))
	base.AddForeignKey("ref", "dim", "id")
	dim := dataset.NewTable("dim", "id", "attr")
	dim.SetKeys("id")
	dim.AppendRow(dataset.String("k1"), dataset.String("v1"))

	db := dataset.NewDatabase(base, dim)
	full, err := FullTable(db, "base", Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := full.Column("dim.attr")
	if col == nil {
		t.Fatal("lookup column missing")
	}
	if !col.Values[0].Equal(dataset.String("v1")) {
		t.Errorf("matched lookup = %v", col.Values[0])
	}
	if !col.Values[1].IsNull() {
		t.Errorf("unmatched lookup = %v, want null", col.Values[1])
	}
}

func TestAggregateModeAndMean(t *testing.T) {
	base := dataset.NewTable("base", "id")
	base.SetKeys("id")
	base.AppendRow(dataset.String("a"))
	logs := dataset.NewTable("logs", "ref", "num", "cat")
	logs.AddForeignKey("ref", "base", "id")
	logs.AppendRow(dataset.String("a"), dataset.Number(1), dataset.String("x"))
	logs.AppendRow(dataset.String("a"), dataset.Number(3), dataset.String("x"))
	logs.AppendRow(dataset.String("a"), dataset.Number(5), dataset.String("y"))

	full, err := FullTable(dataset.NewDatabase(base, logs), "base", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := full.Cell(0, "logs.count").Num; got != 3 {
		t.Errorf("count = %v", got)
	}
	if got := full.Cell(0, "logs.num.mean").Num; got != 3 {
		t.Errorf("mean = %v", got)
	}
	if got := full.Cell(0, "logs.cat.mode").Str; got != "x" {
		t.Errorf("mode = %v", got)
	}
}

func TestCycleTermination(t *testing.T) {
	// a -> b -> a foreign-key cycle must not loop forever.
	a := dataset.NewTable("a", "id", "bref")
	a.SetKeys("id")
	a.AddForeignKey("bref", "b", "id")
	a.AppendRow(dataset.String("a1"), dataset.String("b1"))
	b := dataset.NewTable("b", "id", "aref")
	b.SetKeys("id")
	b.AddForeignKey("aref", "a", "id")
	b.AppendRow(dataset.String("b1"), dataset.String("a1"))

	full, err := FullTable(dataset.NewDatabase(a, b), "a", Options{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if full.NumRows() != 1 {
		t.Errorf("rows = %d", full.NumRows())
	}
	if full.Column("b.aref") == nil {
		t.Error("N:1 expansion missing")
	}
}

func TestLeftJoinOn(t *testing.T) {
	base := dataset.NewTable("base", "k")
	base.AppendRow(dataset.String("x"))
	other := dataset.NewTable("other", "k2", "v")
	other.AppendRow(dataset.String("x"), dataset.Number(10))
	other.AppendRow(dataset.String("x"), dataset.Number(20))
	out := LeftJoinOn(base, "k", other, "k2", "oth")
	if got := out.Cell(0, "oth.v.mean").Num; got != 15 {
		t.Errorf("LeftJoinOn mean = %v", got)
	}
	if got := out.Cell(0, "oth.count").Num; got != 2 {
		t.Errorf("LeftJoinOn count = %v", got)
	}
}
