package graph

import (
	"fmt"
	"testing"

	"repro/internal/textify"
)

// parallelFixture generates a moderately sized multi-table database
// with shared keys, repeated categories, rare tokens and a dirty
// missing marker, so every refinement rule fires.
func parallelFixture() []*textify.TokenizedTable {
	users := &textify.TokenizedTable{Table: "users", Attrs: []string{"id", "city", "tier", "f"}}
	for i := 0; i < 120; i++ {
		users.Cells = append(users.Cells, [][]string{
			{fmt.Sprintf("u%d", i)},
			{fmt.Sprintf("city%d", i%7)},
			{fmt.Sprintf("tier%d", i%3)},
			{"?"},
		})
	}
	orders := &textify.TokenizedTable{Table: "orders", Attrs: []string{"oid", "user", "amount", "g"}}
	for i := 0; i < 250; i++ {
		orders.Cells = append(orders.Cells, [][]string{
			{fmt.Sprintf("o%d", i)}, // unique: rare tokens
			{fmt.Sprintf("u%d", i%120)},
			{fmt.Sprintf("amount#%d", i%11)},
			{"?"},
		})
	}
	return []*textify.TokenizedTable{users, orders}
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node count %d vs %d", a.NumNodes(), b.NumNodes())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge count %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumNodes(); i++ {
		id := int32(i)
		if a.Kind(id) != b.Kind(id) || a.NodeName(id) != b.NodeName(id) {
			t.Fatalf("node %d: %v %q vs %v %q", i, a.Kind(id), a.NodeName(id), b.Kind(id), b.NodeName(id))
		}
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			t.Fatalf("node %d: degree %d vs %d", i, len(na), len(nb))
		}
		for k := range na {
			if na[k] != nb[k] {
				t.Fatalf("node %d: neighbor %d = %d vs %d", i, k, na[k], nb[k])
			}
			if a.EdgeWeight(id, k) != b.EdgeWeight(id, k) {
				t.Fatalf("node %d: weight %d = %v vs %v", i, k, a.EdgeWeight(id, k), b.EdgeWeight(id, k))
			}
		}
	}
}

// TestBuildWorkersDeterministic verifies the construction contract:
// node ids, adjacency order, weights and Stats are identical at every
// worker count.
func TestBuildWorkersDeterministic(t *testing.T) {
	tables := parallelFixture()
	ref, refStats := Build(tables, Options{Workers: 1})
	if ref.NumNodes() == 0 || ref.NumEdges() == 0 {
		t.Fatal("fixture produced a trivial graph")
	}
	for _, w := range []int{2, 3, 8} {
		g, stats := Build(tables, Options{Workers: w})
		if stats != refStats {
			t.Fatalf("workers=%d: stats %+v vs %+v", w, stats, refStats)
		}
		graphsEqual(t, ref, g)
	}
}

// TestBuildWorkersDeterministicUnweighted covers the unweighted branch
// (no weight arrays, identical adjacency).
func TestBuildWorkersDeterministicUnweighted(t *testing.T) {
	tables := parallelFixture()
	ref, _ := Build(tables, Options{Unweighted: true, Workers: 1})
	g, _ := Build(tables, Options{Unweighted: true, Workers: 4})
	graphsEqual(t, ref, g)
}
