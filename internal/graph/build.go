package graph

import (
	"sort"

	"repro/internal/parallel"
	"repro/internal/textify"
)

// Options configures graph construction and refinement (Algorithm 1).
// The zero value means the paper defaults: theta_range 50%, theta_min
// 5%, weighted edges, refinement on.
type Options struct {
	// ThetaRange is the fraction of all database attributes above
	// which a token is declared missing data and removed. Default 0.5.
	ThetaRange float64
	// ThetaMin is the minimum fraction of a value node's votes an
	// attribute must hold for its edges to survive. Default 0.05.
	ThetaMin float64
	// Unweighted disables inverse-degree edge weighting.
	Unweighted bool
	// DisableRefinement skips the voting-based token and attribute
	// filtering (used by the Node2Vec comparator and ablations).
	DisableRefinement bool
	// MinShare is the minimum number of rows a token must appear in
	// for a value node to be created; the paper creates value nodes
	// "only when values are shared between multiple rows". Default 2.
	MinShare int
	// Workers caps the construction parallelism; 0 means GOMAXPROCS.
	// The voting and edge-filtering passes shard across rows; node ids,
	// edge order and Stats are identical at every worker count because
	// shard results merge in deterministic order and interning stays
	// sequential.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.ThetaRange <= 0 {
		o.ThetaRange = 0.5
	}
	if o.ThetaMin <= 0 {
		o.ThetaMin = 0.05
	}
	if o.MinShare <= 0 {
		o.MinShare = 2
	}
	return o
}

// attrVote tallies how many cells voted a token into an attribute.
type attrVote struct {
	attr  string
	votes int
}

// Stats summarizes what construction and refinement did, for logging and
// ablation experiments.
type Stats struct {
	RowNodes        int // row nodes created (one per input row)
	ValueNodes      int // value nodes that survived refinement
	Edges           int // row-value edges in the final graph
	TokensSeen      int // distinct tokens before refinement
	TokensMissing   int // removed by the theta_range missing-data rule
	TokensRare      int // dropped because shared by fewer than MinShare rows
	AttrsPruned     int // (token, attribute) groups cut by theta_min
	TotalAttributes int // distinct attributes across all input tables
}

// tokenInfo accumulates a token's attribute votes and the number of
// distinct rows mentioning it.
type tokenInfo struct {
	votes    []attrVote
	rowCount int
}

// vote adds n votes for attr to the token's tally.
func (info *tokenInfo) vote(attr string, n int) {
	for i := range info.votes {
		if info.votes[i].attr == attr {
			info.votes[i].votes += n
			return
		}
	}
	info.votes = append(info.votes, attrVote{attr: attr, votes: n})
}

// flatRow addresses one row of one tokenized table; Build shards work
// across the flattened row list so parallelism is row-granular even
// when one table dominates the database.
type flatRow struct {
	table *textify.TokenizedTable
	row   int
}

func flattenRows(tables []*textify.TokenizedTable) []flatRow {
	n := 0
	for _, t := range tables {
		n += len(t.Cells)
	}
	rows := make([]flatRow, 0, n)
	for _, t := range tables {
		for r := range t.Cells {
			rows = append(rows, flatRow{table: t, row: r})
		}
	}
	return rows
}

// Build runs Algorithm 1 over textified tables: construct row and value
// nodes, vote tokens into attributes, refine with theta_range and
// theta_min, and attach inverse-degree edge weights.
//
// The voting and edge-filtering passes run on opts.Workers goroutines;
// the graph produced (node ids, edge order, weights) and the Stats are
// identical at every worker count. Voting shards merge additively in
// shard order, rows never straddle a shard (so distinct-row counts stay
// exact), and node interning — the only order-sensitive step — remains
// sequential over the deterministic row order.
func Build(tables []*textify.TokenizedTable, opts Options) (*Graph, Stats) {
	opts = opts.withDefaults()
	var stats Stats

	rows := flattenRows(tables)

	// Pass 1: voting. For every token, count votes per qualified
	// attribute and remember which distinct rows mention it. Each shard
	// tallies its rows into a private map; the merge sums counts, which
	// is order-independent.
	shards := parallel.Shards(len(rows), opts.Workers)
	local := make([]map[string]*tokenInfo, len(shards))
	parallel.For(len(rows), opts.Workers, func(s int, r parallel.Range) {
		tally := make(map[string]*tokenInfo)
		for k := r.Lo; k < r.Hi; k++ {
			t, rowIdx := rows[k].table, rows[k].row
			seenInRow := map[string]bool{}
			for col, toks := range t.Cells[rowIdx] {
				attr := t.Table + "." + t.Attrs[col]
				for _, tok := range toks {
					info := tally[tok]
					if info == nil {
						info = &tokenInfo{}
						tally[tok] = info
					}
					info.vote(attr, 1)
					if !seenInRow[tok] {
						seenInRow[tok] = true
						info.rowCount++
					}
				}
			}
		}
		local[s] = tally
	})
	votes := make(map[string]*tokenInfo)
	for _, tally := range local {
		for tok, li := range tally {
			info := votes[tok]
			if info == nil {
				votes[tok] = li
				continue
			}
			info.rowCount += li.rowCount
			for _, v := range li.votes {
				info.vote(v.attr, v.votes)
			}
		}
	}
	totalAttrs := 0
	for _, t := range tables {
		totalAttrs += len(t.Attrs)
	}
	stats.TotalAttributes = totalAttrs
	stats.TokensSeen = len(votes)

	// Pass 2: refinement decisions.
	allowed := make(map[string]map[string]bool, len(votes)) // token -> allowed attrs (nil value = all)
	for tok, info := range votes {
		if info.rowCount < opts.MinShare {
			stats.TokensRare++
			continue
		}
		if opts.DisableRefinement {
			allowed[tok] = nil
			continue
		}
		// Missing-data rule: token spread over too many attributes.
		// A token seen under a single attribute can never be a
		// missing marker, whatever the attribute count — without this
		// guard a narrow schema (few attributes overall) would flag
		// every token.
		if len(info.votes) > 1 && float64(len(info.votes)) > opts.ThetaRange*float64(totalAttrs) {
			stats.TokensMissing++
			continue
		}
		total := 0
		for _, v := range info.votes {
			total += v.votes
		}
		keep := make(map[string]bool, len(info.votes))
		for _, v := range info.votes {
			if float64(v.votes) >= opts.ThetaMin*float64(total) {
				keep[v.attr] = true
			} else {
				stats.AttrsPruned++
			}
		}
		if len(keep) == 0 {
			continue
		}
		allowed[tok] = keep
	}

	// Pass 3: build nodes and edges. The per-row refinement filter
	// (which tokens survive, deduplicated in first-seen order) is
	// embarrassingly parallel over the read-only `allowed` map; the
	// result lands in a per-row slot. Value nodes are then interned
	// lazily — so tokens whose every attribute was pruned never
	// materialize — in a sequential sweep over the fixed row order,
	// which keeps node ids identical to the single-worker build.
	kept := make([][]string, len(rows))
	parallel.For(len(rows), opts.Workers, func(_ int, r parallel.Range) {
		for k := r.Lo; k < r.Hi; k++ {
			t, rowIdx := rows[k].table, rows[k].row
			var rowKept []string
			seen := map[string]bool{}
			for col, toks := range t.Cells[rowIdx] {
				attr := t.Table + "." + t.Attrs[col]
				for _, tok := range toks {
					keep, ok := allowed[tok]
					if !ok {
						continue
					}
					if keep != nil && !keep[attr] {
						continue
					}
					if seen[tok] {
						continue
					}
					seen[tok] = true
					rowKept = append(rowKept, tok)
				}
			}
			kept[k] = rowKept
		}
	})

	g := New(!opts.Unweighted)
	type edge struct{ row, val int32 }
	var edges []edge
	for k, fr := range rows {
		rowNode := g.AddRowNode(fr.table.Table, fr.row)
		for _, tok := range kept[k] {
			edges = append(edges, edge{row: rowNode, val: g.AddValueNode(tok)})
		}
	}

	// Edge weighting: weight inversely proportional to the value
	// node's degree, so high-fanout tokens (unlikely KFK evidence)
	// contribute less (paper Section 3.2).
	valDegree := make(map[int32]int)
	for _, e := range edges {
		valDegree[e.val]++
	}
	for _, e := range edges {
		w := 1.0
		if !opts.Unweighted {
			w = 1.0 / float64(valDegree[e.val])
		}
		g.AddEdge(e.row, e.val, w)
	}

	stats.RowNodes = g.CountKind(RowNode)
	stats.ValueNodes = g.CountKind(ValueNode)
	stats.Edges = g.NumEdges()
	return g, stats
}

// BuildPairwise constructs the naive O(M N^2) row-row graph from the
// similarity metric of Section 3.1, without value nodes. It exists for
// the ablation that quantifies the edge-count reduction value nodes buy;
// it is far too expensive for real datasets.
func BuildPairwise(tables []*textify.TokenizedTable) *Graph {
	g := New(false)
	byToken := make(map[string][]int32)
	for _, t := range tables {
		for rowIdx, row := range t.Cells {
			rowNode := g.AddRowNode(t.Table, rowIdx)
			seen := map[string]bool{}
			for _, toks := range row {
				for _, tok := range toks {
					if seen[tok] {
						continue
					}
					seen[tok] = true
					byToken[tok] = append(byToken[tok], rowNode)
				}
			}
		}
	}
	type pair struct{ a, b int32 }
	added := map[pair]bool{}
	// Deterministic iteration keeps tests stable.
	toks := make([]string, 0, len(byToken))
	for tok := range byToken {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		rows := byToken[tok]
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				a, b := rows[i], rows[j]
				if a > b {
					a, b = b, a
				}
				if a == b || added[pair{a, b}] {
					continue
				}
				added[pair{a, b}] = true
				g.AddEdge(a, b, 1)
			}
		}
	}
	return g
}
