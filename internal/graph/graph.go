// Package graph implements Leva's graph representation of relational
// data (paper Section 3): row nodes and value nodes, edge construction
// via shared tokens, the attribute-voting refinement that removes
// missing-data tokens and syntactic collisions, and inverse-degree edge
// weighting.
package graph

import (
	"fmt"

	"repro/internal/matrix"
)

// NodeKind distinguishes the node types of the relational graph.
type NodeKind uint8

const (
	// RowNode represents one row of one table.
	RowNode NodeKind = iota
	// ValueNode represents a shared token; it connects every row node
	// containing that token.
	ValueNode
	// ColumnNode represents an attribute. Leva's own construction does
	// not create column nodes; the EmbDI-style comparator graph does.
	ColumnNode
)

// String names the kind for logs and DOT dumps.
func (k NodeKind) String() string {
	switch k {
	case RowNode:
		return "row"
	case ValueNode:
		return "value"
	case ColumnNode:
		return "column"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// RowRef identifies the table row a RowNode stands for.
type RowRef struct {
	Table string // source table name
	Row   int32  // row index within that table
}

// Graph is an undirected weighted multigraph over row, value and
// (optionally) column nodes, stored as adjacency lists.
type Graph struct {
	kinds  []NodeKind
	tokens []string // token for value/column nodes, "" for row nodes
	rows   []RowRef // ref for row nodes, zero for others

	adj [][]int32
	w   [][]float64 // nil when the graph is unweighted

	rowIndex   map[RowRef]int32
	valueIndex map[string]int32

	// Weighted reports whether edge weights are attached.
	Weighted bool
}

// New returns an empty graph.
func New(weighted bool) *Graph {
	return &Graph{
		rowIndex:   make(map[RowRef]int32),
		valueIndex: make(map[string]int32),
		Weighted:   weighted,
	}
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int { return len(g.kinds) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n / 2
}

// Kind returns the node's kind.
func (g *Graph) Kind(n int32) NodeKind { return g.kinds[n] }

// Token returns the token of a value or column node ("" for row nodes).
func (g *Graph) Token(n int32) string { return g.tokens[n] }

// Ref returns the row reference of a row node.
func (g *Graph) Ref(n int32) RowRef { return g.rows[n] }

// Degree returns the number of incident edges.
func (g *Graph) Degree(n int32) int { return len(g.adj[n]) }

// Neighbors returns the adjacency list of n (shared, do not mutate).
func (g *Graph) Neighbors(n int32) []int32 { return g.adj[n] }

// Weights returns the edge weights parallel to Neighbors, or nil for an
// unweighted graph.
func (g *Graph) Weights(n int32) []float64 {
	if g.w == nil {
		return nil
	}
	return g.w[n]
}

// RowNodeID returns the node for (table, row) if present.
func (g *Graph) RowNodeID(table string, row int) (int32, bool) {
	id, ok := g.rowIndex[RowRef{Table: table, Row: int32(row)}]
	return id, ok
}

// ValueNodeID returns the node for a token if present.
func (g *Graph) ValueNodeID(token string) (int32, bool) {
	id, ok := g.valueIndex[token]
	return id, ok
}

// AddRowNode interns a row node and returns its id.
func (g *Graph) AddRowNode(table string, row int) int32 {
	ref := RowRef{Table: table, Row: int32(row)}
	if id, ok := g.rowIndex[ref]; ok {
		return id
	}
	id := g.addNode(RowNode, "", ref)
	g.rowIndex[ref] = id
	return id
}

// AddValueNode interns a value node for token and returns its id.
func (g *Graph) AddValueNode(token string) int32 {
	if id, ok := g.valueIndex[token]; ok {
		return id
	}
	id := g.addNode(ValueNode, token, RowRef{})
	g.valueIndex[token] = id
	return id
}

// AddColumnNode interns a column node (used by comparator graphs).
func (g *Graph) AddColumnNode(name string) int32 {
	key := "\x00col\x00" + name
	if id, ok := g.valueIndex[key]; ok {
		return id
	}
	id := g.addNode(ColumnNode, name, RowRef{})
	g.valueIndex[key] = id
	return id
}

func (g *Graph) addNode(kind NodeKind, token string, ref RowRef) int32 {
	id := int32(len(g.kinds))
	g.kinds = append(g.kinds, kind)
	g.tokens = append(g.tokens, token)
	g.rows = append(g.rows, ref)
	g.adj = append(g.adj, nil)
	if g.Weighted {
		g.w = append(g.w, nil)
	}
	return id
}

// AddEdge inserts an undirected edge with weight w (ignored when the
// graph is unweighted). It does not deduplicate; builders are expected
// to dedupe per (row, value) pair.
func (g *Graph) AddEdge(a, b int32, weight float64) {
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	if g.Weighted {
		g.w[a] = append(g.w[a], weight)
		g.w[b] = append(g.w[b], weight)
	}
}

// EdgeWeight returns the weight of the k-th edge out of n (1 for
// unweighted graphs).
func (g *Graph) EdgeWeight(n int32, k int) float64 {
	if g.w == nil {
		return 1
	}
	return g.w[n][k]
}

// NodesOfKind returns all node ids of the given kind.
func (g *Graph) NodesOfKind(kind NodeKind) []int32 {
	var out []int32
	for i, k := range g.kinds {
		if k == kind {
			out = append(out, int32(i))
		}
	}
	return out
}

// CountKind returns how many nodes have the given kind.
func (g *Graph) CountKind(kind NodeKind) int {
	n := 0
	for _, k := range g.kinds {
		if k == kind {
			n++
		}
	}
	return n
}

// NodeName returns a stable human-readable identifier used as the
// embedding key: "table:rowIdx" for rows, the token for values, and
// "col:name" for column nodes.
func (g *Graph) NodeName(n int32) string {
	switch g.kinds[n] {
	case RowNode:
		return g.rows[n].Table + ":" + itoa(int(g.rows[n].Row))
	case ColumnNode:
		return "col:" + g.tokens[n]
	default:
		return g.tokens[n]
	}
}

func itoa(i int) string {
	return fmt.Sprintf("%d", i)
}

// AdjacencyCSR exports the (symmetric) weighted adjacency matrix.
func (g *Graph) AdjacencyCSR() *matrix.CSR {
	n := g.NumNodes()
	entries := make([]matrix.COO, 0, 2*g.NumEdges())
	for i := 0; i < n; i++ {
		for k, j := range g.adj[i] {
			entries = append(entries, matrix.COO{Row: i, Col: int(j), Val: g.EdgeWeight(int32(i), k)})
		}
	}
	return matrix.NewCSR(n, n, entries)
}

// EstimateMFMemoryBytes estimates the working-set size of the matrix
// factorization path: the CSR proximity matrix plus the dense range
// sampler and factors. Leva's auto-selection compares this against the
// caller's memory budget (paper Section 4.2).
func (g *Graph) EstimateMFMemoryBytes(dim int) int64 {
	n := int64(g.NumNodes())
	nnz := int64(2 * g.NumEdges())
	csr := nnz*(8+4) + (n+1)*4
	dense := 4 * n * int64(dim) * 8 // Y, Q, Bt, U working copies
	return csr + dense
}

// EstimateRWMemoryBytes estimates the working set of the random-walk
// path: adjacency lists, optional alias tables, and the in-flight walk
// corpus chunk.
func (g *Graph) EstimateRWMemoryBytes(walkLen, walksPerNode int) int64 {
	n := int64(g.NumNodes())
	deg := int64(2 * g.NumEdges())
	adjacency := deg * 4
	var alias int64
	if g.Weighted {
		alias = deg * (8 + 4) // prob + alias entry per edge
	}
	corpusChunk := int64(walkLen) * n / 8 * 4 // walks stream in chunks
	_ = walksPerNode
	return adjacency + alias + corpusChunk
}
