package graph

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/textify"
)

// ioTestDB is a two-table joinable database big enough to produce a
// graph with shared value nodes, histogram-binned numerics and
// weighted edges.
func ioTestDB() *dataset.Database {
	orders := dataset.NewTable("expenses", "name", "city", "amount")
	people := dataset.NewTable("people", "name", "city")
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("p%02d", i%20)
		city := fmt.Sprintf("city_%d", i%5)
		orders.AppendRow(dataset.String(name), dataset.String(city), dataset.Number(float64(10+i%7)))
		if i < 20 {
			people.AppendRow(dataset.String(name), dataset.String(city))
		}
	}
	return dataset.NewDatabase(orders, people)
}

func buildTestGraph(t *testing.T, opts Options) (*Graph, Stats) {
	t.Helper()
	db := ioTestDB()
	model, err := textify.Fit(db, textify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := model.TransformAll(db)
	if err != nil {
		t.Fatal(err)
	}
	g, stats := Build(tok, opts)
	return g, stats
}

func TestGraphBinaryRoundTrip(t *testing.T) {
	for _, weighted := range []bool{true, false} {
		g, _ := buildTestGraph(t, Options{Unweighted: !weighted})
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("weighted=%v: round-tripped graph differs", weighted)
		}
		// Deterministic bytes: the restored graph re-serializes
		// identically, which is what content-addressing relies on.
		var buf2 bytes.Buffer
		if err := got.WriteBinary(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("weighted=%v: re-serialization differs", weighted)
		}
		// Index lookups survive the round trip.
		if id, ok := g.RowNodeID("expenses", 0); ok {
			id2, ok2 := got.RowNodeID("expenses", 0)
			if !ok2 || id2 != id {
				t.Error("row index broken after round trip")
			}
		} else {
			t.Fatal("test graph has no expenses rows")
		}
	}
}

func TestGraphBinaryRejectsCorruption(t *testing.T) {
	g, _ := buildTestGraph(t, Options{})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOTAGRAPH!\n"), data[len(graphMagic):]...),
		"truncated":   data[:len(data)/2],
		"trailing":    append(append([]byte{}, data...), 0xff),
		"header only": []byte(graphMagic),
	}
	for name, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("%s: corrupt stream accepted", name)
		}
	}
}

func TestStripWeightsMatchesUnweightedBuild(t *testing.T) {
	weighted, _ := buildTestGraph(t, Options{})
	unweighted, _ := buildTestGraph(t, Options{Unweighted: true})
	stripped := weighted.StripWeights()

	if stripped.Weighted {
		t.Fatal("stripped graph still weighted")
	}
	var a, b bytes.Buffer
	if err := stripped.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := unweighted.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("StripWeights differs from a ground-up unweighted build")
	}
	if stripped.Weights(0) != nil {
		t.Error("stripped graph still exposes weights")
	}
	// Stripping an already-unweighted graph is the identity.
	if unweighted.StripWeights() != unweighted {
		t.Error("StripWeights of unweighted graph is not the identity")
	}
}

func TestGraphOptionsFingerprint(t *testing.T) {
	base := Options{}.Fingerprint()
	if base != (Options{ThetaRange: 0.5, ThetaMin: 0.05, MinShare: 2}).Fingerprint() {
		t.Error("zero options and explicit defaults fingerprint differently")
	}
	if base != (Options{Workers: 8}).Fingerprint() {
		t.Error("worker count changed the fingerprint of a bit-identical stage")
	}
	if base == (Options{Unweighted: true}).Fingerprint() {
		t.Error("unweighted option did not change the fingerprint")
	}
	if !strings.Contains(optionsFPDomain, "graph") {
		t.Error("domain does not name the package")
	}
}
