package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/textify"
)

// tt builds a TokenizedTable literal: rows of cells, each cell a token
// list.
func tt(table string, attrs []string, rows ...[][]string) *textify.TokenizedTable {
	return &textify.TokenizedTable{Table: table, Attrs: attrs, Cells: rows}
}

func cell(tokens ...string) []string { return tokens }

func TestBuildBasicStructure(t *testing.T) {
	// Two tables sharing the token "k1" across rows; "solo" appears in
	// only one row and must not get a value node. The schemas carry
	// filler attributes because theta_range is a fraction of ALL
	// attributes — realistic databases are wide.
	a := tt("a", []string{"id", "v", "f1", "f2"},
		[][]string{cell("k1"), cell("red"), cell("fa"), cell("fb")},
		[][]string{cell("k2"), cell("red"), cell("fa"), cell("fb")},
	)
	b := tt("b", []string{"ref", "f3"},
		[][]string{cell("k1"), cell("fc")},
		[][]string{cell("solo"), cell("fc")},
	)
	g, stats := Build([]*textify.TokenizedTable{a, b}, Options{})

	if got := g.CountKind(RowNode); got != 4 {
		t.Fatalf("row nodes = %d, want 4", got)
	}
	// Shared tokens: k1 (2 rows), red (2 rows). k2 and solo are rare.
	// Shared: k1, red, fa, fb, fc. Rare: k2, solo.
	if got := g.CountKind(ValueNode); got != 5 {
		t.Fatalf("value nodes = %d, want 5 (got stats %+v)", got, stats)
	}
	if stats.TokensRare != 2 {
		t.Errorf("rare tokens = %d, want 2", stats.TokensRare)
	}

	k1, ok := g.ValueNodeID("k1")
	if !ok {
		t.Fatal("no value node for k1")
	}
	if g.Degree(k1) != 2 {
		t.Errorf("deg(k1) = %d, want 2", g.Degree(k1))
	}
	rowA0, ok := g.RowNodeID("a", 0)
	if !ok {
		t.Fatal("row node a:0 missing")
	}
	// a:0 connects to k1, red, fa, fb (k2/solo dropped as rare).
	if g.Degree(rowA0) != 4 {
		t.Errorf("deg(a:0) = %d, want 4", g.Degree(rowA0))
	}
}

func TestMissingDataRemoval(t *testing.T) {
	// "?" appears under 3 of 4 attributes (> theta_range 50%): removed.
	a := tt("a", []string{"w", "x", "y", "z"},
		[][]string{cell("?"), cell("u1"), cell("?"), cell("s")},
		[][]string{cell("u2"), cell("?"), cell("u3"), cell("s")},
	)
	g, stats := Build([]*textify.TokenizedTable{a}, Options{})
	if _, ok := g.ValueNodeID("?"); ok {
		t.Error("missing marker got a value node")
	}
	if stats.TokensMissing != 1 {
		t.Errorf("TokensMissing = %d, want 1", stats.TokensMissing)
	}
	if _, ok := g.ValueNodeID("s"); !ok {
		t.Error("legitimate shared token lost")
	}
}

func TestThetaMinPrunesAccidentalAttribute(t *testing.T) {
	// "washington" votes: 24 under a.name, 1 under a.state. With
	// theta_min = 5% the state edge must be pruned. Filler attributes
	// keep two-of-five under the theta_range missing threshold.
	rows := make([][][]string, 25)
	for i := 0; i < 24; i++ {
		rows[i] = [][]string{cell("washington"), cell("ok"), cell("f1"), cell("f2"), cell("f3")}
	}
	rows[24] = [][]string{cell("other"), cell("washington"), cell("f1"), cell("f2"), cell("f3")}
	a := tt("a", []string{"name", "state", "fa", "fb", "fc"}, rows...)
	g, stats := Build([]*textify.TokenizedTable{a}, Options{ThetaMin: 0.05})

	w, ok := g.ValueNodeID("washington")
	if !ok {
		t.Fatal("washington value node missing")
	}
	if g.Degree(w) != 24 {
		t.Errorf("deg(washington) = %d, want 24 (state edge pruned)", g.Degree(w))
	}
	if stats.AttrsPruned == 0 {
		t.Error("no attributes pruned")
	}
}

func TestDisableRefinementKeepsEverything(t *testing.T) {
	a := tt("a", []string{"w", "x", "y", "z"},
		[][]string{cell("?"), cell("u"), cell("?"), cell("s")},
		[][]string{cell("v"), cell("?"), cell("w2"), cell("s")},
	)
	g, _ := Build([]*textify.TokenizedTable{a}, Options{DisableRefinement: true})
	if _, ok := g.ValueNodeID("?"); !ok {
		t.Error("refinement-off still removed the marker")
	}
}

func TestInverseDegreeWeighting(t *testing.T) {
	// "pop" shared by 4 rows (weight 1/4), "rare" by 2 (weight 1/2).
	a := tt("a", []string{"x", "y"},
		[][]string{cell("pop"), cell("rare")},
		[][]string{cell("pop"), cell("rare")},
		[][]string{cell("pop"), cell("q1")},
		[][]string{cell("pop"), cell("q2")},
	)
	g, _ := Build([]*textify.TokenizedTable{a}, Options{})
	if !g.Weighted {
		t.Fatal("graph not weighted by default")
	}
	pop, _ := g.ValueNodeID("pop")
	rare, _ := g.ValueNodeID("rare")
	if w := g.Weights(pop)[0]; w != 0.25 {
		t.Errorf("weight(pop edge) = %v, want 0.25", w)
	}
	if w := g.Weights(rare)[0]; w != 0.5 {
		t.Errorf("weight(rare edge) = %v, want 0.5", w)
	}

	gu, _ := Build([]*textify.TokenizedTable{a}, Options{Unweighted: true})
	if gu.Weighted {
		t.Error("Unweighted option ignored")
	}
	if gu.EdgeWeight(0, 0) != 1 {
		t.Error("unweighted edge weight != 1")
	}
}

func TestDedupePerRow(t *testing.T) {
	// The same token twice in one row (e.g. from a list) yields one edge.
	a := tt("a", []string{"tags"},
		[][]string{cell("x", "x")},
		[][]string{cell("x")},
	)
	g, _ := Build([]*textify.TokenizedTable{a}, Options{})
	x, _ := g.ValueNodeID("x")
	if g.Degree(x) != 2 {
		t.Errorf("deg(x) = %d, want 2 (deduped)", g.Degree(x))
	}
}

func TestPairwiseVsValueNodeEdgeCount(t *testing.T) {
	// 6 rows sharing one token: pairwise needs 15 edges, value nodes 6.
	rows := make([][][]string, 6)
	for i := range rows {
		rows[i] = [][]string{cell("shared")}
	}
	a := tt("a", []string{"x"}, rows...)
	pairwise := BuildPairwise([]*textify.TokenizedTable{a})
	valueNode, _ := Build([]*textify.TokenizedTable{a}, Options{})
	if pairwise.NumEdges() != 15 {
		t.Errorf("pairwise edges = %d, want 15", pairwise.NumEdges())
	}
	if valueNode.NumEdges() != 6 {
		t.Errorf("value-node edges = %d, want 6", valueNode.NumEdges())
	}
}

func TestAdjacencyCSRSymmetric(t *testing.T) {
	a := tt("a", []string{"x", "y"},
		[][]string{cell("p"), cell("q")},
		[][]string{cell("p"), cell("q")},
	)
	g, _ := Build([]*textify.TokenizedTable{a}, Options{})
	m := g.AdjacencyCSR()
	for i := 0; i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := int(m.ColIdx[p])
			if m.At(j, i) != m.Vals[p] {
				t.Fatalf("asymmetric adjacency at (%d,%d)", i, j)
			}
		}
	}
}

func TestNodeNames(t *testing.T) {
	g := New(false)
	r := g.AddRowNode("tbl", 7)
	v := g.AddValueNode("tok")
	c := g.AddColumnNode("attr")
	if g.NodeName(r) != "tbl:7" || g.NodeName(v) != "tok" || g.NodeName(c) != "col:attr" {
		t.Errorf("names = %q %q %q", g.NodeName(r), g.NodeName(v), g.NodeName(c))
	}
	// Interning.
	if g.AddRowNode("tbl", 7) != r || g.AddValueNode("tok") != v {
		t.Error("interning failed")
	}
	if g.Kind(r) != RowNode || g.Kind(v) != ValueNode || g.Kind(c) != ColumnNode {
		t.Error("kinds wrong")
	}
}

func TestMemoryEstimatesPositive(t *testing.T) {
	a := tt("a", []string{"x"},
		[][]string{cell("p")}, [][]string{cell("p")},
	)
	g, _ := Build([]*textify.TokenizedTable{a}, Options{})
	if g.EstimateMFMemoryBytes(64) <= 0 {
		t.Error("MF estimate not positive")
	}
	if g.EstimateRWMemoryBytes(80, 10) <= 0 {
		t.Error("RW estimate not positive")
	}
	// Weighted graphs estimate more RW memory than unweighted (alias
	// tables).
	gu, _ := Build([]*textify.TokenizedTable{a}, Options{Unweighted: true})
	if g.EstimateRWMemoryBytes(80, 10) <= gu.EstimateRWMemoryBytes(80, 10) {
		t.Error("weighted RW estimate not larger")
	}
}

func TestWriteDOT(t *testing.T) {
	a := tt("a", []string{"x", "y"},
		[][]string{cell("p"), cell("q")},
		[][]string{cell("p"), cell("q")},
	)
	g, _ := Build([]*textify.TokenizedTable{a}, Options{})
	var buf strings.Builder
	if err := g.WriteDOT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph leva", "shape=box", "shape=ellipse", "label=\"0.50\""} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Cap respected.
	var small strings.Builder
	if err := g.WriteDOT(&small, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Count(small.String(), "shape=") != 2 {
		t.Errorf("maxNodes ignored:\n%s", small.String())
	}
}

// Property: the built graph is always bipartite between rows and values
// (Leva's construction never links two rows or two values directly) and
// every edge endpoint is valid.
func TestBuildBipartiteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		rows := make([][][]string, 3+rng.Intn(10))
		tokens := []string{"a", "b", "c", "d", "e", "f"}
		for i := range rows {
			rows[i] = [][]string{
				cell(tokens[rng.Intn(len(tokens))]),
				cell(tokens[rng.Intn(len(tokens))]),
			}
		}
		g, _ := Build([]*textify.TokenizedTable{tt("t", []string{"x", "y"}, rows...)}, Options{})
		for n := int32(0); n < int32(g.NumNodes()); n++ {
			for _, nb := range g.Neighbors(n) {
				if nb < 0 || int(nb) >= g.NumNodes() {
					return false
				}
				if g.Kind(n) == g.Kind(nb) {
					return false // same-kind edge: not bipartite
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func newRand(seed int64) *quickRand { return &quickRand{state: uint64(seed)*2654435761 + 1} }

// quickRand is a tiny deterministic generator so the property test does
// not depend on math/rand's global state.
type quickRand struct{ state uint64 }

func (r *quickRand) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}
