package graph

import "repro/internal/fingerprint"

// optionsFPDomain versions the Options fingerprint encoding. Bump when
// Options gains a field that changes the constructed graph.
const optionsFPDomain = "leva/graph-options/v1"

// Fingerprint returns a canonical content hash of the options after
// defaulting. Workers is excluded: Build is bit-identical at every
// worker count, so the worker knob cannot change the artifact a cached
// build would reproduce.
func (o Options) Fingerprint() string {
	o = o.withDefaults()
	o.Workers = 0
	return fingerprint.JSON(optionsFPDomain, o)
}
