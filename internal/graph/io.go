package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// graphMagic heads the binary graph format; the trailing digit is the
// format version. The encoding is fully deterministic — the same graph
// always serializes to the same bytes — which is what lets the staged
// pipeline content-address and equality-check cached graph artifacts.
const graphMagic = "LEVAGRAPH1\n"

// WriteBinary serializes the graph: node kinds, value/column tokens,
// row references (with interned table names), adjacency lists, and —
// for weighted graphs — exact float64 edge weights. ReadBinary restores
// a graph that is indistinguishable from the original: same node ids,
// same edge order, same weights, same index lookups.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(graphMagic); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	writeBool(bw, g.Weighted)

	n := len(g.kinds)
	writeUvarint(bw, uint64(n))
	for _, k := range g.kinds {
		bw.WriteByte(byte(k))
	}

	// Tokens for value/column nodes ("" for row nodes compresses to a
	// single zero-length prefix).
	for i := 0; i < n; i++ {
		writeString(bw, g.tokens[i])
	}

	// Row references: intern table names first (in first-seen node
	// order, which is deterministic), then one (table, row) pair per
	// row node.
	tables := make([]string, 0, 8)
	tableIdx := make(map[string]int, 8)
	for i := 0; i < n; i++ {
		if g.kinds[i] != RowNode {
			continue
		}
		if _, ok := tableIdx[g.rows[i].Table]; !ok {
			tableIdx[g.rows[i].Table] = len(tables)
			tables = append(tables, g.rows[i].Table)
		}
	}
	writeUvarint(bw, uint64(len(tables)))
	for _, t := range tables {
		writeString(bw, t)
	}
	for i := 0; i < n; i++ {
		if g.kinds[i] != RowNode {
			continue
		}
		writeUvarint(bw, uint64(tableIdx[g.rows[i].Table]))
		writeUvarint(bw, uint64(g.rows[i].Row))
	}

	// Adjacency (and weights, bit-exact) per node.
	for i := 0; i < n; i++ {
		writeUvarint(bw, uint64(len(g.adj[i])))
		for _, j := range g.adj[i] {
			writeUvarint(bw, uint64(j))
		}
		if g.Weighted {
			for _, wt := range g.w[i] {
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(wt))
				bw.Write(buf[:])
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: write: %w", err)
	}
	return nil
}

// ReadBinary restores a graph written by WriteBinary. Every error names
// what is malformed; a truncated or corrupt stream never yields a
// partially-populated graph.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(graphMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("graph: read header: %w", err)
	}
	if string(head) != graphMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a serialized graph, or an incompatible version)", head)
	}
	weighted, err := readBool(br)
	if err != nil {
		return nil, fmt.Errorf("graph: read weighted flag: %w", err)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: read node count: %w", err)
	}
	if n64 > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("graph: node count %d exceeds int32", n64)
	}
	n := int(n64)

	g := New(weighted)
	g.kinds = make([]NodeKind, n)
	for i := 0; i < n; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("graph: read kind of node %d: %w", i, err)
		}
		if b > byte(ColumnNode) {
			return nil, fmt.Errorf("graph: node %d has unknown kind %d", i, b)
		}
		g.kinds[i] = NodeKind(b)
	}

	g.tokens = make([]string, n)
	for i := 0; i < n; i++ {
		s, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("graph: read token of node %d: %w", i, err)
		}
		g.tokens[i] = s
	}

	nt, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: read table count: %w", err)
	}
	tables := make([]string, nt)
	for i := range tables {
		if tables[i], err = readString(br); err != nil {
			return nil, fmt.Errorf("graph: read table name %d: %w", i, err)
		}
	}
	g.rows = make([]RowRef, n)
	for i := 0; i < n; i++ {
		if g.kinds[i] != RowNode {
			continue
		}
		ti, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: read table of row node %d: %w", i, err)
		}
		if ti >= uint64(len(tables)) {
			return nil, fmt.Errorf("graph: row node %d references table %d of %d", i, ti, len(tables))
		}
		ri, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: read row of row node %d: %w", i, err)
		}
		g.rows[i] = RowRef{Table: tables[ti], Row: int32(ri)}
	}

	g.adj = make([][]int32, n)
	if weighted {
		g.w = make([][]float64, n)
	}
	for i := 0; i < n; i++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: read degree of node %d: %w", i, err)
		}
		if deg == 0 {
			continue
		}
		adj := make([]int32, deg)
		for k := range adj {
			j, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graph: read edge %d of node %d: %w", k, i, err)
			}
			if j >= n64 {
				return nil, fmt.Errorf("graph: node %d has edge to %d of %d nodes", i, j, n)
			}
			adj[k] = int32(j)
		}
		g.adj[i] = adj
		if weighted {
			ws := make([]float64, deg)
			var buf [8]byte
			for k := range ws {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return nil, fmt.Errorf("graph: read weight %d of node %d: %w", k, i, err)
				}
				ws[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			}
			g.w[i] = ws
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: trailing bytes after serialized graph")
	}

	// Rebuild the lookup indexes the builder maintained incrementally.
	for i := 0; i < n; i++ {
		switch g.kinds[i] {
		case RowNode:
			g.rowIndex[g.rows[i]] = int32(i)
		case ValueNode:
			g.valueIndex[g.tokens[i]] = int32(i)
		case ColumnNode:
			g.valueIndex["\x00col\x00"+g.tokens[i]] = int32(i)
		}
	}
	return g, nil
}

// StripWeights returns an unweighted graph sharing g's node and
// adjacency storage. Build constructs identical nodes and edges whether
// or not Options.Unweighted is set — weighting only attaches the w
// slices — so stripping the weights of a weighted graph is equivalent
// to (and far cheaper than) rebuilding it unweighted from the tokenized
// tables. The pipeline's memory-budget fallback uses this to avoid a
// second full construction pass. The shared storage is read-only after
// construction; neither graph may be mutated afterwards.
func (g *Graph) StripWeights() *Graph {
	if !g.Weighted {
		return g
	}
	return &Graph{
		kinds:      g.kinds,
		tokens:     g.tokens,
		rows:       g.rows,
		adj:        g.adj,
		w:          nil,
		rowIndex:   g.rowIndex,
		valueIndex: g.valueIndex,
		Weighted:   false,
	}
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	bw.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func writeString(bw *bufio.Writer, s string) {
	writeUvarint(bw, uint64(len(s)))
	bw.WriteString(s)
}

func writeBool(bw *bufio.Writer, b bool) {
	if b {
		bw.WriteByte(1)
	} else {
		bw.WriteByte(0)
	}
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("string length %d implausible", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readBool(br *bufio.Reader) (bool, error) {
	b, err := br.ReadByte()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}
