package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format for debugging and
// documentation: row nodes as boxes, value nodes as ellipses, column
// nodes as diamonds, with edge weights as labels on weighted graphs.
// maxNodes caps the output (0 means everything); graphs beyond a few
// hundred nodes stop being readable.
func (g *Graph) WriteDOT(w io.Writer, maxNodes int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph leva {")
	fmt.Fprintln(bw, "  layout=neato; overlap=false;")
	n := g.NumNodes()
	if maxNodes > 0 && n > maxNodes {
		n = maxNodes
	}
	include := func(id int32) bool { return int(id) < n }
	for i := 0; i < n; i++ {
		id := int32(i)
		shape := "ellipse"
		switch g.Kind(id) {
		case RowNode:
			shape = "box"
		case ColumnNode:
			shape = "diamond"
		}
		fmt.Fprintf(bw, "  n%d [label=%q shape=%s];\n", i, g.NodeName(id), shape)
	}
	for i := 0; i < n; i++ {
		id := int32(i)
		for k, nb := range g.Neighbors(id) {
			if nb < id || !include(nb) {
				continue // each undirected edge once
			}
			if g.Weighted {
				fmt.Fprintf(bw, "  n%d -- n%d [label=\"%.2f\"];\n", i, nb, g.EdgeWeight(id, k))
			} else {
				fmt.Fprintf(bw, "  n%d -- n%d;\n", i, nb)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
