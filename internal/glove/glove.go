// Package glove implements GloVe (Pennington et al., paper reference
// [32]) over token-id co-occurrence statistics: weighted least squares
// on log co-occurrence counts, trained with AdaGrad. Leva's embedding
// construction stage is deliberately plug-and-play (paper Section 4.2);
// this package is the third first-class method demonstrating that
// interface, next to the MF and RW defaults.
package glove

import (
	"math"
	"math/rand"
)

// Options configures GloVe training.
type Options struct {
	// Dim is the embedding size. Default 100.
	Dim int
	// Epochs over the co-occurrence pairs. Default 15.
	Epochs int
	// LearningRate is the AdaGrad step. Default 0.05.
	LearningRate float64
	// XMax and Alpha shape the weighting f(x) = min(1, (x/XMax)^Alpha).
	// Defaults 100 and 0.75.
	XMax  float64
	Alpha float64
	// Seed drives initialization and pair shuffling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Dim <= 0 {
		o.Dim = 100
	}
	if o.Epochs <= 0 {
		o.Epochs = 15
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.05
	}
	if o.XMax <= 0 {
		o.XMax = 100
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.75
	}
	return o
}

// Cooc is one co-occurrence observation: tokens I and J co-occurred
// with total weight X (counts or window-discounted counts).
type Cooc struct {
	I, J int32
	X    float64
}

// Model holds trained main and context vectors; the conventional GloVe
// output embedding is their sum.
type Model struct {
	Dim  int
	w    []float64 // vocab x dim main vectors
	wCtx []float64 // vocab x dim context vectors
	b    []float64
	bCtx []float64
}

// Vector returns the output embedding (main + context) for token id.
func (m *Model) Vector(id int32) []float64 {
	out := make([]float64, m.Dim)
	base := int(id) * m.Dim
	for k := 0; k < m.Dim; k++ {
		out[k] = m.w[base+k] + m.wCtx[base+k]
	}
	return out
}

// CountCooccurrence accumulates symmetric window-discounted pair counts
// from token-id sequences, the statistic GloVe factorizes. Pairs at
// distance d contribute 1/d, as in the reference implementation.
func CountCooccurrence(corpus [][]int32, window int) []Cooc {
	if window <= 0 {
		window = 5
	}
	type key struct{ i, j int32 }
	counts := make(map[key]float64)
	for _, seq := range corpus {
		for pos, center := range seq {
			for off := 1; off <= window && pos+off < len(seq); off++ {
				other := seq[pos+off]
				a, b := center, other
				if a > b {
					a, b = b, a
				}
				counts[key{a, b}] += 1 / float64(off)
			}
		}
	}
	out := make([]Cooc, 0, len(counts))
	for k, x := range counts {
		out = append(out, Cooc{I: k.i, J: k.j, X: x})
	}
	return out
}

// Train fits GloVe on co-occurrence pairs over a vocabulary of the
// given size. Pairs are treated symmetrically.
func Train(pairs []Cooc, vocabSize int, opts Options) *Model {
	opts = opts.withDefaults()
	m := &Model{
		Dim:  opts.Dim,
		w:    make([]float64, vocabSize*opts.Dim),
		wCtx: make([]float64, vocabSize*opts.Dim),
		b:    make([]float64, vocabSize),
		bCtx: make([]float64, vocabSize),
	}
	if vocabSize == 0 || len(pairs) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := range m.w {
		m.w[i] = (rng.Float64() - 0.5) / float64(opts.Dim)
		m.wCtx[i] = (rng.Float64() - 0.5) / float64(opts.Dim)
	}
	// AdaGrad accumulators start at 1 so early steps stay bounded.
	gw := ones(vocabSize * opts.Dim)
	gwCtx := ones(vocabSize * opts.Dim)
	gb := ones(vocabSize)
	gbCtx := ones(vocabSize)

	order := rng.Perm(len(pairs))
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			p := pairs[idx]
			m.step(p.I, p.J, p.X, opts, gw, gwCtx, gb, gbCtx)
			if p.I != p.J {
				m.step(p.J, p.I, p.X, opts, gw, gwCtx, gb, gbCtx)
			}
		}
	}
	return m
}

func (m *Model) step(i, j int32, x float64, opts Options, gw, gwCtx, gb, gbCtx []float64) {
	dim := m.Dim
	wi := m.w[int(i)*dim : (int(i)+1)*dim]
	wj := m.wCtx[int(j)*dim : (int(j)+1)*dim]
	dot := 0.0
	for k := range wi {
		dot += wi[k] * wj[k]
	}
	diff := dot + m.b[i] + m.bCtx[j] - math.Log(x)
	f := 1.0
	if x < opts.XMax {
		f = math.Pow(x/opts.XMax, opts.Alpha)
	}
	g := f * diff
	lr := opts.LearningRate
	for k := range wi {
		gradI := g * wj[k]
		gradJ := g * wi[k]
		idxI := int(i)*dim + k
		idxJ := int(j)*dim + k
		wi[k] -= lr * gradI / math.Sqrt(gw[idxI])
		wj[k] -= lr * gradJ / math.Sqrt(gwCtx[idxJ])
		gw[idxI] += gradI * gradI
		gwCtx[idxJ] += gradJ * gradJ
	}
	m.b[i] -= lr * g / math.Sqrt(gb[i])
	m.bCtx[j] -= lr * g / math.Sqrt(gbCtx[j])
	gb[i] += g * g
	gbCtx[j] += g * g
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
