package glove

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestCountCooccurrence(t *testing.T) {
	corpus := [][]int32{{0, 1, 2}}
	pairs := CountCooccurrence(corpus, 2)
	get := func(i, j int32) float64 {
		for _, p := range pairs {
			if p.I == i && p.J == j {
				return p.X
			}
		}
		return 0
	}
	// (0,1) at distance 1 -> 1; (0,2) at distance 2 -> 0.5; (1,2) -> 1.
	if get(0, 1) != 1 || get(1, 2) != 1 || get(0, 2) != 0.5 {
		t.Errorf("pairs = %+v", pairs)
	}
}

func TestTrainSeparatesClusters(t *testing.T) {
	// Two token cliques that co-occur internally only.
	rng := rand.New(rand.NewSource(1))
	var corpus [][]int32
	for s := 0; s < 300; s++ {
		base := int32(0)
		if s%2 == 1 {
			base = 4
		}
		seq := make([]int32, 12)
		for i := range seq {
			seq[i] = base + int32(rng.Intn(4))
		}
		corpus = append(corpus, seq)
	}
	pairs := CountCooccurrence(corpus, 4)
	m := Train(pairs, 8, Options{Dim: 12, Epochs: 20, Seed: 2})

	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for a := int32(0); a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			s := matrix.CosineSimilarity(m.Vector(a), m.Vector(b))
			if (a < 4) == (b < 4) {
				intra += s
				nIntra++
			} else {
				inter += s
				nInter++
			}
		}
	}
	if intra/float64(nIntra) <= inter/float64(nInter)+0.2 {
		t.Errorf("GloVe separation weak: intra %v vs inter %v",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestTrainDegenerate(t *testing.T) {
	m := Train(nil, 0, Options{})
	if m.Dim != 100 {
		t.Errorf("default dim = %d", m.Dim)
	}
	m = Train([]Cooc{{I: 0, J: 0, X: 2}}, 1, Options{Dim: 4, Epochs: 2})
	if len(m.Vector(0)) != 4 {
		t.Error("vector length wrong")
	}
}
