package walk

import (
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Options configures corpus generation. Paper defaults: walk length 80,
// 10 iterations per node, of which 4 restart from the worst-represented
// nodes when balancing is on.
type Options struct {
	// WalkLength is the number of emitted nodes per walk. Default 80.
	WalkLength int
	// WalksPerNode is the number of iterations; each iteration starts
	// one walk from every (chosen) node. Default 10.
	WalksPerNode int
	// RestartIterations replaces that many trailing iterations with
	// walks started only from the least-visited nodes (Section 6.6.3:
	// 6 normal + 4 restart). 0 disables balancing restarts.
	RestartIterations int
	// VisitLimit, when positive, stops emitting a node into walks
	// after it has been visited this many times; the walk still passes
	// through it, which effectively makes walks hop row-to-row across
	// over-visited value nodes. 0 disables limits.
	VisitLimit int
	// P and Q are the Node2Vec return and in-out biases for
	// second-order walks. Both zero (or one) means first-order walks.
	P, Q float64
	// Seed seeds the deterministic per-walk RNG stream.
	Seed int64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.WalkLength <= 0 {
		o.WalkLength = 80
	}
	if o.WalksPerNode <= 0 {
		o.WalksPerNode = 10
	}
	o.Workers = parallel.Workers(o.Workers)
	return o
}

func (o Options) secondOrder() bool {
	return (o.P != 0 && o.P != 1) || (o.Q != 0 && o.Q != 1)
}

// Corpus is a set of walks, each a sequence of node ids.
type Corpus struct {
	// Walks holds the generated node-id sequences, in a fixed
	// deterministic order (iteration-major, then start node).
	Walks [][]int32
	// Visits counts how many times each node was emitted, used by the
	// balancing diagnostics and tests.
	Visits []int64
}

// Generate produces a walk corpus from the graph.
func Generate(g *graph.Graph, opts Options) *Corpus {
	opts = opts.withDefaults()
	n := g.NumNodes()
	c := &Corpus{Visits: make([]int64, n)}
	if n == 0 {
		return c
	}

	var aliases []*Alias
	if g.Weighted {
		// Alias tables are independent per node; build them across the
		// worker pool (each slot written by exactly one goroutine).
		aliases = make([]*Alias, n)
		parallel.ForEach(n, opts.Workers, func(i int) {
			if w := g.Weights(int32(i)); len(w) > 0 {
				aliases[i] = NewAlias(w)
			}
		})
	}

	normalIters := opts.WalksPerNode - opts.RestartIterations
	if normalIters < 0 {
		normalIters = 0
	}

	starts := make([]int32, n)
	for i := range starts {
		starts[i] = int32(i)
	}
	for iter := 0; iter < normalIters; iter++ {
		c.runIteration(g, aliases, starts, opts, int64(iter))
	}
	if opts.RestartIterations > 0 {
		// Restart from the least-visited nodes: take the bottom
		// half by visit count and cycle through them to fill the
		// same number of walks a normal iteration produces.
		worst := leastVisited(c.Visits, (n+1)/2)
		restartStarts := make([]int32, n)
		for i := range restartStarts {
			restartStarts[i] = worst[i%len(worst)]
		}
		for iter := 0; iter < opts.RestartIterations; iter++ {
			c.runIteration(g, aliases, restartStarts, opts, int64(normalIters+iter))
		}
	}
	return c
}

func leastVisited(visits []int64, k int) []int32 {
	idx := make([]int32, len(visits))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if visits[idx[a]] != visits[idx[b]] {
			return visits[idx[a]] < visits[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// runIteration walks once from every entry of starts, fanning out over
// the shared worker pool. Each walk owns an RNG stream derived from the
// seed, the iteration and its start index — never from the worker it
// landed on — so the corpus is reproducible for a fixed worker count,
// and fully deterministic at any count when VisitLimit is off (visit
// limits couple concurrent walks through the shared visit counters).
func (c *Corpus) runIteration(g *graph.Graph, aliases []*Alias, starts []int32, opts Options, iter int64) {
	walks := make([][]int32, len(starts))
	parallel.For(len(starts), opts.Workers, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			rng := rand.New(rand.NewSource(opts.Seed ^ (iter << 32) ^ int64(i)*0x9e3779b9))
			walks[i] = c.walkFrom(g, aliases, starts[i], opts, rng)
		}
	})
	for _, w := range walks {
		if len(w) > 0 {
			c.Walks = append(c.Walks, w)
		}
	}
}

// walkFrom generates one walk, honoring weights, visit limits, and the
// optional second-order (p, q) bias.
func (c *Corpus) walkFrom(g *graph.Graph, aliases []*Alias, start int32, opts Options, rng *rand.Rand) []int32 {
	walk := make([]int32, 0, opts.WalkLength)
	cur := start
	prev := int32(-1)
	emit := func(node int32) {
		if opts.VisitLimit > 0 && g.Kind(node) == graph.ValueNode &&
			atomic.LoadInt64(&c.Visits[node]) >= int64(opts.VisitLimit) {
			return // traversed but not emitted
		}
		atomic.AddInt64(&c.Visits[node], 1)
		walk = append(walk, node)
	}
	emit(cur)
	for step := 1; step < opts.WalkLength; step++ {
		next, ok := c.step(g, aliases, cur, prev, opts, rng)
		if !ok {
			break
		}
		emit(next)
		prev, cur = cur, next
	}
	return walk
}

func (c *Corpus) step(g *graph.Graph, aliases []*Alias, cur, prev int32, opts Options, rng *rand.Rand) (int32, bool) {
	nbrs := g.Neighbors(cur)
	if len(nbrs) == 0 {
		return 0, false
	}
	if opts.secondOrder() && prev >= 0 {
		return node2vecStep(g, nbrs, cur, prev, opts, rng)
	}
	if aliases != nil && aliases[cur] != nil {
		return nbrs[aliases[cur].Draw(rng)], true
	}
	return nbrs[rng.Intn(len(nbrs))], true
}

// node2vecStep samples the next node with the unnormalized second-order
// weights 1/p (return), 1 (common neighbor), 1/q (outward), scaled by
// the edge weight. Linear scan suffices because the comparator baseline
// runs on moderate graphs.
func node2vecStep(g *graph.Graph, nbrs []int32, cur, prev int32, opts Options, rng *rand.Rand) (int32, bool) {
	p, q := opts.P, opts.Q
	if p == 0 {
		p = 1
	}
	if q == 0 {
		q = 1
	}
	prevNbrs := g.Neighbors(prev)
	isPrevNbr := func(x int32) bool {
		for _, y := range prevNbrs {
			if y == x {
				return true
			}
		}
		return false
	}
	weights := make([]float64, len(nbrs))
	total := 0.0
	for i, nb := range nbrs {
		w := g.EdgeWeight(cur, i)
		switch {
		case nb == prev:
			w /= p
		case isPrevNbr(nb):
			// distance 1 from prev: weight unchanged
		default:
			w /= q
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		return nbrs[rng.Intn(len(nbrs))], true
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return nbrs[i], true
		}
	}
	return nbrs[len(nbrs)-1], true
}
