package walk

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Options configures corpus generation. Paper defaults: walk length 80,
// 10 iterations per node, of which 4 restart from the worst-represented
// nodes when balancing is on.
type Options struct {
	// WalkLength is the number of emitted nodes per walk. Default 80.
	WalkLength int
	// WalksPerNode is the number of iterations; each iteration starts
	// one walk from every (chosen) node. Default 10.
	WalksPerNode int
	// RestartIterations replaces that many trailing iterations with
	// walks started only from the least-visited nodes (Section 6.6.3:
	// 6 normal + 4 restart). 0 disables balancing restarts.
	RestartIterations int
	// VisitLimit, when positive, stops emitting a node into walks
	// after it has been visited this many times; the walk still passes
	// through it, which effectively makes walks hop row-to-row across
	// over-visited value nodes. 0 disables limits.
	VisitLimit int
	// P and Q are the Node2Vec return and in-out biases for
	// second-order walks. Both zero (or one) means first-order walks.
	P, Q float64
	// Seed seeds the deterministic per-walk RNG stream.
	Seed int64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.WalkLength <= 0 {
		o.WalkLength = 80
	}
	if o.WalksPerNode <= 0 {
		o.WalksPerNode = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) secondOrder() bool {
	return (o.P != 0 && o.P != 1) || (o.Q != 0 && o.Q != 1)
}

// Corpus is a set of walks, each a sequence of node ids.
type Corpus struct {
	Walks [][]int32
	// Visits counts how many times each node was emitted, used by the
	// balancing diagnostics and tests.
	Visits []int64
}

// Generate produces a walk corpus from the graph.
func Generate(g *graph.Graph, opts Options) *Corpus {
	opts = opts.withDefaults()
	n := g.NumNodes()
	c := &Corpus{Visits: make([]int64, n)}
	if n == 0 {
		return c
	}

	var aliases []*Alias
	if g.Weighted {
		aliases = make([]*Alias, n)
		for i := 0; i < n; i++ {
			if w := g.Weights(int32(i)); len(w) > 0 {
				aliases[i] = NewAlias(w)
			}
		}
	}

	normalIters := opts.WalksPerNode - opts.RestartIterations
	if normalIters < 0 {
		normalIters = 0
	}

	starts := make([]int32, n)
	for i := range starts {
		starts[i] = int32(i)
	}
	for iter := 0; iter < normalIters; iter++ {
		c.runIteration(g, aliases, starts, opts, int64(iter))
	}
	if opts.RestartIterations > 0 {
		// Restart from the least-visited nodes: take the bottom
		// half by visit count and cycle through them to fill the
		// same number of walks a normal iteration produces.
		worst := leastVisited(c.Visits, (n+1)/2)
		restartStarts := make([]int32, n)
		for i := range restartStarts {
			restartStarts[i] = worst[i%len(worst)]
		}
		for iter := 0; iter < opts.RestartIterations; iter++ {
			c.runIteration(g, aliases, restartStarts, opts, int64(normalIters+iter))
		}
	}
	return c
}

func leastVisited(visits []int64, k int) []int32 {
	idx := make([]int32, len(visits))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if visits[idx[a]] != visits[idx[b]] {
			return visits[idx[a]] < visits[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// runIteration walks once from every entry of starts, in parallel.
func (c *Corpus) runIteration(g *graph.Graph, aliases []*Alias, starts []int32, opts Options, iter int64) {
	walks := make([][]int32, len(starts))
	var wg sync.WaitGroup
	chunk := (len(starts) + opts.Workers - 1) / opts.Workers
	for w := 0; w < opts.Workers; w++ {
		lo := w * chunk
		if lo >= len(starts) {
			break
		}
		hi := lo + chunk
		if hi > len(starts) {
			hi = len(starts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				rng := rand.New(rand.NewSource(opts.Seed ^ (iter << 32) ^ int64(i)*0x9e3779b9))
				walks[i] = c.walkFrom(g, aliases, starts[i], opts, rng)
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, w := range walks {
		if len(w) > 0 {
			c.Walks = append(c.Walks, w)
		}
	}
}

// walkFrom generates one walk, honoring weights, visit limits, and the
// optional second-order (p, q) bias.
func (c *Corpus) walkFrom(g *graph.Graph, aliases []*Alias, start int32, opts Options, rng *rand.Rand) []int32 {
	walk := make([]int32, 0, opts.WalkLength)
	cur := start
	prev := int32(-1)
	emit := func(node int32) {
		if opts.VisitLimit > 0 && g.Kind(node) == graph.ValueNode &&
			atomic.LoadInt64(&c.Visits[node]) >= int64(opts.VisitLimit) {
			return // traversed but not emitted
		}
		atomic.AddInt64(&c.Visits[node], 1)
		walk = append(walk, node)
	}
	emit(cur)
	for step := 1; step < opts.WalkLength; step++ {
		next, ok := c.step(g, aliases, cur, prev, opts, rng)
		if !ok {
			break
		}
		emit(next)
		prev, cur = cur, next
	}
	return walk
}

func (c *Corpus) step(g *graph.Graph, aliases []*Alias, cur, prev int32, opts Options, rng *rand.Rand) (int32, bool) {
	nbrs := g.Neighbors(cur)
	if len(nbrs) == 0 {
		return 0, false
	}
	if opts.secondOrder() && prev >= 0 {
		return node2vecStep(g, nbrs, cur, prev, opts, rng)
	}
	if aliases != nil && aliases[cur] != nil {
		return nbrs[aliases[cur].Draw(rng)], true
	}
	return nbrs[rng.Intn(len(nbrs))], true
}

// node2vecStep samples the next node with the unnormalized second-order
// weights 1/p (return), 1 (common neighbor), 1/q (outward), scaled by
// the edge weight. Linear scan suffices because the comparator baseline
// runs on moderate graphs.
func node2vecStep(g *graph.Graph, nbrs []int32, cur, prev int32, opts Options, rng *rand.Rand) (int32, bool) {
	p, q := opts.P, opts.Q
	if p == 0 {
		p = 1
	}
	if q == 0 {
		q = 1
	}
	prevNbrs := g.Neighbors(prev)
	isPrevNbr := func(x int32) bool {
		for _, y := range prevNbrs {
			if y == x {
				return true
			}
		}
		return false
	}
	weights := make([]float64, len(nbrs))
	total := 0.0
	for i, nb := range nbrs {
		w := g.EdgeWeight(cur, i)
		switch {
		case nb == prev:
			w /= p
		case isPrevNbr(nb):
			// distance 1 from prev: weight unchanged
		default:
			w /= q
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		return nbrs[rng.Intn(len(nbrs))], true
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return nbrs[i], true
		}
	}
	return nbrs[len(nbrs)-1], true
}
