// Package walk generates the random-walk corpora Leva's RW embedding
// method trains on (paper Section 4.2.2): weighted transitions via alias
// tables, walk balancing through restarts from under-represented nodes,
// visit limits that keep over-visited value nodes out of the corpus, and
// the second-order (p, q) bias used by the Node2Vec comparator.
package walk

import "math/rand"

// Alias is a Vose alias table: O(n) construction, O(1) sampling from a
// fixed discrete distribution. Weighted random walks build one table per
// node; the paper calls out their memory cost as the reason unweighted
// graphs scale further.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table over the given non-negative weights.
// All-zero weights degrade to the uniform distribution.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	if n == 0 {
		return a
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	scaled := make([]float64, n)
	if total <= 0 {
		for i := range scaled {
			scaled[i] = 1
		}
	} else {
		for i, w := range weights {
			scaled[i] = w / total * float64(n)
		}
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Draw samples an index from the table.
func (a *Alias) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
