package walk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/textify"
)

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	rng := rand.New(rand.NewSource(1))
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(rng)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasDegenerate(t *testing.T) {
	// All-zero weights degrade to uniform.
	a := NewAlias([]float64{0, 0, 0})
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[a.Draw(rng)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("degenerate outcome %d count %d", i, c)
		}
	}
	if NewAlias(nil).Len() != 0 {
		t.Error("empty alias not empty")
	}
}

// lineGraph builds a weighted path graph 0-1-2-...-n-1 via the public
// builder (alternating row and value nodes keeps it bipartite).
func lineGraph(n int) *graph.Graph {
	g := graph.New(true)
	prev := g.AddRowNode("t", 0)
	for i := 1; i < n; i++ {
		var cur int32
		if i%2 == 1 {
			cur = g.AddValueNode(tokenName(i))
		} else {
			cur = g.AddRowNode("t", i)
		}
		g.AddEdge(prev, cur, 1)
		prev = cur
	}
	return g
}

func tokenName(i int) string { return string(rune('a' + i)) }

func TestGenerateShape(t *testing.T) {
	g := lineGraph(7)
	c := Generate(g, Options{WalkLength: 10, WalksPerNode: 3, Seed: 1})
	if len(c.Walks) != 3*g.NumNodes() {
		t.Fatalf("walks = %d, want %d", len(c.Walks), 3*g.NumNodes())
	}
	for _, w := range c.Walks {
		if len(w) == 0 || len(w) > 10 {
			t.Fatalf("walk length %d out of range", len(w))
		}
		for k := 1; k < len(w); k++ {
			// Consecutive nodes must be adjacent.
			found := false
			for _, nb := range g.Neighbors(w[k-1]) {
				if nb == w[k] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("walk steps over a non-edge %d->%d", w[k-1], w[k])
			}
		}
	}
	// Visits bookkeeping consistent with walks.
	var emitted int64
	for _, w := range c.Walks {
		emitted += int64(len(w))
	}
	var visits int64
	for _, v := range c.Visits {
		visits += v
	}
	if emitted != visits {
		t.Errorf("emitted %d != visits %d", emitted, visits)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := lineGraph(9)
	a := Generate(g, Options{WalkLength: 8, WalksPerNode: 2, Seed: 42, Workers: 2})
	b := Generate(g, Options{WalkLength: 8, WalksPerNode: 2, Seed: 42, Workers: 4})
	if len(a.Walks) != len(b.Walks) {
		t.Fatalf("walk counts differ: %d vs %d", len(a.Walks), len(b.Walks))
	}
	// Per-walk RNG depends only on (seed, iteration, start), so walks
	// must be identical regardless of worker count once sorted by
	// iteration order — they are generated in deterministic order.
	for i := range a.Walks {
		if len(a.Walks[i]) != len(b.Walks[i]) {
			t.Fatalf("walk %d lengths differ", i)
		}
		for k := range a.Walks[i] {
			if a.Walks[i][k] != b.Walks[i][k] {
				t.Fatalf("walk %d diverges at step %d", i, k)
			}
		}
	}
}

func TestVisitLimitSuppressesValueNodes(t *testing.T) {
	// Star graph: one value node connected to many rows. With a visit
	// limit the hub must stop being emitted.
	tt := &textify.TokenizedTable{Table: "t", Attrs: []string{"x"}}
	for i := 0; i < 20; i++ {
		tt.Cells = append(tt.Cells, [][]string{{"hub"}})
	}
	g, _ := graph.Build([]*textify.TokenizedTable{tt}, graph.Options{})
	hub, ok := g.ValueNodeID("hub")
	if !ok {
		t.Fatal("no hub node")
	}
	c := Generate(g, Options{WalkLength: 20, WalksPerNode: 4, VisitLimit: 5, Seed: 3})
	if c.Visits[hub] > 6 { // limit plus at most one in-flight emit
		t.Errorf("hub visits = %d with limit 5", c.Visits[hub])
	}
	// Without the limit the hub dominates.
	c2 := Generate(g, Options{WalkLength: 20, WalksPerNode: 4, Seed: 3})
	if c2.Visits[hub] < 100 {
		t.Errorf("unexpected: hub visits only %d without limit", c2.Visits[hub])
	}
}

func TestRestartIterationsBoostLeastVisited(t *testing.T) {
	// Lollipop: a dense clique with a pendant path. Pendant nodes are
	// under-visited; restarts must narrow the gap.
	g := graph.New(false)
	var clique []int32
	for i := 0; i < 6; i++ {
		clique = append(clique, g.AddRowNode("c", i))
	}
	for i := 0; i < 6; i++ {
		v := g.AddValueNode(tokenName(i))
		for _, r := range clique {
			g.AddEdge(r, v, 1)
		}
	}
	// Pendant path off clique row 0.
	p1 := g.AddValueNode("p1")
	p2 := g.AddRowNode("p", 0)
	g.AddEdge(clique[0], p1, 1)
	g.AddEdge(p1, p2, 1)

	plain := Generate(g, Options{WalkLength: 12, WalksPerNode: 6, Seed: 4})
	balanced := Generate(g, Options{WalkLength: 12, WalksPerNode: 6, RestartIterations: 3, Seed: 4})

	// The mechanism's contract: restart iterations start more walks
	// from the worst-represented nodes (the pendant) than plain
	// iterations do.
	startsAt := func(c *Corpus, node int32) int {
		n := 0
		for _, w := range c.Walks {
			if len(w) > 0 && w[0] == node {
				n++
			}
		}
		return n
	}
	if sb, sp := startsAt(balanced, p2), startsAt(plain, p2); sb <= sp {
		t.Errorf("restart walks did not start more often at pendant: %d <= %d", sb, sp)
	}
}

func TestNode2VecBiasPrefersReturn(t *testing.T) {
	// Triangle-free path; with tiny p the walk should bounce back and
	// forth (return bias), yielding alternating sequences.
	g := lineGraph(5)
	c := Generate(g, Options{WalkLength: 12, WalksPerNode: 2, P: 0.01, Q: 1, Seed: 5})
	bounces, steps := 0, 0
	for _, w := range c.Walks {
		for k := 2; k < len(w); k++ {
			steps++
			if w[k] == w[k-2] {
				bounces++
			}
		}
	}
	if steps == 0 || float64(bounces)/float64(steps) < 0.8 {
		t.Errorf("return bias weak: %d/%d bounces", bounces, steps)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(false)
	c := Generate(g, Options{})
	if len(c.Walks) != 0 {
		t.Error("walks on empty graph")
	}
}
