package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log records by severity.
type Level int8

const (
	// LevelDebug is per-operation detail (span ends, cache probes).
	LevelDebug Level = iota - 1
	// LevelInfo is normal operational events.
	LevelInfo
	// LevelWarn is degraded-but-working conditions.
	LevelWarn
	// LevelError is failures that need an operator.
	LevelError
)

// String returns the lowercase level name used in the level= field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// Logger writes leveled structured records as one key=value line each:
//
//	time=2026-08-08T12:00:00.000Z level=info msg="reload complete" generation=2
//
// The schema is fixed: `time`, `level`, `msg` first, then any
// With-bound pairs, then the call's pairs. Values are quoted only when
// they contain spaces, quotes, or '=' — so lines stay grep- and
// cut-friendly (see docs/OBSERVABILITY.md for the full log schema).
//
// The sink is injectable (any io.Writer) and every write is a single
// Write call under a mutex shared by all derived loggers, so
// concurrent records never interleave. A nil *Logger drops every
// record, making logging free to wire optionally.
type Logger struct {
	mu  *sync.Mutex
	w   io.Writer
	min Level
	// bound is the preformatted " k=v ..." suffix from With.
	bound string
	// now is injectable for tests; nil means time.Now.
	now func() time.Time
}

// NewLogger returns a Logger writing records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min}
}

// WithClock returns a copy using now for timestamps — the test seam.
func (l *Logger) WithClock(now func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.now = now
	return &c
}

// With returns a logger whose records all carry the given key=value
// pairs (bound after msg, before per-call pairs).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	var b strings.Builder
	appendPairs(&b, kv)
	c := *l
	c.bound += b.String()
	return &c
}

// Enabled reports whether records at lv would be written.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	var b strings.Builder
	b.Grow(96)
	b.WriteString("time=")
	b.WriteString(now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	appendValue(&b, msg)
	b.WriteString(l.bound)
	appendPairs(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendPairs renders kv as " k=v" pairs. A trailing odd value is
// reported under the key "!missing" rather than dropped.
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteString(key)
		b.WriteByte('=')
		appendValue(b, kv[i+1])
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !missing=")
		appendValue(b, kv[len(kv)-1])
	}
}

// appendValue renders one value, quoting strings that would break the
// key=value grammar.
func appendValue(b *strings.Builder, v any) {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case error:
		s = x.Error()
	case time.Duration:
		s = x.String()
	case float64:
		s = strconv.FormatFloat(x, 'g', -1, 64)
	default:
		s = fmt.Sprint(v)
	}
	if s == "" || strings.ContainsAny(s, " \"=\n\t") {
		b.WriteString(strconv.Quote(s))
		return
	}
	b.WriteString(s)
}
