package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the Prometheus metric type of a family.
type Kind uint8

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// atomicFloat is a float64 updated with lock-free CAS loops, so
// counters and histogram sums can carry fractional values (seconds)
// without a mutex on the hot path.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// series is one label-value combination of a family: a single rendered
// sample line (or bucket set, for histograms).
type series struct {
	labelValues []string

	// val is the counter or gauge value.
	val atomicFloat

	// Histogram state: counts has one slot per bucket bound plus one
	// overflow slot; sum accumulates observed values.
	counts []atomic.Uint64
	sum    atomicFloat
}

// family is one named metric with a fixed label schema; instruments
// are views onto (family, series) pairs, and registries hold sets of
// families.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	// bounds are the histogram bucket upper bounds (strictly
	// increasing); nil for counters and gauges.
	bounds []float64
	// fn, when non-nil, makes this a pull-style single-series family
	// whose value is read at render time (GaugeFunc / CounterFunc).
	fn func() float64

	mu       sync.RWMutex
	children map[string]*series
}

// seriesKey joins label values into a map key; 0x1f never occurs in
// sane label values and keeps ("a","bc") distinct from ("ab","c").
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// with returns (creating if needed) the series for the given label
// values.
func (f *family) with(values ...string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s := f.children[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.children[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		s.counts = make([]atomic.Uint64, len(f.bounds)+1)
	}
	f.children[key] = s
	return s
}

// snapshotSeries returns the children sorted by label values, for
// deterministic rendering.
func (f *family) snapshotSeries() []*series {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	f.mu.RUnlock()
	return out
}

func newFamily(name, help string, kind Kind, labelNames []string, bounds []float64) *family {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: metric %q: bucket bounds must be strictly increasing", name))
		}
	}
	return &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]float64(nil), bounds...),
		children:   make(map[string]*series),
	}
}

// Collector is implemented by every instrument so registries can
// attach them. It is satisfied only by this package's types.
type Collector interface{ metricFamily() *family }

// Counter is a monotonically increasing value. A Counter obtained
// from a CounterVec registers its whole family.
type Counter struct {
	f *family
	s *series
}

func (c *Counter) metricFamily() *family { return c.f }

// Inc adds one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds v, which must not be negative (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter Add with negative value")
	}
	c.s.val.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.s.val.Load() }

// NewCounter returns a standalone counter, attachable to registries
// with Registry.Register.
func NewCounter(name, help string) *Counter {
	f := newFamily(name, help, KindCounter, nil, nil)
	return &Counter{f: f, s: f.with()}
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

func (v *CounterVec) metricFamily() *family { return v.f }

// With returns the counter for one label-value combination, creating
// it on first use. The combination's sample renders as zero until the
// first Add/Inc.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{f: v.f, s: v.f.with(labelValues...)}
}

// NewCounterVec returns a standalone labeled counter family.
func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: newFamily(name, help, KindCounter, labelNames, nil)}
}

// Gauge is a value that can move both ways.
type Gauge struct {
	f *family
	s *series
}

func (g *Gauge) metricFamily() *family { return g.f }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.s.val.Store(v) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { g.s.val.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.s.val.Load() }

// NewGauge returns a standalone gauge.
func NewGauge(name, help string) *Gauge {
	f := newFamily(name, help, KindGauge, nil, nil)
	return &Gauge{f: f, s: f.with()}
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

func (v *GaugeVec) metricFamily() *family { return v.f }

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{f: v.f, s: v.f.with(labelValues...)}
}

// NewGaugeVec returns a standalone labeled gauge family.
func NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: newFamily(name, help, KindGauge, labelNames, nil)}
}

// funcView is a pull-style single-series family (GaugeFunc or
// CounterFunc): its value is fn() at render time.
type funcView struct{ f *family }

func (v *funcView) metricFamily() *family { return v.f }

// NewGaugeFunc returns a gauge whose value is read from fn at render
// time — for values something else already tracks (queue depths,
// cache sizes, uptime). fn must be safe for concurrent calls.
func NewGaugeFunc(name, help string, fn func() float64) Collector {
	f := newFamily(name, help, KindGauge, nil, nil)
	f.fn = fn
	return &funcView{f: f}
}

// NewCounterFunc is NewGaugeFunc rendered as a counter: fn must be
// monotonically non-decreasing.
func NewCounterFunc(name, help string, fn func() float64) Collector {
	f := newFamily(name, help, KindCounter, nil, nil)
	f.fn = fn
	return &funcView{f: f}
}

// Histogram is a fixed-bucket distribution. Bucket upper bounds are
// inclusive (Prometheus `le` semantics): an observation exactly on a
// bound lands in that bound's bucket.
type Histogram struct {
	f *family
	s *series
}

func (h *Histogram) metricFamily() *family { return h.f }

// Observe records one value.
func (h *Histogram) Observe(v float64) { observe(h.f, h.s, v) }

// ObserveDuration records a duration in seconds, the Prometheus base
// unit for time.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return seriesCount(h.s) }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.s.sum.Load() }

// BucketCounts returns the per-bucket (non-cumulative) counts, the
// last slot being the overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.s.counts))
	for i := range h.s.counts {
		out[i] = h.s.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q < 1) as the upper bound
// of the bucket holding that rank; the overflow bucket reports the
// largest finite bound. Zero with no observations. The estimate is
// deliberately coarse — it is the bucket layout that bounds its error.
func (h *Histogram) Quantile(q float64) float64 {
	return quantile(h.f.bounds, h.s, q)
}

func observe(f *family, s *series, v float64) {
	i := 0
	for i < len(f.bounds) && v > f.bounds[i] {
		i++
	}
	s.counts[i].Add(1)
	s.sum.Add(v)
}

func seriesCount(s *series) uint64 {
	var total uint64
	for i := range s.counts {
		total += s.counts[i].Load()
	}
	return total
}

func quantile(bounds []float64, s *series, q float64) float64 {
	total := seriesCount(s)
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := uint64(q*float64(total)) + 1
	var cum uint64
	for i := range s.counts {
		cum += s.counts[i].Load()
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1]
		}
	}
	return bounds[len(bounds)-1]
}

// NewHistogram returns a standalone histogram with the given bucket
// upper bounds (strictly increasing; an implicit +Inf bucket follows).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	f := newFamily(name, help, KindHistogram, nil, bounds)
	return &Histogram{f: f, s: f.with()}
}

// HistogramVec is a histogram family partitioned by labels; every
// series shares the family's bucket layout.
type HistogramVec struct{ f *family }

func (v *HistogramVec) metricFamily() *family { return v.f }

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.with(labelValues...)}
}

// NewHistogramVec returns a standalone labeled histogram family.
func NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: newFamily(name, help, KindHistogram, labelNames, bounds)}
}

// LatencyBuckets is the request-latency bucket layout shared by the
// serving daemon's HTTP histograms: log-spaced 50µs → 10s, matching
// the hand-rolled histogram internal/serve used before this package
// existed (so dashboards keep their resolution across the migration).
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// StageBuckets is the bucket layout for offline pipeline stages, which
// run milliseconds to minutes: log-spaced 1ms → 600s.
var StageBuckets = []float64{
	1e-3, 5e-3, 25e-3, 100e-3, 250e-3,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// FsyncBuckets is the bucket layout for single filesystem operations
// (fsync, rename): log-spaced 10µs → 2.5s.
var FsyncBuckets = []float64{
	10e-6, 50e-6, 100e-6, 500e-6,
	1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3, 1, 2.5,
}
