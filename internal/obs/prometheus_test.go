package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		g := r.Gauge("b_gauge", "a gauge")
		g.Set(3.5)
		v := r.CounterVec("a_total", "a counter", "endpoint")
		v.With("featurize").Add(2)
		v.With("healthz").Inc()
		h := r.Histogram("c_seconds", "a histogram", []float64{0.1, 1})
		h.Observe(0.05)
		h.Observe(0.5)
		h.Observe(2)
		return r
	}
	var first string
	for i := 0; i < 2; i++ {
		var sb strings.Builder
		if err := build().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sb.String()
		} else if sb.String() != first {
			t.Errorf("render not deterministic:\n%s\nvs\n%s", first, sb.String())
		}
	}
	want := `# HELP a_total a counter
# TYPE a_total counter
a_total{endpoint="featurize"} 2
a_total{endpoint="healthz"} 1
# HELP b_gauge a gauge
# TYPE b_gauge gauge
b_gauge 3.5
# HELP c_seconds a histogram
# TYPE c_seconds histogram
c_seconds_bucket{le="0.1"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 3
c_seconds_sum 2.55
c_seconds_count 3
`
	if first != want {
		t.Errorf("rendered exposition mismatch:\ngot:\n%s\nwant:\n%s", first, want)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "line one\nline two with \\backslash", "path").
		With(`va"lue` + "\nnext\\").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP esc_total line one\nline two with \\backslash`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="va\"lue\nnext\\"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestWritePrometheusFuncFamilies(t *testing.T) {
	r := NewRegistry()
	val := 42.0
	r.Register(NewGaugeFunc("pull_gauge", "read at render", func() float64 { return val }))
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "pull_gauge 42\n") {
		t.Errorf("func gauge not rendered:\n%s", sb.String())
	}
	val = 43
	sb.Reset()
	_ = r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "pull_gauge 43\n") {
		t.Errorf("func gauge not re-read at render:\n%s", sb.String())
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "h").Add(7)
	r.CounterVec("labeled_total", "h", "k").With("v").Add(2)
	h := r.Histogram("dist", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	r.Register(NewGaugeFunc("fn_gauge", "h", func() float64 { return 9 }))

	snap := r.Snapshot()
	if got := snap["plain_total"]; got != 7.0 {
		t.Errorf("plain_total = %v, want 7", got)
	}
	if got := snap["fn_gauge"]; got != 9.0 {
		t.Errorf("fn_gauge = %v, want 9", got)
	}
	labeled, ok := snap["labeled_total"].(map[string]float64)
	if !ok || labeled["k=v"] != 2 {
		t.Errorf("labeled_total = %#v, want map with k=v:2", snap["labeled_total"])
	}
	dist, ok := snap["dist"].(map[string]any)
	if !ok {
		t.Fatalf("dist = %#v, want map", snap["dist"])
	}
	hs, ok := dist[""].(map[string]any)
	if !ok {
		t.Fatalf("dist[\"\"] = %#v, want histogram object", dist)
	}
	if hs["count"] != uint64(2) || hs["sum"] != 3.5 {
		t.Errorf("histogram snapshot = %#v", hs)
	}
	buckets := hs["buckets"].(map[string]uint64)
	if buckets["1"] != 1 || buckets["+Inf"] != 2 {
		t.Errorf("cumulative buckets = %#v", buckets)
	}
}
