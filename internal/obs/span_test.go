package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceRingEviction(t *testing.T) {
	tr := NewTrace(3)
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		tr.record(SpanRecord{Name: name, Duration: time.Duration(i)})
	}
	got := tr.Spans()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Name != want {
			t.Errorf("spans[%d] = %q, want %q (oldest first)", i, got[i].Name, want)
		}
	}
	if tr.Total() != 5 {
		t.Errorf("total = %d, want 5 (evicted spans still counted)", tr.Total())
	}
}

func TestSpanRecordsAnnotations(t *testing.T) {
	tr := NewTrace(8)
	sp := StartSpan(tr, "build.textify")
	sp.AddBytes(100)
	sp.AddBytes(28)
	sp.SetOutcome("rebuilt")
	d := sp.End()
	if d < 0 {
		t.Errorf("duration = %v", d)
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	r := spans[0]
	if r.Name != "build.textify" || r.Bytes != 128 || r.Outcome != "rebuilt" || r.Duration != d {
		t.Errorf("record = %+v, want name/bytes/outcome/duration preserved", r)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace(8)
	sp := StartSpan(tr, "x")
	d1 := sp.End()
	time.Sleep(time.Millisecond)
	d2 := sp.End()
	if d1 != d2 {
		t.Errorf("second End returned %v, want the original %v", d2, d1)
	}
	if tr.Total() != 1 {
		t.Errorf("span recorded %d times, want 1", tr.Total())
	}
}

func TestNilSafety(t *testing.T) {
	// nil trace: span still measures time.
	sp := StartSpan(nil, "x")
	if sp.End() < 0 {
		t.Error("nil-trace span did not measure")
	}
	// nil scope: Span still works.
	var sc *Scope
	if d := sc.Span("y").End(); d < 0 {
		t.Error("nil-scope span did not measure")
	}
	// nil trace methods.
	var tr *Trace
	tr.record(SpanRecord{})
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Error("nil trace not empty")
	}
	// zero-capacity ring drops everything.
	z := NewTrace(0)
	StartSpan(z, "dropped").End()
	if len(z.Spans()) != 0 {
		t.Error("zero-cap trace retained a span")
	}
}

func TestScopeContextRoundTrip(t *testing.T) {
	sc := NewScope()
	ctx := WithScope(context.Background(), sc)
	if ScopeFrom(ctx) != sc {
		t.Fatal("ScopeFrom did not return the stored scope")
	}
	Span(ctx, "build.embed").End()
	if sc.Trace.Total() != 1 {
		t.Errorf("ctx span not recorded into scope trace: total=%d", sc.Trace.Total())
	}
	// Context without a scope: Span degrades to timing-only.
	if d := Span(context.Background(), "free").End(); d < 0 {
		t.Error("scopeless ctx span did not measure")
	}
}

func TestNewScopeDefaults(t *testing.T) {
	sc := NewScope()
	if sc.Registry == nil || sc.Trace == nil {
		t.Fatal("NewScope missing registry or trace")
	}
	if sc.Logger != nil {
		t.Error("NewScope should leave the logger nil (logging opt-in)")
	}
}
