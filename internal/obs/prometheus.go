package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text
// exposition format WritePrometheus emits.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus
// text exposition format, families sorted by name and series sorted by
// label values, so two registries holding the same state render
// byte-identically (the property the /metrics golden test pins).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		if f.fn != nil {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatValue(f.fn()))
			continue
		}
		for _, s := range f.snapshotSeries() {
			switch f.kind {
			case KindHistogram:
				writeHistogramSeries(bw, f, s)
			default:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(f.labelNames, s.labelValues, "", ""), formatValue(s.val.Load()))
			}
		}
	}
	return bw.Flush()
}

// writeHistogramSeries emits the cumulative _bucket lines plus _sum
// and _count for one series.
func writeHistogramSeries(w io.Writer, f *family, s *series) {
	var cum uint64
	for i, bound := range f.bounds {
		cum += s.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			renderLabels(f.labelNames, s.labelValues, "le", formatValue(bound)), cum)
	}
	cum += s.counts[len(f.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
		renderLabels(f.labelNames, s.labelValues, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
		renderLabels(f.labelNames, s.labelValues, "", ""), formatValue(s.sum.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name,
		renderLabels(f.labelNames, s.labelValues, "", ""), cum)
}

// renderLabels renders {k="v",...}, optionally with one extra
// (name, value) pair appended (the histogram `le` label). Empty when
// there are no labels at all.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns a /debug/vars-style JSON-marshalable view of the
// registry: one key per family; plain values for unlabeled counters
// and gauges, a labels→value map for labeled ones, and
// {count, sum, buckets} objects for histograms. levad serves this at
// GET /debug/vars on -debug-addr.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, f := range r.sortedFamilies() {
		if f.fn != nil {
			out[f.name] = f.fn()
			continue
		}
		switch f.kind {
		case KindHistogram:
			m := make(map[string]any)
			for _, s := range f.snapshotSeries() {
				m[labelKey(f.labelNames, s.labelValues)] = histogramSnapshot(f, s)
			}
			out[f.name] = m
		default:
			if len(f.labelNames) == 0 {
				f.mu.RLock()
				s := f.children[""]
				f.mu.RUnlock()
				if s != nil {
					out[f.name] = s.val.Load()
				} else {
					out[f.name] = 0.0
				}
				continue
			}
			m := make(map[string]float64)
			for _, s := range f.snapshotSeries() {
				m[labelKey(f.labelNames, s.labelValues)] = s.val.Load()
			}
			out[f.name] = m
		}
	}
	return out
}

func labelKey(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	parts := make([]string, len(names))
	for i := range names {
		parts[i] = names[i] + "=" + values[i]
	}
	return strings.Join(parts, ",")
}

func histogramSnapshot(f *family, s *series) map[string]any {
	buckets := make(map[string]uint64, len(f.bounds)+1)
	var cum uint64
	for i, bound := range f.bounds {
		cum += s.counts[i].Load()
		buckets[formatValue(bound)] = cum
	}
	cum += s.counts[len(f.bounds)].Load()
	buckets["+Inf"] = cum
	return map[string]any{"count": cum, "sum": s.sum.Load(), "buckets": buckets}
}
