package obs

import (
	"sync"
	"time"
)

// SpanRecord is one finished span: a named unit of work with its wall
// time and the two annotations Leva's stages care about — bytes
// processed and cache outcome.
type SpanRecord struct {
	// Name follows the dotted convention documented in
	// docs/OBSERVABILITY.md: subsystem.stage[.detail], e.g.
	// "build.textify", "build.cache.store".
	Name string
	// Start is when the span began.
	Start time.Time
	// Duration is the span's wall time.
	Duration time.Duration
	// Bytes is the payload size the span processed, when known
	// (artifact bytes encoded, file bytes written); 0 otherwise.
	Bytes int64
	// Outcome annotates how the work was satisfied — for cache-backed
	// stages one of "hit", "miss", "cached", "partial", "rebuilt";
	// empty when the span has no cache dimension.
	Outcome string
}

// Trace is a bounded ring of finished spans — enough recent history to
// answer "where did the last build spend its time" without the
// unbounded growth of a real tracing backend. The zero capacity ring
// drops everything.
type Trace struct {
	mu    sync.Mutex
	cap   int
	spans []SpanRecord
	// next is the ring write position once len(spans) == cap.
	next int
	// total counts every span ever recorded, including evicted ones.
	total uint64
}

// NewTrace returns a trace ring keeping the most recent cap spans.
func NewTrace(cap int) *Trace {
	if cap < 0 {
		cap = 0
	}
	return &Trace{cap: cap}
}

// record appends one finished span, evicting the oldest past capacity.
// Safe on a nil trace.
func (t *Trace) record(r SpanRecord) {
	if t == nil || t.cap == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, r)
		return
	}
	t.spans[t.next] = r
	t.next = (t.next + 1) % t.cap
}

// Spans returns the recorded spans, oldest first.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// Total returns how many spans were ever recorded, including those the
// ring has evicted.
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// ActiveSpan is one in-flight unit of work. Start one with Scope.Span,
// obs.Span(ctx, name), or StartSpan; annotate it with AddBytes and
// SetOutcome; finish it with End, which records it to the trace (if
// any) and returns the measured wall time — the single time source
// callers feed into both duration histograms and reported timings, so
// the two can never disagree.
type ActiveSpan struct {
	name    string
	start   time.Time
	bytes   int64
	outcome string
	tr      *Trace
	done    bool
	dur     time.Duration
}

// StartSpan begins a span recorded into tr on End. tr may be nil; the
// span then only measures wall time.
func StartSpan(tr *Trace, name string) *ActiveSpan {
	return &ActiveSpan{name: name, start: time.Now(), tr: tr}
}

// AddBytes accrues processed payload bytes onto the span.
func (s *ActiveSpan) AddBytes(n int64) { s.bytes += n }

// SetOutcome annotates the span's cache outcome.
func (s *ActiveSpan) SetOutcome(o string) { s.outcome = o }

// End finishes the span, records it, and returns its wall time.
// Calling End again returns the originally measured duration without
// re-recording.
func (s *ActiveSpan) End() time.Duration {
	if s.done {
		return s.dur
	}
	d := time.Since(s.start)
	s.done = true
	s.dur = d
	s.tr.record(SpanRecord{
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Bytes:    s.bytes,
		Outcome:  s.outcome,
	})
	return d
}
