// Package obs is Leva's unified observability substrate: a
// dependency-free metrics registry (counters, gauges, histograms with
// fixed bucket layouts) rendered in Prometheus text exposition format,
// a leveled structured key=value logger with an injectable sink, and
// lightweight span tracing that records per-stage wall time, bytes
// processed, and cache outcome.
//
// Every subsystem instruments itself against this one package — the
// offline pipeline (internal/core), the serving daemon (internal/serve),
// the worker pool (internal/parallel), and the durability layer
// (internal/durable) — so one scrape of `GET /metrics` on levad, or one
// `leva embed -metrics-dump`, shows the whole system in one catalog
// (documented metric by metric in docs/OBSERVABILITY.md).
//
// # Instruments and registries
//
// Instruments are standalone values (NewCounter, NewGauge,
// NewHistogram, their label-carrying *Vec forms, and the pull-style
// NewGaugeFunc/NewCounterFunc) that can be attached to any number of
// Registry instances with Register. A Registry is a named collection
// that renders: WritePrometheus emits the text exposition format,
// Snapshot a /debug/vars-style JSON map. Registry.Counter and friends
// are get-or-create conveniences for registry-owned instruments.
//
// All instruments are safe for concurrent use and lock-free on the hot
// path (atomics only); registries take a read lock only while
// rendering.
//
// # Scopes and spans
//
// A Scope bundles the three facilities (Registry, Logger, Trace) so a
// subsystem can thread one handle through its call graph:
//
//	sc := obs.NewScope()
//	sp := sc.Span("textify")
//	... work ...
//	sp.SetOutcome("rebuilt")
//	d := sp.End() // records to the trace ring, returns wall time
//
// Spans are also available off a context (WithScope / Span), for call
// paths that already carry one.
package obs

import "context"

// Scope bundles the observability facilities one subsystem threads
// through its call graph. Any field may be nil; every method of Scope
// and of the objects it hands out is safe on a nil receiver or nil
// field, degrading to timing-only (spans) or no-op (logging, metrics
// registration) behavior.
type Scope struct {
	// Registry collects the metrics of this scope.
	Registry *Registry
	// Logger receives structured log records.
	Logger *Logger
	// Trace records finished spans in a bounded ring.
	Trace *Trace
}

// NewScope returns a Scope with a fresh registry and a trace ring of
// 256 spans. The logger is left nil (logging disabled) — attach one
// when log output is wanted.
func NewScope() *Scope {
	return &Scope{Registry: NewRegistry(), Trace: NewTrace(256)}
}

// Span starts a span named name, recorded into the scope's trace ring
// on End. Safe on a nil scope (the span still measures wall time).
func (sc *Scope) Span(name string) *ActiveSpan {
	if sc == nil {
		return StartSpan(nil, name)
	}
	return StartSpan(sc.Trace, name)
}

// scopeKey is the context key WithScope stores a *Scope under.
type scopeKey struct{}

// WithScope returns a context carrying sc, for call paths that already
// thread a context.
func WithScope(ctx context.Context, sc *Scope) context.Context {
	return context.WithValue(ctx, scopeKey{}, sc)
}

// ScopeFrom returns the Scope carried by ctx, or nil.
func ScopeFrom(ctx context.Context) *Scope {
	sc, _ := ctx.Value(scopeKey{}).(*Scope)
	return sc
}

// Span starts a span against the scope carried by ctx (nil scope is
// fine: the span still measures wall time). This is the
// `obs.Span(ctx, "textify")` form used on context-threaded call paths.
func Span(ctx context.Context, name string) *ActiveSpan {
	return ScopeFrom(ctx).Span(name)
}
