package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a named collection of metric families that renders as
// one Prometheus exposition (WritePrometheus) or one JSON snapshot
// (Snapshot). Families are attached with Register, or created
// in-place with the get-or-create methods (Counter, Gauge, …), which
// return the existing instrument when the name is already registered.
//
// A family may be attached to any number of registries (package-level
// instruments like internal/parallel's worker gauges register into
// both the daemon's registry and a CLI build's), and attachment is
// idempotent. Attaching a *different* family under an
// already-registered name panics: metric names are an API, and a
// silent collision would corrupt whichever dashboard reads them.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Register attaches instruments (any of this package's metric types)
// to the registry. Re-registering the same instrument is a no-op;
// registering a different instrument under an existing name panics.
func (r *Registry) Register(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		f := c.metricFamily()
		if existing, ok := r.families[f.name]; ok {
			if existing != f {
				panic(fmt.Sprintf("obs: duplicate registration of metric %q with a different instrument", f.name))
			}
			continue
		}
		r.families[f.name] = f
	}
}

// lookup returns the family registered under name, or nil.
func (r *Registry) lookup(name string, kind Kind) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f != nil && f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the registry's counter named name, creating and
// registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if f := r.lookup(name, KindCounter); f != nil {
		return &Counter{f: f, s: f.with()}
	}
	c := NewCounter(name, help)
	r.Register(c)
	return c
}

// CounterVec is Counter for a labeled family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if f := r.lookup(name, KindCounter); f != nil {
		return &CounterVec{f: f}
	}
	v := NewCounterVec(name, help, labelNames...)
	r.Register(v)
	return v
}

// Gauge returns the registry's gauge named name, creating and
// registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if f := r.lookup(name, KindGauge); f != nil {
		return &Gauge{f: f, s: f.with()}
	}
	g := NewGauge(name, help)
	r.Register(g)
	return g
}

// GaugeVec is Gauge for a labeled family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if f := r.lookup(name, KindGauge); f != nil {
		return &GaugeVec{f: f}
	}
	v := NewGaugeVec(name, help, labelNames...)
	r.Register(v)
	return v
}

// Histogram returns the registry's histogram named name, creating and
// registering it (with the given bounds) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if f := r.lookup(name, KindHistogram); f != nil {
		return &Histogram{f: f, s: f.with()}
	}
	h := NewHistogram(name, help, bounds)
	r.Register(h)
	return h
}

// HistogramVec is Histogram for a labeled family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if f := r.lookup(name, KindHistogram); f != nil {
		return &HistogramVec{f: f}
	}
	v := NewHistogramVec(name, help, bounds, labelNames...)
	r.Register(v)
	return v
}

// FamilyInfo describes one registered metric family — the unit of the
// documented catalog (docs/OBSERVABILITY.md), and what the
// catalog-sync test diffs against that document.
type FamilyInfo struct {
	Name   string
	Kind   Kind
	Help   string
	Labels []string
}

// Families lists the registered families sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.RLock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{
			Name:   f.name,
			Kind:   f.kind,
			Help:   f.help,
			Labels: append([]string(nil), f.labelNames...),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sortedFamilies returns the families sorted by name for rendering.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
