package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	ts := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return ts }
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).WithClock(fixedClock())
	l.Info("reload complete", "generation", 2, "took", 1500*time.Millisecond)
	want := "time=2026-08-08T12:00:00.000Z level=info msg=\"reload complete\" generation=2 took=1.5s\n"
	if buf.String() != want {
		t.Errorf("line = %q, want %q", buf.String(), want)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn).WithClock(fixedClock())
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("wrong lines passed the filter:\n%s", buf.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestLoggerWithBindsPairs(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).WithClock(fixedClock()).With("component", "serve")
	l.Info("hit", "endpoint", "featurize")
	want := "time=2026-08-08T12:00:00.000Z level=info msg=hit component=serve endpoint=featurize\n"
	if buf.String() != want {
		t.Errorf("line = %q, want %q", buf.String(), want)
	}
}

func TestLoggerValueQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).WithClock(fixedClock())
	l.Info("m",
		"spaced", "a b",
		"eq", "k=v",
		"empty", "",
		"err", errors.New("open /x: no such file"),
		"f", 0.25,
	)
	line := buf.String()
	for _, want := range []string{
		`spaced="a b"`,
		`eq="k=v"`,
		`empty=""`,
		`err="open /x: no such file"`,
		`f=0.25`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q:\n%s", want, line)
		}
	}
}

func TestLoggerOddPairs(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).WithClock(fixedClock())
	l.Info("m", "k", 1, "dangling")
	if !strings.Contains(buf.String(), "!missing=dangling") {
		t.Errorf("trailing odd value dropped:\n%s", buf.String())
	}
}

func TestNilLoggerIsNoop(t *testing.T) {
	var l *Logger
	// Must not panic; With/WithClock must stay nil-safe too.
	l.Info("dropped", "k", "v")
	l.With("a", "b").WithClock(fixedClock()).Error("dropped")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
}

func TestLoggerConcurrentLinesDoNotInterleave(t *testing.T) {
	// bytes.Buffer is not itself goroutine-safe; the Logger's mutex is
	// what must serialize the writes for this to pass under -race.
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).WithClock(fixedClock())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				l.Info("tick", "payload", strings.Repeat("x", 64))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "time=") || !strings.HasSuffix(line, strings.Repeat("x", 64)) {
			t.Fatalf("interleaved or truncated line: %q", line)
		}
	}
}
