package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative counter Add did not panic")
		}
	}()

	g := NewGauge("g", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
	c.Add(-1)
}

func TestVecLabelArity(t *testing.T) {
	v := NewCounterVec("v_total", "help", "a", "b")
	v.With("x", "y").Inc()
	v.With("x", "y").Inc()
	if got := v.With("x", "y").Value(); got != 2 {
		t.Errorf("series = %v, want 2", got)
	}
	if got := v.With("x", "z").Value(); got != 0 {
		t.Errorf("fresh series = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound
// semantics of Prometheus `le` buckets: an observation exactly on a
// bound lands in that bound's bucket, one ulp above it lands in the
// next, and values past the last bound land in the overflow slot.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("h", "help", []float64{1, 2, 5})
	h.Observe(1)   // bucket le=1, inclusive
	h.Observe(1.5) // bucket le=2
	h.Observe(2)   // bucket le=2, inclusive
	h.Observe(5)   // bucket le=5, inclusive
	h.Observe(5.1) // overflow
	h.Observe(0)   // bucket le=1

	want := []uint64{2, 2, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+1.5+2+5+5.1+0 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("hq", "help", []float64{1, 2, 5})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	for i := 0; i < 60; i++ {
		h.Observe(0.5) // le=1
	}
	for i := 0; i < 35; i++ {
		h.Observe(1.5) // le=2
	}
	for i := 0; i < 5; i++ {
		h.Observe(100) // overflow
	}
	// rank(q) = int(q*total)+1, matching the pre-obs serve histogram:
	// p50 → rank 51 in the first bucket (60 cum), p90 → rank 91 in the
	// second (95 cum), p99 → rank 100 in overflow.
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %v, want 1", q)
	}
	if q := h.Quantile(0.9); q != 2 {
		t.Errorf("p90 = %v, want 2", q)
	}
	// The overflow bucket reports the largest finite bound, matching
	// the pre-obs serve histogram's convention.
	if q := h.Quantile(0.99); q != 5 {
		t.Errorf("p99 = %v, want 5 (overflow reports last bound)", q)
	}
}

func TestHistogramVecSharesBounds(t *testing.T) {
	v := NewHistogramVec("hv", "help", []float64{1, 10}, "stage")
	v.With("a").Observe(0.5)
	v.With("b").Observe(5)
	if v.With("a").Count() != 1 || v.With("b").Count() != 1 {
		t.Error("per-series counts wrong")
	}
	v.With("a").ObserveDuration(500 * time.Millisecond)
	if got := v.With("a").Count(); got != 2 {
		t.Errorf("count after ObserveDuration = %d, want 2", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c1.Inc()
	c2 := r.Counter("x_total", "ignored on re-get")
	c2.Inc()
	if got := c1.Value(); got != 2 {
		t.Errorf("shared counter = %v, want 2 (get-or-create must return the same series)", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "wrong kind")
}

func TestRegistryDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	a := NewCounter("dup_total", "a")
	b := NewCounter("dup_total", "b")
	r.Register(a)
	r.Register(a) // same instrument: idempotent
	defer func() {
		if recover() == nil {
			t.Error("conflicting registration did not panic")
		}
	}()
	r.Register(b)
}

func TestInstrumentSharedAcrossRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	c := NewCounter("shared_total", "help")
	a.Register(c)
	b.Register(c)
	c.Inc()
	for _, r := range []*Registry{a, b} {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "shared_total 1\n") {
			t.Errorf("registry missing shared counter value:\n%s", sb.String())
		}
	}
}

func TestConcurrentInstrumentWrites(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cc_total", "help", "w")
	h := r.Histogram("ch", "help", LatencyBuckets)
	g := r.Gauge("cg", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := fmt.Sprint(w % 3)
			for i := 0; i < 1000; i++ {
				v.With(lbl).Inc()
				h.Observe(float64(i) * 1e-4)
				g.Add(1)
			}
		}(w)
	}
	// Render concurrently with the writes: must not race or corrupt.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	var total float64
	for _, lbl := range []string{"0", "1", "2"} {
		total += v.With(lbl).Value()
	}
	if total != 8000 {
		t.Errorf("counter total = %v, want 8000", total)
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
}
