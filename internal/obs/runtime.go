package obs

import "runtime"

// RegisterRuntimeMetrics attaches Go-runtime health gauges to r:
// goroutine count, heap in use, and completed GC cycles. ReadMemStats
// briefly stops the world, so these read at scrape time, not on a
// background ticker — one scrape, one read.
func RegisterRuntimeMetrics(r *Registry) {
	r.Register(
		NewGaugeFunc("leva_go_goroutines",
			"Number of live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) }),
		NewGaugeFunc("leva_go_heap_alloc_bytes",
			"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
			func() float64 {
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				return float64(m.HeapAlloc)
			}),
		NewCounterFunc("leva_go_gc_cycles_total",
			"Completed GC cycles since process start.",
			func() float64 {
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				return float64(m.NumGC)
			}),
	)
}
