package matrix

import (
	"math/rand"
	"testing"
)

// randCSR builds a deterministic sparse matrix with roughly density*r*c
// entries.
func randCSR(r, c int, density float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var entries []COO
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				entries = append(entries, COO{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSR(r, c, entries)
}

func csrEqual(t *testing.T, name string, a, b *CSR) {
	t.Helper()
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.NumRows, a.NumCols, b.NumRows, b.NumCols)
	}
	if len(a.Vals) != len(b.Vals) {
		t.Fatalf("%s: nnz %d vs %d", name, len(a.Vals), len(b.Vals))
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			t.Fatalf("%s: RowPtr[%d] = %d vs %d", name, i, a.RowPtr[i], b.RowPtr[i])
		}
	}
	for i := range a.Vals {
		if a.ColIdx[i] != b.ColIdx[i] || a.Vals[i] != b.Vals[i] {
			t.Fatalf("%s: entry %d = (%d, %v) vs (%d, %v)",
				name, i, a.ColIdx[i], a.Vals[i], b.ColIdx[i], b.Vals[i])
		}
	}
}

func denseEqual(t *testing.T, name string, a, b *Dense) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			t.Fatalf("%s: element %d = %v vs %v (must be bit-identical)", name, i, v, b.Data[i])
		}
	}
}

// The worker-partitioned kernels promise bit-identical results at every
// worker count; these tests hold them to it.

func TestMulDenseWorkersBitIdentical(t *testing.T) {
	m := randCSR(83, 61, 0.1, 1)
	b := Gaussian(61, 17, rand.New(rand.NewSource(2)))
	want := m.MulDense(b)
	for _, w := range []int{2, 3, 8} {
		denseEqual(t, "MulDenseWorkers", want, m.MulDenseWorkers(b, w))
	}
}

func TestTMulDenseWorkersBitIdentical(t *testing.T) {
	m := randCSR(83, 61, 0.1, 3)
	b := Gaussian(83, 17, rand.New(rand.NewSource(4)))
	want := m.TMulDense(b)
	for _, w := range []int{2, 3, 8} {
		denseEqual(t, "TMulDenseWorkers", want, m.TMulDenseWorkers(b, w))
	}
}

func TestDenseMulWorkersBitIdentical(t *testing.T) {
	a := Gaussian(70, 31, rand.New(rand.NewSource(5)))
	b := Gaussian(31, 23, rand.New(rand.NewSource(6)))
	want := a.Mul(b)
	for _, w := range []int{2, 3, 8} {
		denseEqual(t, "MulWorkers", want, a.MulWorkers(b, w))
	}
}

func TestMulCSRPruneWorkersBitIdentical(t *testing.T) {
	a := randCSR(90, 90, 0.08, 7)
	b := randCSR(90, 90, 0.08, 8)
	want := MulCSRPrune(a, b, 5, 1e-9)
	for _, w := range []int{2, 3, 8} {
		csrEqual(t, "MulCSRPruneWorkers", want, MulCSRPruneWorkers(a, b, 5, 1e-9, w))
	}
}

func TestAddCSRWorkersBitIdentical(t *testing.T) {
	a := randCSR(90, 40, 0.1, 9)
	b := randCSR(90, 40, 0.1, 10)
	want := AddCSR(a, b)
	for _, w := range []int{2, 3, 8} {
		csrEqual(t, "AddCSRWorkers", want, AddCSRWorkers(a, b, w))
	}
}

func TestRandomizedSVDWorkersBitIdentical(t *testing.T) {
	m := randCSR(120, 120, 0.1, 11)
	want := RandomizedSVD(m, 8, 4, 2, rand.New(rand.NewSource(12)))
	for _, w := range []int{2, 3} {
		got := RandomizedSVDWorkers(m, 8, 4, 2, rand.New(rand.NewSource(12)), w)
		denseEqual(t, "U", want.U, got.U)
		denseEqual(t, "V", want.V, got.V)
		for i := range want.Sigma {
			if want.Sigma[i] != got.Sigma[i] {
				t.Fatalf("Sigma[%d] = %v vs %v", i, want.Sigma[i], got.Sigma[i])
			}
		}
	}
}

func TestChebyshevPropagateWorkersBitIdentical(t *testing.T) {
	// A symmetric adjacency, as the filter requires.
	base := randCSR(60, 60, 0.1, 13)
	var entries []COO
	for i := 0; i < base.NumRows; i++ {
		for p := base.RowPtr[i]; p < base.RowPtr[i+1]; p++ {
			v := base.Vals[p]
			if v < 0 {
				v = -v
			}
			entries = append(entries,
				COO{Row: i, Col: int(base.ColIdx[p]), Val: v},
				COO{Row: int(base.ColIdx[p]), Col: i, Val: v})
		}
	}
	adj := NewCSR(60, 60, entries)
	emb := Gaussian(60, 12, rand.New(rand.NewSource(14)))
	want := ChebyshevPropagate(adj, emb, 10, 0.2, 0.5)
	for _, w := range []int{2, 3} {
		denseEqual(t, "ChebyshevPropagateWorkers", want, ChebyshevPropagateWorkers(adj, emb, 10, 0.2, 0.5, w))
	}
}

func TestShardedCSRSingleRowAndEmpty(t *testing.T) {
	empty := ShardedCSR(0, 5, 4, func(lo, hi int, frag *CSR) {
		t.Fatal("fill must not run for an empty matrix")
	})
	if empty.NumRows != 0 || empty.NNZ() != 0 || len(empty.RowPtr) != 1 {
		t.Fatalf("empty ShardedCSR malformed: %+v", empty)
	}
	one := ShardedCSR(1, 3, 4, func(lo, hi int, frag *CSR) {
		frag.ColIdx = append(frag.ColIdx, 2)
		frag.Vals = append(frag.Vals, 1.5)
		frag.RowPtr[1] = 1
	})
	if one.At(0, 2) != 1.5 || one.NNZ() != 1 {
		t.Fatalf("single-row ShardedCSR malformed: %+v", one)
	}
}
