package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matricesClose(t *testing.T, a, b *Dense, tol float64, what string) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", what, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i, v := range a.Data {
		if !approxEqual(v, b.Data[i], tol) {
			t.Fatalf("%s: element %d: %v vs %v", what, i, v, b.Data[i])
		}
	}
}

func TestDenseMulVariants(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})  // 3x2
	b := FromRows([][]float64{{7, 8, 9}, {10, 11, 12}}) // 2x3

	ab := a.Mul(b)
	want := FromRows([][]float64{{27, 30, 33}, {61, 68, 75}, {95, 106, 117}})
	matricesClose(t, ab, want, 1e-12, "Mul")

	// MulT: a * aᵀ vs explicit transpose.
	matricesClose(t, a.MulT(a), a.Mul(a.T()), 1e-12, "MulT")
	// TMul: aᵀ * a.
	matricesClose(t, a.TMul(a), a.T().Mul(a), 1e-12, "TMul")
}

func TestDenseAddSubScaleNorm(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 1}, {1, 1}})
	if got := a.Clone().Add(b).At(1, 1); got != 5 {
		t.Errorf("Add = %v", got)
	}
	if got := a.Clone().Sub(b).At(0, 0); got != 0 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Clone().Scale(2).At(1, 0); got != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := b.Norm(); got != 2 {
		t.Errorf("Norm = %v", got)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot")
	}
	if L1Distance([]float64{1, 5}, []float64{4, 1}) != 7 {
		t.Error("L1Distance")
	}
	if L2Norm([]float64{3, 4}) != 5 {
		t.Error("L2Norm")
	}
	if s := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); !approxEqual(s, 1, 1e-12) {
		t.Errorf("cosine identical = %v", s)
	}
	if s := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !approxEqual(s, 0, 1e-12) {
		t.Errorf("cosine orthogonal = %v", s)
	}
	if CosineSimilarity([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Error("cosine zero vector")
	}
}

func TestQROrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Gaussian(40, 8, rng)
	q := QR(a)
	qtq := q.TMul(q)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !approxEqual(qtq.At(i, j), want, 1e-8) {
				t.Fatalf("QᵀQ[%d,%d] = %v", i, j, qtq.At(i, j))
			}
		}
	}
	// Range preserved: QQᵀa ≈ a.
	proj := q.Mul(q.TMul(a))
	matricesClose(t, proj, a, 1e-8, "range")
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: second orthogonalizes to zero.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	q := QR(a)
	for i := 0; i < 3; i++ {
		if q.At(i, 1) != 0 {
			t.Fatalf("dependent column not zeroed: %v", q.At(i, 1))
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 10
	m := Gaussian(n, n, rng)
	sym := m.Clone().Add(m.T()) // symmetric
	vals, v := SymEigen(sym)

	// Descending order.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-9 {
			t.Fatalf("eigenvalues not descending at %d", i)
		}
	}
	// A v_j = λ_j v_j.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			av := 0.0
			for k := 0; k < n; k++ {
				av += sym.At(i, k) * v.At(k, j)
			}
			if !approxEqual(av, vals[j]*v.At(i, j), 1e-7) {
				t.Fatalf("eigenpair %d fails at row %d: %v vs %v", j, i, av, vals[j]*v.At(i, j))
			}
		}
	}
}

func TestCSRBasics(t *testing.T) {
	m := NewCSR(3, 4, []COO{
		{Row: 0, Col: 1, Val: 2},
		{Row: 2, Col: 3, Val: 5},
		{Row: 2, Col: 0, Val: 1},
		{Row: 0, Col: 1, Val: 3}, // duplicate sums
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(0, 1) != 5 || m.At(2, 0) != 1 || m.At(1, 1) != 0 {
		t.Errorf("At values wrong: %v %v %v", m.At(0, 1), m.At(2, 0), m.At(1, 1))
	}
	sums := m.RowSums()
	if sums[0] != 5 || sums[1] != 0 || sums[2] != 6 {
		t.Errorf("RowSums = %v", sums)
	}
}

func TestCSRDenseAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var coos []COO
	for k := 0; k < 60; k++ {
		coos = append(coos, COO{Row: rng.Intn(8), Col: rng.Intn(9), Val: rng.NormFloat64()})
	}
	s := NewCSR(8, 9, coos)
	d := s.Dense()
	b := Gaussian(9, 5, rng)
	matricesClose(t, s.MulDense(b), d.Mul(b), 1e-10, "MulDense")
	c := Gaussian(8, 5, rng)
	matricesClose(t, s.TMulDense(c), d.T().Mul(c), 1e-10, "TMulDense")

	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	mv := s.MulVec(x)
	want := d.Mul(FromRows(columnize(x)))
	for i := range mv {
		if !approxEqual(mv[i], want.At(i, 0), 1e-10) {
			t.Fatalf("MulVec[%d]", i)
		}
	}
}

func columnize(x []float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, v := range x {
		out[i] = []float64{v}
	}
	return out
}

func TestMulCSRPruneMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ca, cb []COO
	for k := 0; k < 40; k++ {
		ca = append(ca, COO{Row: rng.Intn(6), Col: rng.Intn(7), Val: rng.Float64()})
		cb = append(cb, COO{Row: rng.Intn(7), Col: rng.Intn(5), Val: rng.Float64()})
	}
	a, b := NewCSR(6, 7, ca), NewCSR(7, 5, cb)
	prod := MulCSRPrune(a, b, 0, 0)
	matricesClose(t, prod.Dense(), a.Dense().Mul(b.Dense()), 1e-10, "MulCSRPrune unpruned")

	// topK bounds row fanout.
	pruned := MulCSRPrune(a, b, 2, 0)
	for i := 0; i < pruned.NumRows; i++ {
		if pruned.RowPtr[i+1]-pruned.RowPtr[i] > 2 {
			t.Fatalf("row %d kept more than topK entries", i)
		}
	}
}

func TestAddCSR(t *testing.T) {
	a := NewCSR(2, 3, []COO{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 2, Val: 2}})
	b := NewCSR(2, 3, []COO{{Row: 0, Col: 0, Val: 3}, {Row: 0, Col: 1, Val: 4}})
	sum := AddCSR(a, b)
	want := a.Dense().Add(b.Dense())
	matricesClose(t, sum.Dense(), want, 1e-12, "AddCSR")
}

func TestRandomizedSVDRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Rank-3 matrix: U0 * V0ᵀ with 60x3 and 3x50 factors.
	u0 := Gaussian(60, 3, rng)
	v0 := Gaussian(50, 3, rng)
	dense := u0.MulT(v0)
	var coos []COO
	for i := 0; i < 60; i++ {
		for j := 0; j < 50; j++ {
			coos = append(coos, COO{Row: i, Col: j, Val: dense.At(i, j)})
		}
	}
	m := NewCSR(60, 50, coos)
	res := RandomizedSVD(m, 3, 8, 2, rng)

	// Reconstruction U Σ Vᵀ ≈ M.
	us := res.U.Clone()
	for j := 0; j < 3; j++ {
		for i := 0; i < us.Rows; i++ {
			us.Data[i*3+j] *= res.Sigma[j]
		}
	}
	rec := us.MulT(res.V)
	diff := rec.Clone().Sub(dense)
	if rel := diff.Norm() / dense.Norm(); rel > 1e-6 {
		t.Fatalf("rank-3 reconstruction relative error %v", rel)
	}
	// EmbeddingFromSVD shape.
	e := EmbeddingFromSVD(res)
	if e.Rows != 60 || e.Cols != 3 {
		t.Fatalf("embedding shape %dx%d", e.Rows, e.Cols)
	}
}

func TestPCA(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Points stretched along (1, 1, 0) direction.
	x := NewDense(300, 3)
	for i := 0; i < 300; i++ {
		s := rng.NormFloat64() * 10
		x.Set(i, 0, s+rng.NormFloat64()*0.1)
		x.Set(i, 1, s+rng.NormFloat64()*0.1)
		x.Set(i, 2, rng.NormFloat64()*0.1)
	}
	p := FitPCA(x, 1)
	proj := p.Transform(x)
	if proj.Cols != 1 {
		t.Fatalf("projection cols = %d", proj.Cols)
	}
	// Projected variance must capture almost all original variance.
	var varProj, varOrig float64
	for i := 0; i < 300; i++ {
		varProj += proj.At(i, 0) * proj.At(i, 0)
		for j := 0; j < 3; j++ {
			v := x.At(i, j)
			varOrig += v * v
		}
	}
	if varProj < 0.95*varOrig {
		t.Errorf("PCA captured %v of %v variance", varProj, varOrig)
	}
	// TransformVec agrees with Transform.
	row0 := p.TransformVec(x.Row(0))
	if !approxEqual(row0[0], proj.At(0, 0), 1e-10) {
		t.Error("TransformVec mismatch")
	}
}

func TestBesselI(t *testing.T) {
	// Reference values (Abramowitz & Stegun).
	cases := []struct {
		n    int
		x    float64
		want float64
	}{
		{0, 0.5, 1.0634833707413236},
		{1, 0.5, 0.2578943053908963},
		{2, 0.5, 0.031906149177738},
		{0, 2.0, 2.279585302336067},
		{3, 1.0, 0.022168424924331902},
	}
	for _, c := range cases {
		if got := BesselI(c.n, c.x); !approxEqual(got, c.want, 1e-10) {
			t.Errorf("I_%d(%v) = %v, want %v", c.n, c.x, got, c.want)
		}
	}
	if BesselI(-2, 0.5) != BesselI(2, 0.5) {
		t.Error("negative order not mirrored")
	}
}

func TestChebyshevPropagateSmoothsNeighbors(t *testing.T) {
	// Path graph 0-1-2 ... propagation must pull neighbors together.
	adj := NewCSR(3, 3, []COO{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 1, Val: 1},
	})
	emb := FromRows([][]float64{{1, 0}, {0, 0}, {0, 1}})
	out := ChebyshevPropagate(adj, emb.Clone(), 10, 0.2, 0.5)
	if out.Rows != 3 || out.Cols != 2 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	// Rows are unit-normalized.
	for i := 0; i < 3; i++ {
		if !approxEqual(L2Norm(out.Row(i)), 1, 1e-9) {
			t.Fatalf("row %d not normalized", i)
		}
	}
	// Node 1 (between 0 and 2) must be closer to both than they are to
	// each other.
	d01 := L1Distance(out.Row(0), out.Row(1))
	d02 := L1Distance(out.Row(0), out.Row(2))
	if d01 >= d02 {
		t.Errorf("propagation did not smooth: d(0,1)=%v >= d(0,2)=%v", d01, d02)
	}
}

func TestCSRScaleRowsAndRowNNZ(t *testing.T) {
	m := NewCSR(2, 3, []COO{
		{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 2, Val: 4}, {Row: 1, Col: 1, Val: 6},
	})
	m.ScaleRows([]float64{0.5, 2})
	if m.At(0, 0) != 1 || m.At(0, 2) != 2 || m.At(1, 1) != 12 {
		t.Errorf("ScaleRows wrong: %v %v %v", m.At(0, 0), m.At(0, 2), m.At(1, 1))
	}
	s, e := m.RowNNZ(0)
	if e-s != 2 {
		t.Errorf("RowNNZ(0) span = %d", e-s)
	}
}

func TestScaleCSR(t *testing.T) {
	m := NewCSR(1, 2, []COO{{Row: 0, Col: 0, Val: 3}, {Row: 0, Col: 1, Val: 5}})
	ScaleCSR(m, 2)
	if m.At(0, 0) != 6 || m.At(0, 1) != 10 {
		t.Errorf("ScaleCSR wrong")
	}
}

// Property: CSR assembly sums duplicates exactly like dense assembly.
func TestCSRAssemblyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		var coos []COO
		dense := NewDense(n, n)
		for k := 0; k < 30; k++ {
			r, c, v := rng.Intn(n), rng.Intn(n), rng.NormFloat64()
			coos = append(coos, COO{Row: r, Col: c, Val: v})
			dense.Set(r, c, dense.At(r, c)+v)
		}
		sparse := NewCSR(n, n, coos).Dense()
		for i := range dense.Data {
			if !approxEqual(sparse.Data[i], dense.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
