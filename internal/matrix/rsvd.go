package matrix

import (
	"math"
	"math/rand"
)

// SVDResult holds a truncated singular value decomposition M ≈ U Σ Vᵀ.
type SVDResult struct {
	U     *Dense    // NumRows x d left singular vectors
	Sigma []float64 // d singular values, descending
	V     *Dense    // NumCols x d right singular vectors
}

// RandomizedSVD computes a rank-d truncated SVD of a sparse matrix with
// the Halko–Martinsson–Tropp randomized range finder the paper cites:
// sample the range with a Gaussian test matrix, optionally sharpen the
// spectrum with power iterations, orthonormalize, and solve the small
// (d+p)x(d+p) eigenproblem of B·Bᵀ exactly with Jacobi.
//
// oversample (p) adds slack columns to the test matrix; 8-10 is typical.
// powerIters of 1-2 substantially improves accuracy on matrices with a
// slowly decaying spectrum at the cost of extra sparse multiplies.
func RandomizedSVD(m *CSR, d, oversample, powerIters int, rng *rand.Rand) SVDResult {
	return RandomizedSVDWorkers(m, d, oversample, powerIters, rng, 1)
}

// RandomizedSVDWorkers is RandomizedSVD with the sparse and tall-dense
// matrix products row-partitioned across workers (<= 0 means
// GOMAXPROCS). The Gaussian sampling stays a single sequential rng
// stream and the partitioned products accumulate in sequential order,
// so the decomposition is bit-identical at every worker count; only the
// O(rows·k²) QR and the tiny k×k eigensolve remain single-threaded.
func RandomizedSVDWorkers(m *CSR, d, oversample, powerIters int, rng *rand.Rand, workers int) SVDResult {
	if d <= 0 {
		panic("matrix: RandomizedSVD rank must be positive")
	}
	k := d + oversample
	if k > m.NumCols {
		k = m.NumCols
	}
	if k > m.NumRows {
		k = m.NumRows
	}
	if d > k {
		d = k
	}

	// Range sampling: Y = M * Omega.
	omega := Gaussian(m.NumCols, k, rng)
	y := m.MulDenseWorkers(omega, workers)
	for it := 0; it < powerIters; it++ {
		y = QR(y) // re-orthonormalize to avoid collapse
		z := m.TMulDenseWorkers(y, workers)
		y = m.MulDenseWorkers(z, workers)
	}
	q := QR(y) // NumRows x k orthonormal basis of the range

	// B = Qᵀ M computed transposed: Bt = Mᵀ Q (NumCols x k).
	bt := m.TMulDenseWorkers(q, workers)

	// C = B Bᵀ = Btᵀ Bt is k x k symmetric; its eigenpairs give the
	// left singular structure of B.
	c := bt.TMul(bt)
	eig, uhat := SymEigen(c)

	sigma := make([]float64, d)
	for i := 0; i < d; i++ {
		if eig[i] > 0 {
			sigma[i] = math.Sqrt(eig[i])
		}
	}
	// U = Q * Uhat[:, :d].
	uhatD := NewDense(k, d)
	for i := 0; i < k; i++ {
		for j := 0; j < d; j++ {
			uhatD.Set(i, j, uhat.At(i, j))
		}
	}
	u := q.MulWorkers(uhatD, workers)

	// V = Bᵀ Uhat Σ⁻¹ = Bt * Uhat * Σ⁻¹.
	v := bt.MulWorkers(uhatD, workers)
	for j := 0; j < d; j++ {
		if sigma[j] <= 1e-12 {
			continue
		}
		inv := 1 / sigma[j]
		for i := 0; i < v.Rows; i++ {
			v.Data[i*d+j] *= inv
		}
	}
	return SVDResult{U: u, Sigma: sigma, V: v}
}

// EmbeddingFromSVD returns E = U Σ^{1/2}, the node-embedding convention
// from the paper (Section 4.2.1).
func EmbeddingFromSVD(res SVDResult) *Dense {
	d := len(res.Sigma)
	e := res.U.Clone()
	for j := 0; j < d; j++ {
		s := math.Sqrt(math.Max(res.Sigma[j], 0))
		for i := 0; i < e.Rows; i++ {
			e.Data[i*d+j] *= s
		}
	}
	return e
}
