package matrix

// PCA projects row vectors onto their top-k principal components. It is
// used by the embedding-deployment stage (paper Section 6.5.2) to shrink
// stored embeddings without retraining.
type PCA struct {
	mean []float64
	// components is dim x k: column j is the j-th principal axis.
	components *Dense
	k          int
}

// FitPCA fits a PCA with k components on the rows of x. Because Leva's
// embedding dimensions are small (<= a few hundred), the covariance
// matrix is formed exactly and eigendecomposed with Jacobi; no iterative
// solver is needed. k is clamped to the input dimension.
func FitPCA(x *Dense, k int) *PCA {
	n, dim := x.Rows, x.Cols
	if k > dim {
		k = dim
	}
	if k < 1 {
		k = 1
	}
	mean := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	if n > 0 {
		for j := range mean {
			mean[j] /= float64(n)
		}
	}
	// Covariance = Xcᵀ Xc / n.
	cov := NewDense(dim, dim)
	for i := 0; i < n; i++ {
		ri := x.Row(i)
		for a := 0; a < dim; a++ {
			da := ri[a] - mean[a]
			if da == 0 {
				continue
			}
			ca := cov.Row(a)
			for b := 0; b < dim; b++ {
				ca[b] += da * (ri[b] - mean[b])
			}
		}
	}
	if n > 1 {
		cov.Scale(1 / float64(n))
	}
	_, v := SymEigen(cov)
	comp := NewDense(dim, k)
	for i := 0; i < dim; i++ {
		for j := 0; j < k; j++ {
			comp.Set(i, j, v.At(i, j))
		}
	}
	return &PCA{mean: mean, components: comp, k: k}
}

// K returns the number of components.
func (p *PCA) K() int { return p.k }

// Transform projects the rows of x into the k-dimensional PCA space.
func (p *PCA) Transform(x *Dense) *Dense {
	out := NewDense(x.Rows, p.k)
	dim := len(p.mean)
	if x.Cols != dim {
		panic("matrix: PCA Transform dimension mismatch")
	}
	centered := make([]float64, dim)
	for i := 0; i < x.Rows; i++ {
		ri := x.Row(i)
		for j := range centered {
			centered[j] = ri[j] - p.mean[j]
		}
		oi := out.Row(i)
		for j := 0; j < p.k; j++ {
			s := 0.0
			for a := 0; a < dim; a++ {
				s += centered[a] * p.components.At(a, j)
			}
			oi[j] = s
		}
	}
	return out
}

// TransformVec projects a single vector.
func (p *PCA) TransformVec(v []float64) []float64 {
	x := FromRows([][]float64{v})
	return p.Transform(x).Row(0)
}
