package matrix

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// COO is a coordinate-format triple used to assemble sparse matrices.
type COO struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix, the representation Leva's
// matrix-factorization path uses for the proximity matrix: the
// value-node construction keeps it sparse enough for randomized SVD.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int32 // len NumRows+1
	ColIdx           []int32 // len NNZ
	Vals             []float64
}

// NewCSR assembles a CSR matrix from unordered COO triples. Duplicate
// (row, col) entries are summed.
func NewCSR(rows, cols int, entries []COO) *CSR {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Row != entries[j].Row {
			return entries[i].Row < entries[j].Row
		}
		return entries[i].Col < entries[j].Col
	})
	m := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < len(entries); {
		e := entries[i]
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("matrix: COO entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols))
		}
		v := e.Val
		j := i + 1
		for j < len(entries) && entries[j].Row == e.Row && entries[j].Col == e.Col {
			v += entries[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, int32(e.Col))
		m.Vals = append(m.Vals, v)
		m.RowPtr[e.Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// RowNNZ returns the slice bounds of row r's entries.
func (m *CSR) RowNNZ(r int) (start, end int32) { return m.RowPtr[r], m.RowPtr[r+1] }

// At returns element (i, j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	start, end := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.ColIdx[start:end]
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return m.Vals[int(start)+k]
	}
	return 0
}

// MulDense returns m * b as a dense matrix.
func (m *CSR) MulDense(b *Dense) *Dense { return m.MulDenseWorkers(b, 1) }

// MulDenseWorkers is MulDense with the output rows partitioned across
// workers (<= 0 means GOMAXPROCS). Each output row is accumulated by
// exactly one goroutine in the sequential order, so the product is
// bit-identical at every worker count.
func (m *CSR) MulDenseWorkers(b *Dense, workers int) *Dense {
	if m.NumCols != b.Rows {
		panic(fmt.Sprintf("matrix: CSR MulDense shape mismatch %dx%d * %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols))
	}
	out := NewDense(m.NumRows, b.Cols)
	parallel.For(m.NumRows, workers, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			oi := out.Row(i)
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				v := m.Vals[p]
				bk := b.Row(int(m.ColIdx[p]))
				for j, bv := range bk {
					oi[j] += v * bv
				}
			}
		}
	})
	return out
}

// TMulDense returns mᵀ * b as a dense matrix.
func (m *CSR) TMulDense(b *Dense) *Dense { return m.TMulDenseWorkers(b, 1) }

// TMulDenseWorkers is TMulDense with the *output* rows (m's columns)
// partitioned across workers (<= 0 means GOMAXPROCS). Every worker
// scans all of m but only accumulates entries whose column falls in its
// partition, so writes are disjoint and each output row sums its
// contributions in the sequential input-row order — bit-identical at
// every worker count, at the cost of re-reading the index arrays once
// per worker (cheap next to the fused multiply-adds).
func (m *CSR) TMulDenseWorkers(b *Dense, workers int) *Dense {
	if m.NumRows != b.Rows {
		panic(fmt.Sprintf("matrix: CSR TMulDense shape mismatch (%dx%d)T * %dx%d", m.NumRows, m.NumCols, b.Rows, b.Cols))
	}
	out := NewDense(m.NumCols, b.Cols)
	parallel.For(m.NumCols, workers, func(_ int, cr parallel.Range) {
		lo, hi := int32(cr.Lo), int32(cr.Hi)
		for i := 0; i < m.NumRows; i++ {
			bi := b.Row(i)
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				c := m.ColIdx[p]
				if c < lo || c >= hi {
					continue
				}
				v := m.Vals[p]
				oc := out.Row(int(c))
				for j, bv := range bi {
					oc[j] += v * bv
				}
			}
		}
	})
	return out
}

// MulVec returns m * x.
func (m *CSR) MulVec(x []float64) []float64 {
	if m.NumCols != len(x) {
		panic("matrix: CSR MulVec length mismatch")
	}
	out := make([]float64, m.NumRows)
	for i := 0; i < m.NumRows; i++ {
		s := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Vals[p] * x[m.ColIdx[p]]
		}
		out[i] = s
	}
	return out
}

// Dense expands the matrix to dense form (for tests and small inputs).
func (m *CSR) Dense() *Dense {
	out := NewDense(m.NumRows, m.NumCols)
	for i := 0; i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.Set(i, int(m.ColIdx[p]), m.Vals[p])
		}
	}
	return out
}

// RowSums returns the vector of per-row sums.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.NumRows)
	for i := 0; i < m.NumRows; i++ {
		s := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Vals[p]
		}
		out[i] = s
	}
	return out
}

// ScaleRows multiplies row i by s[i] in place.
func (m *CSR) ScaleRows(s []float64) {
	if len(s) != m.NumRows {
		panic("matrix: ScaleRows length mismatch")
	}
	for i := 0; i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			m.Vals[p] *= s[i]
		}
	}
}
