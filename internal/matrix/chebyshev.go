package matrix

// BesselI returns the modified Bessel function of the first kind I_n(x)
// by direct series summation. It is accurate for the small orders and
// arguments the spectral propagation filter uses (n <= ~30, |x| <= ~10).
func BesselI(n int, x float64) float64 {
	if n < 0 {
		n = -n
	}
	half := x / 2
	// term_k = (x/2)^(2k+n) / (k! (k+n)!)
	term := 1.0
	for i := 1; i <= n; i++ {
		term *= half / float64(i)
	}
	sum := term
	for k := 1; k < 64; k++ {
		term *= half * half / (float64(k) * float64(k+n))
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	return sum
}

// ChebyshevPropagate applies the ProNE-style spectral propagation
// enhancement (paper reference [41]) to an embedding: a truncated
// Chebyshev expansion of a Gaussian band-pass graph filter, evaluated
// with nothing but sparse matrix-vector products.
//
// adj is the symmetric n-by-n adjacency matrix, emb the n-by-d initial
// embedding. order is the expansion order (ProNE default 10), mu the
// band-pass center (default 0.2) and s the kernel width (default 0.5).
// The result rows are L2-normalized.
func ChebyshevPropagate(adj *CSR, emb *Dense, order int, mu, s float64) *Dense {
	return ChebyshevPropagateWorkers(adj, emb, order, mu, s, 1)
}

// ChebyshevPropagateWorkers is ChebyshevPropagate with its sparse-dense
// products row-partitioned across workers (<= 0 means GOMAXPROCS); the
// filter is bit-identical at every worker count because each output row
// accumulates in sequential order on exactly one goroutine.
func ChebyshevPropagateWorkers(adj *CSR, emb *Dense, order int, mu, s float64, workers int) *Dense {
	if adj.NumRows != adj.NumCols || adj.NumRows != emb.Rows {
		panic("matrix: ChebyshevPropagate shape mismatch")
	}
	if order < 2 {
		order = 2
	}
	n := emb.Rows

	// DA = l1-row-normalized (I + A); M·x = (1-mu)·x − DA·x.
	selfLoops := make([]COO, 0, n+adj.NNZ())
	for i := 0; i < n; i++ {
		selfLoops = append(selfLoops, COO{Row: i, Col: i, Val: 1})
	}
	for i := 0; i < n; i++ {
		for p := adj.RowPtr[i]; p < adj.RowPtr[i+1]; p++ {
			selfLoops = append(selfLoops, COO{Row: i, Col: int(adj.ColIdx[p]), Val: adj.Vals[p]})
		}
	}
	aPlus := NewCSR(n, n, selfLoops)
	da := NewCSR(n, n, selfLoops) // second copy to normalize
	sums := da.RowSums()
	inv := make([]float64, n)
	for i, v := range sums {
		if v != 0 {
			inv[i] = 1 / v
		}
	}
	da.ScaleRows(inv)

	mdot := func(x *Dense) *Dense {
		out := da.MulDenseWorkers(x, workers)
		out.Scale(-1)
		scaled := x.Clone().Scale(1 - mu)
		return out.Add(scaled)
	}

	lx0 := emb.Clone()
	lx1 := mdot(mdot(emb)).Scale(0.5).Sub(emb)
	conv := lx0.Clone().Scale(BesselI(0, s))
	conv.Sub(lx1.Clone().Scale(2 * BesselI(1, s)))
	for i := 2; i < order; i++ {
		lx2 := mdot(mdot(lx1))
		lx2.Sub(lx1.Clone().Scale(2)).Sub(lx0)
		coeff := 2 * BesselI(i, s)
		if i%2 == 0 {
			conv.Add(lx2.Clone().Scale(coeff))
		} else {
			conv.Sub(lx2.Clone().Scale(coeff))
		}
		lx0, lx1 = lx1, lx2
	}
	mm := aPlus.MulDenseWorkers(emb.Clone().Sub(conv), workers)

	for i := 0; i < n; i++ {
		row := mm.Row(i)
		norm := L2Norm(row)
		if norm > 1e-12 {
			for j := range row {
				row[j] /= norm
			}
		}
	}
	return mm
}
