package matrix

import (
	"math"
)

// QR computes a thin QR decomposition of an m-by-n matrix (m >= n) by
// modified Gram-Schmidt with one reorthogonalization pass, returning the
// m-by-n orthonormal factor Q. The R factor is discarded because the
// randomized range finder only needs the basis. Columns that become
// numerically zero (rank deficiency) are replaced with zero vectors.
func QR(a *Dense) *Dense {
	m, n := a.Rows, a.Cols
	q := a.Clone()
	// Column-major access via strided indexing into the row-major data.
	col := func(j int) func(i int) *float64 {
		return func(i int) *float64 { return &q.Data[i*n+j] }
	}
	for j := 0; j < n; j++ {
		cj := col(j)
		// Two rounds of projection against previous columns for
		// numerical robustness ("twice is enough").
		for round := 0; round < 2; round++ {
			for k := 0; k < j; k++ {
				ck := col(k)
				dot := 0.0
				for i := 0; i < m; i++ {
					dot += *ck(i) * *cj(i)
				}
				if dot == 0 {
					continue
				}
				for i := 0; i < m; i++ {
					*cj(i) -= dot * *ck(i)
				}
			}
		}
		norm := 0.0
		for i := 0; i < m; i++ {
			v := *cj(i)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			for i := 0; i < m; i++ {
				*cj(i) = 0
			}
			continue
		}
		inv := 1 / norm
		for i := 0; i < m; i++ {
			*cj(i) *= inv
		}
	}
	return q
}

// SymEigen computes the eigendecomposition of a small symmetric matrix
// with the cyclic Jacobi method. It returns eigenvalues in descending
// order and the matching eigenvectors as the columns of V.
func SymEigen(a *Dense) (eigvals []float64, v *Dense) {
	n := a.Rows
	if a.Cols != n {
		panic("matrix: SymEigen requires a square matrix")
	}
	w := a.Clone()
	v = NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	eigvals = make([]float64, n)
	for i := 0; i < n; i++ {
		eigvals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if eigvals[idx[j]] > eigvals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	sortedVals := make([]float64, n)
	sortedV := NewDense(n, n)
	for newJ, oldJ := range idx {
		sortedVals[newJ] = eigvals[oldJ]
		for i := 0; i < n; i++ {
			sortedV.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return sortedVals, sortedV
}

// rotate applies the Jacobi rotation G(p,q,c,s) as GᵀWG and updates the
// accumulated eigenvector matrix V <- VG.
func rotate(w, v *Dense, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}
