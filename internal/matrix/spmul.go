package matrix

import "sort"

// MulCSRPrune computes the sparse product a*b, keeping at most topK
// entries per output row (the largest by magnitude; topK <= 0 keeps
// everything) and dropping entries below eps. Pruned sparse powers of
// the transition matrix are how the windowed (NetSMF-style) proximity
// matrix stays tractable on graphs with hub nodes.
func MulCSRPrune(a, b *CSR, topK int, eps float64) *CSR {
	if a.NumCols != b.NumRows {
		panic("matrix: MulCSRPrune shape mismatch")
	}
	out := &CSR{NumRows: a.NumRows, NumCols: b.NumCols, RowPtr: make([]int32, a.NumRows+1)}
	// Dense accumulator with a touched-list, reset per row.
	acc := make([]float64, b.NumCols)
	touched := make([]int32, 0, 256)
	type entry struct {
		col int32
		val float64
	}
	row := make([]entry, 0, 256)

	for i := 0; i < a.NumRows; i++ {
		touched = touched[:0]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Vals[p]
			k := a.ColIdx[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				j := b.ColIdx[q]
				if acc[j] == 0 {
					touched = append(touched, j)
				}
				acc[j] += av * b.Vals[q]
			}
		}
		row = row[:0]
		for _, j := range touched {
			v := acc[j]
			acc[j] = 0
			if v > eps || v < -eps {
				row = append(row, entry{col: j, val: v})
			}
		}
		if topK > 0 && len(row) > topK {
			sort.Slice(row, func(x, y int) bool {
				ax, ay := row[x].val, row[y].val
				if ax < 0 {
					ax = -ax
				}
				if ay < 0 {
					ay = -ay
				}
				return ax > ay
			})
			row = row[:topK]
		}
		sort.Slice(row, func(x, y int) bool { return row[x].col < row[y].col })
		for _, e := range row {
			out.ColIdx = append(out.ColIdx, e.col)
			out.Vals = append(out.Vals, e.val)
		}
		out.RowPtr[i+1] = int32(len(out.Vals))
	}
	return out
}

// AddCSR returns a + b (same shape).
func AddCSR(a, b *CSR) *CSR {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols {
		panic("matrix: AddCSR shape mismatch")
	}
	out := &CSR{NumRows: a.NumRows, NumCols: a.NumCols, RowPtr: make([]int32, a.NumRows+1)}
	for i := 0; i < a.NumRows; i++ {
		pa, pb := a.RowPtr[i], b.RowPtr[i]
		ea, eb := a.RowPtr[i+1], b.RowPtr[i+1]
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && a.ColIdx[pa] < b.ColIdx[pb]):
				out.ColIdx = append(out.ColIdx, a.ColIdx[pa])
				out.Vals = append(out.Vals, a.Vals[pa])
				pa++
			case pa >= ea || b.ColIdx[pb] < a.ColIdx[pa]:
				out.ColIdx = append(out.ColIdx, b.ColIdx[pb])
				out.Vals = append(out.Vals, b.Vals[pb])
				pb++
			default:
				out.ColIdx = append(out.ColIdx, a.ColIdx[pa])
				out.Vals = append(out.Vals, a.Vals[pa]+b.Vals[pb])
				pa++
				pb++
			}
		}
		out.RowPtr[i+1] = int32(len(out.Vals))
	}
	return out
}

// ScaleCSR multiplies every stored value by s in place and returns m.
func ScaleCSR(m *CSR, s float64) *CSR {
	for i := range m.Vals {
		m.Vals[i] *= s
	}
	return m
}
