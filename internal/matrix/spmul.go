package matrix

import (
	"sort"

	"repro/internal/parallel"
)

// ShardedCSR assembles a rows x cols CSR matrix by computing contiguous
// row ranges concurrently and concatenating the fragments in shard
// order. fill is called once per shard with the global row range
// [lo, hi) and a fragment whose NumRows is hi-lo; it must populate the
// fragment's ColIdx, Vals and RowPtr using *local* row indices (global
// row lo is fragment row 0). Because every global row is produced by
// exactly one shard and fragments concatenate in row order, the result
// is bit-identical to a sequential build at every worker count. This is
// the assembly primitive behind the parallel proximity-matrix pipeline
// (MulCSRPruneWorkers, AddCSRWorkers, the PMI transform).
func ShardedCSR(rows, cols, workers int, fill func(lo, hi int, frag *CSR)) *CSR {
	shards := parallel.Shards(rows, workers)
	if len(shards) <= 1 {
		out := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int32, rows+1)}
		if rows > 0 {
			fill(0, rows, out)
		}
		return out
	}
	frags := make([]*CSR, len(shards))
	parallel.For(rows, workers, func(s int, r parallel.Range) {
		frag := &CSR{NumRows: r.Len(), NumCols: cols, RowPtr: make([]int32, r.Len()+1)}
		fill(r.Lo, r.Hi, frag)
		frags[s] = frag
	})
	nnz := 0
	for _, f := range frags {
		nnz += f.NNZ()
	}
	out := &CSR{
		NumRows: rows, NumCols: cols,
		RowPtr: make([]int32, 1, rows+1),
		ColIdx: make([]int32, 0, nnz),
		Vals:   make([]float64, 0, nnz),
	}
	for _, f := range frags {
		base := int32(len(out.Vals))
		for i := 0; i < f.NumRows; i++ {
			out.RowPtr = append(out.RowPtr, base+f.RowPtr[i+1])
		}
		out.ColIdx = append(out.ColIdx, f.ColIdx...)
		out.Vals = append(out.Vals, f.Vals...)
	}
	return out
}

// MulCSRPrune computes the sparse product a*b, keeping at most topK
// entries per output row (the largest by magnitude; topK <= 0 keeps
// everything) and dropping entries below eps. Pruned sparse powers of
// the transition matrix are how the windowed (NetSMF-style) proximity
// matrix stays tractable on graphs with hub nodes.
func MulCSRPrune(a, b *CSR, topK int, eps float64) *CSR {
	return MulCSRPruneWorkers(a, b, topK, eps, 1)
}

// MulCSRPruneWorkers is MulCSRPrune with the output rows partitioned
// across workers (<= 0 means GOMAXPROCS). Each worker owns a contiguous
// row range and a private dense accumulator; the pruning decisions are
// per-row, so the product is bit-identical at every worker count.
func MulCSRPruneWorkers(a, b *CSR, topK int, eps float64, workers int) *CSR {
	if a.NumCols != b.NumRows {
		panic("matrix: MulCSRPrune shape mismatch")
	}
	return ShardedCSR(a.NumRows, b.NumCols, workers, func(lo, hi int, frag *CSR) {
		// Dense accumulator with a touched-list, reset per row.
		acc := make([]float64, b.NumCols)
		touched := make([]int32, 0, 256)
		type entry struct {
			col int32
			val float64
		}
		row := make([]entry, 0, 256)

		for i := lo; i < hi; i++ {
			touched = touched[:0]
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				av := a.Vals[p]
				k := a.ColIdx[p]
				for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
					j := b.ColIdx[q]
					if acc[j] == 0 {
						touched = append(touched, j)
					}
					acc[j] += av * b.Vals[q]
				}
			}
			row = row[:0]
			for _, j := range touched {
				v := acc[j]
				acc[j] = 0
				if v > eps || v < -eps {
					row = append(row, entry{col: j, val: v})
				}
			}
			if topK > 0 && len(row) > topK {
				sort.Slice(row, func(x, y int) bool {
					ax, ay := row[x].val, row[y].val
					if ax < 0 {
						ax = -ax
					}
					if ay < 0 {
						ay = -ay
					}
					return ax > ay
				})
				row = row[:topK]
			}
			sort.Slice(row, func(x, y int) bool { return row[x].col < row[y].col })
			for _, e := range row {
				frag.ColIdx = append(frag.ColIdx, e.col)
				frag.Vals = append(frag.Vals, e.val)
			}
			frag.RowPtr[i-lo+1] = int32(len(frag.Vals))
		}
	})
}

// AddCSR returns a + b (same shape).
func AddCSR(a, b *CSR) *CSR { return AddCSRWorkers(a, b, 1) }

// AddCSRWorkers is AddCSR with the output rows partitioned across
// workers (<= 0 means GOMAXPROCS); each row merges independently, so
// the sum is bit-identical at every worker count.
func AddCSRWorkers(a, b *CSR, workers int) *CSR {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols {
		panic("matrix: AddCSR shape mismatch")
	}
	return ShardedCSR(a.NumRows, a.NumCols, workers, func(lo, hi int, frag *CSR) {
		for i := lo; i < hi; i++ {
			pa, pb := a.RowPtr[i], b.RowPtr[i]
			ea, eb := a.RowPtr[i+1], b.RowPtr[i+1]
			for pa < ea || pb < eb {
				switch {
				case pb >= eb || (pa < ea && a.ColIdx[pa] < b.ColIdx[pb]):
					frag.ColIdx = append(frag.ColIdx, a.ColIdx[pa])
					frag.Vals = append(frag.Vals, a.Vals[pa])
					pa++
				case pa >= ea || b.ColIdx[pb] < a.ColIdx[pa]:
					frag.ColIdx = append(frag.ColIdx, b.ColIdx[pb])
					frag.Vals = append(frag.Vals, b.Vals[pb])
					pb++
				default:
					frag.ColIdx = append(frag.ColIdx, a.ColIdx[pa])
					frag.Vals = append(frag.Vals, a.Vals[pa]+b.Vals[pb])
					pa++
					pb++
				}
			}
			frag.RowPtr[i-lo+1] = int32(len(frag.Vals))
		}
	})
}

// ScaleCSR multiplies every stored value by s in place and returns m.
func ScaleCSR(m *CSR, s float64) *CSR {
	for i := range m.Vals {
		m.Vals[i] *= s
	}
	return m
}
