// Package matrix supplies the linear-algebra substrate Leva's matrix
// factorization path needs: dense and CSR sparse matrices, Householder
// QR, a Jacobi symmetric eigensolver, the Halko-style randomized SVD the
// paper cites, PCA for embedding dimension reduction, and the Chebyshev
// spectral-propagation filter used as the ProNE-style enhancement.
//
// Everything is stdlib-only float64 code; matrices are row-major flat
// slices.
package matrix

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a Dense from row slices, which must be equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("matrix: ragged row %d: %d != %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, v := range ri {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Mul returns m * b.
func (m *Dense) Mul(b *Dense) *Dense { return m.MulWorkers(b, 1) }

// MulWorkers is Mul with the output rows partitioned across workers
// (<= 0 means GOMAXPROCS). Each output row is produced by one goroutine
// in the sequential accumulation order, so the product is bit-identical
// at every worker count.
func (m *Dense) MulWorkers(b *Dense, workers int) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewDense(m.Rows, b.Cols)
	parallel.For(m.Rows, workers, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			ri := m.Row(i)
			oi := out.Row(i)
			for k, a := range ri {
				if a == 0 {
					continue
				}
				bk := b.Row(k)
				for j, bv := range bk {
					oi[j] += a * bv
				}
			}
		}
	})
	return out
}

// MulT returns m * bᵀ.
func (m *Dense) MulT(b *Dense) *Dense {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulT shape mismatch %dx%d * (%dx%d)T", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewDense(m.Rows, b.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		oi := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			bj := b.Row(j)
			s := 0.0
			for k, a := range ri {
				s += a * bj[k]
			}
			oi[j] = s
		}
	}
	return out
}

// TMul returns mᵀ * b.
func (m *Dense) TMul(b *Dense) *Dense {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("matrix: TMul shape mismatch (%dx%d)T * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewDense(m.Cols, b.Cols)
	for k := 0; k < m.Rows; k++ {
		mk := m.Row(k)
		bk := b.Row(k)
		for i, a := range mk {
			if a == 0 {
				continue
			}
			oi := out.Row(i)
			for j, bv := range bk {
				oi[j] += a * bv
			}
		}
	}
	return out
}

// Add adds b into m in place and returns m.
func (m *Dense) Add(b *Dense) *Dense {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: Add shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return m
}

// Sub subtracts b from m in place and returns m.
func (m *Dense) Sub(b *Dense) *Dense {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: Sub shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] -= v
	}
	return m
}

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Norm returns the Frobenius norm.
func (m *Dense) Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Gaussian fills an r-by-c matrix with N(0,1) draws from rng.
func Gaussian(r, c int, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// L1Distance returns the Manhattan distance between two vectors.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: L1Distance length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += math.Abs(v - b[i])
	}
	return s
}

// L2Norm returns the Euclidean norm of v.
func L2Norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between a and b,
// or 0 if either has zero norm.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := L2Norm(a), L2Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
