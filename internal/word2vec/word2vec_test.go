package word2vec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// clusterCorpus builds sentences where tokens 0-4 co-occur and tokens
// 5-9 co-occur, never mixing.
func clusterCorpus(sentences, length int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	var corpus [][]int32
	for s := 0; s < sentences; s++ {
		base := int32(0)
		if s%2 == 1 {
			base = 5
		}
		seq := make([]int32, length)
		for i := range seq {
			seq[i] = base + int32(rng.Intn(5))
		}
		corpus = append(corpus, seq)
	}
	return corpus
}

func TestSGNSLearnsCooccurrence(t *testing.T) {
	corpus := clusterCorpus(400, 20, 1)
	m := Train(corpus, 10, Options{Dim: 16, Epochs: 3, Seed: 2, Workers: 1})

	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for a := int32(0); a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			sim := matrix.CosineSimilarity(m.Vector(a), m.Vector(b))
			if (a < 5) == (b < 5) {
				intra += sim
				nIntra++
			} else {
				inter += sim
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra <= inter+0.2 {
		t.Errorf("intra-cluster similarity %.3f not above inter %.3f", intra, inter)
	}
}

func TestTrainDeterministicSingleWorker(t *testing.T) {
	corpus := clusterCorpus(50, 10, 3)
	a := Train(corpus, 10, Options{Dim: 8, Epochs: 2, Seed: 7, Workers: 1})
	b := Train(corpus, 10, Options{Dim: 8, Epochs: 2, Seed: 7, Workers: 1})
	for id := int32(0); id < 10; id++ {
		va, vb := a.Vector(id), b.Vector(id)
		for k := range va {
			if va[k] != vb[k] {
				t.Fatalf("nondeterministic at token %d dim %d", id, k)
			}
		}
	}
}

func TestTrainEmptyAndDegenerate(t *testing.T) {
	m := Train(nil, 0, Options{})
	if m.Vocab != 0 {
		t.Error("empty corpus produced vocab")
	}
	// Single-token corpus must not panic.
	m = Train([][]int32{{0, 0, 0}}, 1, Options{Dim: 4, Epochs: 1, Workers: 1})
	if len(m.Vector(0)) != 4 {
		t.Error("vector length wrong")
	}
}

func TestContextVectorsDiffer(t *testing.T) {
	corpus := clusterCorpus(100, 10, 4)
	m := Train(corpus, 10, Options{Dim: 8, Epochs: 2, Seed: 5, Workers: 1})
	same := true
	in, out := m.Vector(0), m.ContextVector(0)
	for k := range in {
		if in[k] != out[k] {
			same = false
		}
	}
	if same {
		t.Error("input and context vectors identical")
	}
}

func TestNegativeSamplerDistribution(t *testing.T) {
	counts := []int64{1000, 100, 10, 0}
	ns := newNegativeSampler(counts)
	rng := rand.New(rand.NewSource(6))
	freq := make([]int, len(counts))
	const draws = 100000
	for i := 0; i < draws; i++ {
		freq[ns.sample(rng)]++
	}
	// Unigram^0.75: token 0 should dominate, token 3 (count 0) never.
	if freq[3] != 0 {
		t.Errorf("zero-count token sampled %d times", freq[3])
	}
	if freq[0] <= freq[1] || freq[1] <= freq[2] {
		t.Errorf("sampling not monotone in count: %v", freq)
	}
	// Ratio token0/token1 should be near (1000/100)^0.75 ≈ 5.6.
	ratio := float64(freq[0]) / float64(freq[1])
	if ratio < 4 || ratio > 8 {
		t.Errorf("unigram^0.75 ratio = %v, want ~5.6", ratio)
	}
}

func TestSigmoidBounds(t *testing.T) {
	if sigmoid(100) != 1 || sigmoid(-100) != 0 {
		t.Error("sigmoid saturation wrong")
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0) = %v", s)
	}
	// Table lookup stays close to the exact function.
	for _, x := range []float64{-7.9, -3.3, -0.5, 0.25, 2.8, 7.9} {
		exact := 1 / (1 + mathExp(-x))
		if d := sigmoid(x) - exact; d > 2e-3 || d < -2e-3 {
			t.Errorf("sigmoid(%v) error %v", x, d)
		}
	}
}

func mathExp(x float64) float64 {
	// local alias keeps the test honest about what it compares to
	return math.Exp(x)
}
