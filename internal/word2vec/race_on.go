//go:build race

package word2vec

// raceDetectorEnabled reports whether the build carries the race
// detector. Hogwild SGD races by design (the lock-free updates are the
// algorithm), so under -race the trainer drops to a single worker.
const raceDetectorEnabled = true
