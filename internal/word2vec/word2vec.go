// Package word2vec implements skip-gram with negative sampling (SGNS)
// over integer-token corpora. Leva's random-walk embedding method feeds
// it walk corpora (node ids); the Word2Vec comparator baseline feeds it
// row-order textified corpora. The trainer is the standard Mikolov
// recipe: unigram^0.75 negative sampling, linear learning-rate decay,
// frequent-token subsampling and lock-free parallel (Hogwild) SGD.
package word2vec

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Options configures SGNS training. Zero values take the defaults noted
// on each field.
type Options struct {
	// Dim is the embedding dimensionality. Default 100 (paper Table 2).
	Dim int
	// Window is the one-sided context window. Default 5.
	Window int
	// Negative is the number of negative samples per positive pair.
	// Default 5.
	Negative int
	// Subsample is the frequent-token subsampling threshold; the paper
	// trains with rate 1e-3. 0 means the 1e-3 default; negative
	// disables subsampling.
	Subsample float64
	// Epochs is the number of passes over the corpus. Default 5.
	Epochs int
	// LearningRate is the initial SGD step. Default 0.025.
	LearningRate float64
	// Seed seeds initialization and sampling.
	Seed int64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Dim <= 0 {
		o.Dim = 100
	}
	if o.Window <= 0 {
		o.Window = 5
	}
	if o.Negative <= 0 {
		o.Negative = 5
	}
	if o.Subsample == 0 {
		o.Subsample = 1e-3
	}
	if o.Epochs <= 0 {
		o.Epochs = 5
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.025
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if raceDetectorEnabled {
		// Hogwild's lock-free shared updates are intentional races;
		// run single-worker so -race builds stay clean.
		o.Workers = 1
	}
	return o
}

// Model holds the trained input (node) and output (context) embeddings.
type Model struct {
	Dim   int
	Vocab int
	in    []float64 // Vocab x Dim node vectors
	out   []float64 // Vocab x Dim context vectors
}

// Vector returns the node embedding for token id (shared slice).
func (m *Model) Vector(id int32) []float64 {
	return m.in[int(id)*m.Dim : (int(id)+1)*m.Dim]
}

// ContextVector returns the context embedding for token id.
func (m *Model) ContextVector(id int32) []float64 {
	return m.out[int(id)*m.Dim : (int(id)+1)*m.Dim]
}

// Train fits SGNS embeddings on a corpus of token-id sequences over a
// vocabulary of the given size. Ids must lie in [0, vocabSize).
func Train(corpus [][]int32, vocabSize int, opts Options) *Model {
	opts = opts.withDefaults()
	m := &Model{Dim: opts.Dim, Vocab: vocabSize,
		in:  make([]float64, vocabSize*opts.Dim),
		out: make([]float64, vocabSize*opts.Dim)}
	if vocabSize == 0 || len(corpus) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := range m.in {
		m.in[i] = (rng.Float64() - 0.5) / float64(opts.Dim)
	}

	counts := make([]int64, vocabSize)
	var totalTokens int64
	for _, seq := range corpus {
		for _, id := range seq {
			counts[id]++
			totalTokens++
		}
	}
	neg := newNegativeSampler(counts)

	// Subsampling keep-probability per token.
	keepProb := make([]float64, vocabSize)
	for i, c := range counts {
		if opts.Subsample < 0 || c == 0 {
			keepProb[i] = 1
			continue
		}
		f := float64(c) / float64(totalTokens)
		p := (math.Sqrt(f/opts.Subsample) + 1) * opts.Subsample / f
		if p > 1 {
			p = 1
		}
		keepProb[i] = p
	}

	totalWork := totalTokens * int64(opts.Epochs)
	var processed int64

	var wg sync.WaitGroup
	chunk := (len(corpus) + opts.Workers - 1) / opts.Workers
	for w := 0; w < opts.Workers; w++ {
		lo := w * chunk
		if lo >= len(corpus) {
			break
		}
		hi := lo + chunk
		if hi > len(corpus) {
			hi = len(corpus)
		}
		wg.Add(1)
		go func(lo, hi, worker int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(opts.Seed + int64(worker)*7919 + 1))
			kept := make([]int32, 0, 128)
			for epoch := 0; epoch < opts.Epochs; epoch++ {
				for _, seq := range corpus[lo:hi] {
					kept = kept[:0]
					for _, id := range seq {
						if keepProb[id] >= 1 || wrng.Float64() < keepProb[id] {
							kept = append(kept, id)
						}
					}
					done := atomic.AddInt64(&processed, int64(len(seq)))
					lr := opts.LearningRate * (1 - float64(done)/float64(totalWork+1))
					if lr < opts.LearningRate*1e-4 {
						lr = opts.LearningRate * 1e-4
					}
					m.trainSequence(kept, lr, opts, neg, wrng)
				}
			}
		}(lo, hi, w)
	}
	wg.Wait()
	return m
}

// trainSequence runs one SGD pass over one (subsampled) sequence.
// Updates intentionally race across workers (Hogwild); the sparsity of
// updates makes the interference negligible.
func (m *Model) trainSequence(seq []int32, lr float64, opts Options, neg *negativeSampler, rng *rand.Rand) {
	dim := m.Dim
	grad := make([]float64, dim)
	for pos, center := range seq {
		window := 1 + rng.Intn(opts.Window)
		for off := -window; off <= window; off++ {
			if off == 0 {
				continue
			}
			cpos := pos + off
			if cpos < 0 || cpos >= len(seq) {
				continue
			}
			ctx := seq[cpos]
			vIn := m.in[int(center)*dim : (int(center)+1)*dim]
			for i := range grad {
				grad[i] = 0
			}
			// One positive plus Negative sampled targets.
			for s := 0; s <= opts.Negative; s++ {
				var target int32
				var label float64
				if s == 0 {
					target, label = ctx, 1
				} else {
					target = neg.sample(rng)
					if target == ctx {
						continue
					}
				}
				vOut := m.out[int(target)*dim : (int(target)+1)*dim]
				dot := 0.0
				for i := range vIn {
					dot += vIn[i] * vOut[i]
				}
				g := (label - sigmoid(dot)) * lr
				for i := range vIn {
					grad[i] += g * vOut[i]
					vOut[i] += g * vIn[i]
				}
			}
			for i := range vIn {
				vIn[i] += grad[i]
			}
		}
	}
}

// sigmoidTable implements the standard word2vec fast path: sigmoid is
// evaluated by lookup over [-8, 8], which removes math.Exp from the
// inner training loop. The table resolution (1/512) keeps the error
// below the SGD noise floor.
var sigmoidTable = func() [8192 + 1]float64 {
	var t [8192 + 1]float64
	for i := range t {
		x := (float64(i)/8192)*16 - 8
		t[i] = 1 / (1 + math.Exp(-x))
	}
	return t
}()

func sigmoid(x float64) float64 {
	switch {
	case x >= 8:
		return 1
	case x <= -8:
		return 0
	default:
		return sigmoidTable[int((x+8)/16*8192)]
	}
}

// negativeSampler draws tokens proportionally to count^0.75 via binary
// search over a cumulative table.
type negativeSampler struct {
	cum []float64
}

func newNegativeSampler(counts []int64) *negativeSampler {
	cum := make([]float64, len(counts))
	run := 0.0
	for i, c := range counts {
		run += math.Pow(float64(c), 0.75)
		cum[i] = run
	}
	return &negativeSampler{cum: cum}
}

func (n *negativeSampler) sample(rng *rand.Rand) int32 {
	total := n.cum[len(n.cum)-1]
	if total <= 0 {
		return int32(rng.Intn(len(n.cum)))
	}
	r := rng.Float64() * total
	return int32(sort.SearchFloat64s(n.cum, r))
}
