//go:build !race

package word2vec

// raceDetectorEnabled reports whether the build carries the race
// detector.
const raceDetectorEnabled = false
