package textify

import (
	"encoding/json"
	"testing"

	"repro/internal/dataset"
)

func TestModelJSONRoundTrip(t *testing.T) {
	// A table with one of each plan type.
	tab := dataset.NewTable("t", "key", "num", "tags", "cat")
	for i := 0; i < 40; i++ {
		tab.AppendRow(
			dataset.String(keyOf(i)),
			dataset.Number(float64(i%10)+0.5),
			dataset.String("a, b"),
			dataset.String([]string{"x", "y"}[i%2]),
		)
	}
	m, err := Fit(dataset.NewDatabase(tab), Options{BinCount: 7})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back := &Model{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}

	// Types preserved.
	for _, colName := range tab.ColumnNames() {
		orig := m.Plan("t", colName)
		got := back.Plan("t", colName)
		if got == nil || got.Type != orig.Type || got.Separator != orig.Separator {
			t.Fatalf("plan for %s changed: %+v vs %+v", colName, got, orig)
		}
	}
	// Tokenization identical, including histogram bins.
	for _, v := range []dataset.Value{
		dataset.Number(3.7), dataset.Number(-100), dataset.String("a, q"),
		dataset.String("x"), dataset.Null(),
	} {
		for _, colName := range []string{"num", "tags", "cat"} {
			want, err1 := m.TextifyValue("t", colName, v)
			got, err2 := back.TextifyValue("t", colName, v)
			if (err1 == nil) != (err2 == nil) || len(want) != len(got) {
				t.Fatalf("%s(%v): %v/%v vs %v/%v", colName, v, want, err1, got, err2)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s(%v): token %q vs %q", colName, v, want[i], got[i])
				}
			}
		}
	}
}

func TestModelJSONErrors(t *testing.T) {
	m := &Model{}
	if err := json.Unmarshal([]byte(`{"options":{}}`), m); err == nil {
		t.Error("model without tables accepted")
	}
	if err := json.Unmarshal([]byte(`notjson`), m); err == nil {
		t.Error("garbage accepted")
	}
}

func keyOf(i int) string {
	return "k" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
