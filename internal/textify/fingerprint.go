package textify

import "repro/internal/fingerprint"

// optionsFPDomain versions the Options fingerprint encoding. Bump when
// Options gains a field that changes tokenization.
const optionsFPDomain = "leva/textify-options/v1"

// Fingerprint returns a canonical content hash of the options after
// defaulting, so an explicitly-set default and the zero value hash
// equal. Textification is a pure function of (table content, options),
// which makes this fingerprint one half of the per-table cache key of
// the staged pipeline.
func (o Options) Fingerprint() string {
	return fingerprint.JSON(optionsFPDomain, o.withDefaults())
}
