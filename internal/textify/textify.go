// Package textify implements Leva's first pipeline stage: converting
// heterogeneous relational data into string tokens (paper Section 4.1).
//
// Columns are classified into keys, numeric data, datetime data, atomic
// strings and formatted string lists. Keys and strings are encoded
// directly; numeric and datetime data is quantized into histogram bins
// (equi-width or equi-depth, chosen by a kurtosis test) and encoded as
// "attribute#bin" tokens so that numerical proximity survives
// tokenization while cardinality stays bounded. Null cells emit no
// token; dirty missing markers such as "?" pass through as ordinary
// strings because the graph-refinement voting stage (not this one) is
// responsible for detecting and removing them.
package textify

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// ColumnType classifies a column for textification purposes.
type ColumnType uint8

const (
	// TypeString is an atomic string column; values are encoded
	// directly (lower-cased, trimmed).
	TypeString ColumnType = iota
	// TypeKey is a key-like column (unique ratio near one, not
	// floating point); values are encoded directly without binning.
	TypeKey
	// TypeNumeric is a numeric column; values are histogram-binned.
	TypeNumeric
	// TypeDateTime is a datetime column; values are binned over Unix
	// seconds.
	TypeDateTime
	// TypeStringList is a separator-delimited list column; each
	// element is encoded as its own string token.
	TypeStringList
	// TypeCategoricalInt is an integer column with bounded
	// cardinality (for example a foreign-key reference to a numeric
	// key). Values are encoded directly so inclusion dependencies
	// against key columns survive; binning them would break join
	// recovery because the unique (key) side is encoded directly.
	TypeCategoricalInt
)

func (t ColumnType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeKey:
		return "key"
	case TypeNumeric:
		return "numeric"
	case TypeDateTime:
		return "datetime"
	case TypeStringList:
		return "string-list"
	case TypeCategoricalInt:
		return "categorical-int"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(t))
	}
}

// Options configures textification. The zero value is ready to use with
// the paper's defaults.
type Options struct {
	// BinCount is the number of histogram bins for numeric and
	// datetime columns. Default 50 (paper Table 2).
	BinCount int
	// KeyUniqueRatio is the unique-value ratio above which a non-float
	// column is treated as a key. The paper asks for a ratio "close to
	// one" to stay robust to duplicates; default 0.95.
	KeyUniqueRatio float64
	// ForceHistogram, when non-nil, overrides the kurtosis-based
	// histogram selection for every numeric column.
	ForceHistogram *stats.HistogramKind
	// DirectIntCardinality is the distinct-count limit under which an
	// integer column is encoded directly rather than binned, so that
	// foreign-key references to numeric keys keep their raw tokens.
	// Default 10000.
	DirectIntCardinality int
	// ListSeparators are candidate separators for string-list
	// detection. Default ",", ";", "|".
	ListSeparators []string
	// ListFraction is the fraction of non-null values that must
	// contain a separator for a column to be treated as a list.
	// Default 0.8.
	ListFraction float64
}

func (o Options) withDefaults() Options {
	if o.BinCount <= 0 {
		o.BinCount = 50
	}
	if o.KeyUniqueRatio <= 0 {
		o.KeyUniqueRatio = 0.95
	}
	if o.DirectIntCardinality <= 0 {
		o.DirectIntCardinality = 10000
	}
	if len(o.ListSeparators) == 0 {
		o.ListSeparators = []string{",", ";", "|"}
	}
	if o.ListFraction <= 0 {
		o.ListFraction = 0.8
	}
	return o
}

// ColumnPlan records how one column is textified.
type ColumnPlan struct {
	Table  string
	Column string
	Type   ColumnType
	// Hist is set for TypeNumeric and TypeDateTime.
	Hist *stats.Histogram
	// Separator is set for TypeStringList.
	Separator string
}

// Model holds fitted textification plans for every column of a database.
// Fit it on training data; Transform then applies the same binning to
// unseen rows, which is how test-time values are quantized.
type Model struct {
	opts  Options
	plans map[string]map[string]*ColumnPlan // table -> column -> plan
	order map[string][]string               // table -> fitted column order
}

// Fit classifies every column of db and fits histograms where needed.
//
// Fitting is per-table independent: a column's plan depends only on its
// own table's data and the options. Fit(db) is therefore exactly
// Merge(FitTable(t1), FitTable(t2), ...), which is what lets the staged
// pipeline re-fit only the tables whose content changed.
func Fit(db *dataset.Database, opts Options) (*Model, error) {
	m := newModel(opts)
	for _, t := range db.Tables {
		if err := m.fitTable(t); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// FitTable fits a model covering a single table. Combine per-table
// models with Merge to reassemble the equivalent of a whole-database
// Fit.
func FitTable(t *dataset.Table, opts Options) (*Model, error) {
	m := newModel(opts)
	if err := m.fitTable(t); err != nil {
		return nil, err
	}
	return m, nil
}

func newModel(opts Options) *Model {
	return &Model{
		opts:  opts.withDefaults(),
		plans: make(map[string]map[string]*ColumnPlan),
		order: make(map[string][]string),
	}
}

func (m *Model) fitTable(t *dataset.Table) error {
	cols := make(map[string]*ColumnPlan, t.NumCols())
	names := make([]string, 0, t.NumCols())
	for _, c := range t.Columns {
		p, err := planColumn(t.Name, c, m.opts)
		if err != nil {
			return err
		}
		cols[c.Name] = p
		names = append(names, c.Name)
	}
	m.plans[t.Name] = cols
	m.order[t.Name] = names
	return nil
}

// Merge combines per-table models (from FitTable, or decoded cache
// artifacts) into one model equivalent to fitting their union in one
// Fit call. The parts must cover disjoint tables and share the same
// fitted options — merging models fitted under different options would
// tokenize tables inconsistently, so it is rejected.
func Merge(parts ...*Model) (*Model, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("textify: merge of zero models")
	}
	m := newModel(parts[0].opts)
	optsFP := parts[0].opts.Fingerprint()
	for _, p := range parts {
		if p.opts.Fingerprint() != optsFP {
			return nil, fmt.Errorf("textify: merge of models fitted under different options")
		}
		for table, cols := range p.plans {
			if _, dup := m.plans[table]; dup {
				return nil, fmt.Errorf("textify: merge: table %q fitted by more than one model", table)
			}
			m.plans[table] = cols
			m.order[table] = p.order[table]
		}
	}
	return m, nil
}

// Columns returns the fitted column order for table, or nil if the
// table is unknown to the model. Serving-time callers that receive rows
// as unordered key/value maps use this to tokenize columns in the same
// order as the fitted table scan, which keeps floating-point feature
// sums bit-identical to the offline path. Models decoded from bundles
// written before the order was recorded fall back to lexical order.
func (m *Model) Columns(table string) []string {
	if names, ok := m.order[table]; ok {
		return names
	}
	cols, ok := m.plans[table]
	if !ok {
		return nil
	}
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tables returns the fitted table names in lexical order.
func (m *Model) Tables() []string {
	names := make([]string, 0, len(m.plans))
	for n := range m.plans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Plan returns the fitted plan for a column, or nil if unknown.
func (m *Model) Plan(table, column string) *ColumnPlan {
	cols, ok := m.plans[table]
	if !ok {
		return nil
	}
	return cols[column]
}

func planColumn(table string, c *dataset.Column, opts Options) (*ColumnPlan, error) {
	p := &ColumnPlan{Table: table, Column: c.Name}
	var (
		floats      []float64
		times       []float64
		strs        []string
		nonNull     int
		allNumeric  = true
		allIntegers = true
		allTimes    = true
	)
	for _, v := range c.Values {
		if v.IsNull() {
			continue
		}
		nonNull++
		switch v.Kind {
		case dataset.KindNumber:
			floats = append(floats, v.Num)
			if v.Num != float64(int64(v.Num)) {
				allIntegers = false
			}
			allTimes = false
		case dataset.KindTime:
			times = append(times, v.Num)
			allNumeric = false
		case dataset.KindString:
			allNumeric = false
			if ts, ok := parseTime(v.Str); ok {
				times = append(times, float64(ts.Unix()))
			} else {
				allTimes = false
			}
			strs = append(strs, v.Str)
		}
	}
	switch {
	case nonNull == 0:
		p.Type = TypeString // empty column; transform emits nothing
	case allNumeric && len(floats) == nonNull:
		classifyNumeric(p, c, floats, allIntegers, opts)
	case allTimes && len(times) == nonNull:
		p.Type = TypeDateTime
		kind := stats.EquiWidth
		if opts.ForceHistogram != nil {
			kind = *opts.ForceHistogram
		} else {
			kind = stats.ChooseKind(times)
		}
		h, err := stats.NewHistogram(kind, opts.BinCount, times)
		if err != nil {
			return nil, fmt.Errorf("textify: %s.%s: %w", table, c.Name, err)
		}
		p.Hist = h
	default:
		classifyString(p, c, strs, opts)
	}
	return p, nil
}

func classifyNumeric(p *ColumnPlan, c *dataset.Column, floats []float64, allIntegers bool, opts Options) {
	if allIntegers {
		distinct := make(map[float64]struct{}, len(floats))
		for _, f := range floats {
			distinct[f] = struct{}{}
		}
		ratio := float64(len(distinct)) / float64(len(floats))
		if ratio >= opts.KeyUniqueRatio {
			p.Type = TypeKey
			return
		}
		if len(distinct) <= opts.DirectIntCardinality {
			p.Type = TypeCategoricalInt
			return
		}
	}
	p.Type = TypeNumeric
	kind := stats.EquiWidth
	if opts.ForceHistogram != nil {
		kind = *opts.ForceHistogram
	} else {
		kind = stats.ChooseKind(floats)
	}
	// NewHistogram cannot fail here: bins>0 and data is non-empty.
	h, _ := stats.NewHistogram(kind, opts.BinCount, floats)
	p.Hist = h
}

func classifyString(p *ColumnPlan, c *dataset.Column, strs []string, opts Options) {
	if sep, ok := detectSeparator(strs, opts); ok {
		p.Type = TypeStringList
		p.Separator = sep
		return
	}
	if c.UniqueRatio() >= opts.KeyUniqueRatio {
		p.Type = TypeKey
		return
	}
	p.Type = TypeString
}

func detectSeparator(strs []string, opts Options) (string, bool) {
	if len(strs) == 0 {
		return "", false
	}
	for _, sep := range opts.ListSeparators {
		n, elems := 0, 0
		for _, s := range strs {
			if strings.Contains(s, sep) {
				n++
				elems += strings.Count(s, sep) + 1
			}
		}
		frac := float64(n) / float64(len(strs))
		if frac >= opts.ListFraction && n > 0 && float64(elems)/float64(n) >= 2 {
			return sep, true
		}
	}
	return "", false
}

var timeLayouts = []string{
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02",
	"01/02/2006",
	"2006/01/02",
}

func parseTime(s string) (time.Time, bool) {
	if len(s) < 8 || len(s) > 35 {
		return time.Time{}, false
	}
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// NormalizeToken canonicalizes a raw string token: trimmed and
// lower-cased so that syntactically identical values collide regardless
// of capitalization.
func NormalizeToken(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// BinToken renders a histogram bin as the paper's "attribute#bin" token.
func BinToken(attr string, bin int) string {
	return NormalizeToken(attr) + "#" + strconv.Itoa(bin)
}

// TokenizedTable is the textified form of one table: for every row and
// column, zero or more string tokens (lists emit several, nulls none).
type TokenizedTable struct {
	Table string
	Attrs []string
	// Cells[row][col] holds the tokens for that cell.
	Cells [][][]string
}

// NumRows returns the number of textified rows.
func (t *TokenizedTable) NumRows() int { return len(t.Cells) }

// Transform textifies a table using the fitted plans. The table must
// have been present (by name) when the model was fitted; its columns are
// matched by name, so transforming a row-subset or reordered copy works.
func (m *Model) Transform(t *dataset.Table) (*TokenizedTable, error) {
	out, cols, err := m.planTransform(t)
	if err != nil {
		return nil, err
	}
	for j := range t.Columns {
		transformColumn(out, t.Columns[j], j, cols[j])
	}
	return out, nil
}

// planTransform allocates the output table and resolves each column's
// fitted plan, so transforms can fan out with all fallible lookups
// already done.
func (m *Model) planTransform(t *dataset.Table) (*TokenizedTable, []*ColumnPlan, error) {
	plans, ok := m.plans[t.Name]
	if !ok {
		return nil, nil, fmt.Errorf("textify: no fitted plan for table %q", t.Name)
	}
	out := &TokenizedTable{Table: t.Name, Attrs: t.ColumnNames()}
	n := t.NumRows()
	out.Cells = make([][][]string, n)
	for i := 0; i < n; i++ {
		out.Cells[i] = make([][]string, t.NumCols())
	}
	cols := make([]*ColumnPlan, len(t.Columns))
	for j, c := range t.Columns {
		p, ok := plans[c.Name]
		if !ok {
			return nil, nil, fmt.Errorf("textify: table %q has no fitted plan for column %q", t.Name, c.Name)
		}
		cols[j] = p
	}
	return out, cols, nil
}

// transformColumn fills column j of the tokenized table. Each column
// writes a disjoint slot of every row, so distinct columns can be
// textified concurrently with no synchronization and a bit-identical
// result at any worker count.
func transformColumn(out *TokenizedTable, c *dataset.Column, j int, p *ColumnPlan) {
	for i, v := range c.Values {
		out.Cells[i][j] = textifyValue(v, p)
	}
}

// TransformAll textifies every table of a database, fanning the work
// out over GOMAXPROCS workers (see TransformAllWorkers).
func (m *Model) TransformAll(db *dataset.Database) ([]*TokenizedTable, error) {
	return m.TransformAllWorkers(db, 0)
}

// TransformAllWorkers is TransformAll with an explicit worker count
// (<= 0 means GOMAXPROCS). Work is sharded at column granularity across
// all tables, so one wide or long table still saturates the pool. The
// output is identical to the sequential path at every worker count:
// fitted plans are read-only and every (table, column) job writes its
// own cells.
func (m *Model) TransformAllWorkers(db *dataset.Database, workers int) ([]*TokenizedTable, error) {
	out := make([]*TokenizedTable, len(db.Tables))
	type job struct {
		col  *dataset.Column
		out  *TokenizedTable
		j    int
		plan *ColumnPlan
	}
	var jobs []job
	for ti, t := range db.Tables {
		tt, cols, err := m.planTransform(t)
		if err != nil {
			return nil, err
		}
		out[ti] = tt
		for j := range t.Columns {
			jobs = append(jobs, job{col: t.Columns[j], out: tt, j: j, plan: cols[j]})
		}
	}
	parallel.ForEach(len(jobs), workers, func(k int) {
		jb := jobs[k]
		transformColumn(jb.out, jb.col, jb.j, jb.plan)
	})
	return out, nil
}

// TextifyValue renders one cell under a plan; it is exported for the
// deployment stage, which must tokenize unseen test rows identically.
func (m *Model) TextifyValue(table, column string, v dataset.Value) ([]string, error) {
	p := m.Plan(table, column)
	if p == nil {
		return nil, fmt.Errorf("textify: no plan for %s.%s", table, column)
	}
	return textifyValue(v, p), nil
}

func textifyValue(v dataset.Value, p *ColumnPlan) []string {
	if v.IsNull() {
		return nil
	}
	switch p.Type {
	case TypeNumeric, TypeDateTime:
		f, ok := v.Float()
		if !ok {
			// A non-numeric value in a numeric column (for
			// example a dirty "?" marker) passes through as a
			// plain string token for the voting stage to handle.
			return []string{NormalizeToken(v.Text())}
		}
		return []string{BinToken(p.Column, p.Hist.Bin(f))}
	case TypeStringList:
		if v.Kind != dataset.KindString {
			return []string{NormalizeToken(v.Text())}
		}
		parts := strings.Split(v.Str, p.Separator)
		toks := make([]string, 0, len(parts))
		for _, part := range parts {
			if tok := NormalizeToken(part); tok != "" {
				toks = append(toks, tok)
			}
		}
		return toks
	default: // TypeKey, TypeCategoricalInt, TypeString
		if tok := NormalizeToken(v.Text()); tok != "" {
			return []string{tok}
		}
		return nil
	}
}
