package textify

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func forceEquiDepth() *stats.HistogramKind {
	k := stats.EquiDepth
	return &k
}

func fitSingle(t *testing.T, col *dataset.Column, opts Options) (*Model, *dataset.Table) {
	t.Helper()
	tab := &dataset.Table{Name: "t", Columns: []*dataset.Column{col}}
	m, err := Fit(dataset.NewDatabase(tab), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, tab
}

func col(name string, vals ...dataset.Value) *dataset.Column {
	return &dataset.Column{Name: name, Values: vals}
}

func TestKeyDetectionStringColumn(t *testing.T) {
	vals := make([]dataset.Value, 100)
	for i := range vals {
		vals[i] = dataset.String(fmt.Sprintf("id_%03d", i))
	}
	m, _ := fitSingle(t, col("id", vals...), Options{})
	if p := m.Plan("t", "id"); p.Type != TypeKey {
		t.Errorf("unique string column classified %v, want key", p.Type)
	}
}

func TestKeyDetectionIntegerColumn(t *testing.T) {
	vals := make([]dataset.Value, 100)
	for i := range vals {
		vals[i] = dataset.Int(i)
	}
	m, _ := fitSingle(t, col("id", vals...), Options{})
	if p := m.Plan("t", "id"); p.Type != TypeKey {
		t.Errorf("unique int column classified %v, want key", p.Type)
	}
}

func TestFloatColumnNeverKey(t *testing.T) {
	vals := make([]dataset.Value, 100)
	for i := range vals {
		vals[i] = dataset.Number(float64(i) + 0.5)
	}
	m, _ := fitSingle(t, col("score", vals...), Options{})
	if p := m.Plan("t", "score"); p.Type != TypeNumeric {
		t.Errorf("float column classified %v, want numeric", p.Type)
	}
}

func TestCategoricalIntFKPath(t *testing.T) {
	// A non-unique integer FK column must be encoded directly so that
	// inclusion dependencies against a numeric key survive.
	vals := make([]dataset.Value, 200)
	for i := range vals {
		vals[i] = dataset.Int(i % 40)
	}
	m, tab := fitSingle(t, col("ref", vals...), Options{})
	if p := m.Plan("t", "ref"); p.Type != TypeCategoricalInt {
		t.Fatalf("int FK column classified %v, want categorical-int", p.Type)
	}
	tt, err := m.Transform(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.Cells[41][0]; len(got) != 1 || got[0] != "1" {
		t.Errorf("direct int encoding = %v, want [1]", got)
	}
}

func TestNumericBinningToken(t *testing.T) {
	vals := make([]dataset.Value, 500)
	for i := range vals {
		vals[i] = dataset.Number(float64(i%100) + 0.25)
	}
	m, tab := fitSingle(t, col("amount", vals...), Options{BinCount: 10})
	tt, err := m.Transform(tab)
	if err != nil {
		t.Fatal(err)
	}
	tok := tt.Cells[0][0][0]
	if !strings.HasPrefix(tok, "amount#") {
		t.Errorf("bin token = %q", tok)
	}
	// Same value -> same token; far value -> different token.
	if tt.Cells[0][0][0] != tt.Cells[100][0][0] {
		t.Error("equal values got different bin tokens")
	}
	if tt.Cells[0][0][0] == tt.Cells[99][0][0] {
		t.Error("far values shared a bin token with 10 bins")
	}
}

func TestDatetimeDetection(t *testing.T) {
	vals := []dataset.Value{
		dataset.String("2020-01-01"), dataset.String("2020-06-15"),
		dataset.String("2021-01-01"), dataset.String("2021-06-15"),
		dataset.String("2022-01-01"),
	}
	m, _ := fitSingle(t, col("day", vals...), Options{})
	if p := m.Plan("t", "day"); p.Type != TypeDateTime {
		t.Errorf("date strings classified %v, want datetime", p.Type)
	}
}

func TestStringListDetection(t *testing.T) {
	vals := []dataset.Value{
		dataset.String("a, b, c"), dataset.String("b, d"),
		dataset.String("a, c"), dataset.String("d, e, f"),
	}
	m, tab := fitSingle(t, col("tags", vals...), Options{})
	p := m.Plan("t", "tags")
	if p.Type != TypeStringList || p.Separator != "," {
		t.Fatalf("list column classified %v sep=%q", p.Type, p.Separator)
	}
	tt, err := m.Transform(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.Cells[0][0]; len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("list tokens = %v", got)
	}
}

func TestNullsEmitNoTokensAndDirtyMarkersPass(t *testing.T) {
	vals := []dataset.Value{
		dataset.Null(), dataset.String("?"), dataset.String("x"), dataset.String("x"),
	}
	m, tab := fitSingle(t, col("c", vals...), Options{})
	tt, err := m.Transform(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Cells[0][0]) != 0 {
		t.Errorf("null produced tokens: %v", tt.Cells[0][0])
	}
	if got := tt.Cells[1][0]; len(got) != 1 || got[0] != "?" {
		t.Errorf("dirty marker tokens = %v (must pass through for voting)", got)
	}
}

func TestNormalizeToken(t *testing.T) {
	if NormalizeToken("  WashINGton ") != "washington" {
		t.Error("NormalizeToken failed")
	}
}

func TestTransformUnknownTable(t *testing.T) {
	m, _ := fitSingle(t, col("a", dataset.String("x")), Options{})
	if _, err := m.Transform(dataset.NewTable("other", "a")); err == nil {
		t.Error("unknown table transformed")
	}
}

func TestTextifyValueMatchesTransform(t *testing.T) {
	vals := make([]dataset.Value, 100)
	for i := range vals {
		vals[i] = dataset.Number(float64(i%50) + 0.5)
	}
	m, tab := fitSingle(t, col("n", vals...), Options{BinCount: 7})
	tt, err := m.Transform(tab)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 13 {
		direct, err := m.TextifyValue("t", "n", vals[i])
		if err != nil {
			t.Fatal(err)
		}
		if direct[0] != tt.Cells[i][0][0] {
			t.Errorf("row %d: TextifyValue %v != Transform %v", i, direct, tt.Cells[i][0])
		}
	}
	// Unseen value quantizes through the fitted histogram (clamped).
	toks, err := m.TextifyValue("t", "n", dataset.Number(1e9))
	if err != nil || len(toks) != 1 || !strings.HasPrefix(toks[0], "n#") {
		t.Errorf("unseen value tokens = %v, %v", toks, err)
	}
}

func TestForceHistogramOverride(t *testing.T) {
	kind := forceEquiDepth()
	vals := make([]dataset.Value, 100)
	for i := range vals {
		vals[i] = dataset.Number(float64(i) + 0.5)
	}
	m, _ := fitSingle(t, col("v", vals...), Options{ForceHistogram: kind})
	if p := m.Plan("t", "v"); p.Hist.Kind.String() != "equi-depth" {
		t.Errorf("forced histogram kind = %v", p.Hist.Kind)
	}
}

func TestEmptyColumnEmitsNothing(t *testing.T) {
	m, tab := fitSingle(t, col("e", dataset.Null(), dataset.Null()), Options{})
	tt, err := m.Transform(tab)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tt.Cells {
		if len(tt.Cells[i][0]) != 0 {
			t.Errorf("empty column produced tokens at row %d", i)
		}
	}
}

func TestMixedColumnFallsBackToString(t *testing.T) {
	// A column mixing numbers and text is treated as string.
	vals := []dataset.Value{
		dataset.Number(1), dataset.String("abc"), dataset.Number(2), dataset.String("abc"),
	}
	m, _ := fitSingle(t, col("mix", vals...), Options{})
	if p := m.Plan("t", "mix"); p.Type != TypeString {
		t.Errorf("mixed column classified %v", p.Type)
	}
}

func TestDatetimeLayouts(t *testing.T) {
	cases := []string{
		"2021-03-04T05:06:07Z",
		"2021-03-04 05:06:07",
		"2021-03-04",
		"03/04/2021",
		"2021/03/04",
	}
	for _, c := range cases {
		if _, ok := parseTime(c); !ok {
			t.Errorf("layout %q not parsed", c)
		}
	}
	for _, bad := range []string{"hello", "12", "2021-13-99", ""} {
		if _, ok := parseTime(bad); ok {
			t.Errorf("non-date %q parsed", bad)
		}
	}
}

func TestListColumnNumericElementsKeepTokens(t *testing.T) {
	vals := []dataset.Value{
		dataset.String("1, 2, 3"), dataset.String("2, 3"),
		dataset.String("1, 3"), dataset.String("3, 4, 5"),
	}
	m, tab := fitSingle(t, col("nums", vals...), Options{})
	p := m.Plan("t", "nums")
	if p.Type != TypeStringList {
		t.Fatalf("classified %v", p.Type)
	}
	tt, err := m.Transform(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.Cells[0][0]; len(got) != 3 || got[1] != "2" {
		t.Errorf("tokens = %v", got)
	}
	// A non-string value in a list column degrades gracefully.
	toks, err := m.TextifyValue("t", "nums", dataset.Number(7))
	if err != nil || len(toks) != 1 || toks[0] != "7" {
		t.Errorf("non-string in list column: %v, %v", toks, err)
	}
}

// Property: numeric textification always yields exactly one well-formed
// bin token for any finite value.
func TestNumericTokenProperty(t *testing.T) {
	vals := make([]dataset.Value, 60)
	for i := range vals {
		vals[i] = dataset.Number(float64(i*i) + 0.5)
	}
	m, _ := fitSingle(t, col("v", vals...), Options{BinCount: 9})
	f := func(x float64) bool {
		if x != x || x > 1e300 || x < -1e300 {
			return true
		}
		toks, err := m.TextifyValue("t", "v", dataset.Number(x))
		return err == nil && len(toks) == 1 && strings.HasPrefix(toks[0], "v#")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
