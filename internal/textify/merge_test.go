package textify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/dataset"
)

func mergeTestDB() *dataset.Database {
	a := dataset.NewTable("a", "id", "v")
	b := dataset.NewTable("b", "id", "city")
	for i := 0; i < 30; i++ {
		a.AppendRow(dataset.String(fmt.Sprintf("k%02d", i)), dataset.Number(float64(i%9)))
		b.AppendRow(dataset.String(fmt.Sprintf("k%02d", i)), dataset.String(fmt.Sprintf("c%d", i%4)))
	}
	return dataset.NewDatabase(a, b)
}

// TestMergeEqualsFit proves the per-table decomposition the incremental
// pipeline relies on: fitting tables independently and merging yields a
// model byte-identical (in its canonical JSON form) to one whole-db Fit.
func TestMergeEqualsFit(t *testing.T) {
	db := mergeTestDB()
	whole, err := Fit(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var parts []*Model
	for _, tb := range db.Tables {
		p, err := FitTable(tb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(whole)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("merged model differs from whole-db fit:\n%s\nvs\n%s", a, b)
	}
	// And it transforms identically.
	ta, err := whole.TransformAll(db)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := merged.TransformAll(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ta {
		aj, _ := json.Marshal(ta[i])
		bj, _ := json.Marshal(tb[i])
		if !bytes.Equal(aj, bj) {
			t.Fatalf("table %d tokenizes differently under the merged model", i)
		}
	}
}

func TestMergeRejectsConflicts(t *testing.T) {
	db := mergeTestDB()
	p1, err := FitTable(db.Tables[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(p1, p1); err == nil {
		t.Error("duplicate table accepted")
	}
	p2, err := FitTable(db.Tables[1], Options{BinCount: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(p1, p2); err == nil {
		t.Error("mismatched options accepted")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestOptionsFingerprint(t *testing.T) {
	zero := Options{}.Fingerprint()
	if zero != (Options{BinCount: 50, KeyUniqueRatio: 0.95, DirectIntCardinality: 10000,
		ListSeparators: []string{",", ";", "|"}, ListFraction: 0.8}).Fingerprint() {
		t.Error("zero options and explicit defaults fingerprint differently")
	}
	if zero == (Options{BinCount: 7}).Fingerprint() {
		t.Error("bin count did not change the fingerprint")
	}
}
