package textify

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

// TestTransformAllWorkersIdentical verifies the parallel textifier
// returns exactly the sequential per-table transforms at every worker
// count.
func TestTransformAllWorkersIdentical(t *testing.T) {
	users := dataset.NewTable("users", "id", "city", "score")
	for i := 0; i < 200; i++ {
		users.AppendRow(
			dataset.String(fmt.Sprintf("u%d", i)),
			dataset.String(fmt.Sprintf("city%d", i%9)),
			dataset.Number(float64(i%37)),
		)
	}
	items := dataset.NewTable("items", "sku", "tags")
	for i := 0; i < 150; i++ {
		items.AppendRow(
			dataset.String(fmt.Sprintf("sku%d", i)),
			dataset.String(fmt.Sprintf("tag%d,tag%d", i%5, i%3)),
		)
	}
	db := dataset.NewDatabase(users, items)
	m, err := Fit(db, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var want []*TokenizedTable
	for _, tab := range db.Tables {
		tt, err := m.Transform(tab)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, tt)
	}
	for _, w := range []int{1, 2, 4, 16} {
		got, err := m.TransformAllWorkers(db, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: tokenized output differs from sequential Transform", w)
		}
	}
}

// TestTransformAllWorkersUnknownTable keeps the error contract of the
// sequential path.
func TestTransformAllWorkersUnknownTable(t *testing.T) {
	known := dataset.NewTable("known", "a")
	known.AppendRow(dataset.String("x"))
	m, err := Fit(dataset.NewDatabase(known), Options{})
	if err != nil {
		t.Fatal(err)
	}
	other := dataset.NewTable("other", "a")
	other.AppendRow(dataset.String("y"))
	if _, err := m.TransformAllWorkers(dataset.NewDatabase(other), 4); err == nil {
		t.Fatal("expected error for unfitted table")
	}
}
