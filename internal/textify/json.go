package textify

import (
	"encoding/json"
	"fmt"
)

// modelJSON is the wire form of a fitted Model.
type modelJSON struct {
	Options Options                           `json:"options"`
	Tables  map[string]map[string]*ColumnPlan `json:"tables"`
}

// MarshalJSON serializes the fitted textification model (column types,
// separators, and histograms) so a deployment can tokenize new data
// identically after a reload.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{Options: m.opts, Tables: m.plans})
}

// UnmarshalJSON restores a model written by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Tables == nil {
		return fmt.Errorf("textify: model JSON has no tables")
	}
	m.opts = in.Options
	m.plans = in.Tables
	return nil
}

// MarshalJSON includes the plan's type as a readable string alongside
// the numeric code for debuggability.
func (p *ColumnPlan) MarshalJSON() ([]byte, error) {
	type alias ColumnPlan // avoid recursion
	return json.Marshal(struct {
		*alias
		TypeName string `json:"typeName"`
	}{(*alias)(p), p.Type.String()})
}
