package textify

import (
	"encoding/json"
	"fmt"
)

// modelJSON is the wire form of a fitted Model.
type modelJSON struct {
	Options Options                           `json:"options"`
	Tables  map[string]map[string]*ColumnPlan `json:"tables"`
	// ColumnOrder preserves each table's fitted column order, which
	// the online serving path needs to tokenize unordered row maps
	// exactly like the offline table scan. Absent in models written
	// before it existed; Columns falls back to lexical order then.
	ColumnOrder map[string][]string `json:"columnOrder,omitempty"`
}

// MarshalJSON serializes the fitted textification model (column types,
// separators, histograms, and column order) so a deployment can
// tokenize new data identically after a reload.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{Options: m.opts, Tables: m.plans, ColumnOrder: m.order})
}

// UnmarshalJSON restores a model written by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Tables == nil {
		return fmt.Errorf("textify: model JSON has no tables")
	}
	m.opts = in.Options
	m.plans = in.Tables
	m.order = in.ColumnOrder
	return nil
}

// MarshalJSON includes the plan's type as a readable string alongside
// the numeric code for debuggability.
func (p *ColumnPlan) MarshalJSON() ([]byte, error) {
	type alias ColumnPlan // avoid recursion
	return json.Marshal(struct {
		*alias
		TypeName string `json:"typeName"`
	}{(*alias)(p), p.Type.String()})
}
