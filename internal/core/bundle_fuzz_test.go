package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/synth"
)

// fuzzBundle lazily builds one small bundle — saved in the legacy JSON
// layout, whose per-file decoders the three legacy fuzzers below target
// — whose payload files seed and host the decoder fuzzing.
var (
	fuzzBundleOnce sync.Once
	fuzzBundleDir  string
	fuzzBundleRes  *Result
	fuzzBundleErr  error
)

func fuzzBundleResult(t testing.TB) *Result {
	t.Helper()
	fuzzBundleOnce.Do(func() {
		spec := synth.Student(synth.StudentOptions{Students: 15, Seed: 5})
		res, err := BuildEmbedding(spec.DB, Config{Dim: 3, Seed: 5, Method: embed.MethodMF})
		if err != nil {
			fuzzBundleErr = err
			return
		}
		fuzzBundleRes = res
		fuzzBundleDir, fuzzBundleErr = os.MkdirTemp("", "leva-fuzz-bundle-*")
		if fuzzBundleErr != nil {
			return
		}
		fuzzBundleErr = res.SaveBundleLegacy(fuzzBundleDir)
	})
	if fuzzBundleErr != nil {
		t.Fatal(fuzzBundleErr)
	}
	return fuzzBundleRes
}

func fuzzBundle(t testing.TB) string {
	t.Helper()
	fuzzBundleResult(t)
	return fuzzBundleDir
}

// cloneBundleWithout copies the fuzz bundle's payload files into a
// fresh dir, dropping MANIFEST.json so corrupted bytes reach the
// decoders instead of being screened out by the integrity check — the
// decoders themselves must be panic-free on arbitrary input, because
// legacy bundles have no manifest protecting them.
func cloneBundleWithout(t *testing.T, replace string, data []byte) string {
	t.Helper()
	src := fuzzBundle(t)
	dst := t.TempDir()
	for _, name := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
		content := data
		if name != replace {
			var err error
			content, err = os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dst, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// fuzzBundleFile is the shared property: feeding arbitrary bytes into
// one bundle file must never panic, and any invalid JSON must be
// rejected with an error naming that file.
func fuzzBundleFile(t *testing.T, name string, data []byte) {
	dir := cloneBundleWithout(t, name, data)
	_, err := LoadBundle(dir)
	if err == nil {
		return // decodable and consistent — fine
	}
	if !strings.Contains(err.Error(), dir) {
		t.Errorf("error does not locate the bundle %s: %v", dir, err)
	}
	if !json.Valid(data) && !strings.Contains(err.Error(), name) {
		t.Errorf("invalid JSON in %s produced an error naming some other file: %v", name, err)
	}
}

func FuzzLoadBundleConfig(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join(fuzzBundle(f), bundleConfigFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"formatVersion": 99}`))
	f.Add([]byte(`{"dim": -1, "formatVersion": 1}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFE, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzBundleFile(t, bundleConfigFile, data)
	})
}

func FuzzLoadBundleTextify(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join(fuzzBundle(f), bundleTextifyFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/3])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tables": {"t": {"c": {"type": 999}}}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzBundleFile(t, bundleTextifyFile, data)
	})
}

// FuzzLoadBundleEmbedding rounds out the trio: arbitrary bytes in
// embedding.tsv (not JSON — the TSV reader has its own parser) must
// never panic LoadBundle, and parse failures must name the file.
func FuzzLoadBundleEmbedding(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join(fuzzBundle(f), bundleEmbeddingFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("a\t1 2\nb\t3\n"))
	f.Add([]byte("no-tab-here\n"))
	f.Add([]byte("x\tnot-a-number\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := cloneBundleWithout(t, bundleEmbeddingFile, data)
		if _, err := LoadBundle(dir); err != nil {
			if !strings.Contains(err.Error(), dir) {
				t.Errorf("error does not locate the bundle %s: %v", dir, err)
			}
		}
	})
}

// TestManifestScreensBeforeDecoding confirms the layering the fuzz
// tests sidestep: with a manifest present, corrupted payload bytes are
// rejected by the integrity check before any decoder runs.
func TestManifestScreensBeforeDecoding(t *testing.T) {
	dir := savedBundle(t)
	path := filepath.Join(dir, bundleBinFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBundle(dir)
	if err == nil || !strings.Contains(err.Error(), durable.ManifestName) {
		t.Fatalf("manifest did not screen the corrupted payload: %v", err)
	}
}

// FuzzBundleV4 feeds arbitrary bytes to the binary bundle decoder. The
// properties: it never panics; every rejection wraps exactly one of the
// named errors (ErrBadMagic, ErrVersion, ErrCorrupt); and any input it
// accepts re-encodes stably — encode(decode(input)) is a fixed point of
// decode∘encode, so a hostile-but-valid file cannot round-trip into a
// different bundle.
func FuzzBundleV4(f *testing.F) {
	res := fuzzBundleResult(f)
	valid, err := encodeBundleV4(res)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(bundleMagic)+8])
	f.Add([]byte(bundleMagic))
	f.Add([]byte("LEVAHNSW not this format"))
	f.Add([]byte{})
	// Version 99 header with zero sections.
	hdr := append([]byte(bundleMagic), 99, 0, 0, 0, 0, 0, 0, 0)
	f.Add(hdr)
	// Claimed section beyond EOF.
	lying := append([]byte(bundleMagic), 4, 0, 0, 0, 1, 0, 0, 0)
	lying = append(lying, make([]byte, 24)...)
	lying[len(bundleMagic)+8+8] = 0xFF // offset 255, unaligned and out of range
	f.Add(lying)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := decodeBundleV4(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection is not a named bundle error: %v", err)
			}
			return
		}
		enc, err := encodeBundleV4(dec)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		dec2, err := decodeBundleV4(enc)
		if err != nil {
			t.Fatalf("re-encoded bundle failed to decode: %v", err)
		}
		enc2, err := encodeBundleV4(dec2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encode is not stable: %d vs %d bytes", len(enc), len(enc2))
		}
	})
}
