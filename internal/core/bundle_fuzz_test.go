package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/synth"
)

// fuzzBundle lazily builds one small bundle whose payload files seed
// and host the decoder fuzzing below.
var (
	fuzzBundleOnce sync.Once
	fuzzBundleDir  string
	fuzzBundleErr  error
)

func fuzzBundle(t testing.TB) string {
	t.Helper()
	fuzzBundleOnce.Do(func() {
		spec := synth.Student(synth.StudentOptions{Students: 15, Seed: 5})
		res, err := BuildEmbedding(spec.DB, Config{Dim: 3, Seed: 5, Method: embed.MethodMF})
		if err != nil {
			fuzzBundleErr = err
			return
		}
		fuzzBundleDir, fuzzBundleErr = os.MkdirTemp("", "leva-fuzz-bundle-*")
		if fuzzBundleErr != nil {
			return
		}
		fuzzBundleErr = res.SaveBundle(fuzzBundleDir)
	})
	if fuzzBundleErr != nil {
		t.Fatal(fuzzBundleErr)
	}
	return fuzzBundleDir
}

// cloneBundleWithout copies the fuzz bundle's payload files into a
// fresh dir, dropping MANIFEST.json so corrupted bytes reach the
// decoders instead of being screened out by the integrity check — the
// decoders themselves must be panic-free on arbitrary input, because
// legacy bundles have no manifest protecting them.
func cloneBundleWithout(t *testing.T, replace string, data []byte) string {
	t.Helper()
	src := fuzzBundle(t)
	dst := t.TempDir()
	for _, name := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
		content := data
		if name != replace {
			var err error
			content, err = os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dst, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// fuzzBundleFile is the shared property: feeding arbitrary bytes into
// one bundle file must never panic, and any invalid JSON must be
// rejected with an error naming that file.
func fuzzBundleFile(t *testing.T, name string, data []byte) {
	dir := cloneBundleWithout(t, name, data)
	_, err := LoadBundle(dir)
	if err == nil {
		return // decodable and consistent — fine
	}
	if !strings.Contains(err.Error(), dir) {
		t.Errorf("error does not locate the bundle %s: %v", dir, err)
	}
	if !json.Valid(data) && !strings.Contains(err.Error(), name) {
		t.Errorf("invalid JSON in %s produced an error naming some other file: %v", name, err)
	}
}

func FuzzLoadBundleConfig(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join(fuzzBundle(f), bundleConfigFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"formatVersion": 99}`))
	f.Add([]byte(`{"dim": -1, "formatVersion": 1}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFE, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzBundleFile(t, bundleConfigFile, data)
	})
}

func FuzzLoadBundleTextify(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join(fuzzBundle(f), bundleTextifyFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/3])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tables": {"t": {"c": {"type": 999}}}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzBundleFile(t, bundleTextifyFile, data)
	})
}

// FuzzLoadBundleEmbedding rounds out the trio: arbitrary bytes in
// embedding.tsv (not JSON — the TSV reader has its own parser) must
// never panic LoadBundle, and parse failures must name the file.
func FuzzLoadBundleEmbedding(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join(fuzzBundle(f), bundleEmbeddingFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("a\t1 2\nb\t3\n"))
	f.Add([]byte("no-tab-here\n"))
	f.Add([]byte("x\tnot-a-number\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := cloneBundleWithout(t, bundleEmbeddingFile, data)
		if _, err := LoadBundle(dir); err != nil {
			if !strings.Contains(err.Error(), dir) {
				t.Errorf("error does not locate the bundle %s: %v", dir, err)
			}
		}
	})
}

// TestManifestScreensBeforeDecoding confirms the layering the fuzz
// tests sidestep: with a manifest present, corrupted payload bytes are
// rejected by the integrity check before any decoder runs.
func TestManifestScreensBeforeDecoding(t *testing.T) {
	dir := savedBundle(t)
	path := filepath.Join(dir, bundleTextifyFile)
	if err := os.WriteFile(path, []byte(`{"tables": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadBundle(dir)
	if err == nil || !strings.Contains(err.Error(), durable.ManifestName) {
		t.Fatalf("manifest did not screen the corrupted payload: %v", err)
	}
}
