package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/textify"
)

// The pipeline of paper Fig. 2 as an explicit stage DAG:
//
//	TextifyStage ──▶ GraphStage ──▶ EmbedStage
//
// Each stage declares a fingerprint of everything that determines its
// output — input table contents, stage options, and the upstream
// stage's fingerprint — and produces a serializable artifact stored in
// the content-addressed Cache under that fingerprint. BuildEmbedding is
// a thin driver over the three stages; with a cache attached, a stage
// whose fingerprint matches a sealed entry loads its artifact instead
// of recomputing, and the textify stage goes further: it re-fits and
// re-tokenizes only the tables whose content hash changed, reusing the
// cached tokenization of the rest.
//
// Invariant: at every worker count where a stage is bit-identical
// (textify and graph always, MF always, RW/GloVe at Workers=1), a
// cache-assisted build produces exactly the Result a from-scratch
// BuildEmbedding would. Fingerprints are constructed to make that hold:
// anything that can change stage output is hashed; knobs that provably
// cannot (worker counts of bit-identical stages) are excluded so they
// never cause spurious rebuilds.

// Cache entry stage names (the first path element under the cache root).
const (
	stageTextify = "textify"
	stageGraph   = "graph"
	stageEmbed   = "embed"
)

// Artifact payload file names.
const (
	artifactModelFile     = "model.json"  // per-table textify.Model
	artifactTokensFile    = "tokens.json" // per-table textify.TokenizedTable
	artifactGraphFile     = "graph.bin"   // graph.WriteBinary
	artifactGraphMetaFile = "meta.json"   // graphMeta
	artifactEmbeddingFile = "embedding.tsv"
	artifactEmbedMetaFile = "meta.json" // embedMeta
)

// Stage fingerprint domains; bump a version when an artifact encoding
// or the set of hashed inputs changes.
const (
	textifyTableFPDomain = "leva/stage-textify-table/v1"
	textifyStageFPDomain = "leva/stage-textify/v1"
	graphStageFPDomain   = "leva/stage-graph/v1"
	embedStageFPDomain   = "leva/stage-embed/v1"
)

// TextifyStage fits the textification model and tokenizes every table
// (paper Section 4.1). Its cache granularity is one table: fitting is
// per-table independent (see textify.Fit), so each table's plan and
// tokenization is a separate artifact keyed by that table's content
// hash plus the textify options, and a build after a single-table edit
// reuses every other table's entry.
type TextifyStage struct {
	DB      *dataset.Database
	Opts    textify.Options
	Workers int
	Cache   *Cache

	tableFPs []string
}

// TableFingerprints returns the cache key of every table's artifact, in
// database table order.
func (s *TextifyStage) TableFingerprints() []string {
	if s.tableFPs == nil {
		optsFP := s.Opts.Fingerprint()
		s.tableFPs = make([]string, len(s.DB.Tables))
		for i, t := range s.DB.Tables {
			s.tableFPs[i] = fingerprint.Combine(textifyTableFPDomain, t.Fingerprint(), optsFP)
		}
	}
	return s.tableFPs
}

// Fingerprint identifies the whole stage output: every per-table
// fingerprint, in table order (order matters downstream — the graph
// interns row nodes in table order).
func (s *TextifyStage) Fingerprint() string {
	return fingerprint.Combine(textifyStageFPDomain, s.TableFingerprints()...)
}

// Run produces the fitted model and tokenized tables, loading cached
// per-table artifacts where fingerprints match and re-fitting only the
// rest. reused/rebuilt count tables served from cache versus computed.
func (s *TextifyStage) Run() (model *textify.Model, tokenized []*textify.TokenizedTable, reused, rebuilt int, err error) {
	if s.Cache == nil || len(s.DB.Tables) == 0 {
		model, err = textify.Fit(s.DB, s.Opts)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		tokenized, err = model.TransformAllWorkers(s.DB, s.Workers)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		return model, tokenized, 0, len(s.DB.Tables), nil
	}

	fps := s.TableFingerprints()
	parts := make([]*textify.Model, len(s.DB.Tables))
	tokenized = make([]*textify.TokenizedTable, len(s.DB.Tables))
	var missed []int
	for i := range s.DB.Tables {
		if files, ok := s.Cache.Load(stageTextify, fps[i]); ok {
			part, tok, decErr := decodeTextifyArtifact(files)
			if decErr == nil && part != nil && tok != nil && tok.Table == s.DB.Tables[i].Name {
				parts[i], tokenized[i] = part, tok
				reused++
				continue
			}
		}
		missed = append(missed, i)
	}

	if len(missed) > 0 {
		// Re-fit and re-tokenize only the changed tables, with the same
		// column-granular fan-out the cold path uses so one wide table
		// still saturates the worker pool.
		sub := &dataset.Database{}
		for _, i := range missed {
			sub.Tables = append(sub.Tables, s.DB.Tables[i])
		}
		for _, i := range missed {
			part, fitErr := textify.FitTable(s.DB.Tables[i], s.Opts)
			if fitErr != nil {
				return nil, nil, 0, 0, fitErr
			}
			parts[i] = part
		}
		subModel, mergeErr := textify.Merge(pick(parts, missed)...)
		if mergeErr != nil {
			return nil, nil, 0, 0, mergeErr
		}
		subTok, tErr := subModel.TransformAllWorkers(sub, s.Workers)
		if tErr != nil {
			return nil, nil, 0, 0, tErr
		}
		for k, i := range missed {
			tokenized[i] = subTok[k]
			rebuilt++
			if files, encErr := encodeTextifyArtifact(parts[i], subTok[k]); encErr == nil {
				s.Cache.noteStore(s.Cache.Store(stageTextify, fps[i], files))
			}
		}
	}

	model, err = textify.Merge(parts...)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return model, tokenized, reused, rebuilt, nil
}

func pick[T any](all []T, idx []int) []T {
	out := make([]T, 0, len(idx))
	for _, i := range idx {
		out = append(out, all[i])
	}
	return out
}

func encodeTextifyArtifact(part *textify.Model, tok *textify.TokenizedTable) (map[string][]byte, error) {
	modelData, err := json.Marshal(part)
	if err != nil {
		return nil, err
	}
	tokData, err := json.Marshal(tok)
	if err != nil {
		return nil, err
	}
	return map[string][]byte{artifactModelFile: modelData, artifactTokensFile: tokData}, nil
}

func decodeTextifyArtifact(files map[string][]byte) (*textify.Model, *textify.TokenizedTable, error) {
	part := &textify.Model{}
	if err := json.Unmarshal(files[artifactModelFile], part); err != nil {
		return nil, nil, err
	}
	tok := &textify.TokenizedTable{}
	if err := json.Unmarshal(files[artifactTokensFile], tok); err != nil {
		return nil, nil, err
	}
	return part, tok, nil
}

// graphMeta is the JSON sidecar of a cached graph artifact.
type graphMeta struct {
	Stats              graph.Stats `json:"stats"`
	UnweightedFallback bool        `json:"unweightedFallback"`
}

// GraphStage builds the refined relational graph from the tokenized
// tables (paper Section 3, Algorithm 1), including the memory-budget
// fallback to an unweighted graph. The fallback decision is part of the
// stage — it depends on the built graph's degree statistics — so the
// knobs feeding it (method selection, dim, budget, walk shape) are part
// of the stage fingerprint, and the artifact records which graph
// (weighted or stripped) was the outcome.
type GraphStage struct {
	Tokenized []*textify.TokenizedTable
	// InputFP is the upstream TextifyStage fingerprint; it stands in
	// for the full tokenized content, which it determines.
	InputFP string
	Opts    graph.Options

	// Fallback inputs (paper Section 3.2 / 4.3): the unweighted
	// fallback triggers when random walks were selected and the alias
	// tables they need exceed the memory budget.
	Method            embed.Method
	Dim               int
	MemoryBudgetBytes int64
	WalkLength        int
	WalksPerNode      int

	Cache *Cache
}

// Fingerprint identifies the graph artifact: tokenized input, graph
// options, and every knob of the fallback decision.
func (s *GraphStage) Fingerprint() string {
	h := fingerprint.New(graphStageFPDomain)
	h.String(s.InputFP)
	h.String(s.Opts.Fingerprint())
	h.String(string(s.Method))
	h.Int(int64(s.Dim))
	h.Int(s.MemoryBudgetBytes)
	h.Int(int64(s.WalkLength))
	h.Int(int64(s.WalksPerNode))
	return h.Sum()
}

// Run returns the (possibly unweighted-fallback) graph, its stats, and
// whether the fallback fired, loading the cached artifact when the
// fingerprint matches.
func (s *GraphStage) Run() (g *graph.Graph, stats graph.Stats, fellBack, cached bool, err error) {
	var fp string
	if s.Cache != nil {
		fp = s.Fingerprint()
		if files, ok := s.Cache.Load(stageGraph, fp); ok {
			g, stats, fellBack, err = decodeGraphArtifact(files)
			if err == nil {
				return g, stats, fellBack, true, nil
			}
			// A decode failure is a miss; fall through and rebuild.
		}
	}

	g, stats = graph.Build(s.Tokenized, s.Opts)
	// Section 3.2: weighted graphs are the default unless the alias
	// tables weighted random walks would need blow the memory budget;
	// then Leva falls back to the unweighted graph. Only the RW path
	// pays for alias tables, so the check is gated on it. The estimate
	// comes from the weighted graph's own degree stats, and the
	// fallback strips the weights in place — construction is identical
	// either way, so no second build happens.
	if g.Weighted && s.MemoryBudgetBytes > 0 &&
		embed.Select(s.Method, g, s.Dim, s.MemoryBudgetBytes) == embed.MethodRW &&
		g.EstimateRWMemoryBytes(s.WalkLength, s.WalksPerNode) > s.MemoryBudgetBytes {
		g = g.StripWeights()
		fellBack = true
	}

	if s.Cache != nil {
		if files, encErr := encodeGraphArtifact(g, stats, fellBack); encErr == nil {
			s.Cache.noteStore(s.Cache.Store(stageGraph, fp, files))
		}
	}
	return g, stats, fellBack, false, nil
}

func encodeGraphArtifact(g *graph.Graph, stats graph.Stats, fellBack bool) (map[string][]byte, error) {
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		return nil, err
	}
	meta, err := json.Marshal(graphMeta{Stats: stats, UnweightedFallback: fellBack})
	if err != nil {
		return nil, err
	}
	return map[string][]byte{artifactGraphFile: buf.Bytes(), artifactGraphMetaFile: meta}, nil
}

func decodeGraphArtifact(files map[string][]byte) (*graph.Graph, graph.Stats, bool, error) {
	g, err := graph.ReadBinary(bytes.NewReader(files[artifactGraphFile]))
	if err != nil {
		return nil, graph.Stats{}, false, err
	}
	var meta graphMeta
	if err := json.Unmarshal(files[artifactGraphMetaFile], &meta); err != nil {
		return nil, graph.Stats{}, false, err
	}
	return g, meta.Stats, meta.UnweightedFallback, nil
}

// embedMeta is the JSON sidecar of a cached embedding artifact.
type embedMeta struct {
	Method embed.Method `json:"method"`
	Dim    int          `json:"dim"`
}

// EmbedStage constructs the embedding over the graph with the method
// the memory rule selects (paper Section 4.2). Its artifact is the
// embedding TSV — the same encoding bundles use — which round-trips
// float64 vectors exactly, so a cache-loaded embedding is bit-identical
// to the one the build produced.
type EmbedStage struct {
	Graph *graph.Graph
	// InputFP is the upstream GraphStage fingerprint.
	InputFP string
	Cfg     Config
	Cache   *Cache
}

// resolve picks the method (applying the auto rule against the actual
// graph) and materializes its options with the pipeline-wide Dim and
// Seed threaded in, exactly as the embedding construction will receive
// them.
func (s *EmbedStage) resolve() (embed.Method, string) {
	method := embed.Select(s.Cfg.Method, s.Graph, s.Cfg.Dim, s.Cfg.MemoryBudgetBytes)
	var optsFP string
	switch method {
	case embed.MethodMF:
		o := s.Cfg.MF
		o.Dim, o.Seed = s.Cfg.Dim, s.Cfg.Seed
		optsFP = o.Fingerprint()
	case embed.MethodRW:
		o := s.Cfg.RW
		o.Dim, o.Seed = s.Cfg.Dim, s.Cfg.Seed
		optsFP = o.Fingerprint()
	case embed.MethodGloVe:
		o := s.Cfg.GloVe
		o.Dim, o.Seed = s.Cfg.Dim, s.Cfg.Seed
		optsFP = o.Fingerprint()
	}
	return method, optsFP
}

// Fingerprint identifies the embedding artifact: the graph it is built
// over plus the resolved method and its fully-defaulted options. Only
// the selected method's options are hashed, so tuning RW knobs cannot
// invalidate a cached MF embedding.
func (s *EmbedStage) Fingerprint() string {
	method, optsFP := s.resolve()
	return fingerprint.Combine(embedStageFPDomain, s.InputFP, string(method),
		strconv.Itoa(s.Cfg.Dim), strconv.FormatInt(s.Cfg.Seed, 10), optsFP)
}

// Run returns the embedding and the method used, loading the cached
// artifact when the fingerprint matches.
func (s *EmbedStage) Run() (e *embed.Embedding, method embed.Method, cached bool, err error) {
	method, _ = s.resolve()
	var fp string
	if s.Cache != nil {
		fp = s.Fingerprint()
		if files, ok := s.Cache.Load(stageEmbed, fp); ok {
			if e, decErr := decodeEmbedArtifact(files, method, s.Cfg.Dim); decErr == nil {
				return e, method, true, nil
			}
		}
	}

	switch method {
	case embed.MethodMF:
		opts := s.Cfg.MF
		opts.Dim, opts.Seed = s.Cfg.Dim, s.Cfg.Seed
		e = embed.MF(s.Graph, opts)
	case embed.MethodRW:
		opts := s.Cfg.RW
		opts.Dim, opts.Seed = s.Cfg.Dim, s.Cfg.Seed
		e = embed.RW(s.Graph, opts)
	case embed.MethodGloVe:
		opts := s.Cfg.GloVe
		opts.Dim, opts.Seed = s.Cfg.Dim, s.Cfg.Seed
		e = embed.GloVe(s.Graph, opts)
	default:
		return nil, method, false, fmt.Errorf("core: unknown embedding method %q", method)
	}

	if s.Cache != nil {
		if files, encErr := encodeEmbedArtifact(e, method); encErr == nil {
			s.Cache.noteStore(s.Cache.Store(stageEmbed, fp, files))
		}
	}
	return e, method, false, nil
}

func encodeEmbedArtifact(e *embed.Embedding, method embed.Method) (map[string][]byte, error) {
	var buf bytes.Buffer
	if err := e.WriteTSV(&buf); err != nil {
		return nil, err
	}
	meta, err := json.Marshal(embedMeta{Method: method, Dim: e.Dim})
	if err != nil {
		return nil, err
	}
	return map[string][]byte{artifactEmbeddingFile: buf.Bytes(), artifactEmbedMetaFile: meta}, nil
}

func decodeEmbedArtifact(files map[string][]byte, method embed.Method, dim int) (*embed.Embedding, error) {
	var meta embedMeta
	if err := json.Unmarshal(files[artifactEmbedMetaFile], &meta); err != nil {
		return nil, err
	}
	if meta.Method != method {
		return nil, fmt.Errorf("core: cached embedding was built by %q, want %q", meta.Method, method)
	}
	e, err := embed.ReadTSV(bytes.NewReader(files[artifactEmbeddingFile]))
	if err != nil {
		return nil, err
	}
	if e.Dim != dim {
		return nil, fmt.Errorf("core: cached embedding has dim %d, want %d", e.Dim, dim)
	}
	return e, nil
}
