package core

import (
	"time"

	"repro/internal/obs"
)

// Metric family names of the offline pipeline. The full catalog —
// every family, its labels and meaning — lives in
// docs/OBSERVABILITY.md, and a test diffs that table against the
// registry so the two cannot drift.
const (
	metricBuildsTotal      = "leva_builds_total"
	metricStageDuration    = "leva_build_stage_duration_seconds"
	metricTextifyTables    = "leva_build_textify_tables_total"
	metricCacheLookups     = "leva_build_cache_lookups_total"
	metricCacheStoreErrors = "leva_build_cache_store_errors_total"
	metricFeaturizedRows   = "leva_build_featurized_rows_total"
)

// helpStageDuration is shared between the build driver and the
// featurize path, which get-or-create the same family.
const helpStageDuration = "Wall time of each pipeline stage per build."

// buildObs holds one build's view of the pipeline instruments: the
// get-or-created families of the scope's registry, plus the baseline
// of the cumulative store-error counter captured at build start, so
// the per-build CacheStats.StoreErrors is the counter's delta — the
// registry is the single source, the report derives from it, and the
// two can never disagree. A nil *buildObs (no scope or no registry)
// degrades to timing-only spans.
type buildObs struct {
	scope     *obs.Scope
	builds    *obs.Counter
	stageDur  *obs.HistogramVec
	tables    *obs.CounterVec
	lookups   *obs.CounterVec
	storeErrs *obs.Counter

	storeErrBase float64
}

func newBuildObs(sc *obs.Scope) *buildObs {
	if sc == nil || sc.Registry == nil {
		return nil
	}
	r := sc.Registry
	b := &buildObs{
		scope: sc,
		builds: r.Counter(metricBuildsTotal,
			"Completed BuildEmbedding runs."),
		stageDur: r.HistogramVec(metricStageDuration, helpStageDuration,
			obs.StageBuckets, "stage"),
		tables: r.CounterVec(metricTextifyTables,
			"Tables processed by the textify stage, by outcome (reused = tokenization loaded from cache, rebuilt = re-fitted).",
			"outcome"),
		lookups: r.CounterVec(metricCacheLookups,
			"Stage-cache lookups of the graph and embed stages, by outcome.",
			"stage", "outcome"),
		storeErrs: r.Counter(metricCacheStoreErrors,
			"Failed best-effort stage-cache writes (the build itself still succeeded)."),
	}
	b.storeErrBase = b.storeErrs.Value()
	return b
}

// span starts a pipeline-stage span (nil-safe: still measures time).
func (b *buildObs) span(name string) *obs.ActiveSpan {
	if b == nil {
		return obs.StartSpan(nil, name)
	}
	return b.scope.Span(name)
}

// endStage finishes a stage span and feeds the measured wall time to
// the stage-duration histogram. The returned duration is the one the
// span measured — the single time source both Timings and the
// histogram see, so Timings.Total() and the histogram sums agree by
// construction.
func (b *buildObs) endStage(sp *obs.ActiveSpan, stage string) time.Duration {
	d := sp.End()
	if b != nil {
		b.stageDur.With(stage).ObserveDuration(d)
	}
	return d
}

// countTables accrues the textify stage's per-table outcomes.
func (b *buildObs) countTables(reused, rebuilt int) {
	if b == nil {
		return
	}
	b.tables.With("reused").Add(float64(reused))
	b.tables.With("rebuilt").Add(float64(rebuilt))
}

// countLookup accrues one graph/embed stage-cache lookup.
func (b *buildObs) countLookup(stage string, hit bool) {
	if b == nil {
		return
	}
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	b.lookups.With(stage, outcome).Inc()
}

// storeErrDelta returns how many store errors this build added on top
// of the baseline captured at build start.
func (b *buildObs) storeErrDelta() int {
	if b == nil {
		return 0
	}
	return int(b.storeErrs.Value() - b.storeErrBase)
}

// done marks one completed build.
func (b *buildObs) done() {
	if b == nil {
		return
	}
	b.builds.Inc()
}

// observeFeaturize records one batch featurization against the scope's
// registry: the wall time joins the stage-duration histogram under
// stage="featurize" (the same family the build driver feeds), and the
// row count accrues. No-op without a registry.
func observeFeaturize(sc *obs.Scope, d time.Duration, rows int) {
	if sc == nil || sc.Registry == nil {
		return
	}
	sc.Registry.HistogramVec(metricStageDuration, helpStageDuration,
		obs.StageBuckets, "stage").With("featurize").ObserveDuration(d)
	sc.Registry.Counter(metricFeaturizedRows,
		"Rows featurized by batch deployment (Featurize/FeaturizeWithMode); the online serving path reports through leva_rows_featurized_total instead.").
		Add(float64(rows))
}
