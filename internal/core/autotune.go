package core

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/ml"
)

// AutoTuneOptions bounds the configuration search.
type AutoTuneOptions struct {
	// BinCandidates are textification bin counts to try.
	// Default {20, 50, 80} around the paper default of 50.
	BinCandidates []int
	// DimCandidates are embedding sizes to try. Default {50, 100}.
	DimCandidates []int
	// ValidationFraction of the task's training rows held out for
	// scoring candidates. Default 0.25.
	ValidationFraction float64
}

func (o AutoTuneOptions) withDefaults() AutoTuneOptions {
	if len(o.BinCandidates) == 0 {
		o.BinCandidates = []int{20, 50, 80}
	}
	if len(o.DimCandidates) == 0 {
		o.DimCandidates = []int{50, 100}
	}
	if o.ValidationFraction <= 0 || o.ValidationFraction >= 1 {
		o.ValidationFraction = 0.25
	}
	return o
}

// AutoTune implements the paper's configuration-selection strategy
// (Section 4.4, Table 2): it searches bin count and embedding dimension
// coordinate-wise, scoring each candidate with a fast MF build plus a
// random-forest probe on a validation split carved out of the training
// rows. The task's test rows are never touched. It returns base with
// the winning parameters filled in.
//
// The search is coordinate-wise rather than a full grid because the two
// knobs interact weakly: bins shape the token vocabulary, the dimension
// shapes its compression.
func AutoTune(task Task, base Config, opts AutoTuneOptions) (Config, error) {
	opts = opts.withDefaults()
	base = base.withDefaults()

	// Restrict the task to its training rows; candidates are judged on
	// an inner validation split.
	probe := task
	probe.TestFraction = opts.ValidationFraction
	probe.Seed = task.Seed + 1

	score := func(cfg Config) (float64, error) {
		cfg.Method = embed.MethodMF // fast, deterministic probe
		if task.DB.Table(task.BaseTable) == nil {
			return 0, fmt.Errorf("core: no base table %q", task.BaseTable)
		}
		if isClassification(task) {
			sd, err := PrepareClassification(probe, cfg)
			if err != nil {
				return 0, err
			}
			rf := &ml.RandomForest{NumTrees: 30, Seed: cfg.Seed}
			rf.Fit(sd.XTrain, sd.YClassTrain)
			return ml.Accuracy(rf.Predict(sd.XTest), sd.YClassTest), nil
		}
		sd, err := PrepareRegression(probe, cfg)
		if err != nil {
			return 0, err
		}
		rf := &ml.RandomForest{NumTrees: 30, Seed: cfg.Seed}
		rf.FitRegression(sd.XTrain, sd.YRegTrain)
		// Negated MAE so "higher is better" holds for both tasks.
		return -ml.MAE(rf.PredictRegression(sd.XTest), sd.YRegTest), nil
	}

	best := base
	bestScore, err := score(best)
	if err != nil {
		return base, err
	}
	for _, bins := range opts.BinCandidates {
		cand := best
		cand.Textify.BinCount = bins
		s, err := score(cand)
		if err != nil {
			return base, err
		}
		if s > bestScore {
			best, bestScore = cand, s
		}
	}
	for _, dim := range opts.DimCandidates {
		cand := best
		cand.Dim = dim
		s, err := score(cand)
		if err != nil {
			return base, err
		}
		if s > bestScore {
			best, bestScore = cand, s
		}
	}
	// Make implicit defaults explicit so callers can report the chosen
	// configuration.
	if best.Textify.BinCount == 0 {
		best.Textify.BinCount = 50
	}
	return best, nil
}

// isClassification sniffs the target column: non-numeric or
// low-cardinality numeric targets are treated as classes.
func isClassification(task Task) bool {
	base := task.DB.Table(task.BaseTable)
	if base == nil {
		return true
	}
	col := base.Column(task.Target)
	if col == nil {
		return true
	}
	numeric := 0
	nonNull := 0
	for _, v := range col.Values {
		if v.IsNull() {
			continue
		}
		nonNull++
		if _, ok := v.Float(); ok {
			numeric++
		}
	}
	if nonNull == 0 || numeric != nonNull {
		return true
	}
	return col.UniqueRatio() <= 0.1
}
