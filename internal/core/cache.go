package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/durable"
	"repro/internal/obs"
)

// Cache is the content-addressed artifact store of the staged pipeline.
// Every entry is one stage output, keyed by a fingerprint of everything
// that determined it (input table contents, stage options, upstream
// fingerprints), laid out as
//
//	<root>/<stage>/<fingerprint>/
//	    MANIFEST.json     durable integrity record, written last
//	    <payload files>   stage-specific artifact
//
// Entries are immutable once published: a fingerprint fully determines
// its content, so there is never anything to update — only new entries
// to add. Publication reuses internal/durable's crash-safe protocol
// (stage a sibling directory, seal it with a manifest, swap with one
// rename), so an interrupted write can never produce a readable-but-
// wrong entry: Load verifies the manifest and treats anything torn,
// truncated, or half-published as a plain miss.
type Cache struct {
	root string
	fs   durable.FS
	// errs counts failed best-effort Store calls. It defaults to a
	// standalone counter owned by this Cache; a build carrying an obs
	// scope swaps in the scope registry's counter (observeInto), making
	// the registry the single source of store-error accounting — the
	// CLI report derives from the same counter a /metrics scrape reads.
	errs *obs.Counter
	// storeErrBase is errs' value when the current build attached, so
	// per-build reports are deltas, not Cache-lifetime totals.
	storeErrBase int
}

// NewCache opens (or lazily creates) a cache rooted at dir. The
// conventional root is a ".leva-cache" directory next to the data.
func NewCache(dir string) *Cache {
	return newCacheFS(dir, durable.OS())
}

// newCacheFS is NewCache over an injectable filesystem — the seam the
// fault-injection tests use to crash mid-publish.
func newCacheFS(dir string, fs durable.FS) *Cache {
	return &Cache{
		root: filepath.Clean(dir),
		fs:   fs,
		errs: obs.NewCounter(metricCacheStoreErrors,
			"Failed best-effort stage-cache writes (the build itself still succeeded)."),
	}
}

// observeInto points the cache's store-error accounting at the build's
// registry counter (when a scope is attached) and captures the baseline
// for this build's delta reporting.
func (c *Cache) observeInto(b *buildObs) {
	if b != nil {
		c.errs = b.storeErrs
	}
	c.storeErrBase = c.StoreErrors()
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.root }

func (c *Cache) entryDir(stage, fp string) string {
	return filepath.Join(c.root, stage, fp)
}

// Load returns every payload file of the entry for (stage, fp), or
// ok=false when the entry is absent, unsealed, or fails integrity
// verification. A corrupt entry is indistinguishable from a miss by
// design: the caller rebuilds and re-publishes over it.
func (c *Cache) Load(stage, fp string) (map[string][]byte, bool) {
	dir := c.entryDir(stage, fp)
	manifest, err := durable.VerifyDir(dir)
	if err != nil {
		return nil, false
	}
	files := make(map[string][]byte, len(manifest.Files))
	for _, e := range manifest.Files {
		data, err := os.ReadFile(filepath.Join(dir, e.Name))
		if err != nil {
			return nil, false
		}
		files[e.Name] = data
	}
	return files, true
}

// Store publishes files as the sealed entry for (stage, fp),
// crash-safely: all payload files are staged in a sibling directory,
// the manifest is written last, and one rename makes the entry visible.
// Failures leave at worst an unsealed staging directory, which Load
// ignores and the next Store of the same fingerprint clears.
//
// Pipeline callers treat Store errors as non-fatal (a build must not
// fail because its cache is on a full disk), so errors are returned for
// reporting, not control flow.
func (c *Cache) Store(stage, fp string, files map[string][]byte) error {
	final := c.entryDir(stage, fp)
	if err := c.fs.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("core: cache store %s/%s: %w", stage, fp, err)
	}
	staging := final + durable.StagingSuffix
	if err := c.fs.RemoveAll(staging); err != nil {
		return fmt.Errorf("core: cache store %s/%s: clear staging: %w", stage, fp, err)
	}
	if err := c.fs.MkdirAll(staging, 0o755); err != nil {
		return fmt.Errorf("core: cache store %s/%s: %w", stage, fp, err)
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	manifest := &durable.Manifest{FormatVersion: cacheFormatVersion}
	for _, name := range names {
		if err := durable.WriteFile(c.fs, filepath.Join(staging, name), files[name]); err != nil {
			return fmt.Errorf("core: cache store %s/%s: %w", stage, fp, err)
		}
		manifest.Add(name, files[name])
	}
	if err := durable.WriteManifest(c.fs, staging, manifest); err != nil {
		return fmt.Errorf("core: cache store %s/%s: %w", stage, fp, err)
	}
	if err := durable.SwapDir(c.fs, staging, final); err != nil {
		return fmt.Errorf("core: cache store %s/%s: %w", stage, fp, err)
	}
	return nil
}

// noteStore records the outcome of a best-effort Store call so the
// pipeline can surface write failures without failing the build.
func (c *Cache) noteStore(err error) {
	if err != nil {
		c.errs.Inc()
	}
}

// StoreErrors returns the store-error counter's current value — the
// count for this Cache alone when standalone, or the registry-wide
// cumulative count once a build attached a scope (per-build deltas are
// what CacheStats reports).
func (c *Cache) StoreErrors() int { return int(c.errs.Value()) }

// cacheFormatVersion is recorded in every entry manifest. It versions
// the entry layout (not the per-stage payload encodings, which are
// versioned through their fingerprint domains).
const cacheFormatVersion = 1
