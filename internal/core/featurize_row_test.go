package core

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/synth"
)

// TestFeaturizeRowMatchesBatch pins the contract the serving path
// relies on: FeaturizeRow is bit-identical to the corresponding row of
// the batch Featurize, for embedded and never-embedded rows, in both
// featurization modes.
func TestFeaturizeRowMatchesBatch(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 5})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 5, Method: embed.MethodMF, UnseenFallbackDims: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := spec.DB.Table("expenses")
	exclude := []string{"total_expenses"}
	for _, mode := range []FeaturizationMode{RowPlusValue, RowOnly} {
		for _, graphRow := range []func(int) int{
			func(i int) int { return i },
			func(int) int { return -1 },
		} {
			batch, err := res.FeaturizeWithMode(base, "expenses", exclude, graphRow, mode)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch[0]) != res.FeatureWidth(mode) {
				t.Fatalf("FeatureWidth(%v) = %d, batch width %d", mode, res.FeatureWidth(mode), len(batch[0]))
			}
			for i := 0; i < base.NumRows(); i += 7 {
				single, err := res.FeaturizeRow(base, "expenses", exclude, i, graphRow(i), mode)
				if err != nil {
					t.Fatal(err)
				}
				if len(single) != len(batch[i]) {
					t.Fatalf("row %d: width %d != %d", i, len(single), len(batch[i]))
				}
				for j := range single {
					if single[j] != batch[i][j] {
						t.Fatalf("mode %v row %d feature %d: single %v != batch %v",
							mode, i, j, single[j], batch[i][j])
					}
				}
			}
		}
	}
}
