package core

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/obs"
	"repro/internal/synth"
)

func buildScoped(t *testing.T, cacheDir string, sc *obs.Scope) *Result {
	t.Helper()
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 7})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim:      8,
		Method:   embed.MethodMF,
		Seed:     7,
		Workers:  1,
		CacheDir: cacheDir,
		Obs:      sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuildMetricsAccrue(t *testing.T) {
	sc := obs.NewScope()
	dir := t.TempDir()
	res := buildScoped(t, dir, sc)

	r := sc.Registry
	if got := r.Counter(metricBuildsTotal, "").Value(); got != 1 {
		t.Errorf("builds_total = %v, want 1", got)
	}
	stageDur := r.HistogramVec(metricStageDuration, "", obs.StageBuckets, "stage")
	for _, stage := range []string{"textify", "graph", "embed"} {
		if got := stageDur.With(stage).Count(); got != 1 {
			t.Errorf("stage %q duration observations = %d, want 1", stage, got)
		}
	}

	// The single-time-source property: the histogram sum and the
	// Timings field come from one span End() per stage, so they are
	// equal not approximately but exactly.
	if got, want := stageDur.With("textify").Sum(), res.Timings.Textify.Seconds(); got != want {
		t.Errorf("textify histogram sum %v != Timings.Textify %v", got, want)
	}
	if got, want := stageDur.With("graph").Sum(), res.Timings.GraphBuild.Seconds(); got != want {
		t.Errorf("graph histogram sum %v != Timings.GraphBuild %v", got, want)
	}
	if got, want := stageDur.With("embed").Sum(), res.Timings.Embed.Seconds(); got != want {
		t.Errorf("embed histogram sum %v != Timings.Embed %v", got, want)
	}

	// Cold build with a cache: graph and embed lookups both missed.
	lookups := r.CounterVec(metricCacheLookups, "", "stage", "outcome")
	if got := lookups.With(stageGraph, "miss").Value(); got != 1 {
		t.Errorf("graph miss = %v, want 1", got)
	}
	if got := lookups.With(stageEmbed, "miss").Value(); got != 1 {
		t.Errorf("embed miss = %v, want 1", got)
	}
	tables := r.CounterVec(metricTextifyTables, "", "outcome")
	if tables.With("rebuilt").Value() == 0 {
		t.Error("no rebuilt tables counted on a cold build")
	}

	// Warm build into the same scope: hits accrue, builds_total = 2.
	warm := buildScoped(t, dir, sc)
	if warm.Timings.Cache.Embed != StageCached {
		t.Fatalf("warm build not cached: %+v", warm.Timings.Cache)
	}
	if got := lookups.With(stageEmbed, "hit").Value(); got != 1 {
		t.Errorf("embed hit = %v, want 1", got)
	}
	if got := r.Counter(metricBuildsTotal, "").Value(); got != 2 {
		t.Errorf("builds_total after warm build = %v, want 2", got)
	}

	// Stage spans landed in the trace ring with their cache outcomes.
	var names []string
	for _, rec := range sc.Trace.Spans() {
		names = append(names, rec.Name+":"+rec.Outcome)
	}
	want := []string{
		"build.textify:rebuilt", "build.graph:rebuilt", "build.embed:rebuilt",
		"build.textify:cached", "build.graph:cached", "build.embed:cached",
	}
	if len(names) != len(want) {
		t.Fatalf("spans = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("span[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestFeaturizeFeedsRegistry(t *testing.T) {
	sc := obs.NewScope()
	res := buildScoped(t, "", sc)
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 7})
	base := spec.DB.Table(spec.BaseTable)
	feats, err := res.Featurize(base, spec.BaseTable, []string{spec.Target}, func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	stageDur := sc.Registry.HistogramVec(metricStageDuration, "", obs.StageBuckets, "stage")
	if got := stageDur.With("featurize").Count(); got != 1 {
		t.Errorf("featurize observations = %d, want 1", got)
	}
	if got, want := stageDur.With("featurize").Sum(), res.Timings.Featurize.Seconds(); got != want {
		t.Errorf("featurize histogram sum %v != Timings.Featurize %v", got, want)
	}
	rows := sc.Registry.Counter(metricFeaturizedRows, "")
	if got := rows.Value(); got != float64(len(feats)) {
		t.Errorf("featurized rows = %v, want %d", got, len(feats))
	}
}

func TestBuildWithoutScopeStillTimes(t *testing.T) {
	res := buildScoped(t, "", nil)
	if res.Timings.Total() <= 0 {
		t.Error("nil-scope build recorded no timings")
	}
}
