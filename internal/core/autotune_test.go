package core

import (
	"testing"

	"repro/internal/synth"
)

func TestAutoTuneReturnsValidConfig(t *testing.T) {
	spec := synth.Genes(synth.GenesOptions{Scale: 0.05, Seed: 1})
	task := Task{DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 5}
	cfg, err := AutoTune(task, Config{Dim: 32, Seed: 1}, AutoTuneOptions{
		BinCandidates: []int{20, 50},
		DimCandidates: []int{16, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Textify.BinCount != 20 && cfg.Textify.BinCount != 50 && cfg.Textify.BinCount != 0 {
		t.Errorf("bin count = %d not from candidates", cfg.Textify.BinCount)
	}
	if cfg.Dim != 16 && cfg.Dim != 32 {
		t.Errorf("dim = %d not from candidates", cfg.Dim)
	}
	// The tuned config must actually run.
	if _, err := PrepareClassification(task, cfg); err != nil {
		t.Fatalf("tuned config fails: %v", err)
	}
}

func TestAutoTuneRegression(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 120, Seed: 2})
	task := Task{DB: spec.DB, BaseTable: "expenses", Target: "total_expenses", Seed: 3}
	if isClassification(task) {
		t.Fatal("student misclassified as classification")
	}
	cfg, err := AutoTune(task, Config{Dim: 16, Seed: 2}, AutoTuneOptions{
		BinCandidates: []int{10},
		DimCandidates: []int{16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareRegression(task, cfg); err != nil {
		t.Fatalf("tuned config fails: %v", err)
	}
}

func TestIsClassification(t *testing.T) {
	genes := synth.Genes(synth.GenesOptions{Scale: 0.05, Seed: 3})
	if !isClassification(Task{DB: genes.DB, BaseTable: genes.BaseTable, Target: genes.Target}) {
		t.Error("genes not detected as classification")
	}
	bio := synth.Bio(synth.BioOptions{Scale: 0.05, Seed: 4})
	if isClassification(Task{DB: bio.DB, BaseTable: bio.BaseTable, Target: bio.Target}) {
		t.Error("bio not detected as regression")
	}
}
