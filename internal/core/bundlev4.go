package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/embed"
	"repro/internal/matrix"
	"repro/internal/textify"
)

// Binary bundle format, versions 4 and 5.
//
// A binary bundle directory holds one payload file, bundle.bin,
// sealed by the durable MANIFEST.json protocol. The file is designed
// to be *viewed*, not decoded: the symbol table and the vector arena
// are stored exactly as the in-memory Embedding wants them, so
// LoadBundle reads (or mmaps) the file into one buffer, verifies it
// against the manifest, and builds slice views — the only per-entity
// work on the load path is the symbol table's structural validation.
//
// bundle.bin layout (all integers little-endian):
//
//	magic         8 bytes  "LEVABNDL"
//	version       u32      4 or 5
//	sectionCount  u32
//	section table sectionCount × { id u32, reserved u32,
//	                               offset u64, length u64 }
//	sections      each starting at an 8-byte-aligned offset,
//	              zero padding between
//
// Section ids (unknown ids are ignored, for forward compatibility):
//
//	1 config      JSON: formatVersion, dim, featurization,
//	              unseenFallbackDims, methodUsed
//	2 columns     fitted column order: u32 tableCount, then per table
//	              (sorted by name) str tableName, u32 colCount, str...
//	              (str = u32 byte length + bytes)
//	3 textify     JSON: the fitted textify.Model
//	4 symbols     interned entity names: u32 n, u32 blobLen,
//	              offsets (n+1)×u32, sortedIds n×u32 (lexicographic
//	              permutation), blob bytes (insertion order)
//	5 arena       u32 dim, u32 n, reserved u64? no — data follows the
//	              8-byte header directly: n×dim f64 bits, row-major,
//	              row i = vector of symbol i
//	6 provenance  JSON: stageCache, unweightedFallback
//	7 quant       (version 5, optional) symmetric int8 arena:
//	              u32 cols, u32 rows, scales rows×f64 (the 8-byte
//	              header keeps them 8-aligned), data rows×cols int8 —
//	              row i quantizes arena row i, element b decodes to
//	              b*scale[i]
//
// Version 5 readers accept version-4 files (the quant section is
// simply absent); version-4 readers reject version-5 files by the
// header version — they could not honor the quantization the writer
// requested. Encode is deterministic: equal Results produce
// byte-identical files, and encode(decode(encode(x))) == encode(x).
// Re-encoding a version-4 file writes the current version, exactly as
// loading-then-saving a legacy bundle upgrades it.

const (
	bundleBinFile = "bundle.bin"
	bundleMagic   = "LEVABNDL"

	secConfig     = 1
	secColumns    = 2
	secTextify    = 3
	secSymbols    = 4
	secArena      = 5
	secProvenance = 6
	secQuant      = 7

	// bundleVersionMin is the oldest binary header version this build
	// reads (4 introduced the format; 5 added the quant section).
	bundleVersionMin = 4

	// maxSections bounds what a lying header can claim before the
	// per-entry bounds checks kick in.
	maxSections = 64
)

// Named decode errors. Every failure of decodeBundleV4 wraps exactly
// one of these; the decoder never panics on hostile input.
var (
	// ErrBadMagic marks a file that is not a binary bundle at all.
	ErrBadMagic = errors.New("core: not a binary bundle file (bad magic)")
	// ErrVersion marks a bundle written by a different format revision.
	ErrVersion = errors.New("core: unsupported bundle format version")
	// ErrCorrupt marks a truncated or internally inconsistent bundle.
	ErrCorrupt = errors.New("core: corrupt or truncated bundle")
)

// v4Config is the config section: the subset of Config that affects
// deployment. Provenance lives in its own section.
type v4Config struct {
	FormatVersion      int               `json:"formatVersion"`
	Dim                int               `json:"dim"`
	Featurization      FeaturizationMode `json:"featurization"`
	UnseenFallbackDims int               `json:"unseenFallbackDims"`
	MethodUsed         embed.Method      `json:"methodUsed"`
}

// v4Provenance is the provenance section: how the build that produced
// this bundle was satisfied.
type v4Provenance struct {
	StageCache         *CacheStats `json:"stageCache,omitempty"`
	UnweightedFallback bool        `json:"unweightedFallback,omitempty"`
}

// hostLittleEndian reports whether this machine stores integers the
// way the format does; when true, the decoder's u32/f64 views are
// direct casts over the file bytes instead of element-wise copies.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// appendSection pads buf to 8 bytes, appends payload, and records the
// section in the table.
type sectionWriter struct {
	buf   []byte
	table []sectionEntry
}

type sectionEntry struct {
	id, off, length uint64
}

func (w *sectionWriter) add(id int, payload []byte) {
	for len(w.buf)%8 != 0 {
		w.buf = append(w.buf, 0)
	}
	w.table = append(w.table, sectionEntry{uint64(id), uint64(len(w.buf)), uint64(len(payload))})
	w.buf = append(w.buf, payload...)
}

// encodeBundleV4 serializes r as a bundle.bin at the current format
// version. Output is byte-identical for equal Results; the quant
// section is written only when r.Quant is set.
func encodeBundleV4(r *Result) ([]byte, error) {
	cfgData, err := json.Marshal(v4Config{
		FormatVersion:      BundleFormatVersion,
		Dim:                r.Embedding.Dim,
		Featurization:      r.Config.Featurization,
		UnseenFallbackDims: r.Config.UnseenFallbackDims,
		MethodUsed:         r.MethodUsed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: marshal bundle config: %w", err)
	}
	modelData, err := json.Marshal(r.Textifier)
	if err != nil {
		return nil, fmt.Errorf("core: marshal textify model: %w", err)
	}
	stageCache := r.Timings.Cache
	provData, err := json.Marshal(v4Provenance{
		StageCache:         &stageCache,
		UnweightedFallback: r.UnweightedFallback,
	})
	if err != nil {
		return nil, fmt.Errorf("core: marshal bundle provenance: %w", err)
	}

	// Columns: the fitted order per table, duplicated out of the model
	// so `leva bundle info` (and any non-Go reader) can answer "what
	// rows does this bundle featurize" without decoding the model.
	var cols []byte
	tables := r.Textifier.Tables()
	cols = binary.LittleEndian.AppendUint32(cols, uint32(len(tables)))
	for _, tb := range tables {
		cols = appendStr(cols, tb)
		names := r.Textifier.Columns(tb)
		cols = binary.LittleEndian.AppendUint32(cols, uint32(len(names)))
		for _, c := range names {
			cols = appendStr(cols, c)
		}
	}

	// Symbols: the embedding's interned name table, verbatim.
	st := r.Embedding.Symbols()
	n := st.Len()
	var syms []byte
	syms = binary.LittleEndian.AppendUint32(syms, uint32(n))
	syms = binary.LittleEndian.AppendUint32(syms, uint32(len(st.Blob())))
	for _, off := range st.Offsets() {
		syms = binary.LittleEndian.AppendUint32(syms, off)
	}
	for _, id := range st.SortedIDs() {
		syms = binary.LittleEndian.AppendUint32(syms, uint32(id))
	}
	syms = append(syms, st.Blob()...)

	// Arena: the vector matrix, verbatim.
	m := r.Embedding.Matrix()
	arena := make([]byte, 0, 8+8*len(m.Data))
	arena = binary.LittleEndian.AppendUint32(arena, uint32(m.Cols))
	arena = binary.LittleEndian.AppendUint32(arena, uint32(m.Rows))
	for _, v := range m.Data {
		arena = binary.LittleEndian.AppendUint64(arena, math.Float64bits(v))
	}

	// Quant (optional): the int8 arena, mirroring the float arena's
	// shape exactly.
	var quant []byte
	if r.Quant != nil {
		if r.Quant.Rows != m.Rows || r.Quant.Cols != m.Cols {
			return nil, fmt.Errorf("core: quantized arena is %dx%d, embedding arena is %dx%d",
				r.Quant.Rows, r.Quant.Cols, m.Rows, m.Cols)
		}
		quant = encodeQuantSection(r.Quant)
	}

	sections := 6
	if quant != nil {
		sections = 7
	}
	w := &sectionWriter{}
	headerLen := len(bundleMagic) + 4 + 4 + sections*24
	w.buf = make([]byte, headerLen, headerLen+len(cfgData)+len(cols)+len(modelData)+len(syms)+len(arena)+len(provData)+len(quant)+64)
	w.add(secConfig, cfgData)
	w.add(secColumns, cols)
	w.add(secTextify, modelData)
	w.add(secSymbols, syms)
	w.add(secArena, arena)
	w.add(secProvenance, provData)
	if quant != nil {
		w.add(secQuant, quant)
	}

	h := w.buf[:0]
	h = append(h, bundleMagic...)
	h = binary.LittleEndian.AppendUint32(h, BundleFormatVersion)
	h = binary.LittleEndian.AppendUint32(h, uint32(len(w.table)))
	for _, e := range w.table {
		h = binary.LittleEndian.AppendUint32(h, uint32(e.id))
		h = binary.LittleEndian.AppendUint32(h, 0)
		h = binary.LittleEndian.AppendUint64(h, e.off)
		h = binary.LittleEndian.AppendUint64(h, e.length)
	}
	if len(h) != headerLen {
		return nil, fmt.Errorf("core: bundle header is %d bytes, want %d", len(h), headerLen)
	}
	return w.buf, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// bundleSections parses the header and section table of a bundle.bin
// buffer, returning section id → payload view plus the header format
// version (4 or 5). Shared by the full decoder and the cheap
// ReadBundleInfo path.
func bundleSections(data []byte) (map[int][]byte, int, error) {
	if len(data) < len(bundleMagic) || string(data[:len(bundleMagic)]) != bundleMagic {
		return nil, 0, ErrBadMagic
	}
	if len(data) < len(bundleMagic)+8 {
		return nil, 0, fmt.Errorf("%w: %d-byte file has no header", ErrCorrupt, len(data))
	}
	version := int(binary.LittleEndian.Uint32(data[len(bundleMagic):]))
	if version < bundleVersionMin || version > BundleFormatVersion {
		return nil, 0, fmt.Errorf("%w: file has version %d, this build reads versions %d through %d",
			ErrVersion, version, bundleVersionMin, BundleFormatVersion)
	}
	count := int(binary.LittleEndian.Uint32(data[len(bundleMagic)+4:]))
	if count < 0 || count > maxSections {
		return nil, 0, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, count)
	}
	tableOff := len(bundleMagic) + 8
	if len(data)-tableOff < count*24 {
		return nil, 0, fmt.Errorf("%w: section table truncated", ErrCorrupt)
	}
	secs := make(map[int][]byte, count)
	for i := 0; i < count; i++ {
		e := data[tableOff+i*24:]
		id := int(binary.LittleEndian.Uint32(e))
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if off%8 != 0 {
			return nil, 0, fmt.Errorf("%w: section %d starts at unaligned offset %d", ErrCorrupt, id, off)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, 0, fmt.Errorf("%w: section %d spans [%d, %d+%d) beyond the %d-byte file",
				ErrCorrupt, id, off, off, length, len(data))
		}
		if _, dup := secs[id]; dup {
			return nil, 0, fmt.Errorf("%w: duplicate section id %d", ErrCorrupt, id)
		}
		secs[id] = data[off : off+length]
	}
	return secs, version, nil
}

func requireSection(secs map[int][]byte, id int, name string) ([]byte, error) {
	s, ok := secs[id]
	if !ok {
		return nil, fmt.Errorf("%w: missing %s section (id %d)", ErrCorrupt, name, id)
	}
	return s, nil
}

// viewU32 reinterprets b (length 4n, 4-aligned by the section
// alignment rules) as n uint32s — zero copy on little-endian hosts, an
// element-wise decode otherwise.
func viewU32(b []byte, n int) []uint32 {
	if n == 0 {
		return []uint32{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// viewI32 is viewU32 for int32 payloads (the sorted-id permutation).
func viewI32(b []byte, n int) []int32 {
	if n == 0 {
		return []int32{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// viewF64 reinterprets b (length 8n) as n float64s — zero copy on
// aligned little-endian hosts, an element-wise decode otherwise.
func viewF64(b []byte, n int) []float64 {
	if n == 0 {
		return []float64{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// decodeBundleV4 builds a Result over a bundle.bin buffer. The buffer
// is retained by the Result (symbol blob and vector arena are views
// into it) and must not be mutated afterward — which is also why every
// structural invariant is validated here: a view over hostile bytes
// must be impossible to construct. Failures wrap ErrBadMagic,
// ErrVersion, or ErrCorrupt; the decoder never panics.
func decodeBundleV4(data []byte) (*Result, error) {
	secs, version, err := bundleSections(data)
	if err != nil {
		return nil, err
	}

	cfgData, err := requireSection(secs, secConfig, "config")
	if err != nil {
		return nil, err
	}
	var cfg v4Config
	if err := json.Unmarshal(cfgData, &cfg); err != nil {
		return nil, fmt.Errorf("%w: config section: %v", ErrCorrupt, err)
	}
	if cfg.FormatVersion != version {
		return nil, fmt.Errorf("%w: config records format version %d inside a version-%d file",
			ErrVersion, cfg.FormatVersion, version)
	}
	if cfg.Dim < 1 || cfg.Dim > 1<<20 {
		return nil, fmt.Errorf("%w: implausible dimension %d", ErrCorrupt, cfg.Dim)
	}

	modelData, err := requireSection(secs, secTextify, "textify")
	if err != nil {
		return nil, err
	}
	model := &textify.Model{}
	if err := json.Unmarshal(modelData, model); err != nil {
		return nil, fmt.Errorf("%w: textify section: %v", ErrCorrupt, err)
	}

	symsData, err := requireSection(secs, secSymbols, "symbols")
	if err != nil {
		return nil, err
	}
	if len(symsData) < 8 {
		return nil, fmt.Errorf("%w: symbols section is %d bytes", ErrCorrupt, len(symsData))
	}
	n := int(binary.LittleEndian.Uint32(symsData))
	blobLen := int(binary.LittleEndian.Uint32(symsData[4:]))
	if n < 0 || n >= math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible symbol count %d", ErrCorrupt, n)
	}
	want := 8 + 4*(n+1) + 4*n + blobLen
	if blobLen < 0 || len(symsData) != want {
		return nil, fmt.Errorf("%w: symbols section is %d bytes, want %d for %d symbols / %d blob bytes",
			ErrCorrupt, len(symsData), want, n, blobLen)
	}
	offs := viewU32(symsData[8:], n+1)
	perm := viewI32(symsData[8+4*(n+1):], n)
	blob := symsData[8+4*(n+1)+4*n:]
	st, err := embed.FromParts(blob, offs, perm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	arenaData, err := requireSection(secs, secArena, "arena")
	if err != nil {
		return nil, err
	}
	if len(arenaData) < 8 {
		return nil, fmt.Errorf("%w: arena section is %d bytes", ErrCorrupt, len(arenaData))
	}
	dim := int(binary.LittleEndian.Uint32(arenaData))
	rows := int(binary.LittleEndian.Uint32(arenaData[4:]))
	if dim != cfg.Dim {
		return nil, fmt.Errorf("%w: arena dim %d != config dim %d", ErrCorrupt, dim, cfg.Dim)
	}
	if rows != n {
		return nil, fmt.Errorf("%w: arena holds %d rows for %d symbols", ErrCorrupt, rows, n)
	}
	if int64(len(arenaData)-8) != int64(rows)*int64(dim)*8 {
		return nil, fmt.Errorf("%w: arena section has %d data bytes, want %d",
			ErrCorrupt, len(arenaData)-8, int64(rows)*int64(dim)*8)
	}
	arena := viewF64(arenaData[8:], rows*dim)
	e, err := embed.NewEmbeddingTable(st, &matrix.Dense{Rows: rows, Cols: dim, Data: arena})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	res := &Result{
		Embedding:    e,
		Textifier:    model,
		MethodUsed:   cfg.MethodUsed,
		BundleFormat: version,
		Config: Config{
			Dim:                cfg.Dim,
			Featurization:      cfg.Featurization,
			UnseenFallbackDims: cfg.UnseenFallbackDims,
			Method:             cfg.MethodUsed,
		},
	}
	if provData, ok := secs[secProvenance]; ok {
		var prov v4Provenance
		if err := json.Unmarshal(provData, &prov); err != nil {
			return nil, fmt.Errorf("%w: provenance section: %v", ErrCorrupt, err)
		}
		if prov.StageCache != nil {
			res.Timings.Cache = *prov.StageCache
		}
		res.UnweightedFallback = prov.UnweightedFallback
	}
	// The quant section only exists from version 5 on; a version-4 file
	// claiming one carries an id that version's writers never emitted.
	if quantData, ok := secs[secQuant]; ok && version >= 5 {
		q, err := decodeQuantSection(quantData)
		if err != nil {
			return nil, err
		}
		if q.Rows != rows || q.Cols != dim {
			return nil, fmt.Errorf("%w: quant section is %dx%d, arena is %dx%d",
				ErrCorrupt, q.Rows, q.Cols, rows, dim)
		}
		res.Quant = q
	}
	// The columns section is informational (the model carries the
	// fitted order); it is validated by ReadBundleInfo, not here.
	return res, nil
}

// encodeQuantSection serializes a quantized arena as a quant section
// payload: u32 cols, u32 rows, rows×f64 scale bits, rows×cols int8
// elements. Deterministic; the 8-byte header keeps the scales
// 8-aligned relative to the (8-aligned) section start.
func encodeQuantSection(q *embed.QuantizedMatrix) []byte {
	buf := make([]byte, 0, 8+8*len(q.Scales)+len(q.Data))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.Cols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.Rows))
	for _, s := range q.Scales {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	for _, b := range q.Data {
		buf = append(buf, byte(b))
	}
	return buf
}

// decodeQuantSection parses a quant section payload into a validated
// QuantizedMatrix whose slices view data (zero copy on aligned
// little-endian hosts). It accepts exactly the canonical encoding —
// encodeQuantSection(decodeQuantSection(x)) == x for every accepted x
// — and never panics on hostile input; failures wrap ErrCorrupt.
func decodeQuantSection(data []byte) (*embed.QuantizedMatrix, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: quant section is %d bytes", ErrCorrupt, len(data))
	}
	cols := int(binary.LittleEndian.Uint32(data))
	rows := int(binary.LittleEndian.Uint32(data[4:]))
	if cols < 0 || cols > 1<<20 || rows < 0 || rows >= math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible quant shape %dx%d", ErrCorrupt, rows, cols)
	}
	want := int64(8) + 8*int64(rows) + int64(rows)*int64(cols)
	if int64(len(data)) != want {
		return nil, fmt.Errorf("%w: quant section is %d bytes, want %d for %dx%d",
			ErrCorrupt, len(data), want, rows, cols)
	}
	scales := viewF64(data[8:], rows)
	raw := data[8+8*rows:]
	var cells []int8
	if len(raw) == 0 {
		cells = []int8{}
	} else {
		cells = unsafe.Slice((*int8)(unsafe.Pointer(&raw[0])), len(raw))
	}
	q, err := embed.QuantizedFromParts(rows, cols, cells, scales)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return q, nil
}

// decodeColumns parses a columns section into (table, fitted columns)
// pairs in encoded (sorted-table) order.
func decodeColumns(data []byte) ([]BundleTableColumns, error) {
	off := 0
	u32 := func() (int, error) {
		if len(data)-off < 4 {
			return 0, fmt.Errorf("%w: columns section truncated at offset %d", ErrCorrupt, off)
		}
		v := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		return v, nil
	}
	str := func() (string, error) {
		l, err := u32()
		if err != nil {
			return "", err
		}
		if l < 0 || len(data)-off < l {
			return "", fmt.Errorf("%w: columns section claims a %d-byte string at offset %d", ErrCorrupt, l, off)
		}
		s := string(data[off : off+l])
		off += l
		return s, nil
	}
	nt, err := u32()
	if err != nil {
		return nil, err
	}
	if nt < 0 || nt > 1<<20 {
		return nil, fmt.Errorf("%w: implausible table count %d", ErrCorrupt, nt)
	}
	out := make([]BundleTableColumns, 0, nt)
	for i := 0; i < nt; i++ {
		table, err := str()
		if err != nil {
			return nil, err
		}
		nc, err := u32()
		if err != nil {
			return nil, err
		}
		if nc < 0 || nc > 1<<20 {
			return nil, fmt.Errorf("%w: implausible column count %d for table %q", ErrCorrupt, nc, table)
		}
		cols := make([]string, 0, nc)
		for j := 0; j < nc; j++ {
			c, err := str()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
		}
		out = append(out, BundleTableColumns{Table: table, Columns: cols})
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: columns section has %d trailing bytes", ErrCorrupt, len(data)-off)
	}
	return out, nil
}
