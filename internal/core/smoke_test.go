package core

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/ml"
	"repro/internal/synth"
)

// TestSmokeClassification runs the whole pipeline on a small
// Genes-shaped dataset and checks the embedding beats the majority-class
// rate, i.e. the cross-table signal actually reaches the features.
func TestSmokeClassification(t *testing.T) {
	spec := synth.Genes(synth.GenesOptions{Scale: 0.2, Seed: 1})
	for _, method := range []embed.Method{embed.MethodMF, embed.MethodRW} {
		sd, err := PrepareClassification(Task{
			DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 7,
		}, Config{Method: method, Dim: 64, Seed: 3,
			RW: embed.RWOptions{WalkLength: 40, WalksPerNode: 6, Epochs: 3}})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		rf := &ml.RandomForest{NumTrees: 40, Seed: 5}
		rf.Fit(sd.XTrain, sd.YClassTrain)
		acc := ml.Accuracy(rf.Predict(sd.XTest), sd.YClassTest)
		t.Logf("%s accuracy=%.3f (train=%d test=%d classes=%d)", method, acc, len(sd.XTrain), len(sd.XTest), sd.NumClasses)
		if acc < 0.35 { // 4 classes, majority ~0.25
			t.Errorf("%s: accuracy %.3f did not beat majority baseline", method, acc)
		}
	}
}
