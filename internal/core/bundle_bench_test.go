package core

import (
	"os"
	"sync"
	"testing"

	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/synth"
)

// benchBundle builds one mid-sized deployment and saves it in both
// layouts, once per benchmark binary.
var (
	benchBundleOnce  sync.Once
	benchBundleV4    string
	benchBundleV3    string
	benchBundleQuant string
	benchBundleErr   error
)

func benchBundleDirs(b *testing.B) (v4, v3, quant string) {
	b.Helper()
	benchBundleOnce.Do(func() {
		spec := synth.Student(synth.StudentOptions{Students: 300, Seed: 2})
		res, err := BuildEmbedding(spec.DB, Config{Dim: 32, Seed: 2, Method: embed.MethodMF})
		if err != nil {
			benchBundleErr = err
			return
		}
		if benchBundleV4, benchBundleErr = os.MkdirTemp("", "leva-bench-v4-*"); benchBundleErr != nil {
			return
		}
		if benchBundleErr = res.SaveBundle(benchBundleV4); benchBundleErr != nil {
			return
		}
		if benchBundleV3, benchBundleErr = os.MkdirTemp("", "leva-bench-v3-*"); benchBundleErr != nil {
			return
		}
		if benchBundleErr = res.SaveBundleLegacy(benchBundleV3); benchBundleErr != nil {
			return
		}
		res.Quant = embed.Quantize(res.Embedding.Matrix())
		if benchBundleQuant, benchBundleErr = os.MkdirTemp("", "leva-bench-quant-*"); benchBundleErr != nil {
			return
		}
		benchBundleErr = res.SaveBundle(benchBundleQuant)
	})
	if benchBundleErr != nil {
		b.Fatal(benchBundleErr)
	}
	return benchBundleV4, benchBundleV3, benchBundleQuant
}

// BenchmarkBundleLoad compares the two load paths over the same
// deployment: the legacy JSON/TSV decode (per-entity string and vector
// allocations) against the binary view construction (one buffer, a
// hash, and slice headers). Run with -benchmem; the allocs/op column is
// the point of the format migration.
func BenchmarkBundleLoad(b *testing.B) {
	v4, v3, quant := benchBundleDirs(b)
	b.Run("v3-json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LoadBundle(v3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v4-binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LoadBundle(v4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v5-quant", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := LoadBundle(quant)
			if err != nil {
				b.Fatal(err)
			}
			if res.Quant == nil {
				b.Fatal("quant bundle loaded without its int8 arena")
			}
		}
	})
	if durable.MapSupported {
		b.Run("v4-mmap", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := LoadBundleOpts(v4, LoadOptions{MMap: true})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Unmap(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("v5-quant-mmap", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := LoadBundleOpts(quant, LoadOptions{MMap: true})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Unmap(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBundleLoadAllocRatio turns the benchmark's headline into a
// regression gate: loading the binary format must allocate at least 10x
// fewer objects than loading the same deployment from the legacy JSON
// format.
func TestBundleLoadAllocRatio(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 150, Seed: 2})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 16, Seed: 2, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	v4Dir, v3Dir := t.TempDir(), t.TempDir()
	if err := res.SaveBundle(v4Dir); err != nil {
		t.Fatal(err)
	}
	if err := res.SaveBundleLegacy(v3Dir); err != nil {
		t.Fatal(err)
	}
	legacy := testing.AllocsPerRun(5, func() {
		if _, err := LoadBundle(v3Dir); err != nil {
			t.Fatal(err)
		}
	})
	binary := testing.AllocsPerRun(5, func() {
		if _, err := LoadBundle(v4Dir); err != nil {
			t.Fatal(err)
		}
	})
	if binary*10 > legacy {
		t.Errorf("binary load allocates %.0f objects vs %.0f for legacy — want at least 10x fewer", binary, legacy)
	}
}
