package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/synth"
)

// faultFixture builds two distinct deployments — the "old" bundle on
// disk and the "new" one replacing it — whose on-disk bytes differ, so
// a hybrid of the two is detectable by manifest comparison.
func faultFixture(t *testing.T) (oldRes, newRes *Result) {
	t.Helper()
	spec := synth.Student(synth.StudentOptions{Students: 20, Seed: 3})
	var err error
	oldRes, err = BuildEmbedding(spec.DB, Config{Dim: 4, Seed: 3, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	newRes, err = BuildEmbedding(spec.DB, Config{Dim: 4, Seed: 4, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	return oldRes, newRes
}

// manifestKey renders a manifest's payload identities as one comparable
// string (name:sha pairs in manifest order).
func manifestKey(t *testing.T, dir string) string {
	t.Helper()
	m, err := durable.VerifyDir(dir)
	if err != nil {
		t.Fatalf("bundle at %s fails verification: %v", dir, err)
	}
	var b strings.Builder
	for _, e := range m.Files {
		fmt.Fprintf(&b, "%s:%s;", e.Name, e.SHA256)
	}
	return b.String()
}

// TestSaveBundleCrashPointSweep is the fault-injection harness of the
// bundle lifecycle: for every filesystem operation a replacing
// SaveBundle performs, simulate a process crash at exactly that point
// (the op fails and no later operation — including cleanup — reaches
// the disk), then "restart" and require that LoadBundle succeeds and
// the bundle directory verifies as exactly the old bundle or exactly
// the new bundle. Torn (short) writes are swept separately for every
// write op. A transient-error sweep (the error path runs, unlike a
// crash) checks the same invariant when cleanup does get to execute.
func TestSaveBundleCrashPointSweep(t *testing.T) {
	oldRes, newRes := faultFixture(t)

	// Reference saves: capture the two manifests and the op counts of a
	// clean replacing save.
	refDir := filepath.Join(t.TempDir(), "bundle")
	if err := oldRes.SaveBundle(refDir); err != nil {
		t.Fatal(err)
	}
	oldKey := manifestKey(t, refDir)
	counter := durable.NewFaultFS(durable.OS())
	if err := newRes.saveBundle(counter, refDir); err != nil {
		t.Fatal(err)
	}
	newKey := manifestKey(t, refDir)
	if oldKey == newKey {
		t.Fatal("fixture bundles are identical on disk; the sweep cannot distinguish old from new")
	}
	counts := counter.Counts()

	crashPoints := 0
	sweep := func(mode string, short bool, inject func(*durable.FaultFS, durable.Op, int)) {
		for _, op := range durable.Ops {
			if short && op != durable.OpWrite {
				continue
			}
			for k := 1; k <= counts[op]; k++ {
				name := fmt.Sprintf("%s/%s-%d", mode, op, k)
				if short {
					name += "-short"
				}
				t.Run(name, func(t *testing.T) {
					dir := filepath.Join(t.TempDir(), "bundle")
					if err := oldRes.SaveBundle(dir); err != nil {
						t.Fatal(err)
					}
					ffs := durable.NewFaultFS(durable.OS())
					inject(ffs, op, k)
					if short {
						ffs.ShortWrites()
					}
					if err := newRes.saveBundle(ffs, dir); err == nil {
						t.Fatalf("save with injected %s fault #%d reported success", op, k)
					}
					if !ffs.Fired() {
						t.Fatalf("fault %s #%d never fired; op count drifted from the reference save", op, k)
					}
					// "Restart": LoadBundle repairs an interrupted
					// publish and must find a complete bundle.
					if _, err := LoadBundle(dir); err != nil {
						t.Fatalf("bundle unloadable after crash at %s #%d: %v", op, k, err)
					}
					got := manifestKey(t, dir)
					if got != oldKey && got != newKey {
						t.Fatalf("crash at %s #%d left a hybrid bundle on disk:\n got %s\n old %s\n new %s",
							op, k, got, oldKey, newKey)
					}
					crashPoints++
				})
			}
		}
	}

	sweep("crash", false, func(f *durable.FaultFS, op durable.Op, k int) { f.CrashAt(op, k) })
	sweep("crash", true, func(f *durable.FaultFS, op durable.Op, k int) { f.CrashAt(op, k) })
	sweep("transient", false, func(f *durable.FaultFS, op durable.Op, k int) { f.FailAt(op, k) })

	if crashPoints < 20 {
		t.Errorf("sweep covered only %d crash points; the op counts look implausibly low: %v", crashPoints, counts)
	}
}

// TestSaveBundleReportsFullDisk pins the regression the durability work
// started from: a payload write whose flush/close fails (a full disk)
// must fail the save, not report success over a truncated file.
func TestSaveBundleReportsFullDisk(t *testing.T) {
	oldRes, _ := faultFixture(t)
	for _, op := range []durable.Op{durable.OpSync, durable.OpClose} {
		for k := 1; k <= 2; k++ { // bundle.bin + manifest
			dir := filepath.Join(t.TempDir(), "bundle")
			ffs := durable.NewFaultFS(durable.OS())
			ffs.FailAt(op, k)
			if err := oldRes.saveBundle(ffs, dir); err == nil {
				t.Errorf("save succeeded with %s #%d failing", op, k)
			}
			if _, err := LoadBundle(dir); err == nil {
				t.Errorf("a bundle published despite %s #%d failing", op, k)
			}
		}
	}
}

// TestLoadBundleRejectsSingleByteCorruption flips single bytes at the
// start, middle, and end of every bundle file — payloads and manifest —
// and requires LoadBundle to reject each mutation with an error naming
// the damaged file (manifest damage may be reported through the file
// whose record it corrupted; either way MANIFEST.json is named). Both
// layouts are swept: the binary bundle and the legacy JSON one.
func TestLoadBundleRejectsSingleByteCorruption(t *testing.T) {
	t.Run("binary", func(t *testing.T) {
		sweepByteCorruption(t, savedBundle(t), []string{bundleBinFile, durable.ManifestName})
	})
	t.Run("legacy", func(t *testing.T) {
		sweepByteCorruption(t, savedLegacyBundle(t),
			[]string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile, durable.ManifestName})
	})
}

func sweepByteCorruption(t *testing.T, dir string, files []string) {
	for _, name := range files {
		path := filepath.Join(dir, name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int{0, len(orig) / 2, len(orig) - 1} {
			t.Run(fmt.Sprintf("%s@%d", name, off), func(t *testing.T) {
				corrupt := append([]byte(nil), orig...)
				corrupt[off] ^= 0xFF
				if err := os.WriteFile(path, corrupt, 0o644); err != nil {
					t.Fatal(err)
				}
				defer func() {
					if err := os.WriteFile(path, orig, 0o644); err != nil {
						t.Fatal(err)
					}
				}()
				_, err := LoadBundle(dir)
				if err == nil {
					t.Fatalf("bundle with %s byte %d flipped loaded cleanly", name, off)
				}
				if !strings.Contains(err.Error(), name) && !strings.Contains(err.Error(), durable.ManifestName) {
					t.Errorf("corruption error names neither %s nor the manifest: %v", name, err)
				}
			})
		}
	}
	// After every restore the bundle must still be pristine.
	if _, err := LoadBundle(dir); err != nil {
		t.Fatalf("restored bundle fails to load: %v", err)
	}
}

// TestLoadBundleRejectsTruncation cuts each payload file in half — the
// classic torn-write outcome — and requires a named rejection, for both
// layouts.
func TestLoadBundleRejectsTruncation(t *testing.T) {
	t.Run(bundleBinFile, func(t *testing.T) {
		dir := savedBundle(t)
		path := filepath.Join(dir, bundleBinFile)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, orig[:len(orig)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadBundle(dir)
		if err == nil || !strings.Contains(err.Error(), bundleBinFile) {
			t.Fatalf("truncated %s not rejected by name: %v", bundleBinFile, err)
		}
	})
	for _, name := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
		t.Run(name, func(t *testing.T) {
			dir := savedLegacyBundle(t)
			path := filepath.Join(dir, name)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, orig[:len(orig)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = LoadBundle(dir)
			if err == nil || !strings.Contains(err.Error(), path) {
				t.Fatalf("truncated %s not rejected by name: %v", name, err)
			}
		})
	}
}

// TestStaleStagingDirIsIgnored: garbage left in the staging sibling by
// a crashed save must never affect loading the published bundle, and
// the next save must clear it.
func TestStaleStagingDirIsIgnored(t *testing.T) {
	oldRes, newRes := faultFixture(t)
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := oldRes.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	staging := dir + durable.StagingSuffix
	if err := os.MkdirAll(staging, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(staging, bundleEmbeddingFile), []byte("garbage\t1 2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(dir); err != nil {
		t.Fatalf("published bundle unloadable with stale staging present: %v", err)
	}
	if err := newRes.SaveBundle(dir); err != nil {
		t.Fatalf("save over stale staging: %v", err)
	}
	if _, err := LoadBundle(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(staging); !os.IsNotExist(err) {
		t.Error("stale staging dir survived a clean save")
	}
}
