package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ann"
	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/matrix"
	"repro/internal/synth"
)

func quantBundleResult(t *testing.T) *Result {
	t.Helper()
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 13})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 8, Seed: 13, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	res.Quant = embed.Quantize(res.Embedding.Matrix())
	return res
}

// TestBundleQuantRoundTrip: a bundle saved with a quantized arena
// restores it exactly — scales, bytes, shape — through both the read
// and the mmap load path, and the float embedding is untouched.
func TestBundleQuantRoundTrip(t *testing.T) {
	res := quantBundleResult(t)
	dir := t.TempDir() + "/bundle"
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}

	load := func(opts LoadOptions) *Result {
		t.Helper()
		back, err := LoadBundleOpts(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		return back
	}
	checks := map[string]*Result{"read": load(LoadOptions{})}
	if durable.MapSupported {
		checks["mmap"] = load(LoadOptions{MMap: true})
	}
	for name, back := range checks {
		if back.BundleFormat != BundleFormatVersion {
			t.Errorf("%s: BundleFormat = %d, want %d", name, back.BundleFormat, BundleFormatVersion)
		}
		if back.Quant == nil {
			t.Fatalf("%s: quant section not restored", name)
		}
		if back.Quant.Rows != res.Quant.Rows || back.Quant.Cols != res.Quant.Cols {
			t.Errorf("%s: quant shape %dx%d, want %dx%d", name,
				back.Quant.Rows, back.Quant.Cols, res.Quant.Rows, res.Quant.Cols)
		}
		if !reflect.DeepEqual(back.Quant.Scales, res.Quant.Scales) {
			t.Errorf("%s: quant scales differ", name)
		}
		if !bytes.Equal(int8Bytes(back.Quant.Data), int8Bytes(res.Quant.Data)) {
			t.Errorf("%s: quant data differs", name)
		}
		if !reflect.DeepEqual(back.Embedding.Matrix().Data, res.Embedding.Matrix().Data) {
			t.Errorf("%s: float arena perturbed by quant section", name)
		}
		if name == "mmap" {
			if err := back.Unmap(); err != nil {
				t.Errorf("unmap: %v", err)
			}
			if err := back.Unmap(); err != nil {
				t.Errorf("second unmap not idempotent: %v", err)
			}
		}
	}
}

func int8Bytes(d []int8) []byte {
	out := make([]byte, len(d))
	for i, b := range d {
		out[i] = byte(b)
	}
	return out
}

// TestBundleWithoutQuant: bundles built without -quantize stay
// loadable with a nil Quant — the section is genuinely optional.
func TestBundleWithoutQuant(t *testing.T) {
	res := quantBundleResult(t)
	res.Quant = nil
	dir := t.TempDir() + "/bundle"
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Quant != nil {
		t.Fatal("bundle saved without Quant loaded with one")
	}
	info, err := ReadBundleInfo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.QuantBytes != 0 {
		t.Errorf("QuantBytes = %d for an unquantized bundle", info.QuantBytes)
	}
}

// TestBundleV4StillLoads: a version-4 file (header and config version
// 4, no quant section) decodes unchanged — the v5 bump does not orphan
// existing deployments.
func TestBundleV4StillLoads(t *testing.T) {
	res := quantBundleResult(t)
	res.Quant = nil
	enc, err := encodeBundleV4(res)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the file as its version-4 twin: header version byte and
	// the config section's formatVersion field (same byte length, so
	// every section offset is preserved).
	v4 := bytes.Replace(enc, []byte(`"formatVersion":5`), []byte(`"formatVersion":4`), 1)
	if bytes.Equal(v4, enc) {
		t.Fatal("config formatVersion not found to patch")
	}
	v4[len(bundleMagic)] = 4
	dec, err := decodeBundleV4(v4)
	if err != nil {
		t.Fatalf("version-4 bundle rejected: %v", err)
	}
	if dec.BundleFormat != 4 {
		t.Errorf("BundleFormat = %d, want 4", dec.BundleFormat)
	}
	if dec.Quant != nil {
		t.Error("version-4 bundle decoded with a quant arena")
	}
	if !reflect.DeepEqual(dec.Embedding.Matrix().Data, res.Embedding.Matrix().Data) {
		t.Error("version-4 arena differs")
	}
}

// TestQuantSectionIgnoredInV4File: a (hand-built) version-4 file that
// smuggles a quant section id is decoded as if the section were not
// there — v4 writers never emitted id 7.
func TestQuantSectionIgnoredInV4File(t *testing.T) {
	res := quantBundleResult(t)
	enc, err := encodeBundleV4(res) // v5 with a real quant section
	if err != nil {
		t.Fatal(err)
	}
	v4 := bytes.Replace(enc, []byte(`"formatVersion":5`), []byte(`"formatVersion":4`), 1)
	v4[len(bundleMagic)] = 4
	dec, err := decodeBundleV4(v4)
	if err != nil {
		t.Fatalf("v4 file with a quant section id rejected: %v", err)
	}
	if dec.Quant != nil {
		t.Error("quant section honored inside a version-4 file")
	}
}

// TestQuantShapeMismatchRejected: a quant section whose shape
// disagrees with the arena is corruption, not a warning.
func TestQuantShapeMismatchRejected(t *testing.T) {
	res := quantBundleResult(t)
	res.Quant = embed.Quantize(matrix.NewDense(3, res.Embedding.Dim))
	if _, err := encodeBundleV4(res); err == nil {
		t.Error("encoder accepted a quant arena of the wrong shape")
	}

	res.Quant = embed.Quantize(res.Embedding.Matrix())
	enc, err := encodeBundleV4(res)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored quant row count (the second u32 of the quant
	// section payload).
	secs, _, err := bundleSections(enc)
	if err != nil {
		t.Fatal(err)
	}
	sec := secs[secQuant]
	binary.LittleEndian.PutUint32(sec[4:], uint32(res.Quant.Rows-1))
	if _, err := decodeBundleV4(enc); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("mismatched quant shape not rejected as corrupt: %v", err)
	}
}

// TestANNStageQuantCacheKey is the cache-poisoning regression: a
// quantized stage and a float stage over the same embedding must have
// different fingerprints, so neither ever serves the other's artifact
// — cold/warm in every direction.
func TestANNStageQuantCacheKey(t *testing.T) {
	res := quantBundleResult(t)
	cache := NewCache(t.TempDir())
	floatStage := &ANNStage{Embedding: res.Embedding, Opts: ann.Options{Seed: 1}, Cache: cache}
	quantStage := &ANNStage{Embedding: res.Embedding, Opts: ann.Options{Seed: 1}, Cache: cache, Quantize: true}
	if floatStage.Fingerprint() == quantStage.Fingerprint() {
		t.Fatal("quantized and float ANN stages share a fingerprint")
	}

	ix, cached, err := floatStage.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cold float build reported cached")
	}
	if ix.Quantized() {
		t.Fatal("float stage produced a quantized index")
	}

	// A -quantize rebuild right after: the float artifact must not
	// satisfy it.
	qix, cached, err := quantStage.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("quantized build served from the float stage's cache entry")
	}
	if !qix.Quantized() {
		t.Fatal("quantized stage produced a float index")
	}

	// Warm re-runs hit their own entries and keep their arithmetic.
	qix2, cached, err := quantStage.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !cached || !qix2.Quantized() {
		t.Fatalf("warm quantized run: cached=%v quantized=%v", cached, qix2.Quantized())
	}
	ix2, cached, err := floatStage.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !cached || ix2.Quantized() {
		t.Fatalf("warm float run: cached=%v quantized=%v", cached, ix2.Quantized())
	}
}

// FuzzQuantSection feeds arbitrary bytes to the quant-section decoder:
// it never panics, every rejection wraps ErrCorrupt, and any accepted
// payload re-encodes byte-exactly (the section codec has exactly one
// canonical form).
func FuzzQuantSection(f *testing.F) {
	q := embed.Quantize(matrix.FromRows([][]float64{{1, -2, 3}, {0.5, 0, -0.25}}))
	valid := encodeQuantSection(q)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(encodeQuantSection(embed.Quantize(matrix.NewDense(0, 0))))
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	// NaN scale: shape 1x0 with one bad scale word.
	bad := make([]byte, 16)
	binary.LittleEndian.PutUint32(bad[4:], 1)
	binary.LittleEndian.PutUint64(bad[8:], math.Float64bits(math.NaN()))
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := decodeQuantSection(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection is not ErrCorrupt: %v", err)
			}
			return
		}
		enc := encodeQuantSection(dec)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted quant section did not re-encode byte-exactly: %d vs %d bytes", len(enc), len(data))
		}
	})
}

// TestQuantSectionDecodeNames: corrupt quant rejections surface
// through LoadBundle with the payload file named, like every other
// decode failure.
func TestQuantSectionDecodeNames(t *testing.T) {
	res := quantBundleResult(t)
	dir := t.TempDir() + "/bundle"
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	// Flip a scale to NaN in place and drop the manifest so the
	// structural decoder (not the hash check) sees it.
	path := filepath.Join(dir, bundleBinFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	secs, _, err := bundleSections(data)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(secs[secQuant][8:], math.Float64bits(math.NaN()))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, durable.ManifestName)); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBundle(dir)
	if err == nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "bundle.bin") {
		t.Errorf("NaN quant scale not rejected naming bundle.bin: %v", err)
	}
}
