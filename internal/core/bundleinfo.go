package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/durable"
	"repro/internal/embed"
)

// BundleTableColumns is one table's fitted column order, as recorded in
// a bundle.
type BundleTableColumns struct {
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
}

// BundleInfo describes a saved bundle without loading it for serving:
// what format it is, what it embeds, how large its payload sections
// are, and how the build that produced it was satisfied. Produced by
// ReadBundleInfo; rendered by `leva bundle info`.
type BundleInfo struct {
	Dir           string `json:"dir"`
	FormatVersion int    `json:"formatVersion"`
	// Verified reports whether the payload passed its MANIFEST.json
	// integrity check (false for pre-durability bundles).
	Verified bool                 `json:"verified"`
	Dim      int                  `json:"dim"`
	Entities int                  `json:"entities"`
	Columns  []BundleTableColumns `json:"columns"`
	// SymbolBytes and ArenaBytes are the sizes of the interned symbol
	// table and the vector arena. For legacy bundles both are the
	// in-memory equivalents reconstructed from the TSV payload.
	SymbolBytes int64 `json:"symbolBytes"`
	ArenaBytes  int64 `json:"arenaBytes"`
	// QuantBytes is the size of the optional int8 quant section
	// (version 5); 0 when the bundle carries no quantized arena.
	QuantBytes int64 `json:"quantBytes,omitempty"`
	// PayloadBytes is the total on-disk size of the payload files
	// (excluding the manifest).
	PayloadBytes       int64             `json:"payloadBytes"`
	Featurization      FeaturizationMode `json:"featurization"`
	MethodUsed         embed.Method      `json:"methodUsed"`
	UnseenFallbackDims int               `json:"unseenFallbackDims"`
	UnweightedFallback bool              `json:"unweightedFallback,omitempty"`
	StageCache         *CacheStats       `json:"stageCache,omitempty"`
}

// ReadBundleInfo inspects the bundle at dir. For binary bundles it
// parses section headers without constructing an Embedding; for legacy
// JSON bundles it falls back to a full load. Corruption surfaces with
// the same named errors as LoadBundle.
func ReadBundleInfo(dir string) (*BundleInfo, error) {
	dir = filepath.Clean(dir)
	info := &BundleInfo{Dir: dir}

	manifest, err := durable.ReadManifest(dir)
	switch {
	case errors.Is(err, durable.ErrNoManifest):
		manifest = nil
	case err != nil:
		return nil, fmt.Errorf("core: bundle info: %w", err)
	}

	binPath := filepath.Join(dir, bundleBinFile)
	data, err := os.ReadFile(binPath)
	if err == nil {
		if manifest != nil {
			if verr := manifest.VerifyData(bundleBinFile, data); verr != nil {
				return nil, fmt.Errorf("core: bundle info: %s: %w", dir, verr)
			}
			info.Verified = true
		}
		if err := fillInfoV4(info, data); err != nil {
			return nil, fmt.Errorf("core: bundle info: %s: %w", binPath, err)
		}
		info.PayloadBytes = int64(len(data))
		return info, nil
	}
	if !os.IsNotExist(err) {
		return nil, fmt.Errorf("core: bundle info: %w", err)
	}

	// Legacy JSON bundle: load it and measure the reconstruction.
	res, err := loadBundleLegacy(dir, manifest)
	if err != nil {
		return nil, err
	}
	info.Verified = manifest != nil
	info.FormatVersion = res.BundleFormat
	info.Dim = res.Embedding.Dim
	info.Entities = res.Embedding.Len()
	st := res.Embedding.Symbols()
	info.SymbolBytes = int64(len(st.Blob()) + 4*(st.Len()+1) + 4*st.Len())
	info.ArenaBytes = int64(8 * len(res.Embedding.Matrix().Data))
	for _, tb := range res.Textifier.Tables() {
		info.Columns = append(info.Columns, BundleTableColumns{Table: tb, Columns: res.Textifier.Columns(tb)})
	}
	info.Featurization = res.Config.Featurization
	info.MethodUsed = res.MethodUsed
	info.UnseenFallbackDims = res.Config.UnseenFallbackDims
	info.UnweightedFallback = res.UnweightedFallback
	cache := res.Timings.Cache
	info.StageCache = &cache
	for _, name := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
			info.PayloadBytes += fi.Size()
		}
	}
	return info, nil
}

// fillInfoV4 populates info from a bundle.bin buffer, touching only
// section headers and the JSON sections — no symbol-table validation,
// no embedding construction.
func fillInfoV4(info *BundleInfo, data []byte) error {
	secs, version, err := bundleSections(data)
	if err != nil {
		return err
	}
	if quantData, ok := secs[secQuant]; ok && version >= 5 {
		info.QuantBytes = int64(len(quantData))
	}
	cfgData, err := requireSection(secs, secConfig, "config")
	if err != nil {
		return err
	}
	var cfg v4Config
	if err := json.Unmarshal(cfgData, &cfg); err != nil {
		return fmt.Errorf("%w: config section: %v", ErrCorrupt, err)
	}
	info.FormatVersion = cfg.FormatVersion
	info.Dim = cfg.Dim
	info.Featurization = cfg.Featurization
	info.MethodUsed = cfg.MethodUsed
	info.UnseenFallbackDims = cfg.UnseenFallbackDims

	if colsData, ok := secs[secColumns]; ok {
		cols, err := decodeColumns(colsData)
		if err != nil {
			return err
		}
		info.Columns = cols
	}
	symsData, err := requireSection(secs, secSymbols, "symbols")
	if err != nil {
		return err
	}
	if len(symsData) < 8 {
		return fmt.Errorf("%w: symbols section is %d bytes", ErrCorrupt, len(symsData))
	}
	info.Entities = int(binary.LittleEndian.Uint32(symsData))
	info.SymbolBytes = int64(len(symsData))
	arenaData, err := requireSection(secs, secArena, "arena")
	if err != nil {
		return err
	}
	info.ArenaBytes = int64(len(arenaData))
	if provData, ok := secs[secProvenance]; ok {
		var prov v4Provenance
		if err := json.Unmarshal(provData, &prov); err != nil {
			return fmt.Errorf("%w: provenance section: %v", ErrCorrupt, err)
		}
		info.StageCache = prov.StageCache
		info.UnweightedFallback = prov.UnweightedFallback
	}
	return nil
}
