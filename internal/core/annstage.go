package core

import (
	"repro/internal/ann"
	"repro/internal/embed"
)

// stageANN is the stage-cache namespace of ANN index artifacts.
const stageANN = "ann"

// ANNStage derives the HNSW index artifact from a built embedding,
// content-addressed like every other stage: the fingerprint covers the
// embedding's exact content and the build options, and index builds
// are byte-deterministic, so a cache hit is provably the same artifact
// a rebuild would produce. `leva embed -index` runs this stage after
// the pipeline to publish an index next to the bundle.
type ANNStage struct {
	// Embedding is the built embedding to index.
	Embedding *embed.Embedding
	// Opts are the HNSW build options (zero value = defaults).
	Opts ann.Options
	// Cache, when non-nil, serves previously built indexes and
	// publishes fresh builds best-effort (a failed cache write never
	// fails the build).
	Cache *Cache
}

// Fingerprint keys the stage's artifact by everything that determines
// it: the embedding content hash and the defaulted build options.
func (s *ANNStage) Fingerprint() string {
	return ann.IndexFingerprint(s.Embedding.Fingerprint(), s.Opts)
}

// Run returns the index and whether it was served from the cache. A
// corrupt or unreadable cache entry counts as a miss and is rebuilt
// over, matching the pipeline's other stages.
func (s *ANNStage) Run() (ix *ann.Index, cached bool, err error) {
	var fp string
	if s.Cache != nil {
		fp = s.Fingerprint()
		if files, ok := s.Cache.Load(stageANN, fp); ok {
			if ix, err := ann.Decode(files[ann.IndexFileName]); err == nil {
				return ix, true, nil
			}
		}
	}
	ix, err = ann.Build(s.Embedding, s.Opts)
	if err != nil {
		return nil, false, err
	}
	if s.Cache != nil {
		s.Cache.noteStore(s.Cache.Store(stageANN, fp,
			map[string][]byte{ann.IndexFileName: ix.Encode()}))
	}
	return ix, false, nil
}
