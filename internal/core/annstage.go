package core

import (
	"repro/internal/ann"
	"repro/internal/embed"
	"repro/internal/fingerprint"
)

// stageANN is the stage-cache namespace of ANN index artifacts.
const stageANN = "ann"

// ANNStage derives the HNSW index artifact from a built embedding,
// content-addressed like every other stage: the fingerprint covers the
// embedding's exact content and the build options, and index builds
// are byte-deterministic, so a cache hit is provably the same artifact
// a rebuild would produce. `leva embed -index` runs this stage after
// the pipeline to publish an index next to the bundle.
type ANNStage struct {
	// Embedding is the built embedding to index.
	Embedding *embed.Embedding
	// Opts are the HNSW build options (zero value = defaults).
	Opts ann.Options
	// Cache, when non-nil, serves previously built indexes and
	// publishes fresh builds best-effort (a failed cache write never
	// fails the build).
	Cache *Cache
	// Quantize attaches the int8 search arena to the built (or cached)
	// index. It is part of the cache key: a quantized build must never
	// satisfy a float request or vice versa — the two serve different
	// arithmetic, even though the persisted graph artifact is float
	// either way.
	Quantize bool
}

// Fingerprint keys the stage's artifact by everything that determines
// it: the embedding content hash, the defaulted build options, and
// whether the index serves quantized.
func (s *ANNStage) Fingerprint() string {
	fp := ann.IndexFingerprint(s.Embedding.Fingerprint(), s.Opts)
	if s.Quantize {
		fp = fingerprint.Combine("leva/ann-quant/v1", fp)
	}
	return fp
}

// Run returns the index and whether it was served from the cache. A
// corrupt or unreadable cache entry counts as a miss and is rebuilt
// over, matching the pipeline's other stages.
func (s *ANNStage) Run() (ix *ann.Index, cached bool, err error) {
	var fp string
	if s.Cache != nil {
		fp = s.Fingerprint()
		if files, ok := s.Cache.Load(stageANN, fp); ok {
			if ix, err := ann.Decode(files[ann.IndexFileName]); err == nil {
				if s.Quantize {
					if err := ix.Quantize(nil); err != nil {
						return nil, false, err
					}
				}
				return ix, true, nil
			}
		}
	}
	ix, err = ann.Build(s.Embedding, s.Opts)
	if err != nil {
		return nil, false, err
	}
	if s.Cache != nil {
		s.Cache.noteStore(s.Cache.Store(stageANN, fp,
			map[string][]byte{ann.IndexFileName: ix.Encode()}))
	}
	if s.Quantize {
		if err := ix.Quantize(nil); err != nil {
			return nil, false, err
		}
	}
	return ix, false, nil
}
