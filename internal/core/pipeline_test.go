package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/synth"
)

func TestBuildEmbeddingValidation(t *testing.T) {
	bad := dataset.NewDatabase(dataset.NewTable("a", "x", "x"))
	if _, err := BuildEmbedding(bad, Config{}); err == nil {
		t.Error("invalid database accepted")
	}
}

func TestBuildEmbeddingStudent(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 60, Seed: 1})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 16, Seed: 1, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	if res.MethodUsed != embed.MethodMF {
		t.Errorf("method = %s", res.MethodUsed)
	}
	if res.Embedding.Dim != 16 {
		t.Errorf("dim = %d", res.Embedding.Dim)
	}
	// Every base row gets a row-node embedding.
	for i := 0; i < 60; i++ {
		if !res.Embedding.Has(embed.RowKey("expenses", i)) {
			t.Fatalf("row %d not embedded", i)
		}
	}
	// Stage timings are recorded.
	if res.Timings.Total() <= 0 {
		t.Error("no stage timings")
	}
	if res.GraphStats.RowNodes != spec.DB.TotalRows() {
		t.Errorf("row nodes = %d, want %d", res.GraphStats.RowNodes, spec.DB.TotalRows())
	}
}

func TestAutoSelectionRespectsBudget(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 2})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 2, Method: embed.MethodAuto, MemoryBudgetBytes: 1, // absurdly small
		RW: embed.RWOptions{WalkLength: 10, WalksPerNode: 2, Epochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MethodUsed != embed.MethodRW {
		t.Errorf("tiny budget used %s, want rw", res.MethodUsed)
	}
	res2, err := BuildEmbedding(spec.DB, Config{Dim: 8, Seed: 2, Method: embed.MethodAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MethodUsed != embed.MethodMF {
		t.Errorf("unlimited budget used %s, want mf", res2.MethodUsed)
	}
}

func TestWeightedGraphFallsBackUnderBudget(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 50, Seed: 6})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 6, Method: embed.MethodRW, MemoryBudgetBytes: 1,
		RW: embed.RWOptions{WalkLength: 10, WalksPerNode: 2, Epochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Weighted {
		t.Error("tiny budget kept the weighted graph")
	}
	if !res.UnweightedFallback {
		t.Error("fallback decision not recorded in Result")
	}
	// With a generous budget the default stays weighted.
	res2, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 6, Method: embed.MethodRW, MemoryBudgetBytes: 1 << 30,
		RW: embed.RWOptions{WalkLength: 10, WalksPerNode: 2, Epochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Graph.Weighted {
		t.Error("generous budget dropped the weighted graph")
	}
	if res2.UnweightedFallback {
		t.Error("fallback recorded despite generous budget")
	}
}

func TestFeaturizeShapes(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 3})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 8, Seed: 3, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	base := spec.DB.Table("expenses")

	// Row+Value doubles the width.
	x, err := res.FeaturizeWithMode(base, "expenses", []string{"total_expenses"},
		func(i int) int { return i }, RowPlusValue)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 30 || len(x[0]) != 16 {
		t.Fatalf("row+value shape %dx%d, want 30x16", len(x), len(x[0]))
	}
	xr, err := res.FeaturizeWithMode(base, "expenses", []string{"total_expenses"},
		func(i int) int { return i }, RowOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(xr[0]) != 8 {
		t.Fatalf("row-only width %d, want 8", len(xr[0]))
	}

	// Test-style rows (graphRow -1) compose from value nodes and are
	// not all-zero.
	xt, err := res.Featurize(base, "expenses", []string{"total_expenses"},
		func(i int) int { return -1 })
	if err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, v := range xt[0] {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("composed test featurization is all zeros")
	}
}

func TestUnseenFallbackOneHot(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 7})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 7, Method: embed.MethodMF, UnseenFallbackDims: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A table with a novel categorical string: its token is not in the
	// embedding, so it must land in a fallback slot.
	novel := spec.DB.Table("expenses").Clone()
	novel.Column("school_name").Values[0] = dataset.String("never_seen_school_xyz")
	x, err := res.Featurize(novel, "expenses", []string{"total_expenses"},
		func(i int) int { return -1 })
	if err != nil {
		t.Fatal(err)
	}
	width := 2*8 + 4
	if len(x[0]) != width {
		t.Fatalf("width = %d, want %d", len(x[0]), width)
	}
	hot := 0.0
	for _, v := range x[0][16:] {
		hot += v
	}
	if hot == 0 {
		t.Error("unseen token did not hit a fallback slot")
	}
}

func TestPrepareClassificationSplitsConsistently(t *testing.T) {
	spec := synth.Genes(synth.GenesOptions{Scale: 0.06, Seed: 4})
	task := Task{DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 9}
	sd, err := PrepareClassification(task, Config{Dim: 16, Seed: 4, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	n := spec.DB.Table(spec.BaseTable).NumRows()
	if len(sd.XTrain)+len(sd.XTest) != n {
		t.Errorf("split sizes %d+%d != %d", len(sd.XTrain), len(sd.XTest), n)
	}
	if len(sd.YClassTrain) != len(sd.XTrain) || len(sd.YClassTest) != len(sd.XTest) {
		t.Error("label lengths mismatch")
	}
	if sd.NumClasses != 4 {
		t.Errorf("classes = %d", sd.NumClasses)
	}
	// The graph must not contain test base rows (leak check): row
	// nodes for the base table equal the train count.
	baseRows := 0
	for i := 0; i < n; i++ {
		if sd.Result.Embedding.Has(embed.RowKey(spec.BaseTable, i)) {
			baseRows++
		}
	}
	if baseRows != len(sd.XTrain) {
		t.Errorf("embedded base rows = %d, want train count %d", baseRows, len(sd.XTrain))
	}
}

func TestGloVeMethodPluggedIn(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 12})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 12, Method: embed.MethodGloVe,
		GloVe: embed.GloVeOptions{WalkLength: 15, WalksPerNode: 3, Epochs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MethodUsed != embed.MethodGloVe {
		t.Errorf("method = %s", res.MethodUsed)
	}
	if res.Embedding.Dim != 8 || res.Embedding.Len() == 0 {
		t.Error("empty GloVe embedding")
	}
	if _, err := BuildEmbedding(spec.DB, Config{Method: "bogus", Dim: 4}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	spec := synth.Genes(synth.GenesOptions{Scale: 0.05, Seed: 8})
	task := Task{DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 8}
	cfg := Config{Dim: 16, Seed: 8, Method: embed.MethodMF}
	a, err := PrepareClassification(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareClassification(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.XTrain {
		for j := range a.XTrain[i] {
			if a.XTrain[i][j] != b.XTrain[i][j] {
				t.Fatalf("nondeterministic feature [%d][%d]", i, j)
			}
		}
	}
}

func TestNoTargetLeakage(t *testing.T) {
	// The target column's tokens must not exist anywhere in the
	// embedding vocabulary: PrepareClassification drops the column
	// before the pipeline sees it.
	spec := synth.Genes(synth.GenesOptions{Scale: 0.05, Seed: 9})
	sd, err := PrepareClassification(Task{
		DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 9,
	}, Config{Dim: 16, Seed: 9, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"nucleus", "cytoplasm", "membrane", "mitochondria"} {
		if sd.Result.Embedding.Has(label) {
			t.Errorf("target label %q leaked into the embedding", label)
		}
	}
}

func TestPrepareErrors(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 10, Seed: 5})
	if _, err := PrepareRegression(Task{DB: spec.DB, BaseTable: "nope", Target: "x"}, Config{}); err == nil {
		t.Error("unknown base accepted")
	}
	if _, err := PrepareRegression(Task{DB: spec.DB, BaseTable: "expenses", Target: "nope"}, Config{}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := PrepareRegression(Task{DB: spec.DB, BaseTable: "expenses", Target: "gender"}, Config{Dim: 4}); err == nil {
		t.Error("non-numeric regression target accepted")
	}
}
