package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/synth"
)

// buildSignature captures everything the staged-build invariant demands
// be bit-identical: the embedding vectors (via their exact TSV
// encoding), the graph (via its canonical binary encoding), the fitted
// textifier (via its canonical JSON), plus stats and decisions.
type buildSignature struct {
	embedding []byte
	graph     []byte
	textifier []byte
	statsJSON []byte
	method    embed.Method
	fellBack  bool
}

func signatureOf(t *testing.T, r *Result) buildSignature {
	t.Helper()
	var emb, g bytes.Buffer
	if err := r.Embedding.WriteTSV(&emb); err != nil {
		t.Fatal(err)
	}
	if err := r.Graph.WriteBinary(&g); err != nil {
		t.Fatal(err)
	}
	tx, err := json.Marshal(r.Textifier)
	if err != nil {
		t.Fatal(err)
	}
	st, err := json.Marshal(r.GraphStats)
	if err != nil {
		t.Fatal(err)
	}
	return buildSignature{
		embedding: emb.Bytes(),
		graph:     g.Bytes(),
		textifier: tx,
		statsJSON: st,
		method:    r.MethodUsed,
		fellBack:  r.UnweightedFallback,
	}
}

func assertSameSignature(t *testing.T, label string, a, b buildSignature) {
	t.Helper()
	if !bytes.Equal(a.embedding, b.embedding) {
		t.Errorf("%s: embedding bytes differ", label)
	}
	if !bytes.Equal(a.graph, b.graph) {
		t.Errorf("%s: graph bytes differ", label)
	}
	if !bytes.Equal(a.textifier, b.textifier) {
		t.Errorf("%s: textifier JSON differs", label)
	}
	if !bytes.Equal(a.statsJSON, b.statsJSON) {
		t.Errorf("%s: graph stats differ", label)
	}
	if a.method != b.method {
		t.Errorf("%s: method %s vs %s", label, a.method, b.method)
	}
	if a.fellBack != b.fellBack {
		t.Errorf("%s: fallback %v vs %v", label, a.fellBack, b.fellBack)
	}
}

// mutateOneTable returns a copy of db where a single cell of the named
// table changed — exactly one table fingerprint moves.
func mutateOneTable(t *testing.T, db *dataset.Database, name string) *dataset.Database {
	t.Helper()
	out := &dataset.Database{}
	mutated := false
	for _, tb := range db.Tables {
		if tb.Name != name {
			out.Tables = append(out.Tables, tb)
			continue
		}
		c := tb.Clone()
		col := c.Columns[len(c.Columns)-1]
		col.Values[0] = dataset.String("mutated_value_zz")
		out.Tables = append(out.Tables, c)
		mutated = true
	}
	if !mutated {
		t.Fatalf("table %q not in database", name)
	}
	return out
}

// TestCacheColdWarmPartialIdentical is the golden equivalence test of
// the staged pipeline: cold (empty cache), warm (full cache) and
// partially-invalidated builds must be bit-identical to a from-scratch
// no-cache build, for MF at several worker counts and for RW at
// Workers=1 (the worker count where Hogwild SGD is deterministic).
func TestCacheColdWarmPartialIdentical(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 50, Seed: 21})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"mf-w1", Config{Dim: 8, Seed: 21, Method: embed.MethodMF, Workers: 1}},
		{"mf-w3", Config{Dim: 8, Seed: 21, Method: embed.MethodMF, Workers: 3}},
		{"rw-w1", Config{Dim: 8, Seed: 21, Method: embed.MethodRW, Workers: 1,
			RW: embed.RWOptions{WalkLength: 8, WalksPerNode: 2, Epochs: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scratch, err := BuildEmbedding(spec.DB, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := signatureOf(t, scratch)

			cfg := tc.cfg
			cfg.CacheDir = t.TempDir()
			cold, err := BuildEmbedding(spec.DB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSignature(t, "cold", want, signatureOf(t, cold))
			cc := cold.Timings.Cache
			if !cc.Enabled || cc.Textify != StageRebuilt || cc.Graph != StageRebuilt || cc.Embed != StageRebuilt {
				t.Errorf("cold cache stats = %+v", cc)
			}
			if cc.TablesRebuilt != len(spec.DB.Tables) || cc.TablesReused != 0 {
				t.Errorf("cold tables reused/rebuilt = %d/%d", cc.TablesReused, cc.TablesRebuilt)
			}
			if cc.StoreErrors != 0 {
				t.Errorf("cold build had %d store errors", cc.StoreErrors)
			}

			warm, err := BuildEmbedding(spec.DB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSignature(t, "warm", want, signatureOf(t, warm))
			wc := warm.Timings.Cache
			if wc.Textify != StageCached || wc.Graph != StageCached || wc.Embed != StageCached {
				t.Errorf("warm cache stats = %+v", wc)
			}
			if wc.TablesReused != len(spec.DB.Tables) || wc.TablesRebuilt != 0 {
				t.Errorf("warm tables reused/rebuilt = %d/%d", wc.TablesReused, wc.TablesRebuilt)
			}

			// Partially invalidate: one changed table re-tokenizes alone,
			// downstream stages rebuild, and the result is bit-identical
			// to a from-scratch build of the mutated database.
			mutated := mutateOneTable(t, spec.DB, "price_info")
			mutScratch, err := BuildEmbedding(mutated, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			part, err := BuildEmbedding(mutated, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSignature(t, "partial", signatureOf(t, mutScratch), signatureOf(t, part))
			pc := part.Timings.Cache
			if pc.Textify != StagePartial || pc.Graph != StageRebuilt || pc.Embed != StageRebuilt {
				t.Errorf("partial cache stats = %+v", pc)
			}
			if pc.TablesReused != len(spec.DB.Tables)-1 || pc.TablesRebuilt != 1 {
				t.Errorf("partial tables reused/rebuilt = %d/%d", pc.TablesReused, pc.TablesRebuilt)
			}
		})
	}
}

// TestCacheRecordsFallbackDecision checks the unweighted-fallback
// decision is part of the cached graph artifact: a warm build reports
// the same decision the cold build made.
func TestCacheRecordsFallbackDecision(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 50, Seed: 6})
	cfg := Config{
		Dim: 8, Seed: 6, Method: embed.MethodRW, MemoryBudgetBytes: 1, Workers: 1,
		RW:       embed.RWOptions{WalkLength: 10, WalksPerNode: 2, Epochs: 1},
		CacheDir: t.TempDir(),
	}
	cold, err := BuildEmbedding(spec.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.UnweightedFallback || cold.Graph.Weighted {
		t.Fatal("tiny budget did not trigger the unweighted fallback")
	}
	warm, err := BuildEmbedding(spec.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Timings.Cache.Graph != StageCached {
		t.Errorf("graph stage not cached: %+v", warm.Timings.Cache)
	}
	if !warm.UnweightedFallback || warm.Graph.Weighted {
		t.Error("cached build lost the fallback decision")
	}
	assertSameSignature(t, "fallback warm", signatureOf(t, cold), signatureOf(t, warm))
}

// TestCacheCrashMidWriteIsAtWorstAMiss is the fault-injection golden
// test: a crash in the middle of any cache publication step must never
// corrupt a build — the crashing build itself still returns the correct
// result (store failures are best-effort), and the next build over the
// same cache directory sees at worst a miss, never a torn artifact.
func TestCacheCrashMidWriteIsAtWorstAMiss(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 31})
	cfg := Config{Dim: 8, Seed: 31, Method: embed.MethodMF, Workers: 1}
	scratch, err := BuildEmbedding(spec.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := signatureOf(t, scratch)

	cases := []struct {
		name string
		op   durable.Op
		n    int
	}{
		{"first payload write", durable.OpWrite, 1},
		{"late payload write", durable.OpWrite, 5},
		{"torn write", durable.OpWrite, 2}, // + ShortWrites below
		{"manifest/entry rename", durable.OpRename, 1},
		{"second entry rename", durable.OpRename, 3},
		{"fsync", durable.OpSync, 1},
		{"mkdir", durable.OpMkdir, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := durable.NewFaultFS(durable.OS())
			ffs.CrashAt(tc.op, tc.n)
			if tc.name == "torn write" {
				ffs.ShortWrites()
			}

			crashed, err := buildWithCache(spec.DB, cfg, newCacheFS(dir, ffs))
			if err != nil {
				t.Fatalf("build failed because its cache crashed: %v", err)
			}
			assertSameSignature(t, "crashing build", want, signatureOf(t, crashed))
			if ffs.Fired() && crashed.Timings.Cache.StoreErrors == 0 {
				t.Error("crash fired but no store error was reported")
			}

			// The next build over the same directory (healthy FS) must
			// load only sealed entries: whatever survived verifies, the
			// rest is a plain miss, and the result is bit-identical.
			cfgWarm := cfg
			cfgWarm.CacheDir = dir
			after, err := BuildEmbedding(spec.DB, cfgWarm)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSignature(t, "build after crash", want, signatureOf(t, after))
			if after.Timings.Cache.StoreErrors != 0 {
				t.Errorf("healthy rebuild reported %d store errors", after.Timings.Cache.StoreErrors)
			}

			// And once repaired, a further build is fully warm.
			final, err := BuildEmbedding(spec.DB, cfgWarm)
			if err != nil {
				t.Fatal(err)
			}
			fc := final.Timings.Cache
			if fc.Textify != StageCached || fc.Graph != StageCached || fc.Embed != StageCached {
				t.Errorf("cache did not repair after crash: %+v", fc)
			}
			assertSameSignature(t, "repaired warm build", want, signatureOf(t, final))
		})
	}
}

// TestFeaturizeTimingAccrues checks deployment time lands in
// Timings.Featurize and Total.
func TestFeaturizeTimingAccrues(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 3})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 8, Seed: 3, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	buildOnly := res.Timings.Total()
	base := spec.DB.Table("expenses")
	if _, err := res.Featurize(base, "expenses", nil, func(i int) int { return i }); err != nil {
		t.Fatal(err)
	}
	if res.Timings.Featurize <= 0 {
		t.Error("featurize duration not recorded")
	}
	if res.Timings.Total() <= buildOnly {
		t.Error("Total does not include featurize time")
	}
}
