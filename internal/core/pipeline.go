// Package core wires Leva's stages into the end-to-end pipeline of
// paper Fig. 2: textification, graph construction and refinement,
// embedding construction (with the memory-based MF/RW auto-selection),
// and embedding deployment, with per-stage timings for the performance
// profile experiments.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/textify"
)

// FeaturizationMode selects how base-table rows are featurized from the
// embedding (paper Section 4.4).
type FeaturizationMode uint8

const (
	// RowPlusValue concatenates the row-node embedding with the mean
	// of the row's value-node embeddings; the paper's default.
	RowPlusValue FeaturizationMode = iota
	// RowOnly uses the row-node embedding alone.
	RowOnly
)

func (m FeaturizationMode) String() string {
	if m == RowOnly {
		return "row"
	}
	return "row+value"
}

// Config collects the user-tunable parameters of Table 2.
type Config struct {
	// Textify configures binning and column typing.
	Textify textify.Options
	// Graph configures construction and refinement (theta_range,
	// theta_min, weighting).
	Graph graph.Options
	// Method picks the embedding algorithm; MethodAuto applies the
	// paper's memory rule.
	Method embed.Method
	// Dim is the embedding size. Default 100.
	Dim int
	// MemoryBudgetBytes bounds MF's estimated working set under
	// MethodAuto; <= 0 means unlimited.
	MemoryBudgetBytes int64
	// MF and RW tune the two first-party methods. Dim and Seed fields
	// inside them are overridden by the top-level values.
	MF embed.MFOptions
	RW embed.RWOptions
	// GloVe tunes the optional GloVe plug-in method (never
	// auto-selected).
	GloVe embed.GloVeOptions
	// Featurization selects Row or Row+Value deployment.
	Featurization FeaturizationMode
	// UnseenFallbackDims, when positive, appends that many feature
	// slots into which tokens absent from the embedding are hashed
	// one-hot — the paper's "replaced with one hot encoding" handling
	// for unseen test-time data. Numeric values rarely need it (they
	// quantize through the fitted histograms into seen bin tokens);
	// it matters for novel categorical strings. 0 disables.
	UnseenFallbackDims int
	// Seed drives all randomized stages.
	Seed int64
	// CacheDir, when non-empty, enables the content-addressed stage
	// cache rooted there (conventionally ".leva-cache"): each stage's
	// artifact is persisted under its fingerprint, and rebuilds load
	// matching artifacts instead of recomputing. Cached builds are
	// bit-identical to from-scratch builds wherever the stage itself is
	// deterministic (see Workers). Cache write failures never fail a
	// build; they are counted in Timings.Cache.StoreErrors.
	CacheDir string
	// Obs, when non-nil, receives the build's observability output:
	// stage spans go to its Trace, and the pipeline's metric families
	// (leva_builds_total, leva_build_stage_duration_seconds, cache
	// counters — see docs/OBSERVABILITY.md) accrue into its Registry.
	// Nil disables instrumentation entirely; timings in Result.Timings
	// are recorded either way, from the same clock readings the
	// histograms see. Never serialized (bundles, fingerprints).
	Obs *obs.Scope `json:"-"`
	// Workers caps the parallelism of every pipeline hot path:
	// textification, graph construction, the MF matmuls, RW walk
	// generation and SGNS training, and featurization. 0 means
	// GOMAXPROCS; 1 reproduces the sequential pipeline exactly. The
	// textify, graph and MF stages are bit-identical at every worker
	// count; RW training (Hogwild SGD) is reproducible only at
	// Workers=1 and statistically equivalent otherwise. Stage-level
	// knobs (Graph.Workers, MF.Workers, RW.Workers, GloVe.Workers)
	// override this when set.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 100
	}
	if c.Method == "" {
		c.Method = embed.MethodAuto
	}
	// Thread the pipeline-wide worker count into every stage knob that
	// was not set explicitly.
	if c.Graph.Workers == 0 {
		c.Graph.Workers = c.Workers
	}
	if c.MF.Workers == 0 {
		c.MF.Workers = c.Workers
	}
	if c.RW.Workers == 0 {
		c.RW.Workers = c.Workers
	}
	if c.GloVe.Workers == 0 {
		c.GloVe.Workers = c.Workers
	}
	return c
}

// StageOutcome describes how a pipeline stage was satisfied on one
// build.
type StageOutcome string

const (
	// StageRebuilt means the stage recomputed its output from scratch.
	StageRebuilt StageOutcome = "rebuilt"
	// StagePartial means the stage reused some cached work and
	// recomputed the rest (textify with a subset of changed tables).
	StagePartial StageOutcome = "partial"
	// StageCached means the stage's entire output was loaded from the
	// cache.
	StageCached StageOutcome = "cached"
)

// CacheStats reports per-stage cache behaviour of one build.
type CacheStats struct {
	// Enabled records whether a cache was attached (Config.CacheDir).
	// Without one, every outcome below is StageRebuilt.
	Enabled bool `json:"enabled"`
	// Textify, Graph and Embed are the per-stage outcomes.
	Textify StageOutcome `json:"textify,omitempty"`
	Graph   StageOutcome `json:"graph,omitempty"`
	Embed   StageOutcome `json:"embed,omitempty"`
	// TablesReused/TablesRebuilt split the textify stage's per-table
	// granularity: reused tables loaded their tokenization from cache.
	TablesReused  int `json:"tablesReused,omitempty"`
	TablesRebuilt int `json:"tablesRebuilt,omitempty"`
	// StoreErrors counts failed best-effort cache writes (full disk,
	// permissions). The build itself still succeeded.
	StoreErrors int `json:"storeErrors,omitempty"`
}

// Timings records wall-clock per pipeline stage (Fig. 6b/6c) plus how
// the stage cache behaved.
type Timings struct {
	Textify    time.Duration
	GraphBuild time.Duration
	Embed      time.Duration
	// Featurize accumulates deployment time across every Featurize /
	// FeaturizeWithMode call on the Result, completing the end-to-end
	// profile of Fig. 6 (FeaturizeRow, the online serving path, is
	// intentionally not instrumented).
	Featurize time.Duration
	// Cache reports how each stage was satisfied on this build.
	Cache CacheStats
}

// Total returns the summed stage time, including deployment
// (featurization) time accrued so far.
func (t Timings) Total() time.Duration {
	return t.Textify + t.GraphBuild + t.Embed + t.Featurize
}

// Result is a built relational embedding plus everything needed to
// deploy it.
type Result struct {
	Embedding  *embed.Embedding
	Graph      *graph.Graph
	GraphStats graph.Stats
	Textifier  *textify.Model
	MethodUsed embed.Method
	// UnweightedFallback records that the weighted graph's estimated
	// alias-table memory exceeded MemoryBudgetBytes, so the build fell
	// back to the unweighted graph (paper Section 3.2).
	UnweightedFallback bool
	Timings            Timings
	Config             Config
	// BundleFormat is the on-disk format version this Result was loaded
	// from (0 for Results built in-process rather than loaded).
	BundleFormat int
	// Quant is the optional int8 quantization of the embedding arena:
	// populated by `leva embed -quantize` before saving, or restored
	// from a version-5 bundle's quant section. Featurization never
	// touches it — it exists for the ANN serving path.
	Quant *embed.QuantizedMatrix

	// mapped is the whole-file mmap behind this Result's views when it
	// was loaded with LoadOptions.MMap; nil otherwise. Owned by Unmap.
	mapped []byte
	// unmapOnce makes Unmap idempotent.
	unmapOnce sync.Once

	// mu guards Timings.Featurize accrual from concurrent
	// FeaturizeWithMode calls.
	mu sync.Mutex
}

// Mapped reports whether this Result's symbol and vector views point
// into a live file mapping (see LoadOptions.MMap) — in which case the
// holder must call Unmap once nothing can touch them again.
func (r *Result) Mapped() bool { return r.mapped != nil }

// Unmap releases the file mapping behind a Result loaded with
// LoadOptions.MMap. Every view into the Result — embedding vectors,
// symbol strings, the quantized arena — is invalid afterward, so this
// must be the very last call; serving ties it to the bundle
// generation's refcount draining. Unmap is idempotent and a no-op for
// Results that were read rather than mapped.
func (r *Result) Unmap() error {
	var err error
	r.unmapOnce.Do(func() {
		if r.mapped != nil {
			err = durable.Unmap(r.mapped)
		}
	})
	return err
}

// BuildEmbedding runs textification, graph construction/refinement and
// embedding construction over the database, as a driver over the
// TextifyStage → GraphStage → EmbedStage DAG (see stages.go). With
// Config.CacheDir set, stages whose fingerprints match sealed cache
// entries load their artifacts instead of recomputing; the result is
// bit-identical either way wherever the stage is deterministic. The
// caller is responsible for excluding test rows and the target column
// beforehand (paper Section 2.4: test data is not part of Leva's
// input).
func BuildEmbedding(db *dataset.Database, cfg Config) (*Result, error) {
	var cache *Cache
	if cfg.CacheDir != "" {
		cache = NewCache(cfg.CacheDir)
	}
	return buildWithCache(db, cfg, cache)
}

// buildWithCache is BuildEmbedding with an explicit (possibly nil)
// cache — the seam fault-injection tests use to run builds against a
// crashing cache filesystem.
func buildWithCache(db *dataset.Database, cfg Config, cache *Cache) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid database: %w", err)
	}
	bo := newBuildObs(cfg.Obs)
	if cache != nil {
		cache.observeInto(bo)
	}
	res := &Result{Config: cfg}
	res.Timings.Cache.Enabled = cache != nil

	sp := bo.span("build.textify")
	ts := &TextifyStage{DB: db, Opts: cfg.Textify, Workers: cfg.Workers, Cache: cache}
	model, tokenized, reused, rebuilt, err := ts.Run()
	if err != nil {
		return nil, fmt.Errorf("core: textify: %w", err)
	}
	res.Textifier = model
	res.Timings.Cache.Textify = tableOutcome(reused, rebuilt)
	sp.SetOutcome(string(res.Timings.Cache.Textify))
	res.Timings.Textify = bo.endStage(sp, "textify")
	res.Timings.Cache.TablesReused = reused
	res.Timings.Cache.TablesRebuilt = rebuilt
	bo.countTables(reused, rebuilt)

	sp = bo.span("build.graph")
	gs := &GraphStage{
		Tokenized:         tokenized,
		Opts:              cfg.Graph,
		Method:            cfg.Method,
		Dim:               cfg.Dim,
		MemoryBudgetBytes: cfg.MemoryBudgetBytes,
		WalkLength:        cfg.RW.WalkLength,
		WalksPerNode:      cfg.RW.WalksPerNode,
		Cache:             cache,
	}
	if cache != nil {
		gs.InputFP = ts.Fingerprint()
	}
	g, stats, fellBack, graphCached, err := gs.Run()
	if err != nil {
		return nil, fmt.Errorf("core: graph: %w", err)
	}
	res.Graph = g
	res.GraphStats = stats
	res.UnweightedFallback = fellBack
	res.Timings.Cache.Graph = hitOutcome(graphCached)
	sp.SetOutcome(string(res.Timings.Cache.Graph))
	res.Timings.GraphBuild = bo.endStage(sp, "graph")
	if cache != nil {
		bo.countLookup(stageGraph, graphCached)
	}

	sp = bo.span("build.embed")
	es := &EmbedStage{Graph: g, Cfg: cfg, Cache: cache}
	if cache != nil {
		es.InputFP = gs.Fingerprint()
	}
	emb, method, embedCached, err := es.Run()
	if err != nil {
		return nil, err
	}
	res.Embedding = emb
	res.MethodUsed = method
	res.Timings.Cache.Embed = hitOutcome(embedCached)
	sp.SetOutcome(string(res.Timings.Cache.Embed))
	res.Timings.Embed = bo.endStage(sp, "embed")
	if cache != nil {
		bo.countLookup(stageEmbed, embedCached)
		// The registry counter is the single source for store-error
		// accounting; the per-build report is its delta since build
		// start (Cache increments the same counter it reports through).
		res.Timings.Cache.StoreErrors = cache.StoreErrors() - cache.storeErrBase
	}
	bo.done()
	return res, nil
}

func tableOutcome(reused, rebuilt int) StageOutcome {
	switch {
	case reused > 0 && rebuilt == 0:
		return StageCached
	case reused > 0:
		return StagePartial
	default:
		return StageRebuilt
	}
}

func hitOutcome(cached bool) StageOutcome {
	if cached {
		return StageCached
	}
	return StageRebuilt
}

// WithEmbedding returns a copy of r that deploys a different embedding
// — e.g. a dimension-reduced projection — while sharing the graph,
// stats and textifier. Accrued featurization time starts at zero on the
// copy.
func (r *Result) WithEmbedding(e *embed.Embedding) *Result {
	return &Result{
		Embedding:          e,
		Graph:              r.Graph,
		GraphStats:         r.GraphStats,
		Textifier:          r.Textifier,
		MethodUsed:         r.MethodUsed,
		UnweightedFallback: r.UnweightedFallback,
		Timings:            r.Timings,
		Config:             r.Config,
	}
}

// Featurize converts base-table rows into feature vectors using the
// built embedding (paper Section 4.4).
//
// tableName must be the table's name at embedding time. graphRow maps a
// row index of t to the row index used when the graph was built, or -1
// for rows that were not embedded (test rows): those are composed from
// the value-node embeddings of their tokens, with unseen tokens
// quantized through the fitted histograms and tokens absent from the
// embedding contributing nothing. exclude lists columns (such as the
// target) that must not leak into features.
func (r *Result) Featurize(t *dataset.Table, tableName string, exclude []string, graphRow func(i int) int) ([][]float64, error) {
	return r.FeaturizeWithMode(t, tableName, exclude, graphRow, r.Config.Featurization)
}

// FeaturizeWithMode is Featurize with an explicit featurization mode,
// letting deployment-strategy ablations reuse one built embedding.
//
// Rows featurize independently against the read-only embedding and
// tokenizer, so the work fans out in row chunks across Config.Workers
// goroutines (0 = GOMAXPROCS); each row writes only its own output
// vector, making the features bit-identical at every worker count.
// graphRow must therefore be safe for concurrent calls — pure index
// arithmetic, the common case, always is.
func (r *Result) FeaturizeWithMode(t *dataset.Table, tableName string, exclude []string, graphRow func(i int) int, mode FeaturizationMode) ([][]float64, error) {
	// One span is the single timer: its wall time feeds the accrued
	// Timings.Featurize AND the stage-duration histogram, so the CLI
	// report and a metrics scrape can never disagree. Bundle-loaded
	// Results have a nil scope and degrade to plain accrual.
	sp := r.Config.Obs.Span("build.featurize")
	defer func() {
		d := sp.End()
		r.mu.Lock()
		r.Timings.Featurize += d
		r.mu.Unlock()
		observeFeaturize(r.Config.Obs, d, t.NumRows())
	}()
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	out := make([][]float64, t.NumRows())
	for i := range out {
		out[i] = make([]float64, r.FeatureWidth(mode))
	}
	err := parallel.ForError(t.NumRows(), r.Config.Workers, func(_ int, pr parallel.Range) error {
		for i := pr.Lo; i < pr.Hi; i++ {
			if err := r.featurizeRowInto(out[i], t, tableName, i, skip, graphRow(i), mode); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FeatureWidth returns the length of the feature vectors Featurize
// produces under mode, including the unseen-token fallback slots.
func (r *Result) FeatureWidth(mode FeaturizationMode) int {
	width := r.Embedding.Dim
	if mode == RowPlusValue {
		width *= 2
	}
	return width + r.Config.UnseenFallbackDims
}

// FeaturizeRow featurizes row i of t into a freshly allocated vector of
// FeatureWidth(mode) entries — the online serving path (internal/serve),
// which receives rows one at a time instead of as a table scan. The
// output is bit-identical to row i of FeaturizeWithMode over the same
// table. graphRow is the row's index at embedding time, or -1 for rows
// that were never embedded (composed purely from value-node vectors).
func (r *Result) FeaturizeRow(t *dataset.Table, tableName string, exclude []string, i, graphRow int, mode FeaturizationMode) ([]float64, error) {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	out := make([]float64, r.FeatureWidth(mode))
	if err := r.featurizeRowInto(out, t, tableName, i, skip, graphRow, mode); err != nil {
		return nil, err
	}
	return out, nil
}

// featurizeRowInto is the shared one-row kernel behind FeaturizeWithMode
// and FeaturizeRow. dst must have FeatureWidth(mode) entries and is
// written in full except for fallback slots left at zero.
func (r *Result) featurizeRowInto(dst []float64, t *dataset.Table, tableName string, i int, skip map[string]bool, graphRow int, mode FeaturizationMode) error {
	dim := r.Embedding.Dim
	width := dim
	if mode == RowPlusValue {
		width = 2 * dim
	}
	tokens, err := r.rowTokens(t, tableName, i, skip)
	if err != nil {
		return err
	}
	valueVec, _ := r.Embedding.MeanVector(tokens)

	rowVec := valueVec
	if graphRow >= 0 {
		if v, ok := r.Embedding.Vector(embed.RowKey(tableName, graphRow)); ok {
			rowVec = v
		}
	}
	copy(dst[:dim], rowVec)
	if mode == RowPlusValue {
		copy(dst[dim:width], valueVec)
	}
	if fallback := r.Config.UnseenFallbackDims; fallback > 0 {
		for _, tok := range tokens {
			if !r.Embedding.Has(tok) {
				dst[width+hashToken(tok)%fallback] = 1
			}
		}
	}
	return nil
}

// hashToken maps a token to a non-negative bucket for the one-hot
// fallback slots.
func hashToken(tok string) int {
	h := uint32(2166136261)
	for i := 0; i < len(tok); i++ {
		h = (h ^ uint32(tok[i])) * 16777619
	}
	return int(h & 0x7fffffff)
}

// rowTokens textifies row i of t under the fitted model, skipping the
// excluded columns.
func (r *Result) rowTokens(t *dataset.Table, tableName string, i int, skip map[string]bool) ([]string, error) {
	var tokens []string
	for _, c := range t.Columns {
		if skip[c.Name] {
			continue
		}
		toks, err := r.Textifier.TextifyValue(tableName, c.Name, c.Values[i])
		if err != nil {
			return nil, fmt.Errorf("core: featurize: %w", err)
		}
		tokens = append(tokens, toks...)
	}
	return tokens, nil
}
