package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ml"
)

// Task describes a supervised problem over a database: a base table
// holding the target column, with auxiliary tables that may or may not
// contain predictive signal.
type Task struct {
	DB        *dataset.Database
	BaseTable string
	Target    string
	// TestFraction of base rows held out. Default 0.2.
	TestFraction float64
	// Seed drives the split.
	Seed int64
}

func (t Task) testFraction() float64 {
	if t.TestFraction <= 0 || t.TestFraction >= 1 {
		return 0.2
	}
	return t.TestFraction
}

// SupervisedData is a featurized train/test split ready for a
// downstream model, plus the embedding build that produced it.
type SupervisedData struct {
	XTrain, XTest [][]float64
	// Classification targets (nil for regression).
	YClassTrain, YClassTest []int
	NumClasses              int
	// Regression targets (nil for classification).
	YRegTrain, YRegTest []float64

	Split  ml.Split
	Result *Result
}

// PrepareClassification builds the embedding on the training portion of
// the task (test rows and the target column are excluded from Leva's
// input, per Section 2.4) and featurizes both splits.
func PrepareClassification(task Task, cfg Config) (*SupervisedData, error) {
	sd, base, err := prepare(task, cfg)
	if err != nil {
		return nil, err
	}
	col := base.Column(task.Target)
	enc := ml.FitLabels(col)
	all, err := enc.Encode(col.Values)
	if err != nil {
		return nil, fmt.Errorf("core: encode labels: %w", err)
	}
	sd.YClassTrain = ml.SelectLabels(all, sd.Split.Train)
	sd.YClassTest = ml.SelectLabels(all, sd.Split.Test)
	sd.NumClasses = enc.NumClasses()
	return sd, nil
}

// PrepareRegression is PrepareClassification for float targets.
func PrepareRegression(task Task, cfg Config) (*SupervisedData, error) {
	sd, base, err := prepare(task, cfg)
	if err != nil {
		return nil, err
	}
	col := base.Column(task.Target)
	all := make([]float64, col.Len())
	for i, v := range col.Values {
		f, ok := v.Float()
		if !ok {
			return nil, fmt.Errorf("core: non-numeric regression target at row %d: %v", i, v)
		}
		all[i] = f
	}
	sd.YRegTrain = ml.SelectFloats(all, sd.Split.Train)
	sd.YRegTest = ml.SelectFloats(all, sd.Split.Test)
	return sd, nil
}

// prepare does the shared work: split, embed on train-only data,
// featurize both splits.
func prepare(task Task, cfg Config) (*SupervisedData, *dataset.Table, error) {
	base := task.DB.Table(task.BaseTable)
	if base == nil {
		return nil, nil, fmt.Errorf("core: no base table %q", task.BaseTable)
	}
	if base.Column(task.Target) == nil {
		return nil, nil, fmt.Errorf("core: base table %q has no target column %q", task.BaseTable, task.Target)
	}
	split := ml.TrainTestSplit(base.NumRows(), task.testFraction(), task.Seed)

	// Leva's input: all auxiliary tables plus the training rows of the
	// base table, with the target column removed so labels cannot leak
	// into the embedding.
	trainBase := base.SelectRows(split.Train).DropColumns(task.Target)
	embDB := task.DB.Without(task.BaseTable)
	embDB.Add(trainBase)

	res, err := BuildEmbedding(embDB, cfg)
	if err != nil {
		return nil, nil, err
	}

	xTrain, err := res.Featurize(trainBase, task.BaseTable, nil, func(i int) int { return i })
	if err != nil {
		return nil, nil, err
	}
	testBase := base.SelectRows(split.Test)
	xTest, err := res.Featurize(testBase, task.BaseTable, []string{task.Target}, func(i int) int { return -1 })
	if err != nil {
		return nil, nil, err
	}
	return &SupervisedData{XTrain: xTrain, XTest: xTest, Split: split, Result: res}, base, nil
}
