package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ann"
	"repro/internal/durable"
)

func TestANNStageCacheRoundTrip(t *testing.T) {
	res, _ := faultFixture(t)
	cache := NewCache(t.TempDir())

	stage := &ANNStage{Embedding: res.Embedding, Opts: ann.Options{Seed: 5}, Cache: cache}
	ix1, cached, err := stage.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cold cache reported a hit")
	}
	ix2, cached, err := (&ANNStage{Embedding: res.Embedding, Opts: ann.Options{Seed: 5}, Cache: cache}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("warm cache reported a miss")
	}
	if !bytes.Equal(ix1.Encode(), ix2.Encode()) {
		t.Fatal("cached index differs from the built one")
	}

	// Different options are a different artifact.
	_, cached, err = (&ANNStage{Embedding: res.Embedding, Opts: ann.Options{Seed: 6}, Cache: cache}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("changed options hit the old cache entry")
	}
}

// TestANNStageCorruptEntryIsAMiss: a flipped byte in a published cache
// entry must be rebuilt over, never served.
func TestANNStageCorruptEntryIsAMiss(t *testing.T) {
	res, _ := faultFixture(t)
	dir := t.TempDir()
	cache := NewCache(dir)
	stage := &ANNStage{Embedding: res.Embedding, Opts: ann.Options{Seed: 5}, Cache: cache}
	want, _, err := stage.Run()
	if err != nil {
		t.Fatal(err)
	}
	entry := filepath.Join(dir, stageANN, stage.Fingerprint(), ann.IndexFileName)
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(entry, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, cached, err := stage.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("corrupt entry served as a hit")
	}
	if !bytes.Equal(got.Encode(), want.Encode()) {
		t.Fatal("rebuild after corruption produced a different index")
	}
	// The rebuild re-published a clean entry.
	if _, err := durable.VerifyDir(filepath.Join(dir, stageANN, stage.Fingerprint())); err != nil {
		t.Fatalf("entry not re-published cleanly: %v", err)
	}
}

// TestANNStageWithoutCache builds directly.
func TestANNStageWithoutCache(t *testing.T) {
	res, _ := faultFixture(t)
	ix, cached, err := (&ANNStage{Embedding: res.Embedding}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if cached || ix == nil || ix.Len() != res.Embedding.Len() {
		t.Fatalf("cacheless run: cached=%v ix=%v", cached, ix)
	}
}
