package core

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/synth"
)

// TestPipelineWorkersDeterministicMF verifies the acceptance contract
// of the parallel pipeline: with the MF method the features coming out
// of the end-to-end run are bit-identical at every worker count
// (Workers=1 being exactly the historical sequential path).
func TestPipelineWorkersDeterministicMF(t *testing.T) {
	spec := synth.Genes(synth.GenesOptions{Scale: 0.05, Seed: 8})
	task := Task{DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target, Seed: 8}

	run := func(workers int) *SupervisedData {
		t.Helper()
		d, err := PrepareClassification(task, Config{Dim: 16, Seed: 8, Method: embed.MethodMF, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ref := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		if len(got.XTrain) != len(ref.XTrain) || len(got.XTest) != len(ref.XTest) {
			t.Fatalf("workers=%d: split sizes differ", w)
		}
		for i := range ref.XTrain {
			for j := range ref.XTrain[i] {
				if ref.XTrain[i][j] != got.XTrain[i][j] {
					t.Fatalf("workers=%d: XTrain[%d][%d] = %v vs %v", w, i, j, got.XTrain[i][j], ref.XTrain[i][j])
				}
			}
		}
		for i := range ref.XTest {
			for j := range ref.XTest[i] {
				if ref.XTest[i][j] != got.XTest[i][j] {
					t.Fatalf("workers=%d: XTest[%d][%d] = %v vs %v", w, i, j, got.XTest[i][j], ref.XTest[i][j])
				}
			}
		}
	}
}

// TestPipelineWorkersRWShapes runs the RW path with the pipeline-wide
// worker knob; Hogwild training is only statistically reproducible
// across worker counts, so this asserts shape and usability, not bits.
func TestPipelineWorkersRWShapes(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 3})
	cfg := Config{
		Dim: 8, Seed: 3, Method: embed.MethodRW, Workers: 4,
		RW: embed.RWOptions{WalkLength: 10, WalksPerNode: 2, Epochs: 1},
	}
	res, err := BuildEmbedding(spec.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MethodUsed != embed.MethodRW {
		t.Fatalf("method = %s", res.MethodUsed)
	}
	bt := spec.DB.Table(spec.BaseTable)
	x, err := res.Featurize(bt, spec.BaseTable, []string{spec.Target}, func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != bt.NumRows() || len(x[0]) != 2*cfg.Dim {
		t.Fatalf("features %dx%d, want %dx%d", len(x), len(x[0]), bt.NumRows(), 2*cfg.Dim)
	}
}

// TestConfigWorkersPropagates checks the pipeline-wide knob lands in
// every stage-level option unless that stage set its own.
func TestConfigWorkersPropagates(t *testing.T) {
	c := Config{Workers: 3}.withDefaults()
	if c.Graph.Workers != 3 || c.MF.Workers != 3 || c.RW.Workers != 3 || c.GloVe.Workers != 3 {
		t.Fatalf("workers not propagated: %+v", c)
	}
	c = Config{Workers: 3, MF: embed.MFOptions{Workers: 2}}.withDefaults()
	if c.MF.Workers != 2 {
		t.Fatalf("stage override lost: %d", c.MF.Workers)
	}
}
