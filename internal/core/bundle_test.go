package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/synth"
)

func TestBundleRoundTrip(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 11})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 11, Method: embed.MethodMF, UnseenFallbackDims: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Embedding.Len() != res.Embedding.Len() || back.Embedding.Dim != 8 {
		t.Fatalf("embedding shape changed: %d/%d", back.Embedding.Len(), back.Embedding.Dim)
	}
	if back.Config.UnseenFallbackDims != 3 {
		t.Errorf("fallback dims = %d", back.Config.UnseenFallbackDims)
	}

	// Featurization must be byte-identical before and after the round
	// trip, for train-style and test-style rows alike (the TSV float
	// encoding is exact, so equality is ==, not a tolerance).
	base := spec.DB.Table("expenses")
	for _, graphRow := range []func(int) int{
		func(i int) int { return i },
		func(int) int { return -1 },
	} {
		want, err := res.Featurize(base, "expenses", []string{"total_expenses"}, graphRow)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Featurize(base, "expenses", []string{"total_expenses"}, graphRow)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("feature [%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestLoadBundleErrors(t *testing.T) {
	if _, err := LoadBundle(t.TempDir()); err == nil {
		t.Error("empty dir loaded")
	}
}

// savedBundle builds a minimal deployment and saves it to a fresh dir.
func savedBundle(t *testing.T) string {
	t.Helper()
	spec := synth.Student(synth.StudentOptions{Students: 20, Seed: 3})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 4, Seed: 3, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestBundleFormatVersion(t *testing.T) {
	dir := savedBundle(t)
	cfgPath := filepath.Join(dir, bundleConfigFile)
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"formatVersion": 3`) {
		t.Fatalf("config.json does not record formatVersion 3:\n%s", data)
	}

	// Hand-editing a payload file invalidates the manifest, so these
	// scenarios model legacy (pre-manifest) bundles: drop MANIFEST.json
	// and let the config.json version check do its own work.
	if err := os.Remove(filepath.Join(dir, durable.ManifestName)); err != nil {
		t.Fatal(err)
	}

	// A bundle from a future build must be rejected, not mis-decoded.
	future := strings.Replace(string(data), `"formatVersion": 3`, `"formatVersion": 99`, 1)
	if err := os.WriteFile(cfgPath, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBundle(dir)
	if err == nil {
		t.Fatal("future-version bundle loaded")
	}
	if !strings.Contains(err.Error(), "format version 99") || !strings.Contains(err.Error(), cfgPath) {
		t.Errorf("version error should name the version and file: %v", err)
	}

	// Legacy pre-versioned bundles (no formatVersion field) still load,
	// and the warning hook reports the missing manifest.
	legacy := strings.Replace(string(data), `"formatVersion": 3,`, ``, 1)
	if err := os.WriteFile(cfgPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []string
	if _, err := LoadBundleWarn(dir, func(msg string) { warnings = append(warnings, msg) }); err != nil {
		t.Errorf("legacy bundle without formatVersion rejected: %v", err)
	}
	if len(warnings) == 0 || !strings.Contains(warnings[0], durable.ManifestName) {
		t.Errorf("legacy bundle load did not warn about the missing manifest: %v", warnings)
	}
}

// TestFutureManifestVersionRejected covers the manifest-level version
// gate: a bundle whose MANIFEST.json claims a newer format is rejected
// before any payload decoding.
func TestFutureManifestVersionRejected(t *testing.T) {
	dir := savedBundle(t)
	manPath := filepath.Join(dir, durable.ManifestName)
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	future := strings.Replace(string(data), `"formatVersion": 3`, `"formatVersion": 99`, 1)
	if future == string(data) {
		t.Fatalf("manifest does not record formatVersion 3:\n%s", data)
	}
	if err := os.WriteFile(manPath, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBundle(dir)
	if err == nil || !strings.Contains(err.Error(), "format version 99") {
		t.Errorf("future manifest version not rejected by name: %v", err)
	}
}

func TestLoadBundleErrorsNamePath(t *testing.T) {
	for _, corrupt := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
		t.Run(corrupt, func(t *testing.T) {
			dir := savedBundle(t)
			path := filepath.Join(dir, corrupt)
			if err := os.WriteFile(path, []byte("{{{ not valid"), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadBundle(dir)
			if err == nil {
				t.Fatalf("bundle with corrupt %s loaded", corrupt)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name the corrupt file %s: %v", path, err)
			}
		})
	}
	t.Run("missing-file", func(t *testing.T) {
		dir := savedBundle(t)
		path := filepath.Join(dir, bundleEmbeddingFile)
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		_, err := LoadBundle(dir)
		if err == nil {
			t.Fatal("bundle with missing embedding loaded")
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("error does not name the missing file %s: %v", path, err)
		}
	})
}

// TestBundleCarriesBuildProvenance checks version-3 bundles preserve
// the stage-cache outcomes and the unweighted-fallback decision of the
// build that produced them.
func TestBundleCarriesBuildProvenance(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 20, Seed: 3})
	cfg := Config{Dim: 4, Seed: 3, Method: embed.MethodMF, CacheDir: t.TempDir()}
	if _, err := BuildEmbedding(spec.DB, cfg); err != nil {
		t.Fatal(err)
	}
	warm, err := BuildEmbedding(spec.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := warm.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Timings.Cache != warm.Timings.Cache {
		t.Errorf("stage cache provenance lost: saved %+v, loaded %+v",
			warm.Timings.Cache, back.Timings.Cache)
	}
	if back.Timings.Cache.Embed != StageCached {
		t.Errorf("warm build provenance not recorded: %+v", back.Timings.Cache)
	}
	if back.UnweightedFallback != warm.UnweightedFallback {
		t.Error("fallback decision lost")
	}
}
