package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/synth"
)

func TestBundleRoundTrip(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 11})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 11, Method: embed.MethodMF, UnseenFallbackDims: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Embedding.Len() != res.Embedding.Len() || back.Embedding.Dim != 8 {
		t.Fatalf("embedding shape changed: %d/%d", back.Embedding.Len(), back.Embedding.Dim)
	}
	if back.Config.UnseenFallbackDims != 3 {
		t.Errorf("fallback dims = %d", back.Config.UnseenFallbackDims)
	}
	if back.BundleFormat != BundleFormatVersion {
		t.Errorf("loaded BundleFormat = %d, want %d", back.BundleFormat, BundleFormatVersion)
	}

	// Featurization must be byte-identical before and after the round
	// trip, for train-style and test-style rows alike (the binary
	// format stores raw float64 bits, so equality is ==, not a
	// tolerance).
	base := spec.DB.Table("expenses")
	for _, graphRow := range []func(int) int{
		func(i int) int { return i },
		func(int) int { return -1 },
	} {
		want, err := res.Featurize(base, "expenses", []string{"total_expenses"}, graphRow)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Featurize(base, "expenses", []string{"total_expenses"}, graphRow)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("feature [%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestBundleGoldenLegacyVsBinary is the migration golden test: the same
// Result saved in the legacy JSON format and in the binary format must
// featurize byte-identically after loading — every served feature
// vector is unchanged by the format migration.
func TestBundleGoldenLegacyVsBinary(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 30, Seed: 7})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 6, Seed: 7, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	v4Dir, v3Dir := t.TempDir(), t.TempDir()
	if err := res.SaveBundle(v4Dir); err != nil {
		t.Fatal(err)
	}
	if err := res.SaveBundleLegacy(v3Dir); err != nil {
		t.Fatal(err)
	}
	var warned []string
	fromV4, err := LoadBundle(v4Dir)
	if err != nil {
		t.Fatal(err)
	}
	fromV3, err := LoadBundleWarn(v3Dir, func(msg string) { warned = append(warned, msg) })
	if err != nil {
		t.Fatal(err)
	}
	if len(warned) == 0 || !strings.Contains(warned[0], "legacy") {
		t.Errorf("legacy bundle loaded without a legacy warning: %v", warned)
	}
	if fromV3.BundleFormat != legacyBundleFormatVersion || fromV4.BundleFormat != BundleFormatVersion {
		t.Errorf("BundleFormat: legacy %d, binary %d", fromV3.BundleFormat, fromV4.BundleFormat)
	}

	// The two loads must agree on every name and every vector bit.
	namesV3, namesV4 := fromV3.Embedding.Names(), fromV4.Embedding.Names()
	if len(namesV3) != len(namesV4) {
		t.Fatalf("entity counts differ: %d vs %d", len(namesV3), len(namesV4))
	}
	for i := range namesV3 {
		if namesV3[i] != namesV4[i] {
			t.Fatalf("name order differs at %d: %q vs %q", i, namesV3[i], namesV4[i])
		}
	}
	base := spec.DB.Table("expenses")
	want, err := fromV3.Featurize(base, "expenses", []string{"total_expenses"}, func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	got, err := fromV4.Featurize(base, "expenses", []string{"total_expenses"}, func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("feature [%d][%d]: binary %v, legacy %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestLoadBundleErrors(t *testing.T) {
	if _, err := LoadBundle(t.TempDir()); err == nil {
		t.Error("empty dir loaded")
	}
}

// savedBundle builds a minimal deployment and saves it to a fresh dir
// in the current binary format.
func savedBundle(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := bundleFixture(t).SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// savedLegacyBundle is savedBundle in the legacy JSON layout.
func savedLegacyBundle(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := bundleFixture(t).SaveBundleLegacy(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func bundleFixture(t *testing.T) *Result {
	t.Helper()
	spec := synth.Student(synth.StudentOptions{Students: 20, Seed: 3})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 4, Seed: 3, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBundleV4Layout pins the on-disk shape of a current-format bundle:
// one bundle.bin payload starting with the magic, sealed by a manifest
// recording formatVersion 4.
func TestBundleV4Layout(t *testing.T) {
	dir := savedBundle(t)
	data, err := os.ReadFile(filepath.Join(dir, bundleBinFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(bundleMagic)) {
		t.Fatalf("bundle.bin does not start with %q: % x", bundleMagic, data[:16])
	}
	man, err := durable.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.FormatVersion != BundleFormatVersion {
		t.Errorf("manifest formatVersion = %d, want %d", man.FormatVersion, BundleFormatVersion)
	}
	if man.Entry(bundleBinFile) == nil {
		t.Errorf("manifest does not list %s", bundleBinFile)
	}
	for _, legacy := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
		if _, err := os.Stat(filepath.Join(dir, legacy)); !os.IsNotExist(err) {
			t.Errorf("binary bundle contains legacy file %s", legacy)
		}
	}
}

// TestBundleV4EncodeDeterministic: encoding is a pure function of the
// Result — encode(decode(encode(r))) == encode(r), byte for byte.
func TestBundleV4EncodeDeterministic(t *testing.T) {
	res := bundleFixture(t)
	enc1, err := encodeBundleV4(res)
	if err != nil {
		t.Fatal(err)
	}
	enc1Again, err := encodeBundleV4(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc1Again) {
		t.Fatal("two encodes of the same Result differ")
	}
	dec, err := decodeBundleV4(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := encodeBundleV4(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("re-encode after decode differs: %d vs %d bytes", len(enc1), len(enc2))
	}
}

func TestBundleFormatVersion(t *testing.T) {
	dir := savedLegacyBundle(t)
	cfgPath := filepath.Join(dir, bundleConfigFile)
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"formatVersion": 3`) {
		t.Fatalf("legacy config.json does not record formatVersion 3:\n%s", data)
	}

	// Hand-editing a payload file invalidates the manifest, so these
	// scenarios model legacy (pre-manifest) bundles: drop MANIFEST.json
	// and let the config.json version check do its own work.
	if err := os.Remove(filepath.Join(dir, durable.ManifestName)); err != nil {
		t.Fatal(err)
	}

	// A bundle from a future build must be rejected, not mis-decoded.
	future := strings.Replace(string(data), `"formatVersion": 3`, `"formatVersion": 99`, 1)
	if err := os.WriteFile(cfgPath, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBundle(dir)
	if err == nil {
		t.Fatal("future-version bundle loaded")
	}
	if !strings.Contains(err.Error(), "format version 99") || !strings.Contains(err.Error(), cfgPath) {
		t.Errorf("version error should name the version and file: %v", err)
	}

	// Legacy pre-versioned bundles (no formatVersion field) still load,
	// and the warning hook reports the missing manifest.
	legacy := strings.Replace(string(data), `"formatVersion": 3,`, ``, 1)
	if err := os.WriteFile(cfgPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []string
	if _, err := LoadBundleWarn(dir, func(msg string) { warnings = append(warnings, msg) }); err != nil {
		t.Errorf("legacy bundle without formatVersion rejected: %v", err)
	}
	if len(warnings) == 0 || !strings.Contains(warnings[0], durable.ManifestName) {
		t.Errorf("legacy bundle load did not warn about the missing manifest: %v", warnings)
	}
}

// TestFutureManifestVersionRejected covers the manifest-level version
// gate: a bundle whose MANIFEST.json claims a newer format is rejected
// before any payload decoding.
func TestFutureManifestVersionRejected(t *testing.T) {
	dir := savedBundle(t)
	manPath := filepath.Join(dir, durable.ManifestName)
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	future := strings.Replace(string(data), fmt.Sprintf(`"formatVersion": %d`, BundleFormatVersion), `"formatVersion": 99`, 1)
	if future == string(data) {
		t.Fatalf("manifest does not record formatVersion %d:\n%s", BundleFormatVersion, data)
	}
	if err := os.WriteFile(manPath, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBundle(dir)
	if err == nil || !strings.Contains(err.Error(), "format version 99") {
		t.Errorf("future manifest version not rejected by name: %v", err)
	}
}

// TestFutureBinaryVersionRejected covers the bundle.bin header gate: a
// file claiming a newer binary revision fails with ErrVersion even when
// the manifest is gone.
func TestFutureBinaryVersionRejected(t *testing.T) {
	dir := savedBundle(t)
	path := filepath.Join(dir, bundleBinFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(bundleMagic)] = 99 // version u32 little-endian low byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, durable.ManifestName)); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBundle(dir)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("future binary version not rejected by name: %v", err)
	}
}

func TestLoadBundleErrorsNamePath(t *testing.T) {
	// Legacy layout: each corrupted payload file is named. (The
	// manifest is dropped so the per-file decoders, not the integrity
	// check, produce the error — modelling pre-durability bundles.)
	for _, corrupt := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
		t.Run(corrupt, func(t *testing.T) {
			dir := savedLegacyBundle(t)
			if err := os.Remove(filepath.Join(dir, durable.ManifestName)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, corrupt)
			if err := os.WriteFile(path, []byte("{{{ not valid"), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadBundle(dir)
			if err == nil {
				t.Fatalf("bundle with corrupt %s loaded", corrupt)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name the corrupt file %s: %v", path, err)
			}
		})
	}
	t.Run("missing-file", func(t *testing.T) {
		dir := savedLegacyBundle(t)
		path := filepath.Join(dir, bundleEmbeddingFile)
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		_, err := LoadBundle(dir)
		if err == nil {
			t.Fatal("bundle with missing embedding loaded")
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("error does not name the missing file %s: %v", path, err)
		}
	})
	t.Run("corrupt-bundle.bin", func(t *testing.T) {
		dir := savedBundle(t)
		path := filepath.Join(dir, bundleBinFile)
		if err := os.WriteFile(path, []byte("not a bundle"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadBundle(dir)
		if err == nil {
			t.Fatal("bundle with corrupt bundle.bin loaded")
		}
		if !strings.Contains(err.Error(), bundleBinFile) {
			t.Errorf("error does not name %s: %v", bundleBinFile, err)
		}
	})
}

// TestBundleCarriesBuildProvenance checks bundles preserve the
// stage-cache outcomes and the unweighted-fallback decision of the
// build that produced them, across both formats.
func TestBundleCarriesBuildProvenance(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 20, Seed: 3})
	cfg := Config{Dim: 4, Seed: 3, Method: embed.MethodMF, CacheDir: t.TempDir()}
	if _, err := BuildEmbedding(spec.DB, cfg); err != nil {
		t.Fatal(err)
	}
	warm, err := BuildEmbedding(spec.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, save := range map[string]func(*Result, string) error{
		"binary": (*Result).SaveBundle,
		"legacy": (*Result).SaveBundleLegacy,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := save(warm, dir); err != nil {
				t.Fatal(err)
			}
			back, err := LoadBundle(dir)
			if err != nil {
				t.Fatal(err)
			}
			if back.Timings.Cache != warm.Timings.Cache {
				t.Errorf("stage cache provenance lost: saved %+v, loaded %+v",
					warm.Timings.Cache, back.Timings.Cache)
			}
			if back.Timings.Cache.Embed != StageCached {
				t.Errorf("warm build provenance not recorded: %+v", back.Timings.Cache)
			}
			if back.UnweightedFallback != warm.UnweightedFallback {
				t.Error("fallback decision lost")
			}
		})
	}
}

// TestReadBundleInfo covers the inspection path over both formats.
func TestReadBundleInfo(t *testing.T) {
	res := bundleFixture(t)
	for name, save := range map[string]func(*Result, string) error{
		"binary": (*Result).SaveBundle,
		"legacy": (*Result).SaveBundleLegacy,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := save(res, dir); err != nil {
				t.Fatal(err)
			}
			info, err := ReadBundleInfo(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Verified {
				t.Error("freshly saved bundle reported unverified")
			}
			if info.Dim != res.Embedding.Dim || info.Entities != res.Embedding.Len() {
				t.Errorf("info shape %d/%d, want %d/%d", info.Entities, info.Dim, res.Embedding.Len(), res.Embedding.Dim)
			}
			if info.MethodUsed != res.MethodUsed {
				t.Errorf("method %q, want %q", info.MethodUsed, res.MethodUsed)
			}
			wantTables := res.Textifier.Tables()
			if len(info.Columns) != len(wantTables) {
				t.Fatalf("info lists %d tables, want %d", len(info.Columns), len(wantTables))
			}
			for i, tc := range info.Columns {
				if tc.Table != wantTables[i] {
					t.Errorf("table[%d] = %q, want %q", i, tc.Table, wantTables[i])
				}
				want := res.Textifier.Columns(tc.Table)
				if len(tc.Columns) != len(want) {
					t.Errorf("table %s lists %d columns, want %d", tc.Table, len(tc.Columns), len(want))
					continue
				}
				for j := range want {
					if tc.Columns[j] != want[j] {
						t.Errorf("table %s column[%d] = %q, want %q", tc.Table, j, tc.Columns[j], want[j])
					}
				}
			}
			if info.SymbolBytes <= 0 || info.ArenaBytes <= 0 || info.PayloadBytes <= 0 {
				t.Errorf("sizes not populated: %+v", info)
			}
			wantArena := int64(8 * len(res.Embedding.Matrix().Data))
			if name == "binary" {
				wantArena += 8 // dim/rows header
			}
			if info.ArenaBytes != wantArena {
				t.Errorf("arena bytes = %d, want %d", info.ArenaBytes, wantArena)
			}
		})
	}
}

// TestLoadBundleMMap exercises the mmap load path end to end where the
// platform has one; elsewhere it checks the fallback warning fires.
func TestLoadBundleMMap(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 20, Seed: 3})
	res, err := BuildEmbedding(spec.DB, Config{Dim: 4, Seed: 3, Method: embed.MethodMF})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	var warned []string
	back, err := LoadBundleOpts(dir, LoadOptions{
		MMap: true,
		Warn: func(msg string) { warned = append(warned, msg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if durable.MapSupported && len(warned) != 0 {
		t.Errorf("mmap load warned unexpectedly: %v", warned)
	}
	if !durable.MapSupported && len(warned) == 0 {
		t.Error("mmap-unsupported platform did not warn about the fallback")
	}
	for _, name := range res.Embedding.Names() {
		want, _ := res.Embedding.Vector(name)
		got, ok := back.Embedding.Vector(name)
		if !ok {
			t.Fatalf("entity %q missing from mmap-loaded bundle", name)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("vector %q[%d] = %v, want %v", name, j, got[j], want[j])
			}
		}
	}
}
