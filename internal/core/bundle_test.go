package core

import (
	"math"
	"testing"

	"repro/internal/embed"
	"repro/internal/synth"
)

func TestBundleRoundTrip(t *testing.T) {
	spec := synth.Student(synth.StudentOptions{Students: 40, Seed: 11})
	res, err := BuildEmbedding(spec.DB, Config{
		Dim: 8, Seed: 11, Method: embed.MethodMF, UnseenFallbackDims: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Embedding.Len() != res.Embedding.Len() || back.Embedding.Dim != 8 {
		t.Fatalf("embedding shape changed: %d/%d", back.Embedding.Len(), back.Embedding.Dim)
	}
	if back.Config.UnseenFallbackDims != 3 {
		t.Errorf("fallback dims = %d", back.Config.UnseenFallbackDims)
	}

	// Featurization must be bit-identical before and after the round
	// trip, for train-style and test-style rows alike.
	base := spec.DB.Table("expenses")
	for _, graphRow := range []func(int) int{
		func(i int) int { return i },
		func(int) int { return -1 },
	} {
		want, err := res.Featurize(base, "expenses", []string{"total_expenses"}, graphRow)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Featurize(base, "expenses", []string{"total_expenses"}, graphRow)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if math.Abs(want[i][j]-got[i][j]) > 1e-12 {
					t.Fatalf("feature [%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestLoadBundleErrors(t *testing.T) {
	if _, err := LoadBundle(t.TempDir()); err == nil {
		t.Error("empty dir loaded")
	}
}
