package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/textify"
)

// Bundle persistence: a built Result is saved as a directory holding
// the fitted textification model, the embedding vectors, the
// deployment-relevant configuration, and a MANIFEST.json integrity
// record. A reloaded bundle featurizes new rows exactly like the
// original — which is what shipping a Leva deployment to an inference
// service needs. The graph itself is not persisted; featurization only
// requires the embedding and tokenizer.
//
// The bundle is the durable product of the whole pipeline, so its
// lifecycle is crash-safe: SaveBundle stages every file (plus the
// manifest, written last) in a sibling directory and publishes the
// stage with one rename, and LoadBundle verifies every file against
// the manifest before decoding anything. A crash at any point leaves
// either the previous complete bundle or the new complete bundle on
// disk — never a hybrid — and any later corruption (torn write, bit
// rot, truncation) surfaces as an error naming the damaged file.

const (
	bundleConfigFile    = "config.json"
	bundleTextifyFile   = "textify.json"
	bundleEmbeddingFile = "embedding.tsv"
)

// BundleFormatVersion is the on-disk format written by SaveBundle.
// History:
//
//	0 — pre-versioned bundles (no formatVersion field in config.json)
//	1 — formatVersion recorded; textify model carries column order
//	2 — MANIFEST.json integrity record (per-file SHA-256 and sizes);
//	    payload file formats are unchanged, so version-1 readers of the
//	    three payload files would still decode them — the bump records
//	    that writes are now staged and manifest-sealed
//	3 — config.json records build provenance: the stage-cache outcomes
//	    of the build (stageCache) and whether the unweighted-graph
//	    fallback fired (unweightedFallback); older readers that ignore
//	    unknown fields would still decode everything else
//
// LoadBundle reads every version up to the current one and rejects
// anything newer or unrecognized instead of decoding garbage. Bundles
// without a manifest (versions 0 and 1) still load, reported through
// the warning hook.
const BundleFormatVersion = 3

// bundleConfig is the subset of Config that affects deployment, plus
// build provenance.
type bundleConfig struct {
	FormatVersion      int               `json:"formatVersion"`
	Dim                int               `json:"dim"`
	Featurization      FeaturizationMode `json:"featurization"`
	UnseenFallbackDims int               `json:"unseenFallbackDims"`
	MethodUsed         embed.Method      `json:"methodUsed"`
	// StageCache preserves how the build that produced this bundle was
	// satisfied (per-stage cached/partial/rebuilt), so serving
	// infrastructure can report what a refreshed bundle actually
	// recomputed. Absent in bundles older than version 3.
	StageCache *CacheStats `json:"stageCache,omitempty"`
	// UnweightedFallback records the build's memory-budget graph
	// decision (paper Section 3.2).
	UnweightedFallback bool `json:"unweightedFallback,omitempty"`
}

// SaveBundle writes the deployment to dir (created if needed),
// crash-safely: the whole bundle is staged in a sibling directory —
// each file written atomically, the manifest last — and published with
// one rename. If dir already holds a bundle, readers observe the old
// complete bundle until the instant the new one replaces it.
func (r *Result) SaveBundle(dir string) error {
	return r.saveBundle(durable.OS(), dir)
}

// saveBundle is SaveBundle over an injectable filesystem — the seam the
// fault-injection suite uses to prove crash safety.
func (r *Result) saveBundle(fsys durable.FS, dir string) error {
	dir = filepath.Clean(dir)

	// Marshal every payload up front: a serialization failure must not
	// touch the disk at all.
	stageCache := r.Timings.Cache
	cfg := bundleConfig{
		FormatVersion:      BundleFormatVersion,
		Dim:                r.Embedding.Dim,
		Featurization:      r.Config.Featurization,
		UnseenFallbackDims: r.Config.UnseenFallbackDims,
		MethodUsed:         r.MethodUsed,
		StageCache:         &stageCache,
		UnweightedFallback: r.UnweightedFallback,
	}
	cfgData, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal bundle config: %w", err)
	}
	modelData, err := json.Marshal(r.Textifier)
	if err != nil {
		return fmt.Errorf("core: marshal textify model: %w", err)
	}
	var embBuf bytes.Buffer
	if err := r.Embedding.WriteTSV(&embBuf); err != nil {
		return fmt.Errorf("core: serialize embedding: %w", err)
	}

	// If a previous publish crashed between its two renames, restore
	// the old bundle first so "replace the existing bundle" below has a
	// consistent starting point.
	if _, err := durable.RecoverDir(fsys, dir); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}

	staging := dir + durable.StagingSuffix
	if err := fsys.RemoveAll(staging); err != nil {
		return fmt.Errorf("core: save bundle: clear staging: %w", err)
	}
	if err := fsys.MkdirAll(staging, 0o755); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	manifest := &durable.Manifest{FormatVersion: BundleFormatVersion}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{bundleConfigFile, cfgData},
		{bundleTextifyFile, modelData},
		{bundleEmbeddingFile, embBuf.Bytes()},
	} {
		if err := durable.WriteFile(fsys, filepath.Join(staging, f.name), f.data); err != nil {
			return fmt.Errorf("core: save bundle: %w", err)
		}
		manifest.Add(f.name, f.data)
	}
	// The manifest seals the stage: it exists only once every payload
	// file is durably in place.
	if err := durable.WriteManifest(fsys, staging, manifest); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	if err := durable.SwapDir(fsys, staging, dir); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	return nil
}

// LoadBundle restores a deployment saved by SaveBundle. The returned
// Result has no Graph (featurization does not need one); Featurize
// works for both previously-embedded rows (by their row keys) and new
// rows (composed from value-node vectors with graphRow -1). Every error
// names the bundle file that is missing or corrupt.
//
// Every file is verified against the bundle's MANIFEST.json before
// decoding, and a publish interrupted between its two renames is
// repaired on the way in. Non-fatal conditions (legacy manifest-less
// bundle, repaired publish) are silently tolerated here; use
// LoadBundleWarn to observe them.
func LoadBundle(dir string) (*Result, error) {
	return LoadBundleWarn(dir, nil)
}

// LoadBundleWarn is LoadBundle with a hook receiving human-readable
// warnings for conditions that do not prevent loading: a legacy bundle
// with no integrity manifest, or a crashed publish that was rolled back
// to the previous complete bundle. warn may be nil.
func LoadBundleWarn(dir string, warn func(msg string)) (*Result, error) {
	if warn == nil {
		warn = func(string) {}
	}
	dir = filepath.Clean(dir)
	if recovered, err := durable.RecoverDir(durable.OS(), dir); err == nil && recovered {
		warn(fmt.Sprintf("core: load bundle: %s was missing after an interrupted save; restored the previous complete bundle from %s%s", dir, dir, durable.OldSuffix))
	}
	manifest, err := durable.VerifyDir(dir)
	switch {
	case errors.Is(err, durable.ErrNoManifest):
		warn(fmt.Sprintf("core: load bundle: %s has no %s (legacy pre-durability bundle); loading without integrity verification", dir, durable.ManifestName))
	case err != nil:
		return nil, fmt.Errorf("core: load bundle: %w", err)
	default:
		if manifest.FormatVersion < 0 || manifest.FormatVersion > BundleFormatVersion {
			return nil, fmt.Errorf("core: load bundle: %s records format version %d; this build reads versions 0 through %d (rebuild the bundle or upgrade)",
				filepath.Join(dir, durable.ManifestName), manifest.FormatVersion, BundleFormatVersion)
		}
		for _, name := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
			if manifest.Entry(name) == nil {
				return nil, fmt.Errorf("core: load bundle: %s does not list %s; the bundle is incomplete",
					filepath.Join(dir, durable.ManifestName), name)
			}
		}
	}

	cfgPath := filepath.Join(dir, bundleConfigFile)
	cfgData, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	var cfg bundleConfig
	if err := json.Unmarshal(cfgData, &cfg); err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", cfgPath, err)
	}
	if cfg.FormatVersion < 0 || cfg.FormatVersion > BundleFormatVersion {
		return nil, fmt.Errorf("core: load bundle: %s has format version %d; this build reads versions 0 through %d (rebuild the bundle or upgrade)",
			cfgPath, cfg.FormatVersion, BundleFormatVersion)
	}
	modelPath := filepath.Join(dir, bundleTextifyFile)
	modelData, err := os.ReadFile(modelPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	model := &textify.Model{}
	if err := json.Unmarshal(modelData, model); err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", modelPath, err)
	}
	embPath := filepath.Join(dir, bundleEmbeddingFile)
	f, err := os.Open(embPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	defer f.Close()
	e, err := embed.ReadTSV(f)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", embPath, err)
	}
	if e.Dim != cfg.Dim {
		return nil, fmt.Errorf("core: load bundle %s: dim mismatch: embedding %d, config %d", dir, e.Dim, cfg.Dim)
	}
	res := &Result{
		Embedding:          e,
		Textifier:          model,
		MethodUsed:         cfg.MethodUsed,
		UnweightedFallback: cfg.UnweightedFallback,
		Config: Config{
			Dim:                cfg.Dim,
			Featurization:      cfg.Featurization,
			UnseenFallbackDims: cfg.UnseenFallbackDims,
			Method:             cfg.MethodUsed,
		},
	}
	if cfg.StageCache != nil {
		res.Timings.Cache = *cfg.StageCache
	}
	return res, nil
}
