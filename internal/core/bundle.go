package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/durable"
	"repro/internal/embed"
	"repro/internal/textify"
)

// Bundle persistence: a built Result is saved as a directory holding
// everything featurization needs — the fitted textification model, the
// embedding (interned symbol table + vector arena), the
// deployment-relevant configuration, build provenance — plus a
// MANIFEST.json integrity record. A reloaded bundle featurizes new
// rows exactly like the original — which is what shipping a Leva
// deployment to an inference service needs. The graph itself is not
// persisted; featurization only requires the embedding and tokenizer.
//
// The bundle is the durable product of the whole pipeline, so its
// lifecycle is crash-safe: SaveBundle stages every file (plus the
// manifest, written last) in a sibling directory and publishes the
// stage with one rename, and LoadBundle verifies the payload against
// the manifest before building anything over it. A crash at any point
// leaves either the previous complete bundle or the new complete
// bundle on disk — never a hybrid — and any later corruption (torn
// write, bit rot, truncation) surfaces as an error naming the damaged
// file.

// Legacy (format ≤ 3) payload file names. Version-4 bundles hold one
// payload file, bundle.bin (see bundlev4.go).
const (
	bundleConfigFile    = "config.json"
	bundleTextifyFile   = "textify.json"
	bundleEmbeddingFile = "embedding.tsv"
)

// BundleFormatVersion is the on-disk format written by SaveBundle.
// History:
//
//	0 — pre-versioned bundles (no formatVersion field in config.json)
//	1 — formatVersion recorded; textify model carries column order
//	2 — MANIFEST.json integrity record (per-file SHA-256 and sizes);
//	    payload file formats are unchanged, so version-1 readers of the
//	    three payload files would still decode them — the bump records
//	    that writes are now staged and manifest-sealed
//	3 — config.json records build provenance: the stage-cache outcomes
//	    of the build (stageCache) and whether the unweighted-graph
//	    fallback fired (unweightedFallback); older readers that ignore
//	    unknown fields would still decode everything else
//	4 — single binary payload file bundle.bin (magic + section table:
//	    config, column order, interned symbols, vector arena,
//	    provenance) replacing the three JSON/TSV files; the load path
//	    builds zero-copy views over one buffer instead of decoding
//	    per-entity records
//	5 — optional quant section: a symmetric int8 quantization of the
//	    vector arena (per-row scale, zero point 0) that serving loads
//	    zero-copy for int8 ANN search; bundles built without -quantize
//	    are version 5 with no quant section, and version-4 files still
//	    load unchanged
//
// LoadBundle reads every version up to the current one and rejects
// anything newer or unrecognized instead of decoding garbage. Legacy
// JSON bundles (versions 0–3) still load, reported through the warning
// hook; SaveBundle always writes the current version, so saving a
// loaded legacy bundle upgrades it.
const BundleFormatVersion = 5

// bundleConfig is the legacy (format ≤ 3) config.json schema: the
// subset of Config that affects deployment, plus build provenance.
type bundleConfig struct {
	FormatVersion      int               `json:"formatVersion"`
	Dim                int               `json:"dim"`
	Featurization      FeaturizationMode `json:"featurization"`
	UnseenFallbackDims int               `json:"unseenFallbackDims"`
	MethodUsed         embed.Method      `json:"methodUsed"`
	// StageCache preserves how the build that produced this bundle was
	// satisfied (per-stage cached/partial/rebuilt), so serving
	// infrastructure can report what a refreshed bundle actually
	// recomputed. Absent in bundles older than version 3.
	StageCache *CacheStats `json:"stageCache,omitempty"`
	// UnweightedFallback records the build's memory-budget graph
	// decision (paper Section 3.2).
	UnweightedFallback bool `json:"unweightedFallback,omitempty"`
}

// SaveBundle writes the deployment to dir (created if needed) in the
// current binary format, crash-safely: the bundle is staged in a
// sibling directory — bundle.bin written atomically, the manifest last
// — and published with one rename. If dir already holds a bundle,
// readers observe the old complete bundle until the instant the new
// one replaces it. Saving a Result loaded from a legacy JSON bundle
// rewrites it forward into the binary format.
func (r *Result) SaveBundle(dir string) error {
	return r.saveBundle(durable.OS(), dir)
}

// saveBundle is SaveBundle over an injectable filesystem — the seam the
// fault-injection suite uses to prove crash safety.
func (r *Result) saveBundle(fsys durable.FS, dir string) error {
	// Encode up front: a serialization failure must not touch the disk.
	data, err := encodeBundleV4(r)
	if err != nil {
		return err
	}
	return publishBundle(fsys, dir, []bundleFile{{bundleBinFile, data}})
}

// SaveBundleLegacy writes dir in the previous JSON/TSV layout (format
// version 3): config.json, textify.json, embedding.tsv. It exists for
// producing fixtures that exercise the legacy load path and for
// downgrading a bundle for consumers that predate the binary format;
// new deployments should use SaveBundle.
func (r *Result) SaveBundleLegacy(dir string) error {
	return r.saveBundleLegacy(durable.OS(), dir)
}

const legacyBundleFormatVersion = 3

func (r *Result) saveBundleLegacy(fsys durable.FS, dir string) error {
	stageCache := r.Timings.Cache
	cfg := bundleConfig{
		FormatVersion:      legacyBundleFormatVersion,
		Dim:                r.Embedding.Dim,
		Featurization:      r.Config.Featurization,
		UnseenFallbackDims: r.Config.UnseenFallbackDims,
		MethodUsed:         r.MethodUsed,
		StageCache:         &stageCache,
		UnweightedFallback: r.UnweightedFallback,
	}
	cfgData, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal bundle config: %w", err)
	}
	modelData, err := json.Marshal(r.Textifier)
	if err != nil {
		return fmt.Errorf("core: marshal textify model: %w", err)
	}
	var embBuf bytes.Buffer
	if err := r.Embedding.WriteTSV(&embBuf); err != nil {
		return fmt.Errorf("core: serialize embedding: %w", err)
	}
	return publishBundleVersion(fsys, dir, legacyBundleFormatVersion, []bundleFile{
		{bundleConfigFile, cfgData},
		{bundleTextifyFile, modelData},
		{bundleEmbeddingFile, embBuf.Bytes()},
	})
}

type bundleFile struct {
	name string
	data []byte
}

func publishBundle(fsys durable.FS, dir string, files []bundleFile) error {
	return publishBundleVersion(fsys, dir, BundleFormatVersion, files)
}

// publishBundleVersion runs the crash-safe publish protocol: recover
// any interrupted previous publish, stage every payload file in a
// sibling directory, seal the stage with the manifest (written last),
// and swap the stage in with one rename.
func publishBundleVersion(fsys durable.FS, dir string, version int, files []bundleFile) error {
	dir = filepath.Clean(dir)

	// If a previous publish crashed between its two renames, restore
	// the old bundle first so "replace the existing bundle" below has a
	// consistent starting point.
	if _, err := durable.RecoverDir(fsys, dir); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}

	staging := dir + durable.StagingSuffix
	if err := fsys.RemoveAll(staging); err != nil {
		return fmt.Errorf("core: save bundle: clear staging: %w", err)
	}
	if err := fsys.MkdirAll(staging, 0o755); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	manifest := &durable.Manifest{FormatVersion: version}
	for _, f := range files {
		if err := durable.WriteFile(fsys, filepath.Join(staging, f.name), f.data); err != nil {
			return fmt.Errorf("core: save bundle: %w", err)
		}
		manifest.Add(f.name, f.data)
	}
	// The manifest seals the stage: it exists only once every payload
	// file is durably in place.
	if err := durable.WriteManifest(fsys, staging, manifest); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	if err := durable.SwapDir(fsys, staging, dir); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	return nil
}

// LoadOptions tunes LoadBundleOpts.
type LoadOptions struct {
	// Warn receives human-readable warnings for conditions that do not
	// prevent loading: a legacy JSON bundle, a bundle with no integrity
	// manifest, a crashed publish that was rolled back, or an mmap
	// fallback. nil discards them.
	Warn func(msg string)
	// MMap memory-maps bundle.bin instead of reading it, when the
	// platform supports it (see durable.MapSupported). Vector and
	// symbol views then point into the mapping and pages fault in on
	// first access. Ignored for legacy JSON bundles.
	MMap bool
}

// LoadBundle restores a deployment saved by SaveBundle. The returned
// Result has no Graph (featurization does not need one); Featurize
// works for both previously-embedded rows (by their row keys) and new
// rows (composed from value-node vectors with graphRow -1). Every error
// names the bundle file that is missing or corrupt.
//
// The payload is verified against the bundle's MANIFEST.json before
// anything is built over it, and a publish interrupted between its two
// renames is repaired on the way in. Non-fatal conditions (legacy
// bundle, repaired publish) are silently tolerated here; use
// LoadBundleWarn or LoadBundleOpts to observe them.
func LoadBundle(dir string) (*Result, error) {
	return LoadBundleOpts(dir, LoadOptions{})
}

// LoadBundleWarn is LoadBundle with a warning hook; see
// LoadOptions.Warn. warn may be nil.
func LoadBundleWarn(dir string, warn func(msg string)) (*Result, error) {
	return LoadBundleOpts(dir, LoadOptions{Warn: warn})
}

// LoadBundleOpts is LoadBundle with explicit options.
func LoadBundleOpts(dir string, opts LoadOptions) (*Result, error) {
	warn := opts.Warn
	if warn == nil {
		warn = func(string) {}
	}
	dir = filepath.Clean(dir)
	if recovered, err := durable.RecoverDir(durable.OS(), dir); err == nil && recovered {
		warn(fmt.Sprintf("core: load bundle: %s was missing after an interrupted save; restored the previous complete bundle from %s%s", dir, dir, durable.OldSuffix))
	}

	manifest, err := durable.ReadManifest(dir)
	switch {
	case errors.Is(err, durable.ErrNoManifest):
		// No integrity record. A bundle.bin alongside means a v4 bundle
		// whose manifest went missing — load it unverified, loudly; no
		// bundle.bin means a legacy pre-durability JSON bundle.
		if _, statErr := os.Stat(filepath.Join(dir, bundleBinFile)); statErr == nil {
			warn(fmt.Sprintf("core: load bundle: %s has no %s; loading %s without integrity verification", dir, durable.ManifestName, bundleBinFile))
			return loadBundleBin(dir, nil, opts, warn)
		}
		warn(fmt.Sprintf("core: load bundle: %s has no %s (legacy pre-durability bundle); loading without integrity verification", dir, durable.ManifestName))
		return loadBundleLegacy(dir, nil)
	case err != nil:
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}

	if manifest.FormatVersion < 0 || manifest.FormatVersion > BundleFormatVersion {
		return nil, fmt.Errorf("core: load bundle: %s records format version %d; this build reads versions 0 through %d (rebuild the bundle or upgrade)",
			filepath.Join(dir, durable.ManifestName), manifest.FormatVersion, BundleFormatVersion)
	}
	if manifest.Entry(bundleBinFile) != nil {
		return loadBundleBin(dir, manifest, opts, warn)
	}
	warn(fmt.Sprintf("core: load bundle: %s is a legacy JSON bundle (format version %d); saving it rewrites it into the binary format", dir, manifest.FormatVersion))
	return loadBundleLegacy(dir, manifest)
}

// loadBundleBin is the version-4 load path: bundle.bin is read (or
// mapped) into one buffer, verified against the manifest as a whole,
// and the Result is built as views over that buffer — O(read + hash),
// independent of entity count.
func loadBundleBin(dir string, manifest *durable.Manifest, opts LoadOptions, warn func(string)) (*Result, error) {
	path := filepath.Join(dir, bundleBinFile)
	var data []byte
	var err error
	mapped := false
	if opts.MMap {
		if durable.MapSupported {
			data, err = durable.MapFile(path)
			if err != nil {
				warn(fmt.Sprintf("core: load bundle: mmap %s failed (%v); falling back to a plain read", path, err))
			} else {
				mapped = true
			}
		} else {
			warn(fmt.Sprintf("core: load bundle: mmap requested but unsupported on this platform; reading %s instead", path))
		}
	}
	if data == nil {
		data, err = os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("core: load bundle: %w", err)
		}
	}
	if manifest != nil {
		if err := manifest.VerifyData(bundleBinFile, data); err != nil {
			if mapped {
				_ = durable.Unmap(data)
			}
			return nil, fmt.Errorf("core: load bundle: %s: %w", dir, err)
		}
	}
	res, err := decodeBundleV4(data)
	if err != nil {
		if mapped {
			_ = durable.Unmap(data)
		}
		return nil, fmt.Errorf("core: load bundle: %s: %w", path, err)
	}
	if mapped {
		res.mapped = data
	}
	return res, nil
}

// loadBundleLegacy is the format ≤ 3 load path over the three JSON/TSV
// payload files. manifest may be nil (pre-durability bundle); when
// present every listed file is verified before decoding.
func loadBundleLegacy(dir string, manifest *durable.Manifest) (*Result, error) {
	if manifest != nil {
		if _, err := durable.VerifyDir(dir); err != nil {
			return nil, fmt.Errorf("core: load bundle: %w", err)
		}
		for _, name := range []string{bundleConfigFile, bundleTextifyFile, bundleEmbeddingFile} {
			if manifest.Entry(name) == nil {
				return nil, fmt.Errorf("core: load bundle: %s does not list %s; the bundle is incomplete",
					filepath.Join(dir, durable.ManifestName), name)
			}
		}
	}

	cfgPath := filepath.Join(dir, bundleConfigFile)
	cfgData, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	var cfg bundleConfig
	if err := json.Unmarshal(cfgData, &cfg); err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", cfgPath, err)
	}
	if cfg.FormatVersion < 0 || cfg.FormatVersion > BundleFormatVersion {
		return nil, fmt.Errorf("core: load bundle: %s has format version %d; this build reads versions 0 through %d (rebuild the bundle or upgrade)",
			cfgPath, cfg.FormatVersion, BundleFormatVersion)
	}
	modelPath := filepath.Join(dir, bundleTextifyFile)
	modelData, err := os.ReadFile(modelPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	model := &textify.Model{}
	if err := json.Unmarshal(modelData, model); err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", modelPath, err)
	}
	embPath := filepath.Join(dir, bundleEmbeddingFile)
	f, err := os.Open(embPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	defer f.Close()
	e, err := embed.ReadTSV(f)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", embPath, err)
	}
	if e.Dim != cfg.Dim {
		return nil, fmt.Errorf("core: load bundle %s: dim mismatch: embedding %d, config %d", dir, e.Dim, cfg.Dim)
	}
	res := &Result{
		Embedding:          e,
		Textifier:          model,
		MethodUsed:         cfg.MethodUsed,
		UnweightedFallback: cfg.UnweightedFallback,
		BundleFormat:       cfg.FormatVersion,
		Config: Config{
			Dim:                cfg.Dim,
			Featurization:      cfg.Featurization,
			UnseenFallbackDims: cfg.UnseenFallbackDims,
			Method:             cfg.MethodUsed,
		},
	}
	if cfg.StageCache != nil {
		res.Timings.Cache = *cfg.StageCache
	}
	return res, nil
}
