package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/embed"
	"repro/internal/textify"
)

// Bundle persistence: a built Result is saved as a directory holding
// the fitted textification model, the embedding vectors, and the
// deployment-relevant configuration. A reloaded bundle featurizes new
// rows exactly like the original — which is what shipping a Leva
// deployment to an inference service needs. The graph itself is not
// persisted; featurization only requires the embedding and tokenizer.

const (
	bundleConfigFile    = "config.json"
	bundleTextifyFile   = "textify.json"
	bundleEmbeddingFile = "embedding.tsv"
)

// BundleFormatVersion is the on-disk format written by SaveBundle.
// History:
//
//	0 — pre-versioned bundles (no formatVersion field in config.json)
//	1 — formatVersion recorded; textify model carries column order
//
// LoadBundle reads every version up to the current one and rejects
// anything newer or unrecognized instead of decoding garbage.
const BundleFormatVersion = 1

// bundleConfig is the subset of Config that affects deployment.
type bundleConfig struct {
	FormatVersion      int               `json:"formatVersion"`
	Dim                int               `json:"dim"`
	Featurization      FeaturizationMode `json:"featurization"`
	UnseenFallbackDims int               `json:"unseenFallbackDims"`
	MethodUsed         embed.Method      `json:"methodUsed"`
}

// SaveBundle writes the deployment to dir (created if needed).
func (r *Result) SaveBundle(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	cfg := bundleConfig{
		FormatVersion:      BundleFormatVersion,
		Dim:                r.Embedding.Dim,
		Featurization:      r.Config.Featurization,
		UnseenFallbackDims: r.Config.UnseenFallbackDims,
		MethodUsed:         r.MethodUsed,
	}
	cfgData, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, bundleConfigFile), cfgData, 0o644); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	modelData, err := json.Marshal(r.Textifier)
	if err != nil {
		return fmt.Errorf("core: marshal textify model: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, bundleTextifyFile), modelData, 0o644); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	embPath := filepath.Join(dir, bundleEmbeddingFile)
	f, err := os.Create(embPath)
	if err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	defer f.Close()
	if err := r.Embedding.WriteTSV(f); err != nil {
		return fmt.Errorf("core: write embedding %s: %w", embPath, err)
	}
	return nil
}

// LoadBundle restores a deployment saved by SaveBundle. The returned
// Result has no Graph (featurization does not need one); Featurize
// works for both previously-embedded rows (by their row keys) and new
// rows (composed from value-node vectors with graphRow -1). Every error
// names the bundle file that is missing or corrupt.
func LoadBundle(dir string) (*Result, error) {
	cfgPath := filepath.Join(dir, bundleConfigFile)
	cfgData, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	var cfg bundleConfig
	if err := json.Unmarshal(cfgData, &cfg); err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", cfgPath, err)
	}
	if cfg.FormatVersion < 0 || cfg.FormatVersion > BundleFormatVersion {
		return nil, fmt.Errorf("core: load bundle: %s has format version %d; this build reads versions 0 through %d (rebuild the bundle or upgrade)",
			cfgPath, cfg.FormatVersion, BundleFormatVersion)
	}
	modelPath := filepath.Join(dir, bundleTextifyFile)
	modelData, err := os.ReadFile(modelPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	model := &textify.Model{}
	if err := json.Unmarshal(modelData, model); err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", modelPath, err)
	}
	embPath := filepath.Join(dir, bundleEmbeddingFile)
	f, err := os.Open(embPath)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	defer f.Close()
	e, err := embed.ReadTSV(f)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: parse %s: %w", embPath, err)
	}
	if e.Dim != cfg.Dim {
		return nil, fmt.Errorf("core: load bundle %s: dim mismatch: embedding %d, config %d", dir, e.Dim, cfg.Dim)
	}
	return &Result{
		Embedding:  e,
		Textifier:  model,
		MethodUsed: cfg.MethodUsed,
		Config: Config{
			Dim:                cfg.Dim,
			Featurization:      cfg.Featurization,
			UnseenFallbackDims: cfg.UnseenFallbackDims,
			Method:             cfg.MethodUsed,
		},
	}, nil
}
