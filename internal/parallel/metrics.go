package parallel

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Pool-wide execution stats. The pool is fork-join — work is sharded,
// executed, and joined with no standing queue — so there is no queue
// depth to report; the honest saturation signals are how many shard
// goroutines are running right now and how many fan-outs are in
// flight. Counters are package-level because the pool itself is: every
// stage in the process shares these numbers, and RegisterMetrics may
// attach them to any number of registries (the daemon's and a CLI
// build's at once).
var (
	busyWorkers    atomic.Int64
	inflightFanout atomic.Int64
	fanoutsTotal   atomic.Uint64
	shardsTotal    atomic.Uint64
)

// RegisterMetrics attaches the worker-pool metrics to r. The
// instruments are pull-style: the hot path pays only the atomic
// adds already done in For, and values are read at scrape time.
func RegisterMetrics(r *obs.Registry) {
	r.Register(
		obs.NewGaugeFunc("leva_parallel_busy_workers",
			"Shard goroutines currently executing across all fan-outs.",
			func() float64 { return float64(busyWorkers.Load()) }),
		obs.NewGaugeFunc("leva_parallel_inflight_fanouts",
			"For/ForEach/ForError calls currently executing.",
			func() float64 { return float64(inflightFanout.Load()) }),
		obs.NewCounterFunc("leva_parallel_fanouts_total",
			"Completed fan-outs (For/ForEach/ForError calls), including single-shard inline runs.",
			func() float64 { return float64(fanoutsTotal.Load()) }),
		obs.NewCounterFunc("leva_parallel_shards_total",
			"Shards executed across all fan-outs.",
			func() float64 { return float64(shardsTotal.Load()) }),
	)
}

// trackShard brackets one shard's execution; deferred decrement so a
// panicking shard doesn't leak a busy worker.
func trackShard(fn func()) {
	busyWorkers.Add(1)
	shardsTotal.Add(1)
	defer busyWorkers.Add(-1)
	fn()
}

// trackFanout brackets one For call.
func trackFanout() func() {
	inflightFanout.Add(1)
	return func() {
		inflightFanout.Add(-1)
		fanoutsTotal.Add(1)
	}
}
