package parallel

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestPoolMetricsAccrue(t *testing.T) {
	r := obs.NewRegistry()
	RegisterMetrics(r)
	// Same instruments can attach to a second registry.
	RegisterMetrics(obs.NewRegistry())

	fanoutsBefore := fanoutsTotal.Load()
	shardsBefore := shardsTotal.Load()

	For(100, 4, func(shard int, rg Range) {
		if busyWorkers.Load() < 1 {
			t.Error("busy workers not tracked during shard execution")
		}
		if inflightFanout.Load() < 1 {
			t.Error("in-flight fan-outs not tracked during execution")
		}
	})
	ForEach(3, 1, func(i int) {}) // inline single-shard path counts too

	if got := fanoutsTotal.Load() - fanoutsBefore; got != 2 {
		t.Errorf("fanouts delta = %d, want 2", got)
	}
	if got := shardsTotal.Load() - shardsBefore; got != 5 {
		t.Errorf("shards delta = %d, want 5 (4 forked + 1 inline)", got)
	}
	if busyWorkers.Load() != 0 || inflightFanout.Load() != 0 {
		t.Errorf("gauges did not return to zero: busy=%d inflight=%d",
			busyWorkers.Load(), inflightFanout.Load())
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"leva_parallel_busy_workers",
		"leva_parallel_inflight_fanouts",
		"leva_parallel_fanouts_total",
		"leva_parallel_shards_total",
	} {
		if !strings.Contains(sb.String(), "# TYPE "+name+" ") {
			t.Errorf("registry missing %s:\n%s", name, sb.String())
		}
	}
}

func TestTrackShardRecoversBusyCountOnPanic(t *testing.T) {
	before := busyWorkers.Load()
	func() {
		defer func() { recover() }()
		trackShard(func() { panic("shard died") })
	}()
	if busyWorkers.Load() != before {
		t.Errorf("busy workers leaked after panic: %d != %d", busyWorkers.Load(), before)
	}
}
