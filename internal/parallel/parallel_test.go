package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestShardsCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 16, 17, 100, 101} {
		for _, w := range []int{1, 2, 3, 4, 7, 64} {
			shards := Shards(n, w)
			if n == 0 && len(shards) != 0 {
				t.Fatalf("Shards(0, %d) = %v, want empty", w, shards)
			}
			next := 0
			for _, r := range shards {
				if r.Lo != next {
					t.Fatalf("Shards(%d, %d): gap/overlap at %v", n, w, r)
				}
				if r.Len() <= 0 {
					t.Fatalf("Shards(%d, %d): empty shard %v", n, w, r)
				}
				next = r.Hi
			}
			if next != n {
				t.Fatalf("Shards(%d, %d) covers [0, %d)", n, w, next)
			}
			if len(shards) > w {
				t.Fatalf("Shards(%d, %d) produced %d shards", n, w, len(shards))
			}
		}
	}
}

func TestShardsDeterministic(t *testing.T) {
	a := Shards(1000, 7)
	b := Shards(1000, 7)
	if len(a) != len(b) {
		t.Fatal("shard plans differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForEachVisitsAllOnce(t *testing.T) {
	const n = 513
	for _, w := range []int{1, 2, 5, 16} {
		counts := make([]int32, n)
		ForEach(n, w, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, c)
			}
		}
	}
}

func TestForShardIndicesDense(t *testing.T) {
	seen := make([]int32, len(Shards(40, 4)))
	For(40, 4, func(s int, r Range) { atomic.AddInt32(&seen[s], 1) })
	for s, c := range seen {
		if c != 1 {
			t.Fatalf("shard %d ran %d times", s, c)
		}
	}
}

func TestForErrorReturnsFirstShardError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Both shards fail; the error from the lower shard index must win
	// regardless of which goroutine finishes first.
	for trial := 0; trial < 20; trial++ {
		err := ForError(8, 4, func(s int, r Range) error {
			switch s {
			case 1:
				return errA
			case 3:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errA)
		}
	}
	if err := ForError(8, 4, func(int, Range) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if err := ForError(0, 4, func(int, Range) error { return errA }); err != nil {
		t.Fatalf("n=0 must not invoke fn, got %v", err)
	}
}
