// Package parallel is the shared worker-pool substrate of Leva's hot
// paths. Every pipeline stage that fans work out across goroutines —
// textification, graph construction, the matrix-factorization matmuls,
// walk generation and featurization — goes through this package so that
// sharding is done one way, deterministically, everywhere.
//
// The contract that keeps parallel Leva reproducible is *deterministic
// sharding plus ordered merges*: Shards splits an index range into
// contiguous chunks, workers compute into per-shard (or disjoint)
// destinations, and callers merge shard results in shard order. Stages
// whose per-item work is independent (textify, featurize, row-partitioned
// matmuls) are bit-identical at every worker count; stages that reduce
// across shards document their merge order. Randomized stages derive one
// RNG stream per work item (not per worker) from the config seed, so the
// schedule never leaks into the output.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 mean
// GOMAXPROCS, anything else is returned unchanged. Every Options struct
// with a Workers knob funnels through this so "0 = use the machine"
// means the same thing in every package.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Range is a half-open index interval [Lo, Hi) assigned to one shard.
type Range struct{ Lo, Hi int }

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Shards splits [0, n) into at most workers contiguous half-open ranges
// of near-equal size. The split depends only on n and workers — never on
// scheduling — so callers that merge shard outputs in shard order get
// deterministic results for a fixed worker count, and callers whose
// shards write disjoint destinations get identical results for every
// worker count. Empty input yields no shards.
func Shards(n, workers int) []Range {
	workers = Workers(workers)
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	out := make([]Range, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, Range{Lo: lo, Hi: hi})
	}
	return out
}

// For runs fn over the shards of [0, n) concurrently and waits for all
// of them. fn receives the shard index and its half-open range; shard
// indices are dense, starting at zero, so fn can write into a
// per-shard result slot for an ordered merge afterwards. With one
// worker (or n <= 1) fn runs inline on the caller's goroutine, making
// Workers=1 literally the sequential code path.
func For(n, workers int, fn func(shard int, r Range)) {
	defer trackFanout()()
	shards := Shards(n, workers)
	if len(shards) <= 1 {
		for s, r := range shards {
			trackShard(func() { fn(s, r) })
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for s, r := range shards {
		go func(s int, r Range) {
			defer wg.Done()
			trackShard(func() { fn(s, r) })
		}(s, r)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) across the worker pool. It
// is For with per-index granularity hidden; each index is handled
// exactly once and fn must only write state owned by index i.
func ForEach(n, workers int, fn func(i int)) {
	For(n, workers, func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			fn(i)
		}
	})
}

// ForError is For over fallible shard work: each shard may return an
// error, and the first error in *shard order* (not completion order) is
// returned, keeping error reporting deterministic under concurrency.
// All shards run to completion even when an early shard fails.
func ForError(n, workers int, fn func(shard int, r Range) error) error {
	shards := Shards(n, workers)
	if len(shards) == 0 {
		return nil
	}
	errs := make([]error, len(shards))
	For(n, workers, func(s int, r Range) {
		errs[s] = fn(s, r)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
