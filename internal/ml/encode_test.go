package ml

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestOneHotEncoder(t *testing.T) {
	tab := dataset.NewTable("t", "num", "cat", "label")
	tab.AppendRow(dataset.Number(1.5), dataset.String("red"), dataset.String("a"))
	tab.AppendRow(dataset.Number(2.5), dataset.String("blue"), dataset.String("b"))
	tab.AppendRow(dataset.Number(3.5), dataset.String("red"), dataset.String("a"))
	tab.AppendRow(dataset.Null(), dataset.Null(), dataset.String("a"))

	enc := FitOneHot(tab, "label", 10)
	if enc.Dim() != 3 { // num + {red, blue}
		t.Fatalf("dim = %d, want 3", enc.Dim())
	}
	x := enc.Transform(tab)
	if x[0][0] != 1.5 {
		t.Errorf("numeric passthrough = %v", x[0][0])
	}
	// red and blue occupy distinct slots, exactly one hot per row.
	if x[0][1]+x[0][2] != 1 || x[1][1]+x[1][2] != 1 {
		t.Errorf("one-hot rows: %v %v", x[0], x[1])
	}
	if x[0][1] == x[1][1] {
		t.Error("red and blue mapped to the same slot")
	}
	// Nulls contribute zeros.
	if x[3][0] != 0 || x[3][1] != 0 || x[3][2] != 0 {
		t.Errorf("null row = %v", x[3])
	}

	names := enc.FeatureNames()
	if len(names) != 3 || names[0] != "num" {
		t.Errorf("feature names = %v", names)
	}
}

func TestOneHotMaxCategoriesKeepsFrequent(t *testing.T) {
	tab := dataset.NewTable("t", "c", "y")
	for i := 0; i < 50; i++ {
		tab.AppendRow(dataset.String("common"), dataset.Int(0))
	}
	tab.AppendRow(dataset.String("rare1"), dataset.Int(0))
	tab.AppendRow(dataset.String("rare2"), dataset.Int(0))
	enc := FitOneHot(tab, "y", 1)
	if enc.Dim() != 1 {
		t.Fatalf("dim = %d, want 1", enc.Dim())
	}
	x := enc.Transform(tab)
	if x[0][0] != 1 {
		t.Error("frequent category not kept")
	}
	if x[50][0] != 0 {
		t.Error("rare category encoded despite cap")
	}
}

func TestOneHotUnseenTableColumns(t *testing.T) {
	fitTab := dataset.NewTable("t", "a", "y")
	fitTab.AppendRow(dataset.String("x"), dataset.Int(0))
	fitTab.AppendRow(dataset.String("x"), dataset.Int(0))
	enc := FitOneHot(fitTab, "y", 8)

	other := dataset.NewTable("t", "b") // fitted column missing entirely
	other.AppendRow(dataset.String("z"))
	x := enc.Transform(other)
	if len(x) != 1 || len(x[0]) != enc.Dim() {
		t.Fatalf("transform shape wrong")
	}
	for _, v := range x[0] {
		if v != 0 {
			t.Error("missing column contributed nonzero")
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(map[string][]float64{"a": {1, 2}, "b": {10}})
	if len(g) != 2 {
		t.Fatalf("grid size = %d", len(g))
	}
	seen := map[float64]bool{}
	for _, p := range g {
		if p["b"] != 10 {
			t.Errorf("param b = %v", p["b"])
		}
		seen[p["a"]] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("grid missing values: %v", g)
	}
}

func TestGridSearchClassifierPicksRegularization(t *testing.T) {
	// Overlapping blobs: one unpruned tree overfits in CV, the
	// ensemble generalizes.
	x, y := blobs(300, 1, 20)
	grid := Grid(map[string][]float64{"trees": {1, 40}})
	best, score := GridSearchClassifier(x, y, grid, 4, 1, func(p Params) Classifier {
		return &RandomForest{NumTrees: int(p["trees"]), Seed: 1}
	})
	if best["trees"] != 40 {
		t.Errorf("grid search picked %v trees", best["trees"])
	}
	if score < 0.75 {
		t.Errorf("CV score = %v", score)
	}
}

func TestGridSearchRegressor(t *testing.T) {
	x, y := linearData(200, 0.1, 21)
	grid := Grid(map[string][]float64{"l2": {0.001, 1000}})
	best, mae := GridSearchRegressor(x, y, grid, 4, 1, func(p Params) Regressor {
		return &LinearRegression{L2: p["l2"]}
	})
	if best["l2"] != 0.001 {
		t.Errorf("picked l2 = %v, want small", best["l2"])
	}
	if mae > 0.3 {
		t.Errorf("CV MAE = %v", mae)
	}
}

func TestSelectFeaturesKeepsSignalDropsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 300
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		cls := i % 2
		y[i] = cls
		signal := float64(cls)*3 + rng.NormFloat64()
		x[i] = []float64{signal, rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	cols := SelectFeatures(x, y, nil, 8, 1)
	found := false
	for _, c := range cols {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("signal feature dropped: %v", cols)
	}
	if len(cols) > 2 {
		t.Errorf("too many noise features kept: %v", cols)
	}
	proj := ProjectColumns(x, cols)
	if len(proj[0]) != len(cols) {
		t.Error("projection width wrong")
	}
}

func TestSelectFeaturesBinaryIndicators(t *testing.T) {
	// Sparse binary indicator carrying the signal must survive against
	// continuous probes (the importance-bias case).
	rng := rand.New(rand.NewSource(23))
	n := 400
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		cls := i % 2
		y[i] = cls
		ind := 0.0
		if cls == 1 && rng.Float64() < 0.9 {
			ind = 1
		}
		x[i] = []float64{ind, rng.NormFloat64()}
	}
	cols := SelectFeatures(x, y, nil, 8, 2)
	found := false
	for _, c := range cols {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("binary signal indicator dropped: %v", cols)
	}
}

func TestLabelEncoder(t *testing.T) {
	col := &dataset.Column{Name: "y", Values: []dataset.Value{
		dataset.String("a"), dataset.String("b"), dataset.String("a"),
	}}
	enc := FitLabels(col)
	if enc.NumClasses() != 2 {
		t.Fatalf("classes = %d", enc.NumClasses())
	}
	ids, err := enc.Encode(col.Values)
	if err != nil || ids[0] != ids[2] || ids[0] == ids[1] {
		t.Errorf("encoded = %v, %v", ids, err)
	}
	if _, err := enc.Encode([]dataset.Value{dataset.String("zzz")}); err == nil {
		t.Error("unseen label encoded without error")
	}
}
