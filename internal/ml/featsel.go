package ml

import (
	"math/rand"
	"sort"
)

// SelectFeatures implements the ARDA-style random-injection feature
// selection the Full+FE baseline uses (paper reference [15]): inject
// synthetic random-noise probe features, train a random forest, and keep
// only real features whose importance exceeds a quantile of the probes'
// importances. Features that cannot beat noise are discarded.
//
// x is the candidate feature matrix; yClass is non-nil for
// classification, yReg for regression. It returns the indices of the
// selected columns, sorted ascending. If nothing beats the probes the
// single best real feature is kept so the downstream model always has
// input.
func SelectFeatures(x [][]float64, yClass []int, yReg []float64, probes int, seed int64) []int {
	n := len(x)
	if n == 0 {
		return nil
	}
	d := len(x[0])
	if d == 0 {
		return nil
	}
	if probes <= 0 {
		probes = d / 4
		if probes < 3 {
			probes = 3
		}
	}
	rng := rand.New(rand.NewSource(seed))
	// Probes mimic the real feature types: impurity-based importances
	// are biased toward continuous features (they admit more candidate
	// splits), so a binary indicator column must be compared against
	// binary probes and a continuous column against continuous ones.
	binary := make([]bool, d)
	for j := 0; j < d; j++ {
		binary[j] = true
		for i := 0; i < n && binary[j]; i++ {
			v := x[i][j]
			if v != 0 && v != 1 {
				binary[j] = false
			}
		}
	}
	aug := make([][]float64, n)
	for i, row := range x {
		r := make([]float64, d+2*probes)
		copy(r, row)
		for p := 0; p < probes; p++ {
			r[d+p] = rng.NormFloat64() // continuous probes
			if rng.Float64() < 0.3 {   // binary probes
				r[d+probes+p] = 1
			}
		}
		aug[i] = r
	}
	rf := &RandomForest{NumTrees: 60, MinLeaf: 2, Seed: seed}
	if yClass != nil {
		rf.Fit(aug, yClass)
	} else {
		rf.FitRegression(aug, yReg)
	}
	imp := rf.FeatureImportances()

	contProbe := append([]float64(nil), imp[d:d+probes]...)
	binProbe := append([]float64(nil), imp[d+probes:]...)
	sort.Float64s(contProbe)
	sort.Float64s(binProbe)
	// Threshold at the 75th percentile of the matching probe type: a
	// real feature must clearly beat noise of its own kind.
	contThr := contProbe[(len(contProbe)*3)/4]
	binThr := binProbe[(len(binProbe)*3)/4]

	var selected []int
	for j := 0; j < d; j++ {
		thr := contThr
		if binary[j] {
			thr = binThr
		}
		if imp[j] > thr {
			selected = append(selected, j)
		}
	}
	if len(selected) == 0 {
		best := 0
		for j := 1; j < d; j++ {
			if imp[j] > imp[best] {
				best = j
			}
		}
		selected = []int{best}
	}
	return selected
}

// ProjectColumns returns x restricted to the given column indices.
func ProjectColumns(x [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(cols))
		for k, j := range cols {
			if j < len(row) {
				r[k] = row[j]
			}
		}
		out[i] = r
	}
	return out
}
