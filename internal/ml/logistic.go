package ml

import (
	"math"
	"math/rand"
)

// LogisticRegression is multinomial (softmax) logistic regression with
// an ElasticNet penalty, the classification linear model of paper
// Fig. 4b. Training is mini-batch SGD with an L2 term in the gradient
// and an L1 proximal (soft-threshold) step after each update.
type LogisticRegression struct {
	// Alpha is the overall penalty strength. Default 1e-4.
	Alpha float64
	// L1Ratio balances L1 vs L2 (ElasticNet). Default 0.5.
	L1Ratio float64
	// Epochs over the training set. Default 50.
	Epochs int
	// LearningRate is the initial SGD step. Default 0.1, decayed 1/t.
	LearningRate float64
	// BatchSize for mini-batch SGD. Default 32.
	BatchSize int
	// Seed for shuffling.
	Seed int64

	numClasses int
	dim        int
	w          []float64 // numClasses x dim
	b          []float64 // numClasses
}

func (m *LogisticRegression) params() (alpha, l1, lr float64, epochs, batch int) {
	alpha = m.Alpha
	if alpha <= 0 {
		alpha = 1e-4
	}
	l1 = m.L1Ratio
	if m.L1Ratio == 0 {
		l1 = 0.5
	}
	if l1 < 0 {
		l1 = 0
	}
	if l1 > 1 {
		l1 = 1
	}
	lr = m.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	epochs = m.Epochs
	if epochs <= 0 {
		epochs = 50
	}
	batch = m.BatchSize
	if batch <= 0 {
		batch = 32
	}
	return alpha, l1, lr, epochs, batch
}

// Fit trains the classifier on x with labels y in [0, max(y)].
func (m *LogisticRegression) Fit(x [][]float64, y []int) {
	n := len(x)
	if n == 0 {
		return
	}
	m.dim = len(x[0])
	m.numClasses = 0
	for _, c := range y {
		if c+1 > m.numClasses {
			m.numClasses = c + 1
		}
	}
	if m.numClasses < 2 {
		m.numClasses = 2
	}
	alpha, l1, lr0, epochs, batch := m.params()
	m.w = make([]float64, m.numClasses*m.dim)
	m.b = make([]float64, m.numClasses)

	rng := rand.New(rand.NewSource(m.Seed))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, m.numClasses)
	step := 0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			step++
			lr := lr0 / (1 + 0.01*float64(step))
			scale := lr / float64(hi-lo)
			for _, i := range order[lo:hi] {
				m.softmax(x[i], probs)
				for c := 0; c < m.numClasses; c++ {
					g := probs[c]
					if c == y[i] {
						g -= 1
					}
					if g == 0 {
						continue
					}
					wc := m.w[c*m.dim : (c+1)*m.dim]
					gs := g * scale
					for j, v := range x[i] {
						wc[j] -= gs * v
					}
					m.b[c] -= gs
				}
			}
			// ElasticNet: L2 shrink + L1 proximal step.
			l2Mul := 1 - lr*alpha*(1-l1)
			if l2Mul < 0 {
				l2Mul = 0
			}
			l1Step := lr * alpha * l1
			for k := range m.w {
				m.w[k] = softThreshold(m.w[k]*l2Mul, l1Step)
			}
		}
	}
}

func (m *LogisticRegression) softmax(row []float64, probs []float64) {
	maxZ := math.Inf(-1)
	for c := 0; c < m.numClasses; c++ {
		z := m.b[c]
		wc := m.w[c*m.dim : (c+1)*m.dim]
		for j, v := range row {
			if j < len(wc) {
				z += wc[j] * v
			}
		}
		probs[c] = z
		if z > maxZ {
			maxZ = z
		}
	}
	sum := 0.0
	for c := range probs[:m.numClasses] {
		probs[c] = math.Exp(probs[c] - maxZ)
		sum += probs[c]
	}
	for c := range probs[:m.numClasses] {
		probs[c] /= sum
	}
}

// Predict returns the argmax class per row.
func (m *LogisticRegression) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	probs := make([]float64, m.numClasses)
	for i, row := range x {
		m.softmax(row, probs)
		best := 0
		for c := 1; c < m.numClasses; c++ {
			if probs[c] > probs[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

// PredictProba returns class probabilities per row.
func (m *LogisticRegression) PredictProba(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		probs := make([]float64, m.numClasses)
		m.softmax(row, probs)
		out[i] = probs
	}
	return out
}
