package ml

import "math"

// Params is one hyper-parameter assignment.
type Params map[string]float64

// Grid expands the cross product of named parameter candidate lists
// into concrete Params assignments, in deterministic order.
func Grid(axes map[string][]float64) []Params {
	names := make([]string, 0, len(axes))
	for n := range axes {
		names = append(names, n)
	}
	// Insertion sort by name for determinism.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := []Params{{}}
	for _, n := range names {
		var next []Params
		for _, base := range out {
			for _, v := range axes[n] {
				p := Params{}
				for k, x := range base {
					p[k] = x
				}
				p[n] = v
				next = append(next, p)
			}
		}
		out = next
	}
	return out
}

// GridSearchClassifier runs k-fold cross validation over the grid and
// returns the parameter setting with the best mean accuracy, along with
// that accuracy. make must return a fresh model for the given params.
func GridSearchClassifier(x [][]float64, y []int, grid []Params, folds int, seed int64,
	make func(Params) Classifier) (Params, float64) {
	best, bestScore := Params{}, math.Inf(-1)
	kf := KFold(len(x), folds, seed)
	for _, p := range grid {
		score := 0.0
		for _, f := range kf {
			m := make(p)
			m.Fit(SelectRows(x, f.Train), SelectLabels(y, f.Train))
			pred := m.Predict(SelectRows(x, f.Test))
			score += Accuracy(pred, SelectLabels(y, f.Test))
		}
		score /= float64(len(kf))
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	return best, bestScore
}

// GridSearchRegressor runs k-fold CV over the grid minimizing MAE and
// returns the best params and their mean MAE.
func GridSearchRegressor(x [][]float64, y []float64, grid []Params, folds int, seed int64,
	make func(Params) Regressor) (Params, float64) {
	best, bestScore := Params{}, math.Inf(1)
	kf := KFold(len(x), folds, seed)
	for _, p := range grid {
		score := 0.0
		for _, f := range kf {
			m := make(p)
			m.FitRegression(SelectRows(x, f.Train), SelectFloats(y, f.Train))
			pred := m.PredictRegression(SelectRows(x, f.Test))
			score += MAE(pred, SelectFloats(y, f.Test))
		}
		score /= float64(len(kf))
		if score < bestScore {
			best, bestScore = p, score
		}
	}
	return best, bestScore
}
