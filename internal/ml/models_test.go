package ml

import (
	"math"
	"math/rand"
	"testing"
)

// linearData generates y = 3*x0 - 2*x1 + 1 + eps.
func linearData(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 3*x[i][0] - 2*x[i][1] + 1 + noise*rng.NormFloat64()
	}
	return x, y
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	x, y := linearData(500, 0.01, 1)
	m := &LinearRegression{}
	m.FitRegression(x, y)
	w := m.Weights()
	if math.Abs(w[0]-3) > 0.05 || math.Abs(w[1]+2) > 0.05 {
		t.Errorf("weights = %v, want [3, -2]", w)
	}
	pred := m.PredictRegression(x)
	if r := R2(pred, y); r < 0.999 {
		t.Errorf("R2 = %v", r)
	}
}

func TestLinearRegressionRidgeShrinks(t *testing.T) {
	x, y := linearData(50, 0.5, 2)
	plain := &LinearRegression{}
	plain.FitRegression(x, y)
	ridge := &LinearRegression{L2: 100}
	ridge.FitRegression(x, y)
	if math.Abs(ridge.Weights()[0]) >= math.Abs(plain.Weights()[0]) {
		t.Error("ridge did not shrink coefficients")
	}
}

func TestElasticNetSparsityAndFit(t *testing.T) {
	// Third feature is pure noise; strong L1 must zero it out.
	rng := rand.New(rand.NewSource(3))
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 2*x[i][0] - x[i][1] + 0.05*rng.NormFloat64()
	}
	m := &ElasticNetRegression{Alpha: 0.05, L1Ratio: 1}
	m.FitRegression(x, y)
	w := m.Weights()
	if math.Abs(w[2]) > 0.02 {
		t.Errorf("noise coefficient not shrunk: %v", w)
	}
	if w[0] < 1.5 || w[1] > -0.5 {
		t.Errorf("signal coefficients lost: %v", w)
	}
	pred := m.PredictRegression(x)
	if r := R2(pred, y); r < 0.95 {
		t.Errorf("R2 = %v", r)
	}
}

// blobs returns two Gaussian clusters labeled 0/1.
func blobs(n int, sep float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := i % 2
		y[i] = c
		ofs := -sep
		if c == 1 {
			ofs = sep
		}
		x[i] = []float64{ofs + rng.NormFloat64(), ofs + rng.NormFloat64()}
	}
	return x, y
}

func TestLogisticRegressionSeparable(t *testing.T) {
	x, y := blobs(400, 2.5, 4)
	m := &LogisticRegression{Epochs: 30, Seed: 1}
	m.Fit(x, y)
	if acc := Accuracy(m.Predict(x), y); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
	probs := m.PredictProba(x[:3])
	for _, p := range probs {
		s := 0.0
		for _, v := range p {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("probs do not sum to 1: %v", p)
		}
	}
}

func TestLogisticRegressionMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	centers := [][2]float64{{0, 0}, {5, 0}, {0, 5}}
	for i := 0; i < 600; i++ {
		c := i % 3
		x = append(x, []float64{centers[c][0] + rng.NormFloat64(), centers[c][1] + rng.NormFloat64()})
		y = append(y, c)
	}
	m := &LogisticRegression{Epochs: 40, Seed: 2}
	m.Fit(x, y)
	if acc := Accuracy(m.Predict(x), y); acc < 0.95 {
		t.Errorf("3-class accuracy = %v", acc)
	}
}

func TestRandomForestClassification(t *testing.T) {
	x, y := blobs(400, 2, 6)
	f := &RandomForest{NumTrees: 30, Seed: 1}
	f.Fit(x, y)
	if acc := Accuracy(f.Predict(x), y); acc < 0.95 {
		t.Errorf("forest accuracy = %v", acc)
	}
	imp := f.FeatureImportances()
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestRandomForestRegression(t *testing.T) {
	// Nonlinear target a linear model cannot fit: y = x0^2.
	rng := rand.New(rand.NewSource(7))
	n := 600
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64()*4 - 2}
		y[i] = x[i][0] * x[i][0]
	}
	f := &RandomForest{NumTrees: 40, Seed: 2}
	f.FitRegression(x, y)
	if r := R2(f.PredictRegression(x), y); r < 0.95 {
		t.Errorf("forest regression R2 = %v", r)
	}
}

func TestRandomForestMinLeafRegularizes(t *testing.T) {
	x, y := blobs(200, 0.3, 8) // heavily overlapping: memorization risk
	big := &RandomForest{NumTrees: 20, MinLeaf: 1, Seed: 3}
	big.Fit(x, y)
	reg := &RandomForest{NumTrees: 20, MinLeaf: 40, Seed: 3}
	reg.Fit(x, y)
	accBig := Accuracy(big.Predict(x), y)
	accReg := Accuracy(reg.Predict(x), y)
	if accReg >= accBig {
		t.Errorf("min-leaf forest fits training as well as unconstrained (%v >= %v)", accReg, accBig)
	}
}

func TestMLPXor(t *testing.T) {
	// XOR is the classic not-linearly-separable case.
	var x [][]float64
	var y []int
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		a, b := rng.Float64() > 0.5, rng.Float64() > 0.5
		fx := []float64{0, 0}
		if a {
			fx[0] = 1
		}
		if b {
			fx[1] = 1
		}
		fx[0] += rng.NormFloat64() * 0.1
		fx[1] += rng.NormFloat64() * 0.1
		x = append(x, fx)
		if a != b {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m := &MLP{Hidden: 16, Epochs: 150, Seed: 4}
	m.Fit(x, y)
	if acc := Accuracy(m.Predict(x), y); acc < 0.95 {
		t.Errorf("XOR accuracy = %v", acc)
	}
}

func TestMLPRegression(t *testing.T) {
	x, y := linearData(400, 0.05, 10)
	m := &MLP{Hidden: 16, Epochs: 150, Seed: 5}
	m.FitRegression(x, y)
	if r := R2(m.PredictRegression(x), y); r < 0.97 {
		t.Errorf("MLP regression R2 = %v", r)
	}
}

func TestMLPMultiRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 300
	x := make([][]float64, n)
	y := make([][]float64, n)
	for i := range x {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{a, b}
		y[i] = []float64{2 * a, a + b}
	}
	m := &MLP{Hidden: 16, Epochs: 150, Seed: 6}
	m.FitMultiRegression(x, y)
	if r := R2Multi(m.PredictMultiRegression(x), y); r < 0.95 {
		t.Errorf("multi-output R2 = %v", r)
	}
}

func TestMultiOutputLinear(t *testing.T) {
	x, y1 := linearData(200, 0.01, 12)
	y := make([][]float64, len(y1))
	for i, v := range y1 {
		y[i] = []float64{v, -v}
	}
	mo := &MultiOutput{New: func(int) Regressor { return &LinearRegression{} }}
	mo.Fit(x, y)
	if r := R2Multi(mo.Predict(x), y); r < 0.999 {
		t.Errorf("multi-output linear R2 = %v", r)
	}
}

// Property: forest class predictions always land in the label range,
// whatever the data looks like.
func TestForestPredictionRangeProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(50)
		k := 2 + rng.Intn(4)
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 100}
			y[i] = rng.Intn(k)
		}
		f := &RandomForest{NumTrees: 10, Seed: seed}
		f.Fit(x, y)
		for _, p := range f.Predict(x) {
			if p < 0 || p >= k {
				t.Fatalf("seed %d: prediction %d outside [0,%d)", seed, p, k)
			}
		}
	}
}

// Property: model outputs stay finite on adversarial feature scales.
func TestModelsFiniteOnExtremeScales(t *testing.T) {
	x := [][]float64{{1e12, -1e-12}, {-1e12, 1e-12}, {0, 0}, {1e12, 1e-12}}
	yClass := []int{0, 1, 0, 1}
	yReg := []float64{1e6, -1e6, 0, 1e6}

	lr := &LogisticRegression{Epochs: 5, Seed: 1}
	lr.Fit(x, yClass)
	for _, row := range lr.PredictProba(x) {
		for _, p := range row {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatal("logistic produced non-finite probability")
			}
		}
	}
	lin := &LinearRegression{}
	lin.FitRegression(x, yReg)
	for _, p := range lin.PredictRegression(x) {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("linear regression produced non-finite prediction")
		}
	}
}

func TestMLPDropoutStillLearns(t *testing.T) {
	x, y := blobs(400, 2.5, 13)
	m := &MLP{Hidden: 32, Epochs: 100, Dropout: 0.3, Seed: 7}
	m.Fit(x, y)
	if acc := Accuracy(m.Predict(x), y); acc < 0.9 {
		t.Errorf("dropout accuracy = %v", acc)
	}
}
