package ml

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// RandomForest is a bagged ensemble of CART trees usable for both
// classification (Fit/Predict) and regression
// (FitRegression/PredictRegression). Bootstrap sampling plus sqrt(d)
// feature subsampling per split; MinLeaf is the "minimum number of
// nodes per leaf" regularizer from paper Table 6.
type RandomForest struct {
	// NumTrees is the ensemble size. Default 100.
	NumTrees int
	// MaxDepth caps tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf. Default 1.
	MinLeaf int
	// MaxFeatures is the number of features per split; 0 means
	// sqrt(d) for classification and d/3 for regression.
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64
	// Workers caps parallel tree construction; 0 means GOMAXPROCS.
	Workers int

	trees      []*tree
	numClasses int
	importance []float64
	dim        int
}

func (f *RandomForest) config(d int, numClasses int, rng *rand.Rand) *treeConfig {
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 {
		if numClasses > 0 {
			maxFeat = int(math.Sqrt(float64(d)))
		} else {
			maxFeat = d / 3
		}
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	minLeaf := f.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 1
	}
	return &treeConfig{
		maxDepth:    f.MaxDepth,
		minLeaf:     minLeaf,
		maxFeatures: maxFeat,
		numClasses:  numClasses,
		rng:         rng,
	}
}

func (f *RandomForest) numTrees() int {
	if f.NumTrees <= 0 {
		return 100
	}
	return f.NumTrees
}

func (f *RandomForest) workers() int {
	if f.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return f.Workers
}

// Fit trains a classification forest; labels must lie in [0, max(y)].
func (f *RandomForest) Fit(x [][]float64, y []int) {
	numClasses := 0
	for _, c := range y {
		if c+1 > numClasses {
			numClasses = c + 1
		}
	}
	if numClasses < 2 {
		numClasses = 2
	}
	f.fit(x, y, nil, numClasses)
}

// FitRegression trains a regression forest.
func (f *RandomForest) FitRegression(x [][]float64, y []float64) {
	f.fit(x, nil, y, 0)
}

func (f *RandomForest) fit(x [][]float64, yClass []int, yReg []float64, numClasses int) {
	n := len(x)
	f.numClasses = numClasses
	if n == 0 {
		f.trees = nil
		return
	}
	f.dim = len(x[0])
	nt := f.numTrees()
	f.trees = make([]*tree, nt)
	importances := make([][]float64, nt)

	var wg sync.WaitGroup
	sem := make(chan struct{}, f.workers())
	for t := 0; t < nt; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(f.Seed + int64(t)*104729 + 1))
			idx := make([]int, n)
			for i := range idx {
				idx[i] = rng.Intn(n) // bootstrap sample
			}
			cfg := f.config(f.dim, numClasses, rng)
			cfg.impurityDecay = make([]float64, f.dim)
			f.trees[t] = buildTree(x, yClass, yReg, idx, cfg)
			importances[t] = cfg.impurityDecay
		}(t)
	}
	wg.Wait()

	f.importance = make([]float64, f.dim)
	for _, imp := range importances {
		for j, v := range imp {
			f.importance[j] += v
		}
	}
	total := 0.0
	for _, v := range f.importance {
		total += v
	}
	if total > 0 {
		for j := range f.importance {
			f.importance[j] /= total
		}
	}
}

// Predict returns majority-vote class predictions.
func (f *RandomForest) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		votes := make([]float64, f.numClasses)
		for _, t := range f.trees {
			counts := t.predictClassCounts(row)
			total := 0.0
			for _, c := range counts {
				total += c
			}
			if total == 0 {
				continue
			}
			for c, v := range counts {
				votes[c] += v / total
			}
		}
		best := 0
		for c := 1; c < len(votes); c++ {
			if votes[c] > votes[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

// PredictRegression returns mean-of-trees predictions.
func (f *RandomForest) PredictRegression(x [][]float64) []float64 {
	out := make([]float64, len(x))
	if len(f.trees) == 0 {
		return out
	}
	for i, row := range x {
		s := 0.0
		for _, t := range f.trees {
			s += t.predictValue(row)
		}
		out[i] = s / float64(len(f.trees))
	}
	return out
}

// FeatureImportances returns normalized mean-decrease-impurity
// importances, the signal the ARDA-style feature selection ranks with.
func (f *RandomForest) FeatureImportances() []float64 { return f.importance }
