package ml

// MultiOutput fits one independent regressor per output dimension, the
// vector-valued regression the Fig. 3 embedding-recovery experiment
// needs (mapping E_all token vectors onto E_clean token vectors).
type MultiOutput struct {
	// New returns a fresh single-output regressor for output dim j.
	New func(j int) Regressor

	models []Regressor
}

// Fit trains len(y[0]) regressors on (x, y column j).
func (m *MultiOutput) Fit(x [][]float64, y [][]float64) {
	if len(y) == 0 {
		return
	}
	k := len(y[0])
	m.models = make([]Regressor, k)
	col := make([]float64, len(y))
	for j := 0; j < k; j++ {
		for i := range y {
			col[i] = y[i][j]
		}
		r := m.New(j)
		r.FitRegression(x, append([]float64(nil), col...))
		m.models[j] = r
	}
}

// Predict returns the stacked per-dimension predictions.
func (m *MultiOutput) Predict(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i := range out {
		out[i] = make([]float64, len(m.models))
	}
	for j, r := range m.models {
		pred := r.PredictRegression(x)
		for i, v := range pred {
			out[i][j] = v
		}
	}
	return out
}

// R2Multi returns the pooled coefficient of determination over every
// (sample, dimension) pair.
func R2Multi(pred, truth [][]float64) float64 {
	var flatP, flatT []float64
	for i := range truth {
		flatP = append(flatP, pred[i]...)
		flatT = append(flatT, truth[i]...)
	}
	return R2(flatP, flatT)
}
