package ml

import "math"

// Accuracy returns the fraction of exact label matches.
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("ml: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	n := 0
	for i, p := range pred {
		if p == truth[i] {
			n++
		}
	}
	return float64(n) / float64(len(pred))
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("ml: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		s += math.Abs(p - truth[i])
	}
	return s / float64(len(pred))
}

// MSE returns the mean squared error.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("ml: MSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		d := p - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination of predictions against
// truth; 1 is perfect, 0 matches predicting the mean, negative is worse
// than the mean.
func R2(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("ml: R2 length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	mean := 0.0
	for _, t := range truth {
		mean += t
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i, t := range truth {
		d := t - pred[i]
		ssRes += d * d
		m := t - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// F1Binary returns the F1 score treating class `positive` as positive.
func F1Binary(pred, truth []int, positive int) float64 {
	if len(pred) != len(truth) {
		panic("ml: F1Binary length mismatch")
	}
	var tp, fp, fn float64
	for i, p := range pred {
		t := truth[i]
		switch {
		case p == positive && t == positive:
			tp++
		case p == positive && t != positive:
			fp++
		case p != positive && t == positive:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}

// PrecisionRecallF1 returns the binary precision, recall and F1 given
// counts of true positives, false positives and false negatives. It is
// the scoring primitive the entity-resolution experiment uses on sets of
// predicted match pairs.
func PrecisionRecallF1(tp, fp, fn int) (prec, rec, f1 float64) {
	if tp == 0 {
		return 0, 0, 0
	}
	prec = float64(tp) / float64(tp+fp)
	rec = float64(tp) / float64(tp+fn)
	f1 = 2 * prec * rec / (prec + rec)
	return prec, rec, f1
}

// AUC returns the area under the ROC curve for binary classification
// given positive-class scores. Ties in score contribute half, the
// standard Mann-Whitney convention.
func AUC(scores []float64, truth []int, positive int) float64 {
	if len(scores) != len(truth) {
		panic("ml: AUC length mismatch")
	}
	type pair struct {
		score float64
		pos   bool
	}
	pairs := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		p := truth[i] == positive
		pairs[i] = pair{score: s, pos: p}
		if p {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	// O(n^2) pair counting is fine at evaluation sizes and avoids a
	// rank-with-ties subtlety.
	wins := 0.0
	for _, a := range pairs {
		if !a.pos {
			continue
		}
		for _, b := range pairs {
			if b.pos {
				continue
			}
			switch {
			case a.score > b.score:
				wins++
			case a.score == b.score:
				wins += 0.5
			}
		}
	}
	return wins / float64(nPos*nNeg)
}

// MacroF1 averages per-class F1 over numClasses classes.
func MacroF1(pred, truth []int, numClasses int) float64 {
	if numClasses == 0 {
		return 0
	}
	s := 0.0
	for c := 0; c < numClasses; c++ {
		s += F1Binary(pred, truth, c)
	}
	return s / float64(numClasses)
}
