package ml

import (
	"fmt"
	"strings"
)

// ConfusionMatrix counts prediction outcomes per (true, predicted)
// class pair.
type ConfusionMatrix struct {
	NumClasses int
	Counts     [][]int // Counts[true][pred]
}

// NewConfusionMatrix tallies predictions against truth.
func NewConfusionMatrix(pred, truth []int, numClasses int) *ConfusionMatrix {
	if len(pred) != len(truth) {
		panic("ml: confusion matrix length mismatch")
	}
	m := &ConfusionMatrix{NumClasses: numClasses, Counts: make([][]int, numClasses)}
	for i := range m.Counts {
		m.Counts[i] = make([]int, numClasses)
	}
	for i, p := range pred {
		t := truth[i]
		if t >= 0 && t < numClasses && p >= 0 && p < numClasses {
			m.Counts[t][p]++
		}
	}
	return m
}

// Accuracy returns trace / total.
func (m *ConfusionMatrix) Accuracy() float64 {
	diag, total := 0, 0
	for i := range m.Counts {
		for j, c := range m.Counts[i] {
			total += c
			if i == j {
				diag += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// PerClass returns precision, recall and F1 for one class.
func (m *ConfusionMatrix) PerClass(c int) (prec, rec, f1 float64) {
	tp := m.Counts[c][c]
	fp, fn := 0, 0
	for i := 0; i < m.NumClasses; i++ {
		if i != c {
			fp += m.Counts[i][c]
			fn += m.Counts[c][i]
		}
	}
	return PrecisionRecallF1(tp, fp, fn)
}

// String renders the matrix with per-class metrics, a classification
// report.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion matrix (%d classes, accuracy %.3f)\n", m.NumClasses, m.Accuracy())
	b.WriteString("true\\pred")
	for j := 0; j < m.NumClasses; j++ {
		fmt.Fprintf(&b, "%8d", j)
	}
	b.WriteString("    prec   rec    f1\n")
	for i := 0; i < m.NumClasses; i++ {
		fmt.Fprintf(&b, "%9d", i)
		for j := 0; j < m.NumClasses; j++ {
			fmt.Fprintf(&b, "%8d", m.Counts[i][j])
		}
		p, r, f := m.PerClass(i)
		fmt.Fprintf(&b, "   %.3f  %.3f  %.3f\n", p, r, f)
	}
	return b.String()
}
