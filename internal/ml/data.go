// Package ml is the machine-learning substrate the evaluation needs:
// the downstream models the paper trains on featurized data (random
// forest, logistic regression and linear models with ElasticNet, and a
// 2-layer fully connected network with dropout), plus metrics, one-hot
// table encoding, train/test splitting, grid search, and the ARDA-style
// random-injection feature selection used by the Full+FE baseline.
//
// Feature matrices are row-major [][]float64; classification labels are
// ints in [0, numClasses).
package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Split holds train/test index partitions of a table or matrix.
type Split struct {
	Train []int
	Test  []int
}

// TrainTestSplit shuffles [0, n) with the seeded RNG and carves off
// testFrac of it as the test set.
func TrainTestSplit(n int, testFrac float64, seed int64) Split {
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(float64(n) * (1 - testFrac))
	if cut < 1 && n > 1 {
		cut = 1
	}
	if cut > n {
		cut = n
	}
	return Split{Train: idx[:cut], Test: idx[cut:]}
}

// KFold yields k train/test partitions of [0, n).
func KFold(n, k int, seed int64) []Split {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([]Split, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), idx[lo:hi]...)
		train := make([]int, 0, n-len(test))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds[f] = Split{Train: train, Test: test}
	}
	return folds
}

// SelectRows gathers rows of x at the given indices (vectors shared).
func SelectRows(x [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

// SelectLabels gathers labels at the given indices.
func SelectLabels(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// SelectFloats gathers float targets at the given indices.
func SelectFloats(y []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// Standardizer rescales features to zero mean, unit variance, fitted on
// training data and applied to both splits.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-column moments of x.
func FitStandardizer(x [][]float64) *Standardizer {
	if len(x) == 0 {
		return &Standardizer{}
	}
	d := len(x[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Standardizer) Transform(x [][]float64) [][]float64 {
	if len(s.Mean) == 0 {
		return x
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i] = r
	}
	return out
}

// Classifier is a supervised classification model.
type Classifier interface {
	Fit(x [][]float64, y []int)
	Predict(x [][]float64) []int
}

// Regressor is a supervised regression model.
type Regressor interface {
	FitRegression(x [][]float64, y []float64)
	PredictRegression(x [][]float64) []float64
}

// LabelEncoder maps arbitrary target values to class ids.
type LabelEncoder struct {
	classes []dataset.Value
	index   map[dataset.Value]int
}

// FitLabels builds an encoder over the distinct values of col.
func FitLabels(col *dataset.Column) *LabelEncoder {
	e := &LabelEncoder{index: make(map[dataset.Value]int)}
	for _, v := range col.Values {
		if _, ok := e.index[v]; !ok {
			e.index[v] = len(e.classes)
			e.classes = append(e.classes, v)
		}
	}
	return e
}

// NumClasses returns the number of distinct labels.
func (e *LabelEncoder) NumClasses() int { return len(e.classes) }

// Encode maps values to class ids; unknown values return an error.
func (e *LabelEncoder) Encode(vals []dataset.Value) ([]int, error) {
	out := make([]int, len(vals))
	for i, v := range vals {
		id, ok := e.index[v]
		if !ok {
			return nil, fmt.Errorf("ml: unseen label %v", v)
		}
		out[i] = id
	}
	return out, nil
}
