package ml

import (
	"math"
	"math/rand"
)

// MLP is the paper's 2-layer fully connected network: one ReLU hidden
// layer (default width 64) followed by a linear output — softmax
// cross-entropy for classification, mean squared error for regression.
// Training is mini-batch Adam with optional dropout on the hidden layer
// (the regularizer of paper Table 6) and optional L2 weight decay.
type MLP struct {
	// Hidden is the hidden-layer width. Default 64.
	Hidden int
	// Epochs over the training set. Default 100.
	Epochs int
	// BatchSize for mini-batch updates. Default 32.
	BatchSize int
	// LearningRate is the Adam step size. Default 1e-3.
	LearningRate float64
	// Dropout is the hidden-unit drop probability at train time.
	Dropout float64
	// L2 is the weight-decay coefficient.
	L2 float64
	// Seed makes initialization and shuffling deterministic.
	Seed int64

	dim, out   int
	regression bool

	w1, b1, w2, b2 []float64
	// Adam state
	mw1, vw1, mb1, vb1 []float64
	mw2, vw2, mb2, vb2 []float64
	step               int
}

func (m *MLP) hidden() int {
	if m.Hidden <= 0 {
		return 64
	}
	return m.Hidden
}

func (m *MLP) epochs() int {
	if m.Epochs <= 0 {
		return 100
	}
	return m.Epochs
}

func (m *MLP) batch() int {
	if m.BatchSize <= 0 {
		return 32
	}
	return m.BatchSize
}

func (m *MLP) lr() float64 {
	if m.LearningRate <= 0 {
		return 1e-3
	}
	return m.LearningRate
}

// Fit trains for classification with labels in [0, max(y)].
func (m *MLP) Fit(x [][]float64, y []int) {
	numClasses := 0
	for _, c := range y {
		if c+1 > numClasses {
			numClasses = c + 1
		}
	}
	if numClasses < 2 {
		numClasses = 2
	}
	m.regression = false
	m.train(x, y, nil, numClasses)
}

// FitRegression trains for scalar regression.
func (m *MLP) FitRegression(x [][]float64, y []float64) {
	cols := make([][]float64, len(y))
	for i, v := range y {
		cols[i] = []float64{v}
	}
	m.FitMultiRegression(x, cols)
}

// FitMultiRegression trains for vector-valued regression (one linear
// output unit per target dimension, MSE loss).
func (m *MLP) FitMultiRegression(x [][]float64, y [][]float64) {
	m.regression = true
	out := 1
	if len(y) > 0 {
		out = len(y[0])
	}
	m.train(x, nil, y, out)
}

func (m *MLP) train(x [][]float64, yClass []int, yReg [][]float64, out int) {
	n := len(x)
	if n == 0 {
		return
	}
	m.dim = len(x[0])
	m.out = out
	h := m.hidden()
	rng := rand.New(rand.NewSource(m.Seed))

	// He initialization for the ReLU layer, Xavier for the output.
	m.w1 = make([]float64, h*m.dim)
	scale1 := math.Sqrt(2 / float64(m.dim))
	for i := range m.w1 {
		m.w1[i] = rng.NormFloat64() * scale1
	}
	m.b1 = make([]float64, h)
	m.w2 = make([]float64, out*h)
	scale2 := math.Sqrt(1 / float64(h))
	for i := range m.w2 {
		m.w2[i] = rng.NormFloat64() * scale2
	}
	m.b2 = make([]float64, out)
	m.mw1 = make([]float64, len(m.w1))
	m.vw1 = make([]float64, len(m.w1))
	m.mb1 = make([]float64, len(m.b1))
	m.vb1 = make([]float64, len(m.b1))
	m.mw2 = make([]float64, len(m.w2))
	m.vw2 = make([]float64, len(m.w2))
	m.mb2 = make([]float64, len(m.b2))
	m.vb2 = make([]float64, len(m.b2))

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	gw1 := make([]float64, len(m.w1))
	gb1 := make([]float64, len(m.b1))
	gw2 := make([]float64, len(m.w2))
	gb2 := make([]float64, len(m.b2))
	hid := make([]float64, h)
	act := make([]float64, h)
	mask := make([]bool, h)
	outv := make([]float64, out)
	dOut := make([]float64, out)
	dHid := make([]float64, h)

	for e := 0; e < m.epochs(); e++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < n; lo += m.batch() {
			hi := lo + m.batch()
			if hi > n {
				hi = n
			}
			zero(gw1)
			zero(gb1)
			zero(gw2)
			zero(gb2)
			for _, i := range order[lo:hi] {
				m.forward(x[i], hid, act, mask, outv, rng, true)
				// Output gradient.
				if m.regression {
					for c := 0; c < out; c++ {
						dOut[c] = outv[c] - yReg[i][c]
					}
				} else {
					softmaxInPlace(outv)
					copy(dOut, outv)
					dOut[yClass[i]] -= 1
				}
				// Backprop to hidden.
				for j := 0; j < h; j++ {
					s := 0.0
					for c := 0; c < out; c++ {
						s += dOut[c] * m.w2[c*h+j]
					}
					if act[j] <= 0 || mask[j] {
						s = 0
					}
					dHid[j] = s
				}
				for c := 0; c < out; c++ {
					for j := 0; j < h; j++ {
						gw2[c*h+j] += dOut[c] * act[j]
					}
					gb2[c] += dOut[c]
				}
				for j := 0; j < h; j++ {
					if dHid[j] == 0 {
						continue
					}
					row := gw1[j*m.dim : (j+1)*m.dim]
					for k, v := range x[i] {
						row[k] += dHid[j] * v
					}
					gb1[j] += dHid[j]
				}
			}
			inv := 1 / float64(hi-lo)
			m.step++
			m.adam(m.w1, gw1, m.mw1, m.vw1, inv)
			m.adam(m.b1, gb1, m.mb1, m.vb1, inv)
			m.adam(m.w2, gw2, m.mw2, m.vw2, inv)
			m.adam(m.b2, gb2, m.mb2, m.vb2, inv)
		}
	}
}

// forward computes hidden pre-activations, ReLU activations (with
// optional inverted dropout when train is true) and output logits.
func (m *MLP) forward(row []float64, hid, act []float64, mask []bool, outv []float64, rng *rand.Rand, train bool) {
	h := len(hid)
	for j := 0; j < h; j++ {
		s := m.b1[j]
		wj := m.w1[j*m.dim : (j+1)*m.dim]
		for k, v := range row {
			if k < len(wj) {
				s += wj[k] * v
			}
		}
		hid[j] = s
		a := s
		if a < 0 {
			a = 0
		}
		mask[j] = false
		if train && m.Dropout > 0 {
			if rng.Float64() < m.Dropout {
				a = 0
				mask[j] = true
			} else {
				a /= 1 - m.Dropout
			}
		}
		act[j] = a
	}
	for c := 0; c < m.out; c++ {
		s := m.b2[c]
		wc := m.w2[c*h : (c+1)*h]
		for j := 0; j < h; j++ {
			s += wc[j] * act[j]
		}
		outv[c] = s
	}
}

func (m *MLP) adam(w, g, mom, vel []float64, gradScale float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	lr := m.lr()
	bc1 := 1 - math.Pow(beta1, float64(m.step))
	bc2 := 1 - math.Pow(beta2, float64(m.step))
	for i := range w {
		grad := g[i]*gradScale + m.L2*w[i]
		mom[i] = beta1*mom[i] + (1-beta1)*grad
		vel[i] = beta2*vel[i] + (1-beta2)*grad*grad
		w[i] -= lr * (mom[i] / bc1) / (math.Sqrt(vel[i]/bc2) + eps)
	}
}

// Predict returns argmax class predictions.
func (m *MLP) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	h := m.hidden()
	hid := make([]float64, h)
	act := make([]float64, h)
	mask := make([]bool, h)
	outv := make([]float64, m.out)
	for i, row := range x {
		m.forward(row, hid, act, mask, outv, nil, false)
		best := 0
		for c := 1; c < m.out; c++ {
			if outv[c] > outv[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

// PredictRegression returns scalar predictions.
func (m *MLP) PredictRegression(x [][]float64) []float64 {
	multi := m.PredictMultiRegression(x)
	out := make([]float64, len(x))
	for i, row := range multi {
		out[i] = row[0]
	}
	return out
}

// PredictMultiRegression returns vector-valued predictions.
func (m *MLP) PredictMultiRegression(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	h := m.hidden()
	hid := make([]float64, h)
	act := make([]float64, h)
	mask := make([]bool, h)
	outv := make([]float64, m.out)
	for i, row := range x {
		m.forward(row, hid, act, mask, outv, nil, false)
		out[i] = append([]float64(nil), outv...)
	}
	return out
}

func softmaxInPlace(v []float64) {
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	sum := 0.0
	for i := range v {
		v[i] = math.Exp(v[i] - maxV)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
