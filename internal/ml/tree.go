package ml

import (
	"math/rand"
	"sort"
)

// treeNode is one CART node; leaves have featureIdx == -1.
type treeNode struct {
	featureIdx int
	threshold  float64
	left       int32 // child indices into the tree's node arena
	right      int32
	// leaf payload
	classCounts []float64 // classification: per-class training counts
	value       float64   // regression: mean target
}

// treeConfig bundles the hyper-parameters shared by both tree kinds.
type treeConfig struct {
	maxDepth      int
	minLeaf       int // regularization: "minimum number of nodes per leaf" (paper Table 6)
	maxFeatures   int // features considered per split; 0 = all
	numClasses    int // 0 for regression
	rng           *rand.Rand
	impurityDecay []float64 // per-feature accumulated impurity decrease (importance)
}

// tree is a fitted CART over an arena of nodes.
type tree struct {
	nodes      []treeNode
	numClasses int
}

// buildTree grows a tree on x[idx], y[idx].
func buildTree(x [][]float64, yClass []int, yReg []float64, idx []int, cfg *treeConfig) *tree {
	t := &tree{numClasses: cfg.numClasses}
	t.grow(x, yClass, yReg, idx, cfg, 0)
	return t
}

func (t *tree) grow(x [][]float64, yClass []int, yReg []float64, idx []int, cfg *treeConfig, depth int) int32 {
	nodeID := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{featureIdx: -1})

	if cfg.numClasses > 0 {
		counts := make([]float64, cfg.numClasses)
		for _, i := range idx {
			counts[yClass[i]]++
		}
		t.nodes[nodeID].classCounts = counts
		if pure(counts) || len(idx) < 2*cfg.minLeaf || (cfg.maxDepth > 0 && depth >= cfg.maxDepth) {
			return nodeID
		}
	} else {
		mean := 0.0
		for _, i := range idx {
			mean += yReg[i]
		}
		mean /= float64(len(idx))
		t.nodes[nodeID].value = mean
		if len(idx) < 2*cfg.minLeaf || (cfg.maxDepth > 0 && depth >= cfg.maxDepth) {
			return nodeID
		}
	}

	feat, thr, gain := bestSplit(x, yClass, yReg, idx, cfg)
	if feat < 0 {
		return nodeID
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.minLeaf || len(right) < cfg.minLeaf {
		return nodeID
	}
	if cfg.impurityDecay != nil {
		cfg.impurityDecay[feat] += gain * float64(len(idx))
	}
	t.nodes[nodeID].featureIdx = feat
	t.nodes[nodeID].threshold = thr
	l := t.grow(x, yClass, yReg, left, cfg, depth+1)
	r := t.grow(x, yClass, yReg, right, cfg, depth+1)
	t.nodes[nodeID].left = l
	t.nodes[nodeID].right = r
	return nodeID
}

func pure(counts []float64) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// bestSplit scans a feature subset for the split maximizing impurity
// decrease (Gini for classification, variance for regression). Returns
// feature -1 when no split improves.
func bestSplit(x [][]float64, yClass []int, yReg []float64, idx []int, cfg *treeConfig) (int, float64, float64) {
	d := len(x[idx[0]])
	features := make([]int, d)
	for i := range features {
		features[i] = i
	}
	if cfg.maxFeatures > 0 && cfg.maxFeatures < d {
		cfg.rng.Shuffle(d, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.maxFeatures]
	}

	bestFeat, bestThr, bestGain := -1, 0.0, 1e-12
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	parent := impurity(yClass, yReg, idx, cfg)

	for _, f := range features {
		for k, i := range idx {
			vals[k] = x[i][f]
			order[k] = i
		}
		sort.Sort(&byFeature{vals: vals, order: order})
		gain, thr, ok := scanSplits(vals, order, yClass, yReg, cfg, parent)
		if ok && gain > bestGain {
			bestFeat, bestThr, bestGain = f, thr, gain
		}
	}
	return bestFeat, bestThr, bestGain
}

type byFeature struct {
	vals  []float64
	order []int
}

func (b *byFeature) Len() int           { return len(b.vals) }
func (b *byFeature) Less(i, j int) bool { return b.vals[i] < b.vals[j] }
func (b *byFeature) Swap(i, j int) {
	b.vals[i], b.vals[j] = b.vals[j], b.vals[i]
	b.order[i], b.order[j] = b.order[j], b.order[i]
}

// scanSplits sweeps sorted values accumulating left-side statistics and
// returns the best (gain, threshold).
func scanSplits(vals []float64, order []int, yClass []int, yReg []float64, cfg *treeConfig, parent float64) (float64, float64, bool) {
	n := len(vals)
	if cfg.numClasses > 0 {
		total := make([]float64, cfg.numClasses)
		for _, i := range order {
			total[yClass[i]]++
		}
		left := make([]float64, cfg.numClasses)
		bestGain, bestThr, found := 0.0, 0.0, false
		for k := 0; k < n-1; k++ {
			left[yClass[order[k]]]++
			if vals[k] == vals[k+1] {
				continue
			}
			nl, nr := float64(k+1), float64(n-k-1)
			gl := giniFromCounts(left, nl)
			gr := giniFromCountsDiff(total, left, nr)
			gain := parent - (nl*gl+nr*gr)/float64(n)
			if gain > bestGain {
				bestGain, bestThr, found = gain, (vals[k]+vals[k+1])/2, true
			}
		}
		return bestGain, bestThr, found
	}
	// Regression: variance reduction via running sums.
	var sumTotal, sumSqTotal float64
	for _, i := range order {
		sumTotal += yReg[i]
		sumSqTotal += yReg[i] * yReg[i]
	}
	var sumL, sumSqL float64
	bestGain, bestThr, found := 0.0, 0.0, false
	for k := 0; k < n-1; k++ {
		v := yReg[order[k]]
		sumL += v
		sumSqL += v * v
		if vals[k] == vals[k+1] {
			continue
		}
		nl, nr := float64(k+1), float64(n-k-1)
		varL := sumSqL/nl - (sumL/nl)*(sumL/nl)
		sumR, sumSqR := sumTotal-sumL, sumSqTotal-sumSqL
		varR := sumSqR/nr - (sumR/nr)*(sumR/nr)
		gain := parent - (nl*varL+nr*varR)/float64(n)
		if gain > bestGain {
			bestGain, bestThr, found = gain, (vals[k]+vals[k+1])/2, true
		}
	}
	return bestGain, bestThr, found
}

func impurity(yClass []int, yReg []float64, idx []int, cfg *treeConfig) float64 {
	if cfg.numClasses > 0 {
		counts := make([]float64, cfg.numClasses)
		for _, i := range idx {
			counts[yClass[i]]++
		}
		return giniFromCounts(counts, float64(len(idx)))
	}
	var sum, sumSq float64
	for _, i := range idx {
		sum += yReg[i]
		sumSq += yReg[i] * yReg[i]
	}
	n := float64(len(idx))
	return sumSq/n - (sum/n)*(sum/n)
}

func giniFromCounts(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

func giniFromCountsDiff(total, left []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for i, c := range total {
		p := (c - left[i]) / n
		g -= p * p
	}
	return g
}

// predictClassCounts walks the tree and returns the leaf's class counts.
func (t *tree) predictClassCounts(row []float64) []float64 {
	id := int32(0)
	for {
		n := &t.nodes[id]
		if n.featureIdx < 0 {
			return n.classCounts
		}
		if n.featureIdx < len(row) && row[n.featureIdx] <= n.threshold {
			id = n.left
		} else {
			id = n.right
		}
	}
}

// predictValue walks the tree and returns the leaf's mean target.
func (t *tree) predictValue(row []float64) float64 {
	id := int32(0)
	for {
		n := &t.nodes[id]
		if n.featureIdx < 0 {
			return n.value
		}
		if n.featureIdx < len(row) && row[n.featureIdx] <= n.threshold {
			id = n.left
		} else {
			id = n.right
		}
	}
}
