package ml

import (
	"math"
	"strings"
	"testing"
)

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); a != 2.0/3.0 {
		t.Errorf("Accuracy = %v", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy != 0")
	}
}

func TestRegressionMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 5}
	if m := MAE(pred, truth); m != 1 {
		t.Errorf("MAE = %v", m)
	}
	if m := MSE(pred, truth); math.Abs(m-5.0/3.0) > 1e-12 {
		t.Errorf("MSE = %v", m)
	}
	// Perfect prediction.
	if r := R2(truth, truth); r != 1 {
		t.Errorf("R2 perfect = %v", r)
	}
	// Mean prediction has R2 = 0.
	mean := (2.0 + 2.0 + 5.0) / 3
	if r := R2([]float64{mean, mean, mean}, truth); math.Abs(r) > 1e-12 {
		t.Errorf("R2 mean = %v", r)
	}
}

func TestF1(t *testing.T) {
	pred := []int{1, 1, 0, 1}
	truth := []int{1, 0, 1, 1}
	// tp=2 fp=1 fn=1 -> p=2/3 r=2/3 f1=2/3.
	if f := F1Binary(pred, truth, 1); math.Abs(f-2.0/3.0) > 1e-12 {
		t.Errorf("F1 = %v", f)
	}
	if f := F1Binary([]int{0, 0}, []int{1, 1}, 1); f != 0 {
		t.Errorf("zero-tp F1 = %v", f)
	}
	p, r, f := PrecisionRecallF1(2, 1, 1)
	if math.Abs(p-2.0/3.0) > 1e-12 || math.Abs(r-2.0/3.0) > 1e-12 || math.Abs(f-2.0/3.0) > 1e-12 {
		t.Errorf("PRF = %v %v %v", p, r, f)
	}
	if m := MacroF1(pred, truth, 2); m <= 0 || m > 1 {
		t.Errorf("MacroF1 = %v", m)
	}
}

func TestSplitters(t *testing.T) {
	s := TrainTestSplit(100, 0.25, 1)
	if len(s.Train) != 75 || len(s.Test) != 25 {
		t.Fatalf("split sizes %d/%d", len(s.Train), len(s.Test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, s.Train...), s.Test...) {
		if seen[i] {
			t.Fatal("duplicate index in split")
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatal("split does not cover all rows")
	}
	// Deterministic per seed.
	s2 := TrainTestSplit(100, 0.25, 1)
	for i := range s.Train {
		if s.Train[i] != s2.Train[i] {
			t.Fatal("split not deterministic")
		}
	}

	folds := KFold(50, 5, 2)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	covered := map[int]int{}
	for _, f := range folds {
		if len(f.Train)+len(f.Test) != 50 {
			t.Fatal("fold does not partition")
		}
		for _, i := range f.Test {
			covered[i]++
		}
	}
	for i := 0; i < 50; i++ {
		if covered[i] != 1 {
			t.Fatalf("row %d in %d test folds", i, covered[i])
		}
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	if a := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{1, 1, 0, 0}, 1); a != 1 {
		t.Errorf("perfect AUC = %v", a)
	}
	// Inverted scores.
	if a := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{1, 1, 0, 0}, 1); a != 0 {
		t.Errorf("inverted AUC = %v", a)
	}
	// All-tied scores: 0.5 by convention.
	if a := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{1, 1, 0, 0}, 1); a != 0.5 {
		t.Errorf("tied AUC = %v", a)
	}
	// Degenerate single-class input.
	if a := AUC([]float64{0.5, 0.6}, []int{1, 1}, 1); a != 0 {
		t.Errorf("single-class AUC = %v", a)
	}
}

func TestConfusionMatrix(t *testing.T) {
	pred := []int{0, 1, 1, 0, 1}
	truth := []int{0, 1, 0, 0, 1}
	m := NewConfusionMatrix(pred, truth, 2)
	if m.Counts[0][0] != 2 || m.Counts[0][1] != 1 || m.Counts[1][1] != 2 || m.Counts[1][0] != 0 {
		t.Errorf("counts = %v", m.Counts)
	}
	if a := m.Accuracy(); a != 0.8 {
		t.Errorf("accuracy = %v", a)
	}
	p, r, _ := m.PerClass(1)
	if p != 2.0/3.0 || r != 1 {
		t.Errorf("class 1 prec/rec = %v/%v", p, r)
	}
	s := m.String()
	if !strings.Contains(s, "accuracy 0.800") || !strings.Contains(s, "prec") {
		t.Errorf("render:\n%s", s)
	}
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	s := FitStandardizer(x)
	out := s.Transform(x)
	for j := 0; j < 2; j++ {
		mean, sq := 0.0, 0.0
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			sq += d * d
		}
		if math.Abs(mean) > 1e-12 || math.Abs(sq/3-1) > 1e-9 {
			t.Errorf("col %d mean %v var %v", j, mean, sq/3)
		}
	}
	// Constant column does not blow up.
	c := FitStandardizer([][]float64{{7}, {7}})
	if got := c.Transform([][]float64{{7}})[0][0]; got != 0 {
		t.Errorf("constant col transformed to %v", got)
	}
}
