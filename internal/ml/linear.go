package ml

import (
	"math"
)

// LinearRegression is ordinary least squares with optional ridge (L2)
// shrinkage, solved in closed form via Cholesky on the normal equations.
type LinearRegression struct {
	// L2 is the ridge penalty; 0 recovers plain OLS (a tiny jitter is
	// still added for numerical safety).
	L2 float64

	weights []float64
	bias    float64
}

// FitRegression fits the model on x, y.
func (m *LinearRegression) FitRegression(x [][]float64, y []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	d := len(x[0])
	// Augment with a bias column: solve (A'A + λI)w = A'y.
	dim := d + 1
	ata := make([]float64, dim*dim)
	aty := make([]float64, dim)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		copy(row, x[i])
		row[d] = 1
		for a := 0; a < dim; a++ {
			if row[a] == 0 {
				continue
			}
			for b := a; b < dim; b++ {
				ata[a*dim+b] += row[a] * row[b]
			}
			aty[a] += row[a] * y[i]
		}
	}
	for a := 0; a < dim; a++ {
		for b := 0; b < a; b++ {
			ata[a*dim+b] = ata[b*dim+a]
		}
	}
	lambda := m.L2
	if lambda <= 0 {
		lambda = 1e-8
	}
	for a := 0; a < d; a++ { // do not shrink the bias
		ata[a*dim+a] += lambda
	}
	w := choleskySolve(ata, aty, dim)
	m.weights = w[:d]
	m.bias = w[d]
}

// PredictRegression returns predictions for the rows of x.
func (m *LinearRegression) PredictRegression(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		s := m.bias
		for j, w := range m.weights {
			if j < len(row) {
				s += w * row[j]
			}
		}
		out[i] = s
	}
	return out
}

// Weights exposes the fitted coefficients (shared slice).
func (m *LinearRegression) Weights() []float64 { return m.weights }

// choleskySolve solves the symmetric positive-definite system Aw = b
// in-place; A is dim x dim row-major. Falls back to adding jitter when
// the factorization hits a non-positive pivot.
func choleskySolve(a, b []float64, dim int) []float64 {
	l := make([]float64, dim*dim)
	for jitter := 1e-10; ; jitter *= 10 {
		ok := true
		for i := 0; i < dim && ok; i++ {
			for j := 0; j <= i; j++ {
				s := a[i*dim+j]
				if i == j {
					s += jitter
				}
				for k := 0; k < j; k++ {
					s -= l[i*dim+k] * l[j*dim+k]
				}
				if i == j {
					if s <= 0 {
						ok = false
						break
					}
					l[i*dim+j] = math.Sqrt(s)
				} else {
					l[i*dim+j] = s / l[j*dim+j]
				}
			}
		}
		if ok {
			break
		}
		if jitter > 1 {
			// Hopeless conditioning; return zeros rather than NaNs.
			return make([]float64, dim)
		}
		for i := range l {
			l[i] = 0
		}
	}
	// Forward then back substitution.
	yv := make([]float64, dim)
	for i := 0; i < dim; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*dim+k] * yv[k]
		}
		yv[i] = s / l[i*dim+i]
	}
	w := make([]float64, dim)
	for i := dim - 1; i >= 0; i-- {
		s := yv[i]
		for k := i + 1; k < dim; k++ {
			s -= l[k*dim+i] * w[k]
		}
		w[i] = s / l[i*dim+i]
	}
	return w
}

// ElasticNetRegression is linear regression with the ElasticNet penalty
// alpha * (l1Ratio*|w|_1 + (1-l1Ratio)/2*|w|_2^2), fitted by cyclic
// coordinate descent with soft-thresholding.
type ElasticNetRegression struct {
	// Alpha is the overall penalty strength. Default 0.01.
	Alpha float64
	// L1Ratio balances L1 vs L2; 1 is lasso, 0 is ridge. Default 0.5.
	L1Ratio float64
	// MaxIter caps coordinate-descent sweeps. Default 200.
	MaxIter int
	// Tol stops when the largest coefficient update falls below it.
	// Default 1e-6.
	Tol float64

	weights []float64
	bias    float64
}

func (m *ElasticNetRegression) defaults() (alpha, l1 float64, iters int, tol float64) {
	alpha = m.Alpha
	if alpha <= 0 {
		alpha = 0.01
	}
	l1 = m.L1Ratio
	if l1 < 0 {
		l1 = 0
	}
	if l1 > 1 {
		l1 = 1
	}
	if m.L1Ratio == 0 {
		l1 = 0.5
	}
	iters = m.MaxIter
	if iters <= 0 {
		iters = 200
	}
	tol = m.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	return alpha, l1, iters, tol
}

// FitRegression fits by coordinate descent on centered data.
func (m *ElasticNetRegression) FitRegression(x [][]float64, y []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	d := len(x[0])
	alpha, l1, iters, tol := m.defaults()
	nf := float64(n)

	// Center y and columns of x so the bias separates out.
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= nf
	meanX := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			meanX[j] += v
		}
	}
	for j := range meanX {
		meanX[j] /= nf
	}

	// Column squared norms of centered data.
	colSq := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			c := v - meanX[j]
			colSq[j] += c * c
		}
	}

	w := make([]float64, d)
	resid := make([]float64, n) // y - Xw (centered)
	for i := range resid {
		resid[i] = y[i] - meanY
	}
	l1Pen := alpha * l1 * nf
	l2Pen := alpha * (1 - l1) * nf
	for it := 0; it < iters; it++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = x_j . (resid + w_j x_j)
			rho := 0.0
			for i, row := range x {
				rho += (row[j] - meanX[j]) * resid[i]
			}
			rho += w[j] * colSq[j]
			newW := softThreshold(rho, l1Pen) / (colSq[j] + l2Pen)
			delta := newW - w[j]
			if delta != 0 {
				for i, row := range x {
					resid[i] -= delta * (row[j] - meanX[j])
				}
				w[j] = newW
				if math.Abs(delta) > maxDelta {
					maxDelta = math.Abs(delta)
				}
			}
		}
		if maxDelta < tol {
			break
		}
	}
	m.weights = w
	m.bias = meanY
	for j, wj := range w {
		m.bias -= wj * meanX[j]
	}
}

// PredictRegression returns predictions for the rows of x.
func (m *ElasticNetRegression) PredictRegression(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		s := m.bias
		for j, w := range m.weights {
			if j < len(row) {
				s += w * row[j]
			}
		}
		out[i] = s
	}
	return out
}

// Weights exposes the fitted coefficients (shared slice).
func (m *ElasticNetRegression) Weights() []float64 { return m.weights }

func softThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}
