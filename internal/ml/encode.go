package ml

import (
	"repro/internal/dataset"
)

// OneHotEncoder featurizes a table the conventional way the Base/Full
// baselines use: numeric columns pass through (standardized by the
// caller if desired), categorical columns one-hot encode their training
// categories, and unseen or null categories map to all-zeros. Category
// vocabularies above MaxCategories keep only the most frequent values
// to bound dimensionality, mirroring common practice.
type OneHotEncoder struct {
	// MaxCategories caps the one-hot width per column. Default 64.
	MaxCategories int

	cols []encodedColumn
	dim  int
}

type encodedColumn struct {
	name    string
	numeric bool
	offset  int
	// cats maps category string -> slot for categorical columns.
	cats map[string]int
}

// FitOneHot builds an encoder over the columns of t, excluding the
// named target column.
func FitOneHot(t *dataset.Table, target string, maxCategories int) *OneHotEncoder {
	if maxCategories <= 0 {
		maxCategories = 64
	}
	e := &OneHotEncoder{MaxCategories: maxCategories}
	offset := 0
	for _, c := range t.Columns {
		if c.Name == target {
			continue
		}
		ec := encodedColumn{name: c.Name, offset: offset}
		if isNumericColumn(c) {
			ec.numeric = true
			offset++
		} else {
			counts := map[string]int{}
			for _, v := range c.Values {
				if v.IsNull() {
					continue
				}
				counts[v.Text()]++
			}
			top := topCategories(counts, maxCategories)
			ec.cats = make(map[string]int, len(top))
			for slot, cat := range top {
				ec.cats[cat] = slot
			}
			offset += len(top)
		}
		e.cols = append(e.cols, ec)
	}
	e.dim = offset
	return e
}

func isNumericColumn(c *dataset.Column) bool {
	nonNull, numeric := 0, 0
	for _, v := range c.Values {
		if v.IsNull() {
			continue
		}
		nonNull++
		if v.Kind == dataset.KindNumber || v.Kind == dataset.KindTime {
			numeric++
		}
	}
	return nonNull > 0 && numeric == nonNull
}

func topCategories(counts map[string]int, limit int) []string {
	type kv struct {
		k string
		v int
	}
	all := make([]kv, 0, len(counts))
	for k, v := range counts {
		all = append(all, kv{k, v})
	}
	// Selection by count then name for determinism.
	for i := 0; i < len(all); i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].v > all[best].v || (all[j].v == all[best].v && all[j].k < all[best].k) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if len(all) > limit {
		all = all[:limit]
	}
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.k
	}
	return out
}

// Dim returns the width of encoded feature vectors.
func (e *OneHotEncoder) Dim() int { return e.dim }

// FeatureNames returns a name per encoded feature slot (for the
// feature-selection baseline's reporting).
func (e *OneHotEncoder) FeatureNames() []string {
	names := make([]string, e.dim)
	for _, c := range e.cols {
		if c.numeric {
			names[c.offset] = c.name
			continue
		}
		for cat, slot := range c.cats {
			names[c.offset+slot] = c.name + "=" + cat
		}
	}
	return names
}

// Transform encodes the rows of t (matched to fitted columns by name;
// extra columns are ignored, and fitted columns missing from t
// contribute zeros).
func (e *OneHotEncoder) Transform(t *dataset.Table) [][]float64 {
	n := t.NumRows()
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, e.dim)
	}
	for _, ec := range e.cols {
		col := t.Column(ec.name)
		if col == nil {
			continue
		}
		for i, v := range col.Values {
			if v.IsNull() {
				continue
			}
			if ec.numeric {
				if f, ok := v.Float(); ok {
					out[i][ec.offset] = f
				}
				continue
			}
			if slot, ok := ec.cats[v.Text()]; ok {
				out[i][ec.offset+slot] = 1
			}
		}
	}
	return out
}
