package stats

import (
	"encoding/json"
	"fmt"
)

// histogramJSON is the wire form of a Histogram.
type histogramJSON struct {
	Kind  string    `json:"kind"`
	Bins  int       `json:"bins"`
	Min   float64   `json:"min,omitempty"`
	Width float64   `json:"width,omitempty"`
	Edges []float64 `json:"edges,omitempty"`
}

// MarshalJSON serializes the fitted histogram so deployments can be
// saved and reloaded without refitting.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	out := histogramJSON{Kind: h.Kind.String(), Bins: h.bins}
	switch h.Kind {
	case EquiWidth:
		out.Min = h.min
		out.Width = h.width
	case EquiDepth:
		out.Edges = h.edges
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a histogram written by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var in histogramJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Bins < 1 {
		return fmt.Errorf("stats: histogram with %d bins", in.Bins)
	}
	h.bins = in.Bins
	switch in.Kind {
	case "equi-width":
		h.Kind = EquiWidth
		h.min = in.Min
		h.width = in.Width
		if h.width <= 0 {
			h.width = 1
		}
	case "equi-depth":
		h.Kind = EquiDepth
		h.edges = in.Edges
	default:
		return fmt.Errorf("stats: unknown histogram kind %q", in.Kind)
	}
	return nil
}
