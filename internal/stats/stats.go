// Package stats provides the small statistical toolkit Leva's
// textification stage depends on: moments (including the kurtosis test
// that selects between equi-width and equi-depth histograms), quantiles,
// and the two histogram binners themselves.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Kurtosis returns the excess kurtosis of xs (0 for a normal
// distribution). Degenerate inputs (fewer than 4 values or zero
// variance) report 0, which steers the caller to the equi-width default.
func Kurtosis(xs []float64) float64 {
	if len(xs) < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(xs))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// HistogramKind selects the binning strategy.
type HistogramKind uint8

const (
	// EquiWidth divides [min, max] into equal-width intervals. Good
	// for light-tailed distributions.
	EquiWidth HistogramKind = iota
	// EquiDepth places bin boundaries at quantiles so that each bin
	// holds roughly the same number of observations. Good for
	// heavy-tailed distributions because outliers do not stretch the
	// interior bins.
	EquiDepth
)

func (k HistogramKind) String() string {
	if k == EquiDepth {
		return "equi-depth"
	}
	return "equi-width"
}

// Histogram quantizes floats into bin IDs in [0, Bins).
type Histogram struct {
	Kind HistogramKind
	// edges has Bins-1 interior boundaries for EquiDepth; for
	// EquiWidth min/width are used instead.
	edges []float64
	min   float64
	width float64
	bins  int
}

// NewHistogram fits a histogram of the given kind with the given number
// of bins over xs. bins must be >= 1 and xs non-empty.
func NewHistogram(kind HistogramKind, bins int, xs []float64) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >=1 bin, got %d", bins)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: histogram needs data")
	}
	h := &Histogram{Kind: kind, bins: bins}
	switch kind {
	case EquiWidth:
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		h.min = mn
		if mx > mn {
			h.width = (mx - mn) / float64(bins)
		} else {
			h.width = 1 // all values identical: everything lands in bin 0
		}
	case EquiDepth:
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		h.edges = make([]float64, 0, bins-1)
		for i := 1; i < bins; i++ {
			h.edges = append(h.edges, quantileSorted(sorted, float64(i)/float64(bins)))
		}
	default:
		return nil, fmt.Errorf("stats: unknown histogram kind %d", kind)
	}
	return h, nil
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return h.bins }

// Bin maps x to its bin ID in [0, Bins). Values outside the fitted range
// clamp to the first or last bin, which is how unseen test-time values
// are quantized.
func (h *Histogram) Bin(x float64) int {
	switch h.Kind {
	case EquiWidth:
		b := int(math.Floor((x - h.min) / h.width))
		if b < 0 {
			return 0
		}
		if b >= h.bins {
			return h.bins - 1
		}
		return b
	default: // EquiDepth
		// First edge strictly greater than x determines the bin.
		return sort.SearchFloat64s(h.edges, math.Nextafter(x, math.Inf(1)))
	}
}

// ChooseKind picks the histogram kind the paper's heuristic prescribes:
// equi-depth when the data is heavier-tailed than a normal distribution
// (positive excess kurtosis), equi-width otherwise.
func ChooseKind(xs []float64) HistogramKind {
	if Kurtosis(xs) > 0 {
		return EquiDepth
	}
	return EquiWidth
}
