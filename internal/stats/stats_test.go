package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMoments(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); v != 1.25 {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice moments not zero")
	}
}

func TestKurtosis(t *testing.T) {
	// Uniform distribution has negative excess kurtosis (~-1.2).
	rng := rand.New(rand.NewSource(1))
	uniform := make([]float64, 20000)
	for i := range uniform {
		uniform[i] = rng.Float64()
	}
	if k := Kurtosis(uniform); k > -0.8 || k < -1.6 {
		t.Errorf("uniform kurtosis = %v, want ~-1.2", k)
	}
	// Laplace-ish heavy tail: positive excess kurtosis.
	heavy := make([]float64, 20000)
	for i := range heavy {
		u := rng.Float64() - 0.5
		heavy[i] = math.Copysign(math.Log(1-2*math.Abs(u)), u)
	}
	if k := Kurtosis(heavy); k < 1 {
		t.Errorf("heavy-tail kurtosis = %v, want > 1", k)
	}
	if Kurtosis([]float64{1, 1, 1, 1}) != 0 {
		t.Error("constant data kurtosis != 0")
	}
	if Kurtosis([]float64{1, 2}) != 0 {
		t.Error("short data kurtosis != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
}

func TestEquiWidthHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(EquiWidth, 5, xs)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bin(0) != 0 || h.Bin(9) != 4 {
		t.Errorf("extremes binned to %d, %d", h.Bin(0), h.Bin(9))
	}
	// Out-of-range values clamp (test-time quantization).
	if h.Bin(-100) != 0 || h.Bin(100) != 4 {
		t.Errorf("clamping failed: %d, %d", h.Bin(-100), h.Bin(100))
	}
	// Monotone.
	prev := -1
	for x := 0.0; x <= 9; x += 0.5 {
		b := h.Bin(x)
		if b < prev {
			t.Fatalf("non-monotone binning at %v", x)
		}
		prev = b
	}
}

func TestEquiDepthHistogram(t *testing.T) {
	// Heavily skewed data: equi-depth should still balance counts.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 2)
	}
	const bins = 10
	h, err := NewHistogram(EquiDepth, bins, xs)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, bins)
	for _, x := range xs {
		counts[h.Bin(x)]++
	}
	for b, c := range counts {
		if c < len(xs)/bins/2 || c > len(xs)/bins*2 {
			t.Errorf("bin %d count %d far from balanced %d", b, c, len(xs)/bins)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram(EquiWidth, 4, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if h.Bin(7) != 0 {
		t.Errorf("constant data bin = %d", h.Bin(7))
	}
	if _, err := NewHistogram(EquiWidth, 0, []float64{1}); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram(EquiDepth, 3, nil); err == nil {
		t.Error("empty data accepted")
	}
}

func TestChooseKind(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	uniform := make([]float64, 5000)
	for i := range uniform {
		uniform[i] = rng.Float64()
	}
	if ChooseKind(uniform) != EquiWidth {
		t.Error("uniform data chose equi-depth")
	}
	heavy := make([]float64, 5000)
	for i := range heavy {
		heavy[i] = math.Exp(rng.NormFloat64() * 3)
	}
	if ChooseKind(heavy) != EquiDepth {
		t.Error("heavy-tailed data chose equi-width")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64())
	}
	for _, kind := range []HistogramKind{EquiWidth, EquiDepth} {
		h, err := NewHistogram(kind, 12, xs)
		if err != nil {
			t.Fatal(err)
		}
		data, err := h.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		back := &Histogram{}
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back.Bins() != 12 || back.Kind != kind {
			t.Fatalf("%v: shape changed", kind)
		}
		for _, x := range []float64{-5, 0.1, 1, 3, 1e6} {
			if h.Bin(x) != back.Bin(x) {
				t.Fatalf("%v: Bin(%v) = %d vs %d", kind, x, h.Bin(x), back.Bin(x))
			}
		}
	}
}

func TestHistogramJSONErrors(t *testing.T) {
	h := &Histogram{}
	for _, bad := range []string{
		`{"kind":"nope","bins":3}`,
		`{"kind":"equi-width","bins":0}`,
		`garbage`,
	} {
		if err := h.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}

// Property: every histogram maps every input into [0, bins).
func TestHistogramBinRangeProperty(t *testing.T) {
	f := func(seed int64, probe float64) bool {
		if math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		for _, kind := range []HistogramKind{EquiWidth, EquiDepth} {
			h, err := NewHistogram(kind, 1+rng.Intn(20), xs)
			if err != nil {
				return false
			}
			if b := h.Bin(probe); b < 0 || b >= h.Bins() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
