// Package fingerprint computes deterministic content hashes for the
// staged pipeline's content-addressed artifact cache. Every pipeline
// stage keys its cached artifact by a fingerprint of its inputs: table
// contents, stage options, and upstream stage fingerprints. Two inputs
// hash equal iff a stage run over them is guaranteed to produce the
// same output, so fingerprints double as cache keys and as equivalence
// proofs.
//
// Hashes are SHA-256, rendered as lowercase hex. Every hash is
// domain-separated by a caller-chosen label (which should embed a
// format version, e.g. "leva/textify-table/v1") so that encoding
// changes in one stage can never alias entries of another.
package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
)

// Hasher accumulates typed fields into one SHA-256 fingerprint. All
// writes are length- or width-prefixed, so field boundaries are
// unambiguous: ("a", "bc") and ("ab", "c") hash differently.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// New starts a fingerprint in the given domain. The domain string
// should name the artifact kind and its encoding version.
func New(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.String(domain)
	return h
}

// String appends a length-prefixed string.
func (h *Hasher) String(s string) {
	h.Uint(uint64(len(s)))
	h.h.Write([]byte(s))
}

// Uint appends a fixed-width unsigned integer.
func (h *Hasher) Uint(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:])
}

// Int appends a fixed-width signed integer.
func (h *Hasher) Int(v int64) { h.Uint(uint64(v)) }

// Float appends a float64 by its exact bit pattern, so fingerprints
// distinguish every representable value (including -0 from +0).
func (h *Hasher) Float(f float64) { h.Uint(math.Float64bits(f)) }

// Bool appends a boolean.
func (h *Hasher) Bool(b bool) {
	if b {
		h.Uint(1)
	} else {
		h.Uint(0)
	}
}

// Sum finalizes the fingerprint as lowercase hex. The hasher remains
// usable; later writes extend the input as if Sum had not been called.
func (h *Hasher) Sum() string {
	return hex.EncodeToString(h.h.Sum(nil))
}

// JSON fingerprints an options struct through its canonical JSON
// encoding (encoding/json is deterministic: struct fields in
// declaration order, map keys sorted). Callers should pass a
// fully-defaulted copy of the struct so that an explicit default and an
// unset zero value hash equal. It panics on unmarshalable values, which
// for option structs is a programming error, not input.
func JSON(domain string, v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("fingerprint: marshal %T: %v", v, err))
	}
	h := New(domain)
	h.String(string(data))
	return h.Sum()
}

// Combine hashes an ordered list of sub-fingerprints (or any strings)
// into one.
func Combine(domain string, parts ...string) string {
	h := New(domain)
	for _, p := range parts {
		h.String(p)
	}
	return h.Sum()
}
