package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// ScalabilityOptions configures the Fig. 7a scalability workload: a
// 3-table, 2000-row, 5-column dataset with 4000 unique tokens, grown by
// a replication factor K so that both rows and distinct tokens scale
// linearly.
type ScalabilityOptions struct {
	// Replication is the factor K; each replica suffixes every token
	// with its version number. Default 1.
	Replication int
	Seed        int64
}

// Scalability generates the replicated dataset of the scalability
// experiment.
func Scalability(opts ScalabilityOptions) *dataset.Database {
	if opts.Replication <= 0 {
		opts.Replication = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	const (
		tables       = 3
		rowsPerTable = 667 // ~2000 rows total
		cols         = 5
		tokenPool    = 4000
	)
	pool := make([]string, tokenPool)
	for i := range pool {
		pool[i] = fmt.Sprintf("tok_%04d", i)
	}

	db := &dataset.Database{}
	for t := 0; t < tables; t++ {
		names := make([]string, cols)
		for c := range names {
			names[c] = fmt.Sprintf("attr_%d", c)
		}
		tab := dataset.NewTable(fmt.Sprintf("table_%d", t), names...)
		// Pre-draw the base rows once, then emit K suffixed copies so
		// replica structure matches the paper's design exactly.
		base := make([][]string, rowsPerTable)
		for r := range base {
			row := make([]string, cols)
			for c := range row {
				row[c] = pool[rng.Intn(tokenPool)]
			}
			base[r] = row
		}
		for k := 1; k <= opts.Replication; k++ {
			for _, row := range base {
				vals := make([]dataset.Value, cols)
				for c, tok := range row {
					vals[c] = dataset.String(fmt.Sprintf("%s_v%d", tok, k))
				}
				tab.AppendRow(vals...)
			}
		}
		db.Add(tab)
	}
	return db
}
