package synth

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// RestbaseOptions configures the Restbase-shaped dataset (paper
// Table 4: 3 tables, ~19K rows, regression, no missing data, 67% string
// columns): predict review scores from restaurant attributes and
// geography.
type RestbaseOptions struct {
	Scale float64
	Seed  int64
}

// Restbase generates the dataset. The review score is driven by the
// restaurant's cuisine and price range and by the city's affluence —
// all outside the base table.
func Restbase(opts RestbaseOptions) *Spec {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	numCities := scaleCount(300, opts.Scale, 15)
	numRestaurants := scaleCount(4000, opts.Scale, 60)
	numReviews := scaleCount(14000, opts.Scale, 150)

	cuisines := vocab("cuisine", 20)
	cuisineQuality := make(map[string]float64, len(cuisines))
	for _, c := range cuisines {
		cuisineQuality[c] = rng.Float64() * 2
	}
	priceRanges := []string{"$", "$$", "$$$", "$$$$"}
	regions := vocab("geo_region", 10)

	geo := dataset.NewTable("geo", "city_id", "city", "region", "affluence")
	geo.SetKeys("city_id")
	affluence := make([]float64, numCities)
	for c := 0; c < numCities; c++ {
		affluence[c] = rng.Float64()
		geo.AppendRow(
			dataset.String(id("city", c)),
			dataset.String(id("cityname", c)),
			dataset.String(pick(regions, rng)),
			dataset.Number(affluence[c]*100),
		)
	}

	restaurants := dataset.NewTable("restaurants", "restaurant_id", "rest_name", "cuisine", "price_range", "city_id")
	restaurants.SetKeys("restaurant_id")
	restaurants.AddForeignKey("city_id", "geo", "city_id")
	restCuisine := make([]string, numRestaurants)
	restPrice := make([]int, numRestaurants)
	restCity := make([]int, numRestaurants)
	for r := 0; r < numRestaurants; r++ {
		restCuisine[r] = pick(cuisines, rng)
		restPrice[r] = rng.Intn(len(priceRanges))
		restCity[r] = rng.Intn(numCities)
		restaurants.AppendRow(
			dataset.String(id("rest", r)),
			dataset.String(id("restname", r)),
			dataset.String(restCuisine[r]),
			dataset.String(priceRanges[restPrice[r]]),
			dataset.String(id("city", restCity[r])),
		)
	}

	reviews := dataset.NewTable("reviews", "review_id", "restaurant_id", "reviewer", "visit_count", "score")
	reviews.SetKeys("review_id")
	reviews.AddForeignKey("restaurant_id", "restaurants", "restaurant_id")
	reviewers := vocab("reviewer", scaleCount(2000, opts.Scale, 40))
	entities := make([][]graph.RowRef, numReviews)
	for v := 0; v < numReviews; v++ {
		r := rng.Intn(numRestaurants)
		score := 2.0 +
			cuisineQuality[restCuisine[r]] +
			0.4*float64(restPrice[r]) +
			1.2*affluence[restCity[r]] +
			gauss(rng, 0, 0.35)
		reviews.AppendRow(
			dataset.String(id("review", v)),
			dataset.String(id("rest", r)),
			dataset.String(pick(reviewers, rng)),
			dataset.Int(1+rng.Intn(9)),
			dataset.Number(score),
		)
		entities[v] = []graph.RowRef{
			{Table: "reviews", Row: int32(v)},
			{Table: "restaurants", Row: int32(r)},
		}
	}

	return &Spec{
		Name:           "restbase",
		DB:             dataset.NewDatabase(reviews, restaurants, geo),
		BaseTable:      "reviews",
		Target:         "score",
		Classification: false,
		Entities:       entities,
	}
}
