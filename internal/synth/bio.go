package synth

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// BioOptions configures the Bio-shaped dataset (paper Table 4: 3
// tables, ~22K rows, regression, missing data, 69% string columns),
// mirroring the biodegradability task: predict molecular bioactivity
// from atom- and bond-level structure.
type BioOptions struct {
	Scale float64
	Seed  int64
}

// Bio generates the dataset. Bioactivity is an additive function of the
// molecule's atom elements and bond types, stored in the two non-base
// tables.
func Bio(opts BioOptions) *Spec {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	numMolecules := scaleCount(3000, opts.Scale, 80)
	atomsPerMol := 4
	bondsPerMol := 2

	elements := []string{"c", "h", "o", "n", "s", "cl", "p", "br"}
	elementEffect := map[string]float64{}
	for _, e := range elements {
		elementEffect[e] = gauss(rng, 0, 1.2)
	}
	bondTypes := []string{"single", "double", "triple", "aromatic"}
	bondEffect := map[string]float64{}
	for _, b := range bondTypes {
		bondEffect[b] = gauss(rng, 0, 0.8)
	}
	molClasses := vocab("molclass", 12)

	molecules := dataset.NewTable("molecules", "mol_id", "mol_class", "logp", "activity")
	molecules.SetKeys("mol_id")
	atoms := dataset.NewTable("atoms", "mol_id", "element", "charge")
	atoms.AddForeignKey("mol_id", "molecules", "mol_id")
	bonds := dataset.NewTable("bonds", "mol_id", "bond_type", "strength")
	bonds.AddForeignKey("mol_id", "molecules", "mol_id")

	entities := make([][]graph.RowRef, numMolecules)
	atomRow, bondRow := 0, 0
	for m := 0; m < numMolecules; m++ {
		mid := id("mol", m)
		entities[m] = []graph.RowRef{{Table: "molecules", Row: int32(m)}}
		// A dominant element and bond type drive the activity so the
		// signal is recoverable both by join aggregation (mode/mean
		// over the 1:N side) and by the embedding's token clusters.
		domEl := pick(elements, rng)
		domBond := pick(bondTypes, rng)
		meanCharge := 0.0
		na := atomsPerMol/2 + rng.Intn(atomsPerMol)
		for a := 0; a < na; a++ {
			el := domEl
			if rng.Float64() > 0.8 {
				el = pick(elements, rng)
			}
			charge := gauss(rng, elementEffect[el]*0.3, 0.2)
			meanCharge += charge
			atoms.AppendRow(
				dataset.String(mid),
				dataset.String(el),
				dataset.Number(charge),
			)
			entities[m] = append(entities[m], graph.RowRef{Table: "atoms", Row: int32(atomRow)})
			atomRow++
		}
		meanCharge /= float64(na)
		nb := 1 + rng.Intn(2*bondsPerMol-1)
		for b := 0; b < nb; b++ {
			bt := domBond
			if rng.Float64() > 0.8 {
				bt = pick(bondTypes, rng)
			}
			bonds.AppendRow(
				dataset.String(mid),
				dataset.String(bt),
				dataset.Number(absf(gauss(rng, 2, 0.8))),
			)
			entities[m] = append(entities[m], graph.RowRef{Table: "bonds", Row: int32(bondRow)})
			bondRow++
		}
		activity := 2*elementEffect[domEl] +
			1.2*bondEffect[domBond] +
			1.5*meanCharge +
			0.15*float64(na) +
			gauss(rng, 0, 0.3)
		molecules.AppendRow(
			dataset.String(mid),
			dataset.String(pick(molClasses, rng)),
			dataset.Number(gauss(rng, 2, 1)), // weak own feature
			dataset.Number(activity),
		)
	}

	injectMissing(atoms, []string{"element"}, 0.06, rng)
	injectMissing(bonds, []string{"bond_type"}, 0.06, rng)

	return &Spec{
		Name:           "bio",
		DB:             dataset.NewDatabase(molecules, atoms, bonds),
		BaseTable:      "molecules",
		Target:         "activity",
		Classification: false,
		Entities:       entities,
	}
}
