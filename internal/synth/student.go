package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// StudentOptions configures the STUDENT dataset of paper Table 1: the
// running example whose target (Total Expenses) is fully explained by
// order/price information in other tables and uncorrelated with the
// base table's own attributes.
type StudentOptions struct {
	// Students is the number of base rows. Default 500.
	Students int
	// Items is the catalog size. Default 40.
	Items int
	// OrdersPerStudent is the mean order count. Default 4.
	OrdersPerStudent int
	// NoisyAttrs appends this many white-noise numeric attributes to
	// every table, the Fig. 3 noise-injection knob.
	NoisyAttrs int
	Seed       int64
}

func (o StudentOptions) withDefaults() StudentOptions {
	if o.Students <= 0 {
		o.Students = 500
	}
	if o.Items <= 0 {
		o.Items = 40
	}
	if o.OrdersPerStudent <= 0 {
		o.OrdersPerStudent = 4
	}
	return o
}

// Student generates the STUDENT database: Expenses(Name, Gender,
// SchoolName, TotalExpenses), OrderInfo(Name FK, Item FK) and
// PriceInfo(Item, Prices). TotalExpenses is the exact sum of the prices
// of the student's ordered items.
func Student(opts StudentOptions) *Spec {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	genders := []string{"female", "male", "nonbinary"}
	schools := vocab("school", 12)

	prices := dataset.NewTable("price_info", "item", "prices")
	prices.SetKeys("item")
	itemPrice := make([]float64, opts.Items)
	for i := 0; i < opts.Items; i++ {
		itemPrice[i] = float64(5 + rng.Intn(200))
		prices.AppendRow(dataset.String(id("item", i)), dataset.Number(itemPrice[i]))
	}

	expenses := dataset.NewTable("expenses", "name", "gender", "school_name", "total_expenses")
	expenses.SetKeys("name")
	orders := dataset.NewTable("order_info", "name", "item")
	orders.AddForeignKey("name", "expenses", "name")
	orders.AddForeignKey("item", "price_info", "item")

	entities := make([][]graph.RowRef, 0, opts.Students)
	orderRow := 0
	for s := 0; s < opts.Students; s++ {
		name := id("student", s)
		total := 0.0
		n := 1 + rng.Intn(2*opts.OrdersPerStudent-1)
		group := []graph.RowRef{{Table: "expenses", Row: int32(s)}}
		for k := 0; k < n; k++ {
			item := rng.Intn(opts.Items)
			total += itemPrice[item]
			orders.AppendRow(dataset.String(name), dataset.String(id("item", item)))
			group = append(group, graph.RowRef{Table: "order_info", Row: int32(orderRow)})
			orderRow++
		}
		expenses.AppendRow(
			dataset.String(name),
			dataset.String(pick(genders, rng)),
			dataset.String(pick(schools, rng)),
			dataset.Number(total),
		)
		entities = append(entities, group)
	}

	db := dataset.NewDatabase(expenses, orders, prices)
	addNoiseAttrs(db, opts.NoisyAttrs, rng)
	return &Spec{
		Name:      "student",
		DB:        db,
		BaseTable: "expenses",
		Target:    "total_expenses",
		Entities:  entities,
	}
}

// addNoiseAttrs appends k white-noise numeric columns to every table of
// db (the Fig. 3 experiment injects these to create spurious edges once
// binned).
func addNoiseAttrs(db *dataset.Database, k int, rng *rand.Rand) {
	for _, t := range db.Tables {
		n := t.NumRows()
		for j := 0; j < k; j++ {
			vals := make([]dataset.Value, n)
			for i := range vals {
				vals[i] = dataset.Number(rng.NormFloat64())
			}
			t.Columns = append(t.Columns, &dataset.Column{
				Name:   fmt.Sprintf("noise_%s_%d", t.Name, j),
				Values: vals,
			})
		}
	}
}
