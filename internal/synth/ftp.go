package synth

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// FTPOptions configures the FTP-shaped dataset (paper Table 4: 2
// tables, ~96K rows, classification, missing data, 50% string columns).
// It mirrors the PAKDD'15 task: predict a binary gender label from
// product-viewing logs joined to session records.
type FTPOptions struct {
	Scale float64
	Seed  int64
}

// FTP generates the dataset. Gender is predictable from the mix of
// product categories in the session's view log — signal that only
// exists in the non-base table.
func FTP(opts FTPOptions) *Spec {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	numSessions := scaleCount(16000, opts.Scale, 150)
	viewsPerSession := 5

	devices := []string{"mobile", "desktop", "tablet"}
	// Category preferences per gender: disjoint high-affinity sets
	// plus a shared pool.
	catsA := vocab("cat_a", 10)
	catsB := vocab("cat_b", 10)
	catsShared := vocab("cat_s", 10)

	sessions := dataset.NewTable("sessions", "session_id", "device", "duration", "start_hour", "gender")
	sessions.SetKeys("session_id")
	logs := dataset.NewTable("view_logs", "session_id", "category", "price", "dwell_seconds")
	logs.AddForeignKey("session_id", "sessions", "session_id")

	entities := make([][]graph.RowRef, numSessions)
	logRow := 0
	for s := 0; s < numSessions; s++ {
		gender := rng.Intn(2)
		sid := id("sess", s)
		label := "female"
		if gender == 1 {
			label = "male"
		}
		// start_hour is weakly predictive (shifted distributions).
		hour := int(gauss(rng, 13+2*float64(gender), 5))
		if hour < 0 {
			hour = 0
		}
		if hour > 23 {
			hour = 23
		}
		sessions.AppendRow(
			dataset.String(sid),
			dataset.String(pick(devices, rng)),
			dataset.Number(absf(gauss(rng, 300, 120))),
			dataset.Int(hour),
			dataset.String(label),
		)
		entities[s] = []graph.RowRef{{Table: "sessions", Row: int32(s)}}
		n := 1 + rng.Intn(2*viewsPerSession-1)
		for v := 0; v < n; v++ {
			var cat string
			r := rng.Float64()
			switch {
			case r < 0.55 && gender == 0:
				cat = pick(catsA, rng)
			case r < 0.55 && gender == 1:
				cat = pick(catsB, rng)
			default:
				cat = pick(catsShared, rng)
			}
			logs.AppendRow(
				dataset.String(sid),
				dataset.String(cat),
				dataset.Number(absf(gauss(rng, 40, 25))),
				dataset.Number(absf(gauss(rng, 45, 30))),
			)
			entities[s] = append(entities[s], graph.RowRef{Table: "view_logs", Row: int32(logRow)})
			logRow++
		}
	}

	injectMissing(sessions, []string{"device"}, 0.07, rng)
	injectMissing(logs, []string{"category"}, 0.05, rng)

	return &Spec{
		Name:           "ftp",
		DB:             dataset.NewDatabase(sessions, logs),
		BaseTable:      "sessions",
		Target:         "gender",
		Classification: true,
		Entities:       entities,
	}
}
