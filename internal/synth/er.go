package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// ERPair is a synthetic entity-resolution benchmark: two catalog tables
// describing overlapping entities under independent noise, plus the
// ground-truth match pairs. It stands in for the EmbDI benchmark pairs
// of paper Table 8 (BeerAdvo-RateBeer, Walmart-Amazon, Amazon-Google),
// whose relative difficulty is reproduced through the noise level.
type ERPair struct {
	Name    string
	A, B    *dataset.Table
	Matches [][2]int // (row in A, row in B)
}

// EROptions configures pair generation.
type EROptions struct {
	// Entities is the number of shared ground-truth entities.
	// Default 400.
	Entities int
	// ExtraPerSide adds unmatched entities to each table. Default 120.
	ExtraPerSide int
	// Noise in [0, 1) is the per-attribute corruption probability;
	// higher means harder matching. Default 0.3.
	Noise float64
	Seed  int64
}

func (o EROptions) withDefaults() EROptions {
	if o.Entities <= 0 {
		o.Entities = 400
	}
	if o.ExtraPerSide <= 0 {
		o.ExtraPerSide = 120
	}
	if o.Noise <= 0 {
		o.Noise = 0.3
	}
	return o
}

// ER generates a synthetic catalog pair. Each entity is a bundle of
// categorical attributes (brand, line, style, pack) plus a price; a
// view corrupts each attribute independently with probability Noise by
// replacing it with a view-local variant, which removes that attribute
// as linking evidence — the same effect typos and format drift have on
// the real benchmark pairs.
func ER(name string, opts EROptions) *ERPair {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	brands := vocab("brand", 40)
	lines := vocab("line", 120)
	styles := vocab("style", 25)
	packs := []string{"single", "sixpack", "case", "bundle"}

	type entity struct {
		brand, line, style, pack string
		price                    float64
	}
	total := opts.Entities + 2*opts.ExtraPerSide
	ents := make([]entity, total)
	for i := range ents {
		ents[i] = entity{
			brand: pick(brands, rng),
			line:  lines[i%len(lines)] + "_" + fmt.Sprint(i),
			style: pick(styles, rng),
			pack:  pick(packs, rng),
			price: absf(gauss(rng, 30, 15)),
		}
	}

	corrupt := func(tok, side string, row int) string {
		if rng.Float64() < opts.Noise {
			return fmt.Sprintf("%s~%s%d", tok, side, row)
		}
		return tok
	}
	newTable := func(tname string) *dataset.Table {
		t := dataset.NewTable(tname, "record_id", "brand", "product_line", "style", "pack", "price")
		t.SetKeys("record_id")
		return t
	}
	addRow := func(t *dataset.Table, side string, row int, e entity) {
		price := e.price
		if rng.Float64() < opts.Noise {
			price += gauss(rng, 0, 5)
		}
		t.AppendRow(
			dataset.String(fmt.Sprintf("%s_rec_%04d", side, row)),
			dataset.String(corrupt(e.brand, side, row)),
			dataset.String(corrupt(e.line, side, row)),
			dataset.String(corrupt(e.style, side, row)),
			dataset.String(corrupt(e.pack, side, row)),
			dataset.Number(price),
		)
	}

	a := newTable(name + "_a")
	b := newTable(name + "_b")
	var matches [][2]int
	for i := 0; i < opts.Entities; i++ {
		addRow(a, "a", a.NumRows(), ents[i])
		addRow(b, "b", b.NumRows(), ents[i])
		matches = append(matches, [2]int{a.NumRows() - 1, b.NumRows() - 1})
	}
	for i := 0; i < opts.ExtraPerSide; i++ {
		addRow(a, "a", a.NumRows(), ents[opts.Entities+i])
		addRow(b, "b", b.NumRows(), ents[opts.Entities+opts.ExtraPerSide+i])
	}
	return &ERPair{Name: name, A: a, B: b, Matches: matches}
}

// ERPresets returns the three benchmark-shaped pairs with noise levels
// calibrated to the paper's difficulty ordering: BeerAdvo-RateBeer is
// the easiest, Amazon-Google the hardest.
func ERPresets(seed int64) []*ERPair {
	return []*ERPair{
		ER("beeradvo_ratebeer", EROptions{Noise: 0.22, Seed: seed}),
		ER("walmart_amazon", EROptions{Noise: 0.38, Seed: seed + 1}),
		ER("amazon_google", EROptions{Noise: 0.52, Seed: seed + 2}),
	}
}
